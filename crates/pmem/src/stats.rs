//! Memory-operation statistics, sharded per thread.
//!
//! The paper attributes the cost of detectability to specific extra memory
//! operations (flushes and stores on the `X` array at lines 3–4, 13–14,
//! 32–33, 47–48). [`Stats`] counts every primitive a
//! [`PmemPool`](crate::PmemPool) executes so experiment E3 can measure those
//! costs directly instead of inferring them from throughput.
//!
//! Counters are **sharded**: each thread increments its own
//! cache-line-aligned shard, assigned round-robin on first use, and
//! [`Stats::snapshot`] aggregates across shards. A single shared counter set
//! would put six hot `fetch_add` targets on one cache line bouncing between
//! every core — false sharing that perturbs the very throughput experiments
//! the counters exist to explain. Totals are identical to a shared
//! implementation because counter addition commutes.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};

/// Number of shards; a power of two comfortably above the core counts the
/// experiments run at, so concurrent threads rarely share a shard.
const SHARDS: usize = 64;

/// Monotonically increasing source of shard assignments.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's shard index, assigned round-robin on first use.
    static MY_SHARD: usize = NEXT_SHARD.fetch_add(1, Relaxed) % SHARDS;
}

/// One thread's counter set, padded to a cache line so shards never share
/// one (64-byte lines on the x86-64 targets the paper evaluates).
///
/// Ordering: all counters use `Relaxed` — they are monotone event counts
/// read only in aggregate snapshots, never used to synchronise memory.
#[derive(Debug, Default)]
#[repr(align(64))]
struct Shard {
    loads: AtomicU64,
    stores: AtomicU64,
    cas_ok: AtomicU64,
    cas_fail: AtomicU64,
    flushes: AtomicU64,
    flushes_coalesced: AtomicU64,
    fences: AtomicU64,
}

/// Running counters of pmem primitives executed on a pool.
///
/// Increments go to the calling thread's shard; [`Stats::snapshot`] sums
/// all shards. Reset between measurement phases with [`Stats::reset`].
#[derive(Debug)]
pub struct Stats {
    shards: Box<[Shard]>,
}

impl Default for Stats {
    fn default() -> Self {
        Self::new()
    }
}

impl Stats {
    /// Creates a zeroed counter set.
    pub fn new() -> Self {
        Stats { shards: (0..SHARDS).map(|_| Shard::default()).collect() }
    }

    #[inline]
    fn my_shard(&self) -> &Shard {
        &self.shards[MY_SHARD.with(|s| *s)]
    }

    #[inline]
    pub(crate) fn count_load(&self) {
        self.my_shard().loads.fetch_add(1, Relaxed);
    }

    #[inline]
    pub(crate) fn count_store(&self) {
        self.my_shard().stores.fetch_add(1, Relaxed);
    }

    #[inline]
    pub(crate) fn count_cas(&self, ok: bool) {
        let shard = self.my_shard();
        if ok {
            shard.cas_ok.fetch_add(1, Relaxed);
        } else {
            shard.cas_fail.fetch_add(1, Relaxed);
        }
    }

    #[inline]
    pub(crate) fn count_flush(&self) {
        self.my_shard().flushes.fetch_add(1, Relaxed);
    }

    #[inline]
    pub(crate) fn count_flush_coalesced(&self) {
        self.my_shard().flushes_coalesced.fetch_add(1, Relaxed);
    }

    #[inline]
    pub(crate) fn count_fence(&self) {
        self.my_shard().fences.fetch_add(1, Relaxed);
    }

    /// Returns a point-in-time copy of the counters, aggregated over all
    /// shards.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut out = StatsSnapshot::default();
        for s in self.shards.iter() {
            out.loads += s.loads.load(Relaxed);
            out.stores += s.stores.load(Relaxed);
            out.cas_ok += s.cas_ok.load(Relaxed);
            out.cas_fail += s.cas_fail.load(Relaxed);
            out.flushes += s.flushes.load(Relaxed);
            out.flushes_coalesced += s.flushes_coalesced.load(Relaxed);
            out.fences += s.fences.load(Relaxed);
        }
        out
    }

    /// Zeroes all counters.
    pub fn reset(&self) {
        for s in self.shards.iter() {
            s.loads.store(0, Relaxed);
            s.stores.store(0, Relaxed);
            s.cas_ok.store(0, Relaxed);
            s.cas_fail.store(0, Relaxed);
            s.flushes.store(0, Relaxed);
            s.flushes_coalesced.store(0, Relaxed);
            s.fences.store(0, Relaxed);
        }
    }
}

/// Immutable snapshot of a [`Stats`] counter set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Atomic loads executed.
    pub loads: u64,
    /// Atomic stores executed.
    pub stores: u64,
    /// Successful compare-and-swap operations.
    pub cas_ok: u64,
    /// Failed compare-and-swap operations.
    pub cas_fail: u64,
    /// Flush (`pmem_persist`) operations.
    pub flushes: u64,
    /// Flushes absorbed by the write-behind coalescing layer (already
    /// pending for the same flush unit, or the unit was entirely clean).
    /// Always a subset of [`flushes`](StatsSnapshot::flushes); the number
    /// of flushes that actually paid penalty + writeback is
    /// `flushes - flushes_coalesced`.
    pub flushes_coalesced: u64,
    /// Explicit store fences.
    pub fences: u64,
}

impl StatsSnapshot {
    /// Total primitives executed. `flushes_coalesced` is excluded: every
    /// coalesced flush is already counted in `flushes`, so including it
    /// would double-count.
    pub fn total(&self) -> u64 {
        self.loads + self.stores + self.cas_ok + self.cas_fail + self.flushes + self.fences
    }

    /// Difference `self - earlier`, counter-wise.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not actually earlier (any
    /// counter would underflow).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            loads: self.loads - earlier.loads,
            stores: self.stores - earlier.stores,
            cas_ok: self.cas_ok - earlier.cas_ok,
            cas_fail: self.cas_fail - earlier.cas_fail,
            flushes: self.flushes - earlier.flushes,
            flushes_coalesced: self.flushes_coalesced - earlier.flushes_coalesced,
            fences: self.fences - earlier.fences,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counting_and_snapshot() {
        let s = Stats::new();
        s.count_load();
        s.count_load();
        s.count_store();
        s.count_cas(true);
        s.count_cas(false);
        s.count_flush();
        s.count_fence();
        let snap = s.snapshot();
        assert_eq!(snap.loads, 2);
        assert_eq!(snap.stores, 1);
        assert_eq!(snap.cas_ok, 1);
        assert_eq!(snap.cas_fail, 1);
        assert_eq!(snap.flushes, 1);
        assert_eq!(snap.fences, 1);
        assert_eq!(snap.total(), 7);
    }

    #[test]
    fn reset_zeroes() {
        let s = Stats::new();
        s.count_flush();
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn since_subtracts() {
        let s = Stats::new();
        s.count_store();
        let a = s.snapshot();
        s.count_store();
        s.count_flush();
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.stores, 1);
        assert_eq!(d.flushes, 1);
        assert_eq!(d.loads, 0);
    }

    #[test]
    fn shards_are_cache_line_sized() {
        assert_eq!(std::mem::align_of::<Shard>(), 64);
        assert_eq!(std::mem::size_of::<Shard>(), 64);
    }

    /// The satellite stress test: per-thread sharded counters aggregate to
    /// exactly the totals a single shared counter set would have reported.
    #[test]
    fn multithreaded_counts_aggregate_exactly() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let s = Arc::new(Stats::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        s.count_load();
                        s.count_store();
                        s.count_cas(i % 3 == 0);
                        if t % 2 == 0 {
                            s.count_flush();
                        } else {
                            s.count_fence();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = s.snapshot();
        let n = THREADS as u64 * PER_THREAD;
        assert_eq!(snap.loads, n);
        assert_eq!(snap.stores, n);
        assert_eq!(snap.cas_ok + snap.cas_fail, n);
        assert_eq!(snap.flushes, n / 2);
        assert_eq!(snap.fences, n / 2);
        assert_eq!(snap.total(), 4 * n);
    }
}
