//! Memory-operation statistics.
//!
//! The paper attributes the cost of detectability to specific extra memory
//! operations (flushes and stores on the `X` array at lines 3–4, 13–14,
//! 32–33, 47–48). [`Stats`] counts every primitive a [`PmemPool`] executes so
//! experiment E3 can measure those costs directly instead of inferring them
//! from throughput.
//!
//! [`PmemPool`]: crate::PmemPool

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Running counters of pmem primitives executed on a pool.
///
/// Counters use relaxed atomics: they are monotone event counts, never used
/// for synchronization. Snapshot with [`Stats::snapshot`]; reset between
/// measurement phases with [`Stats::reset`].
#[derive(Debug, Default)]
pub struct Stats {
    loads: AtomicU64,
    stores: AtomicU64,
    cas_ok: AtomicU64,
    cas_fail: AtomicU64,
    flushes: AtomicU64,
    fences: AtomicU64,
}

impl Stats {
    /// Creates a zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn count_load(&self) {
        self.loads.fetch_add(1, Relaxed);
    }

    #[inline]
    pub(crate) fn count_store(&self) {
        self.stores.fetch_add(1, Relaxed);
    }

    #[inline]
    pub(crate) fn count_cas(&self, ok: bool) {
        if ok {
            self.cas_ok.fetch_add(1, Relaxed);
        } else {
            self.cas_fail.fetch_add(1, Relaxed);
        }
    }

    #[inline]
    pub(crate) fn count_flush(&self) {
        self.flushes.fetch_add(1, Relaxed);
    }

    #[inline]
    pub(crate) fn count_fence(&self) {
        self.fences.fetch_add(1, Relaxed);
    }

    /// Returns a point-in-time copy of the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            loads: self.loads.load(Relaxed),
            stores: self.stores.load(Relaxed),
            cas_ok: self.cas_ok.load(Relaxed),
            cas_fail: self.cas_fail.load(Relaxed),
            flushes: self.flushes.load(Relaxed),
            fences: self.fences.load(Relaxed),
        }
    }

    /// Zeroes all counters.
    pub fn reset(&self) {
        self.loads.store(0, Relaxed);
        self.stores.store(0, Relaxed);
        self.cas_ok.store(0, Relaxed);
        self.cas_fail.store(0, Relaxed);
        self.flushes.store(0, Relaxed);
        self.fences.store(0, Relaxed);
    }
}

/// Immutable snapshot of a [`Stats`] counter set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Atomic loads executed.
    pub loads: u64,
    /// Atomic stores executed.
    pub stores: u64,
    /// Successful compare-and-swap operations.
    pub cas_ok: u64,
    /// Failed compare-and-swap operations.
    pub cas_fail: u64,
    /// Flush (`pmem_persist`) operations.
    pub flushes: u64,
    /// Explicit store fences.
    pub fences: u64,
}

impl StatsSnapshot {
    /// Total primitives executed.
    pub fn total(&self) -> u64 {
        self.loads + self.stores + self.cas_ok + self.cas_fail + self.flushes + self.fences
    }

    /// Difference `self - earlier`, counter-wise.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not actually earlier (any
    /// counter would underflow).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            loads: self.loads - earlier.loads,
            stores: self.stores - earlier.stores,
            cas_ok: self.cas_ok - earlier.cas_ok,
            cas_fail: self.cas_fail - earlier.cas_fail,
            flushes: self.flushes - earlier.flushes,
            fences: self.fences - earlier.fences,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_snapshot() {
        let s = Stats::new();
        s.count_load();
        s.count_load();
        s.count_store();
        s.count_cas(true);
        s.count_cas(false);
        s.count_flush();
        s.count_fence();
        let snap = s.snapshot();
        assert_eq!(snap.loads, 2);
        assert_eq!(snap.stores, 1);
        assert_eq!(snap.cas_ok, 1);
        assert_eq!(snap.cas_fail, 1);
        assert_eq!(snap.flushes, 1);
        assert_eq!(snap.fences, 1);
        assert_eq!(snap.total(), 7);
    }

    #[test]
    fn reset_zeroes() {
        let s = Stats::new();
        s.count_flush();
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn since_subtracts() {
        let s = Stats::new();
        s.count_store();
        let a = s.snapshot();
        s.count_store();
        s.count_flush();
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.stores, 1);
        assert_eq!(d.flushes, 1);
        assert_eq!(d.loads, 0);
    }
}
