//! Tagged-pointer helpers.
//!
//! The DSS queue "borrows the most significant bits of this pointer to
//! record tags that indicate whether or not the detectable … operation was
//! prepared and then took effect" (paper §3.1, footnote 5: x86-64 implements
//! 48 address bits, leaving 16 bits for tags). This module fixes the same
//! layout — the low [`ADDR_BITS`] bits hold a word address, the top 16 bits
//! hold flags — and names the tag constants used by the queue algorithms.
//!
//! A tagged word is an ordinary `u64`, stored in and loaded from persistent
//! memory with single-word atomics, so every tag update is failure-atomic,
//! which is the whole point of the encoding.
//!
//! # Examples
//!
//! ```
//! use dss_pmem::{tag, PAddr};
//!
//! let node = PAddr::from_index(99);
//! let word = tag::set(node.to_word(), tag::ENQ_PREP);
//! assert!(tag::has(word, tag::ENQ_PREP));
//! assert!(!tag::has(word, tag::ENQ_COMPL));
//! assert_eq!(tag::addr_of(word), node);
//! ```

use crate::PAddr;

/// Number of significant address bits (x86-64 implements 48).
pub const ADDR_BITS: u32 = 48;

/// Mask selecting the address bits of a tagged word.
pub const ADDR_MASK: u64 = (1 << ADDR_BITS) - 1;

/// Mask selecting the tag bits of a tagged word.
pub const TAG_MASK: u64 = !ADDR_MASK;

/// A detectable enqueue was prepared (`prep-enqueue` ran).
pub const ENQ_PREP: u64 = 1 << 63;

/// A prepared enqueue took effect (`exec-enqueue` linked the node).
pub const ENQ_COMPL: u64 = 1 << 62;

/// A detectable dequeue was prepared (`prep-dequeue` ran).
pub const DEQ_PREP: u64 = 1 << 61;

/// A prepared dequeue took effect on an **empty** queue.
pub const EMPTY: u64 = 1 << 60;

/// Marks a `deqThreadID` claimed by a *non-detectable* dequeue (§3.2: the
/// non-detectable path combines the TID "with another special tag" so that
/// detection never confuses it with a detectable claim by the same thread).
pub const NONDET_DEQ: u64 = 1 << 59;

/// Marks a word that currently holds a PMwCAS descriptor pointer rather
/// than an application value (Wang et al.'s descriptor-flag bit).
pub const PMWCAS_DESC: u64 = 1 << 58;

/// PMwCAS "dirty" bit: the value may not have been flushed yet and readers
/// must persist it before use.
pub const PMWCAS_DIRTY: u64 = 1 << 57;

/// Returns `word` with `tags` set.
#[inline]
pub fn set(word: u64, tags: u64) -> u64 {
    debug_assert_eq!(tags & ADDR_MASK, 0, "tags must live above the address bits");
    word | tags
}

/// Returns `word` with `tags` cleared.
#[inline]
pub fn clear(word: u64, tags: u64) -> u64 {
    word & !tags
}

/// Returns `true` if **all** of `tags` are set in `word`.
#[inline]
pub fn has(word: u64, tags: u64) -> bool {
    word & tags == tags
}

/// Extracts the address portion of a tagged word.
#[inline]
pub fn addr_of(word: u64) -> PAddr {
    PAddr::from_word(word)
}

/// Extracts only the tag bits of a word.
#[inline]
pub fn tags_of(word: u64) -> u64 {
    word & TAG_MASK
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_disjoint_and_above_addr_bits() {
        let all = [ENQ_PREP, ENQ_COMPL, DEQ_PREP, EMPTY, NONDET_DEQ, PMWCAS_DESC, PMWCAS_DIRTY];
        for (i, &a) in all.iter().enumerate() {
            assert_eq!(a & ADDR_MASK, 0, "tag {i} overlaps address bits");
            for &b in &all[i + 1..] {
                assert_eq!(a & b, 0, "tags overlap");
            }
        }
    }

    #[test]
    fn set_clear_has_round_trip() {
        let w = set(5, ENQ_PREP | ENQ_COMPL);
        assert!(has(w, ENQ_PREP));
        assert!(has(w, ENQ_COMPL));
        assert!(has(w, ENQ_PREP | ENQ_COMPL));
        assert!(!has(w, DEQ_PREP));
        let w = clear(w, ENQ_COMPL);
        assert!(has(w, ENQ_PREP));
        assert!(!has(w, ENQ_COMPL));
        assert_eq!(addr_of(w).index(), 5);
    }

    #[test]
    fn addr_and_tags_partition_the_word() {
        let w = set(123, DEQ_PREP | EMPTY);
        assert_eq!(addr_of(w).to_word() | tags_of(w), w);
        assert_eq!(tags_of(w), DEQ_PREP | EMPTY);
    }

    #[test]
    fn has_requires_all_tags() {
        let w = set(0, ENQ_PREP);
        assert!(!has(w, ENQ_PREP | ENQ_COMPL));
    }
}
