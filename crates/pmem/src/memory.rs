//! The [`Memory`] trait: the primitive contract every backend provides.
//!
//! Data structures in this workspace are generic over `M: Memory` so the
//! same algorithm runs unmodified on the crash-testable simulator
//! ([`PmemPool`](crate::PmemPool)) or on plain DRAM atomics
//! ([`DramPool`](crate::DramPool)). The trait captures exactly the
//! operations the paper's pseudocode uses — sequentially consistent 64-bit
//! load/store/CAS plus the persistence instructions `flush`
//! (`CLWB`+`SFENCE`, PMDK's `pmem_persist`) and `fence` (`SFENCE`) — and
//! the allocation hooks a pool-backed allocator needs (capacity query and
//! reservation).
//!
//! Crash simulation (`crash`, `arm_crash_after`, `persisted_value`, …) is
//! deliberately *not* part of the trait: it only makes sense for a backend
//! that models a persistence domain, and stays an inherent API of
//! [`PmemPool`](crate::PmemPool). Code that injects crashes therefore works
//! with the concrete simulator type, while algorithms and workloads stay
//! backend-generic.

use std::ops::Range;

use crate::{FlushGranularity, PAddr, PlacementPolicy, StatsSnapshot, WORDS_PER_LINE};

/// A pool of 64-bit words accessed with sequentially consistent atomics and
/// explicit persistence instructions.
///
/// All methods take `&self` and are safe to call from many threads. Word 0
/// is the NULL address by convention ([`PAddr::NULL`]) and is never handed
/// out by allocators.
///
/// Implementations grow on demand: addressing a word beyond the initial
/// capacity materialises backing storage (zero-initialised) instead of
/// panicking, so a workload outgrowing its preallocation guess degrades to
/// an allocation, not a crash.
pub trait Memory: Send + Sync + std::fmt::Debug + 'static {
    /// Creates a zero-initialised pool with `words` words of initial
    /// capacity.
    ///
    /// `granularity` configures the flush unit for backends that model a
    /// persistence domain; backends without one (e.g.
    /// [`DramPool`](crate::DramPool)) ignore it.
    ///
    /// # Panics
    ///
    /// Panics if `words` is 0 or exceeds the 48-bit address space.
    fn create(words: usize, granularity: FlushGranularity) -> Self
    where
        Self: Sized;

    /// Atomically loads the value at `addr`.
    fn load(&self, addr: PAddr) -> u64;

    /// Atomically stores `value` at `addr`. On persistent backends the
    /// store is volatile until flushed.
    fn store(&self, addr: PAddr, value: u64);

    /// Atomically compares-and-swaps the value at `addr`.
    ///
    /// Returns `Ok(expected)` on success and `Err(actual)` on failure,
    /// mirroring [`std::sync::atomic::AtomicU64::compare_exchange`].
    fn cas(&self, addr: PAddr, expected: u64, new: u64) -> Result<u64, u64>;

    /// Persists the data at `addr` (and, under line granularity, its
    /// cache-line neighbours). A no-op on backends without a persistence
    /// domain.
    fn flush(&self, addr: PAddr);

    /// An explicit store fence. A no-op on backends without a persistence
    /// domain.
    fn fence(&self);

    /// The flush unit the pool was created with. Algorithms that flush
    /// multi-word nodes use this to emit one flush per line or one per
    /// word; backends without a persistence domain still report the value
    /// passed to [`create`](Memory::create) so the flush sequence (a no-op
    /// for them) stays comparable across backends.
    fn granularity(&self) -> FlushGranularity;

    /// Currently materialised capacity in words. Grows as addresses beyond
    /// it are touched or [`reserve`](Memory::reserve)d.
    fn capacity(&self) -> usize;

    /// Allocation hook: materialises backing storage for all words in
    /// `[0, words)` up front, so subsequent accesses in that range never
    /// grow on the hot path. Idempotent; never shrinks.
    fn reserve(&self, words: usize);

    /// Inspection hook: reads `addr` without any instrumentation (crash
    /// hooks, statistics). Snapshot and debugging helpers use this so they
    /// don't perturb counted experiments.
    fn peek(&self, addr: PAddr) -> u64;

    /// Sets the artificial flush latency in spin-loop iterations. Backends
    /// without a persistence domain ignore it.
    fn set_flush_penalty(&self, spins: u64) {
        let _ = spins;
    }

    /// The current artificial flush latency in spin-loop iterations.
    fn flush_penalty(&self) -> u64 {
        0
    }

    /// A snapshot of the backend's operation counters. Backends without
    /// instrumentation report all-zero counters.
    fn stats(&self) -> StatsSnapshot {
        StatsSnapshot::default()
    }

    /// Resets the backend's operation counters, if any.
    fn reset_stats(&self) {}

    /// Enables or disables write-behind flush coalescing (default off).
    /// A no-op on backends without a persistence domain — there is nothing
    /// to coalesce when flushes are already free.
    fn set_coalescing(&self, on: bool) {
        let _ = on;
    }

    /// Whether write-behind flush coalescing is enabled.
    fn coalescing(&self) -> bool {
        false
    }

    /// Writes back any flushes the calling thread has pending under
    /// write-behind coalescing. A no-op on backends without one.
    ///
    /// Structures call this before returning from a public operation so a
    /// completed operation's final flush is durable by the time the caller
    /// observes the response.
    fn drain(&self) {}

    /// Writes back only the calling thread's pending flush unit covering
    /// `addr`, leaving every other pending unit deferred — a *per-address
    /// ordering drain*.
    ///
    /// Structures call this at an ordering point that certifies exactly one
    /// earlier flush (e.g. "the announce must not persist ahead of the node
    /// it names"): only the named line needs to reach the persistence
    /// domain, so unrelated pending flushes stay coalescible across the
    /// fence.
    ///
    /// Semantics by configuration:
    /// * coalescing off — no-op (flushes are already synchronous);
    /// * coalescing on, per-address drains off — falls back to a whole-set
    ///   [`drain`](Memory::drain) (the conservative baseline);
    /// * coalescing on, per-address drains on — writes back only the unit
    ///   containing `addr`.
    fn drain_line(&self, addr: PAddr) {
        let _ = addr;
    }

    /// [`drain_line`](Memory::drain_line) over several addresses at once.
    /// Addresses sharing a flush unit are written back once.
    fn drain_lines(&self, addrs: &[PAddr]) {
        let _ = addrs;
    }

    /// Persists a whole batch of addresses with one ordering point:
    /// flush every address, then a single [`drain_lines`](Memory::drain_lines)
    /// over the set.
    ///
    /// The default is the literal flush-then-drain sequence; backends can
    /// override it to deduplicate shared flush units so a batch touching
    /// the same line many times pays one writeback (see the `PmemPool`
    /// implementation). The flat-combining execution layer issues one
    /// `persist_batch` per persist phase instead of per-operation
    /// flush/drain pairs.
    fn persist_batch(&self, addrs: &[PAddr]) {
        for &a in addrs {
            self.flush(a);
        }
        self.drain_lines(addrs);
    }

    /// Enables or disables per-address ordering drains (default off). Only
    /// meaningful while write-behind coalescing is enabled; a no-op on
    /// backends without a persistence domain.
    fn set_per_address_drains(&self, on: bool) {
        let _ = on;
    }

    /// Whether per-address ordering drains are enabled.
    fn per_address_drains(&self) -> bool {
        false
    }

    /// Number of crashes this backend has survived. Backends without a
    /// persistence domain never crash and report 0 forever.
    ///
    /// The thread-slot [`Registry`](crate::Registry) keys its
    /// orphan-marking pass off this counter so recovery is run at most
    /// once per crash, no matter how many threads (or repeated
    /// `recover()` calls) race to perform it.
    fn crash_generation(&self) -> u64 {
        0
    }

    /// Sets the [`PlacementPolicy`] that [`plan_regions`](Memory::plan_regions)
    /// applies (default [`PlacementPolicy::Interleave`]). A pure planning
    /// knob: it affects only future plans, never established addresses,
    /// and backends with no segment structure may ignore it.
    fn set_placement(&self, policy: PlacementPolicy) {
        let _ = policy;
    }

    /// The current region-placement policy.
    fn placement(&self) -> PlacementPolicy {
        PlacementPolicy::Interleave
    }

    /// Plans `region_words.len()` application regions of the given sizes
    /// (in words), at or after word `first_free`, under the backend's
    /// [placement policy](Memory::set_placement).
    ///
    /// Every returned range is cache-line-aligned, at least as large as
    /// requested, and pairwise disjoint in ascending order. Under
    /// [`PlacementPolicy::Sharded`] the segmented backends additionally
    /// guarantee that no two regions share a directory segment, so each
    /// region's words live in their own allocations (and file extents on
    /// a file-backed pool) — see [`crate::seg`].
    ///
    /// The plan is a pure function of the backend's initial capacity, the
    /// policy, and the arguments: re-planning after an attach with the
    /// same inputs reproduces the same regions, which is how structures
    /// re-derive their layout from a pool file's app-config words. The
    /// default implementation is the policy-blind contiguous packing.
    fn plan_regions(&self, first_free: u64, region_words: &[u64]) -> Vec<Range<u64>> {
        let mut cursor = first_free.next_multiple_of(WORDS_PER_LINE);
        region_words
            .iter()
            .map(|&words| {
                let len = words.max(1).next_multiple_of(WORDS_PER_LINE);
                let r = cursor..cursor + len;
                cursor += len;
                r
            })
            .collect()
    }
}
