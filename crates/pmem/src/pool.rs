//! The persistent-memory pool.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{hook, PAddr, Stats, StatsSnapshot};

/// Number of 64-bit words per 64-byte cache line.
pub const WORDS_PER_LINE: u64 = 8;

/// Granularity at which [`PmemPool::flush`] persists data.
///
/// Real `CLWB` writes back a whole 64-byte cache line, so adjacent words are
/// persisted together ([`FlushGranularity::Line`], the default). Word
/// granularity is *stricter*: an algorithm that accidentally relies on a
/// neighbouring field sharing a cache line with a flushed field will pass
/// line-granular crash tests but fail word-granular ones. Experiment E7 runs
/// the crash matrix under both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlushGranularity {
    /// Flush persists the whole 64-byte line containing the address
    /// (faithful to CLWB).
    #[default]
    Line,
    /// Flush persists only the addressed word (adversarial).
    Word,
}

/// Decides which *dirty* (written but unflushed) words spontaneously reach
/// the persistence domain at a crash.
///
/// Hardware may evict a dirty cache line at any time, persisting it without
/// any flush instruction. A correct recoverable algorithm must tolerate
/// every such schedule, so crash tests sweep over adversaries:
///
/// * [`WritebackAdversary::None`] — nothing unflushed survives (the
///   "fresh cache" extreme).
/// * [`WritebackAdversary::All`] — everything written survives (as if the
///   cache were write-through).
/// * [`WritebackAdversary::Random`] — each dirty word independently survives
///   with probability `prob` under a seeded RNG (reproducible middle
///   ground).
#[derive(Debug, Clone, PartialEq)]
pub enum WritebackAdversary {
    /// No spontaneous writeback: only explicitly flushed data survives.
    None,
    /// Full writeback: every dirty word is persisted before the crash.
    All,
    /// Each dirty word survives independently with probability `prob`.
    Random {
        /// RNG seed, so a failing schedule can be replayed.
        seed: u64,
        /// Survival probability in `[0.0, 1.0]`.
        prob: f64,
    },
}

struct Word {
    volatile: AtomicU64,
    persisted: AtomicU64,
    dirty: AtomicBool,
}

impl Word {
    fn new() -> Self {
        Word {
            volatile: AtomicU64::new(0),
            persisted: AtomicU64::new(0),
            dirty: AtomicBool::new(false),
        }
    }
}

/// A pool of 64-bit persistent-memory words with a volatile-cache model.
///
/// All accessors take `&self` and are safe to call from many threads; the
/// volatile values behave as sequentially consistent atomics, matching the
/// paper's evaluation setup ("standard C++ atomic operations configured with
/// sequentially consistent ordering").
///
/// The exception is [`PmemPool::crash`], which logically stops the machine:
/// it must not race with ordinary operations. Harnesses stop or join worker
/// threads first (a thread interrupted by an armed crash plan has already
/// unwound and performs no further operations).
///
/// # Examples
///
/// ```
/// use dss_pmem::{PmemPool, PAddr, WritebackAdversary};
///
/// let pool = PmemPool::with_capacity(16);
/// let a = PAddr::from_index(3);
/// assert_eq!(pool.cas(a, 0, 10), Ok(0));
/// pool.flush(a);
/// pool.store(a, 11); // dirty again
/// pool.crash(&WritebackAdversary::None);
/// assert_eq!(pool.load(a), 10); // the unflushed 11 was lost
/// ```
pub struct PmemPool {
    words: Box<[Word]>,
    granularity: FlushGranularity,
    stats: Stats,
    generation: AtomicU64,
    flush_penalty: AtomicU64,
}

impl PmemPool {
    /// Creates a zero-initialized pool of `words` 64-bit words with
    /// line-granular flushes.
    ///
    /// Word 0 is the NULL address and is never meaningfully used; `words`
    /// must therefore be at least 1.
    ///
    /// # Panics
    ///
    /// Panics if `words` is 0 or exceeds the 48-bit address space.
    pub fn with_capacity(words: usize) -> Self {
        Self::with_granularity(words, FlushGranularity::default())
    }

    /// Creates a pool with an explicit [`FlushGranularity`].
    ///
    /// # Panics
    ///
    /// Panics if `words` is 0 or exceeds the 48-bit address space.
    pub fn with_granularity(words: usize, granularity: FlushGranularity) -> Self {
        assert!(words >= 1, "pool must contain at least the NULL word");
        assert!(
            (words as u64) <= crate::tag::ADDR_MASK,
            "pool exceeds the 48-bit address space"
        );
        PmemPool {
            words: (0..words).map(|_| Word::new()).collect(),
            granularity,
            stats: Stats::new(),
            generation: AtomicU64::new(0),
            flush_penalty: AtomicU64::new(0),
        }
    }

    /// Sets the artificial latency of a flush, in spin-loop iterations
    /// (default 0).
    ///
    /// On real hardware `CLWB` + `SFENCE` to an Optane DIMM costs hundreds
    /// of nanoseconds while a cached store costs a few; that asymmetry —
    /// not the raw instruction count — is what separates the queue variants
    /// in the paper's Figure 5. Benchmarks set a penalty so the simulator
    /// reproduces the cost *shape*; correctness tests leave it at 0.
    pub fn set_flush_penalty(&self, spins: u64) {
        self.flush_penalty.store(spins, std::sync::atomic::Ordering::Relaxed);
    }

    /// The current flush penalty in spin-loop iterations.
    pub fn flush_penalty(&self) -> u64 {
        self.flush_penalty.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of words in the pool.
    pub fn capacity(&self) -> usize {
        self.words.len()
    }

    /// The pool's flush granularity.
    pub fn granularity(&self) -> FlushGranularity {
        self.granularity
    }

    /// Number of crashes this pool has survived.
    pub fn generation(&self) -> u64 {
        self.generation.load(SeqCst)
    }

    #[inline]
    fn word(&self, addr: PAddr) -> &Word {
        &self.words[addr.index() as usize]
    }

    /// Atomically loads the volatile value at `addr`.
    #[inline]
    pub fn load(&self, addr: PAddr) -> u64 {
        hook::step();
        self.stats.count_load();
        self.word(addr).volatile.load(SeqCst)
    }

    /// Atomically stores `value` at `addr` (volatile only; call
    /// [`flush`](Self::flush) to persist).
    #[inline]
    pub fn store(&self, addr: PAddr, value: u64) {
        hook::step();
        self.stats.count_store();
        let w = self.word(addr);
        w.volatile.store(value, SeqCst);
        w.dirty.store(true, SeqCst);
    }

    /// Atomically compares-and-swaps the volatile value at `addr`.
    ///
    /// Returns `Ok(expected)` on success and `Err(actual)` on failure,
    /// mirroring [`std::sync::atomic::AtomicU64::compare_exchange`].
    #[inline]
    pub fn cas(&self, addr: PAddr, expected: u64, new: u64) -> Result<u64, u64> {
        hook::step();
        let w = self.word(addr);
        let r = w.volatile.compare_exchange(expected, new, SeqCst, SeqCst);
        if r.is_ok() {
            w.dirty.store(true, SeqCst);
        }
        self.stats.count_cas(r.is_ok());
        r
    }

    /// Persists the data at `addr`, modelling PMDK's `pmem_persist`
    /// (CLWB + SFENCE): after `flush` returns, the value most recently
    /// written to `addr` (and, under line granularity, its cache-line
    /// neighbours) survives any subsequent crash.
    #[inline]
    pub fn flush(&self, addr: PAddr) {
        hook::step();
        self.stats.count_flush();
        let penalty = self.flush_penalty.load(std::sync::atomic::Ordering::Relaxed);
        for _ in 0..penalty {
            std::hint::spin_loop();
        }
        match self.granularity {
            FlushGranularity::Word => self.writeback(addr.index()),
            FlushGranularity::Line => {
                let base = addr.index() / WORDS_PER_LINE * WORDS_PER_LINE;
                let end = (base + WORDS_PER_LINE).min(self.words.len() as u64);
                for i in base..end {
                    self.writeback(i);
                }
            }
        }
    }

    /// An explicit store fence.
    ///
    /// In this simulator [`flush`](Self::flush) is synchronous, so the fence
    /// is a counted no-op; it exists so algorithms that issue a standalone
    /// `SFENCE` (e.g. PMwCAS) keep their instruction sequence — and their
    /// crash-point indices — faithful to the original.
    #[inline]
    pub fn fence(&self) {
        hook::step();
        self.stats.count_fence();
    }

    fn writeback(&self, index: u64) {
        let w = &self.words[index as usize];
        // Snapshot-then-store: a racing store may or may not be included,
        // which is exactly the latitude real hardware has for a value
        // written after the flush began. Equal values skip the stores —
        // storing an identical persisted value is a no-op, and this keeps
        // whole-line flushes cheap (most words of a line are clean).
        let v = w.volatile.load(SeqCst);
        if w.persisted.load(SeqCst) != v {
            w.persisted.store(v, SeqCst);
        }
        w.dirty.store(false, SeqCst);
    }

    /// Simulates a system-wide crash: volatile state reverts to the
    /// persistence domain.
    ///
    /// First the `adversary` decides, for every dirty word, whether a
    /// spontaneous cache eviction persisted it; then every volatile value is
    /// replaced by its persisted shadow and the pool's
    /// [`generation`](Self::generation) increments.
    ///
    /// The caller must ensure no thread is concurrently operating on the
    /// pool (the machine has, after all, crashed).
    pub fn crash(&self, adversary: &WritebackAdversary) {
        let mut rng = match adversary {
            WritebackAdversary::Random { seed, prob } => {
                assert!((0.0..=1.0).contains(prob), "probability out of range");
                Some((StdRng::seed_from_u64(*seed), *prob))
            }
            _ => None,
        };
        for w in self.words.iter() {
            if w.dirty.load(SeqCst) {
                let persist = match adversary {
                    WritebackAdversary::None => false,
                    WritebackAdversary::All => true,
                    WritebackAdversary::Random { .. } => {
                        let (rng, prob) = rng.as_mut().expect("rng initialized");
                        rng.gen_bool(*prob)
                    }
                };
                if persist {
                    w.persisted.store(w.volatile.load(SeqCst), SeqCst);
                }
                w.dirty.store(false, SeqCst);
            }
            w.volatile.store(w.persisted.load(SeqCst), SeqCst);
        }
        self.generation.fetch_add(1, SeqCst);
    }

    /// Arms the **current thread** to crash (unwind with
    /// [`CrashSignal`](crate::CrashSignal)) after `ops` more pmem
    /// operations. See the crate docs for the harness protocol.
    pub fn arm_crash_after(&self, ops: u64) {
        hook::arm(ops);
    }

    /// Cancels any crash plan armed on the current thread.
    pub fn disarm_crash(&self) {
        hook::disarm();
    }

    /// Operations remaining before the current thread's armed crash fires
    /// (0 when disarmed). Lets a sweep detect that an operation completed
    /// without reaching the requested crash point.
    pub fn crash_countdown(&self) -> u64 {
        hook::remaining()
    }

    /// The pool's operation counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Resets the pool's operation counters.
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Test/inspection helper: the persisted shadow of `addr` (what a crash
    /// right now would preserve), bypassing hooks and stats.
    pub fn persisted_value(&self, addr: PAddr) -> u64 {
        self.word(addr).persisted.load(SeqCst)
    }

    /// Test/inspection helper: the volatile value of `addr`, bypassing hooks
    /// and stats.
    pub fn peek(&self, addr: PAddr) -> u64 {
        self.word(addr).volatile.load(SeqCst)
    }

    /// Test/inspection helper: whether `addr` has been written since its
    /// last flush.
    pub fn is_dirty(&self, addr: PAddr) -> bool {
        self.word(addr).dirty.load(SeqCst)
    }
}

impl fmt::Debug for PmemPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PmemPool")
            .field("capacity", &self.words.len())
            .field("granularity", &self.granularity)
            .field("generation", &self.generation.load(SeqCst))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(i: u64) -> PAddr {
        PAddr::from_index(i)
    }

    #[test]
    fn store_is_volatile_until_flushed() {
        let p = PmemPool::with_capacity(32);
        p.store(addr(1), 42);
        assert_eq!(p.load(addr(1)), 42);
        assert_eq!(p.persisted_value(addr(1)), 0);
        assert!(p.is_dirty(addr(1)));
        p.flush(addr(1));
        assert_eq!(p.persisted_value(addr(1)), 42);
        assert!(!p.is_dirty(addr(1)));
    }

    #[test]
    fn crash_discards_unflushed_state() {
        let p = PmemPool::with_capacity(32);
        p.store(addr(1), 1);
        p.flush(addr(1));
        p.store(addr(1), 2); // unflushed overwrite
        p.store(addr(9), 3); // different line, unflushed
        p.crash(&WritebackAdversary::None);
        assert_eq!(p.load(addr(1)), 1);
        assert_eq!(p.load(addr(9)), 0);
        assert_eq!(p.generation(), 1);
    }

    #[test]
    fn adversary_all_persists_everything() {
        let p = PmemPool::with_capacity(32);
        p.store(addr(1), 7);
        p.store(addr(20), 8);
        p.crash(&WritebackAdversary::All);
        assert_eq!(p.load(addr(1)), 7);
        assert_eq!(p.load(addr(20)), 8);
    }

    #[test]
    fn adversary_random_is_reproducible() {
        let outcome = |seed| {
            let p = PmemPool::with_capacity(256);
            for i in 1..256 {
                p.store(addr(i), i);
            }
            p.crash(&WritebackAdversary::Random { seed, prob: 0.5 });
            (1..256).map(|i| p.load(addr(i))).collect::<Vec<_>>()
        };
        assert_eq!(outcome(12), outcome(12));
        assert_ne!(outcome(12), outcome(13), "distinct seeds should differ");
    }

    #[test]
    fn cas_success_and_failure() {
        let p = PmemPool::with_capacity(8);
        assert_eq!(p.cas(addr(1), 0, 5), Ok(0));
        assert_eq!(p.cas(addr(1), 0, 6), Err(5));
        assert_eq!(p.load(addr(1)), 5);
        let s = p.stats();
        assert_eq!(s.cas_ok, 1);
        assert_eq!(s.cas_fail, 1);
    }

    #[test]
    fn line_granularity_persists_neighbours() {
        let p = PmemPool::with_granularity(32, FlushGranularity::Line);
        p.store(addr(8), 1); // line 1 spans words 8..16
        p.store(addr(15), 2);
        p.flush(addr(8));
        p.crash(&WritebackAdversary::None);
        assert_eq!(p.load(addr(8)), 1);
        assert_eq!(p.load(addr(15)), 2, "same line flushed together");
    }

    #[test]
    fn word_granularity_persists_only_the_word() {
        let p = PmemPool::with_granularity(32, FlushGranularity::Word);
        p.store(addr(8), 1);
        p.store(addr(9), 2);
        p.flush(addr(8));
        p.crash(&WritebackAdversary::None);
        assert_eq!(p.load(addr(8)), 1);
        assert_eq!(p.load(addr(9)), 0, "neighbour not flushed");
    }

    #[test]
    fn armed_crash_unwinds_with_signal() {
        let p = PmemPool::with_capacity(8);
        p.arm_crash_after(2);
        p.store(addr(1), 1);
        assert_eq!(p.crash_countdown(), 1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.store(addr(2), 2);
        }));
        assert!(r.unwrap_err().downcast_ref::<crate::CrashSignal>().is_some());
        // The interrupted store never executed.
        assert_eq!(p.peek(addr(2)), 0);
        p.disarm_crash();
    }

    #[test]
    fn stats_count_all_primitives() {
        let p = PmemPool::with_capacity(8);
        p.reset_stats();
        p.load(addr(1));
        p.store(addr(1), 1);
        let _ = p.cas(addr(1), 1, 2);
        p.flush(addr(1));
        p.fence();
        let s = p.stats();
        assert_eq!((s.loads, s.stores, s.cas_ok, s.flushes, s.fences), (1, 1, 1, 1, 1));
    }

    #[test]
    fn flush_last_partial_line_in_bounds() {
        // Capacity not a multiple of the line size: flushing the last line
        // must not index out of bounds.
        let p = PmemPool::with_granularity(10, FlushGranularity::Line);
        p.store(addr(9), 3);
        p.flush(addr(9));
        p.crash(&WritebackAdversary::None);
        assert_eq!(p.load(addr(9)), 3);
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn zero_capacity_rejected() {
        let _ = PmemPool::with_capacity(0);
    }

    #[test]
    fn flush_penalty_round_trip() {
        let p = PmemPool::with_capacity(8);
        assert_eq!(p.flush_penalty(), 0);
        p.set_flush_penalty(10);
        assert_eq!(p.flush_penalty(), 10);
        p.store(addr(1), 1);
        p.flush(addr(1)); // still correct, just slower
        assert_eq!(p.persisted_value(addr(1)), 1);
    }

    #[test]
    fn debug_is_nonempty() {
        let p = PmemPool::with_capacity(8);
        assert!(format!("{p:?}").contains("PmemPool"));
    }

    #[test]
    fn concurrent_cas_is_atomic() {
        use std::sync::Arc;
        let p = Arc::new(PmemPool::with_capacity(8));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let p = Arc::clone(&p);
                std::thread::spawn(move || {
                    let mut wins = 0u64;
                    for _ in 0..1000 {
                        loop {
                            let cur = p.load(addr(1));
                            if p.cas(addr(1), cur, cur + 1).is_ok() {
                                wins += 1;
                                break;
                            }
                        }
                    }
                    wins
                })
            })
            .collect();
        let total: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
        assert_eq!(total, 4000);
        assert_eq!(p.load(addr(1)), 4000);
    }
}
