//! The persistent-memory pool.
//!
//! # Memory-ordering policy
//!
//! Every field states its ordering explicitly rather than mixing silently:
//!
//! * **Word state** (`volatile`, `persisted`, `dirty`) — `SeqCst`. The
//!   paper's evaluation uses "standard C++ atomic operations configured
//!   with sequentially consistent ordering", and crash correctness depends
//!   on the store→dirty and writeback orderings being globally agreed.
//! * **`generation`** — `SeqCst`. Rare (once per crash) and read by
//!   recovery code as a synchronisation point; not worth a weaker contract.
//! * **`flush_penalty`** — `Relaxed`, deliberately. It is a tuning knob
//!   read at the top of every flush: no other memory depends on its value,
//!   so the monotone-visible `Relaxed` read is sufficient and keeps the
//!   knob free on the hot path.
//! * **Statistics counters** — `Relaxed` (see [`crate::stats`]): monotone
//!   event counts, only ever read in aggregate.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::fs::OpenOptions;
use std::ops::Range;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed, Ordering::SeqCst};

use crate::seg::{self, FileBacking, Layout, PlacementPolicy, SegmentBacking, SegmentDirectory};
use crate::{hook, AttachError, Memory, PAddr, Stats, StatsSnapshot};

/// Number of 64-bit words per 64-byte cache line.
pub const WORDS_PER_LINE: u64 = 8;

/// Granularity at which [`PmemPool::flush`] persists data.
///
/// Real `CLWB` writes back a whole 64-byte cache line, so adjacent words are
/// persisted together ([`FlushGranularity::Line`], the default). Word
/// granularity is *stricter*: an algorithm that accidentally relies on a
/// neighbouring field sharing a cache line with a flushed field will pass
/// line-granular crash tests but fail word-granular ones. Experiment E7 runs
/// the crash matrix under both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlushGranularity {
    /// Flush persists the whole 64-byte line containing the address
    /// (faithful to CLWB).
    #[default]
    Line,
    /// Flush persists only the addressed word (adversarial).
    Word,
}

/// Whether a pool pays for crash hooks and statistics on every primitive.
///
/// Instrumentation is what makes the simulator *testable* — crash-point
/// injection steps a per-thread countdown and the flush-count ablation (E3)
/// needs per-primitive counters — but both cost cycles on every single
/// load/store/CAS/flush. Peak-throughput measurements construct the pool in
/// [`PoolMode::Raw`], where the primitives compile down to the bare atomic
/// operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PoolMode {
    /// Crash-point hooks and operation statistics on every primitive
    /// (the default; required by crash tests and flush-count experiments).
    #[default]
    Instrumented,
    /// No hooks, no stats: primitives are bare atomics plus persistence
    /// bookkeeping. [`PmemPool::stats`] reports zeros and
    /// [`PmemPool::arm_crash_after`] plans never fire from this pool's
    /// operations.
    Raw,
}

/// Decides which *dirty* (written but unflushed) words spontaneously reach
/// the persistence domain at a crash.
///
/// Hardware may evict a dirty cache line at any time, persisting it without
/// any flush instruction. A correct recoverable algorithm must tolerate
/// every such schedule, so crash tests sweep over adversaries:
///
/// * [`WritebackAdversary::None`] — nothing unflushed survives (the
///   "fresh cache" extreme).
/// * [`WritebackAdversary::All`] — everything written survives (as if the
///   cache were write-through).
/// * [`WritebackAdversary::Random`] — each dirty word independently survives
///   with probability `prob` under a seeded RNG (reproducible middle
///   ground).
#[derive(Debug, Clone, PartialEq)]
pub enum WritebackAdversary {
    /// No spontaneous writeback: only explicitly flushed data survives.
    None,
    /// Full writeback: every dirty word is persisted before the crash.
    All,
    /// Each dirty word survives independently with probability `prob`.
    Random {
        /// RNG seed, so a failing schedule can be replayed.
        seed: u64,
        /// Survival probability in `[0.0, 1.0]`.
        prob: f64,
    },
}

/// Minimal splitmix64 generator for the [`WritebackAdversary::Random`]
/// schedule: deterministic per seed, which is all reproducibility needs.
struct CrashRng(u64);

impl CrashRng {
    fn new(seed: u64) -> Self {
        CrashRng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    fn survives(&mut self, prob: f64) -> bool {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        ((z >> 11) as f64 / (1u64 << 53) as f64) < prob
    }
}

/// Globally unique pool identities, keying the per-thread pending-flush
/// sets below (a thread may touch many pools over its lifetime, e.g. one
/// per test).
static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(0);

/// One pool's write-behind state on one thread: the flush units (line
/// bases or word indices) whose writeback is deferred, tagged with the
/// pool generation they were pended under so entries that straddle a
/// crash are discarded instead of replayed.
///
/// The units live in an insertion-ordered ring — the *line-indexed map*
/// behind per-address ordering drains ([`PmemPool::drain_line`]): a
/// targeted drain removes and writes back exactly the named unit while
/// everything else stays pended, and whole-set drains iterate in a
/// deterministic (insertion) order. A flat ring beats a tree here: the set
/// is capped at [`MAX_PENDING`] entries of plain `u64`, so a linear scan
/// is cheaper than pointer-chasing, overflow eviction is an O(1)
/// `pop_front` of the oldest unit, and the hottest (most recently flushed)
/// lines stay pended longest — exactly the ones the next operation is
/// likely to re-flush. Per-address mode keeps the set near capacity across
/// operations, putting all three on the flush hot path.
struct PendingSet {
    generation: u64,
    units: VecDeque<u64>,
}

impl PendingSet {
    /// Marks `unit` most-recently-flushed if pending, reporting whether it
    /// was: a duplicate flush refreshes its line's recency so overflow
    /// eviction works LRU-wise and hot lines survive to absorb again.
    ///
    /// Scans from the back: flushes and ordering drains overwhelmingly hit
    /// recently-pended units, which recency ordering keeps at the tail.
    fn touch(&mut self, unit: u64) -> bool {
        match self.units.iter().rposition(|&u| u == unit) {
            Some(i) => {
                self.units.remove(i);
                self.units.push_back(unit);
                true
            }
            None => false,
        }
    }

    /// Removes `unit` if present, reporting whether it was.
    fn remove(&mut self, unit: u64) -> bool {
        match self.units.iter().rposition(|&u| u == unit) {
            Some(i) => {
                self.units.remove(i);
                true
            }
            None => false,
        }
    }
}

/// Pending sets never grow past this; a flush that would exceed it evicts
/// the least-recently-flushed unit (writing it back early, which is always
/// legal) to make room. Whole-set drains keep the set near empty, so the
/// bound only binds under per-address drains, where pending flushes ride
/// across operations. Sized to cover the hot cross-operation reuse windows
/// (log-entry lines, descriptor lines, announce slots) while keeping the
/// linear membership scans short — the set IS the flush hot path there.
const MAX_PENDING: usize = 16;

thread_local! {
    /// This thread's pending flush units, per pool id. Entries are removed
    /// whenever a pool's set drains empty, so the map stays tiny even
    /// across thousands of short-lived test pools.
    static PENDING: RefCell<HashMap<u64, PendingSet>> = RefCell::new(HashMap::new());
}

/// One simulated word: the volatile value caches see, the persisted shadow
/// a crash reverts to, and whether the two may differ.
struct Word {
    volatile: AtomicU64,
    persisted: AtomicU64,
    dirty: AtomicBool,
}

impl Word {
    fn new() -> Self {
        Word {
            volatile: AtomicU64::new(0),
            persisted: AtomicU64::new(0),
            dirty: AtomicBool::new(false),
        }
    }

    /// A word rebuilt from an attached pool file: volatile = persisted =
    /// the file's value, nothing dirty (the dead owner's cache is gone).
    fn persisted_at(value: u64) -> Self {
        Word {
            volatile: AtomicU64::new(value),
            persisted: AtomicU64::new(value),
            dirty: AtomicBool::new(false),
        }
    }
}

/// A pool of 64-bit persistent-memory words with a volatile-cache model.
///
/// All accessors take `&self` and are safe to call from many threads; the
/// volatile values behave as sequentially consistent atomics, matching the
/// paper's evaluation setup ("standard C++ atomic operations configured with
/// sequentially consistent ordering").
///
/// The pool **grows on demand**: words live in a fixed directory of
/// doubling segments (see [`crate::seg`]), so addressing past the initial
/// capacity materialises a new zero-initialised segment lock-free instead
/// of panicking. Crash semantics are unaffected — a crash visits every
/// materialised segment.
///
/// The exception is [`PmemPool::crash`], which logically stops the machine:
/// it must not race with ordinary operations. Harnesses stop or join worker
/// threads first (a thread interrupted by an armed crash plan has already
/// unwound and performs no further operations).
///
/// # Examples
///
/// ```
/// use dss_pmem::{PmemPool, PAddr, WritebackAdversary};
///
/// let pool = PmemPool::with_capacity(16);
/// let a = PAddr::from_index(3);
/// assert_eq!(pool.cas(a, 0, 10), Ok(0));
/// pool.flush(a);
/// pool.store(a, 11); // dirty again
/// pool.crash(&WritebackAdversary::None);
/// assert_eq!(pool.load(a), 10); // the unflushed 11 was lost
/// ```
pub struct PmemPool {
    id: u64,
    /// The address→segment structure plus the placement-policy knob; see
    /// [`crate::seg`].
    dir: SegmentDirectory<Word>,
    granularity: FlushGranularity,
    instrumented: bool,
    stats: Stats,
    generation: AtomicU64,
    flush_penalty: AtomicU64,
    coalesce: AtomicBool,
    per_address: AtomicBool,
    /// Where the persistence domain lives: process DRAM (anonymous) or a
    /// write-through pool file. See [`crate::seg`].
    backing: SegmentBacking,
    /// DRAM mirror of the superblock's application-config words
    /// (`[kind, params…]`); all zeros on anonymous pools until
    /// [`set_app_config`](Self::set_app_config).
    app: Box<[AtomicU64]>,
}

impl PmemPool {
    /// Creates a zero-initialized pool of `words` 64-bit words with
    /// line-granular flushes, instrumented (see [`PoolMode`]).
    ///
    /// Word 0 is the NULL address and is never meaningfully used; `words`
    /// must therefore be at least 1. The pool grows on demand past `words`.
    ///
    /// # Panics
    ///
    /// Panics if `words` is 0 or exceeds the 48-bit address space.
    pub fn with_capacity(words: usize) -> Self {
        Self::with_granularity(words, FlushGranularity::default())
    }

    /// Creates an instrumented pool with an explicit [`FlushGranularity`].
    ///
    /// # Panics
    ///
    /// Panics if `words` is 0 or exceeds the 48-bit address space.
    pub fn with_granularity(words: usize, granularity: FlushGranularity) -> Self {
        Self::with_mode(words, granularity, PoolMode::Instrumented)
    }

    /// Creates a pool with explicit [`FlushGranularity`] and [`PoolMode`].
    ///
    /// # Panics
    ///
    /// Panics if `words` is 0 or exceeds the 48-bit address space.
    pub fn with_mode(words: usize, granularity: FlushGranularity, mode: PoolMode) -> Self {
        let pool =
            Self::assemble(Layout::new(words), granularity, mode, SegmentBacking::Anonymous, 0);
        // Materialise the initial capacity eagerly: constructors are cold,
        // and the common case never grows.
        pool.segment(0);
        pool
    }

    /// The shared tail of every constructor: the in-DRAM side tables
    /// (segment directory, stats shards, knobs) over a chosen backing.
    fn assemble(
        layout: Layout,
        granularity: FlushGranularity,
        mode: PoolMode,
        backing: SegmentBacking,
        generation: u64,
    ) -> Self {
        PmemPool {
            id: NEXT_POOL_ID.fetch_add(1, Relaxed),
            dir: SegmentDirectory::new(layout),
            granularity,
            instrumented: mode == PoolMode::Instrumented,
            stats: Stats::new(),
            generation: AtomicU64::new(generation),
            flush_penalty: AtomicU64::new(0),
            coalesce: AtomicBool::new(false),
            per_address: AtomicBool::new(false),
            backing,
            app: (0..1 + seg::APP_WORDS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Creates (or truncates) a **file-backed** pool at `path`: the file
    /// holds the pool's entire persistence domain, so a process killed at
    /// any instruction leaves behind exactly what was flushed-and-fenced,
    /// and a fresh process rebuilds the pool with [`attach`](Self::attach).
    ///
    /// Volatile values, dirty bits, and pended coalesced flushes stay in
    /// process DRAM — dying *is* the crash, no reversion step needed.
    /// Writebacks write through to the file. One live process per pool
    /// file at a time (like PMDK pools); attaching while another process
    /// is writing is undefined.
    ///
    /// # Errors
    ///
    /// [`AttachError::Io`] if the file cannot be created or written.
    ///
    /// # Panics
    ///
    /// Panics if `words` is 0 or exceeds the 48-bit address space.
    pub fn create<P: AsRef<Path>>(
        path: P,
        words: usize,
        granularity: FlushGranularity,
    ) -> Result<Self, AttachError> {
        Self::create_with(path, words, granularity, PoolMode::Instrumented)
    }

    /// [`create`](Self::create) with an explicit [`PoolMode`].
    ///
    /// # Errors
    ///
    /// [`AttachError::Io`] if the file cannot be created or written.
    pub fn create_with<P: AsRef<Path>>(
        path: P,
        words: usize,
        granularity: FlushGranularity,
        mode: PoolMode,
    ) -> Result<Self, AttachError> {
        let layout = Layout::new(words);
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        file.set_len(seg::HEADER_BYTES)?;
        let fb = FileBacking::new(file, 0);
        fb.write_sb(seg::SB_MAGIC, seg::MAGIC);
        fb.write_sb(seg::SB_VERSION, seg::LAYOUT_VERSION);
        fb.write_sb(seg::SB_BASE, layout.base());
        fb.write_sb(seg::SB_GRANULARITY, granularity as u64);
        fb.write_sb(seg::SB_GENERATION, 0);
        fb.write_sb(seg::SB_COMMITTED, 0);
        let pool = Self::assemble(layout, granularity, mode, SegmentBacking::File(fb), 0);
        pool.segment(0); // commits segment 0 in the file
        Ok(pool)
    }

    /// Attaches to an existing pool file with **no in-process state**: the
    /// superblock is validated, every committed segment's persisted values
    /// are read back (volatile = persisted, nothing dirty), and the
    /// in-DRAM side tables (stats shards, pending-flush rings, knobs) are
    /// rebuilt fresh.
    ///
    /// Attaching is a crash boundary: the previous owner is gone, so the
    /// crash generation is bumped (durably, in the superblock) — which is
    /// what lets [`Registry::begin_recovery`](crate::Registry::begin_recovery)
    /// orphan the dead process's slots exactly once.
    ///
    /// # Errors
    ///
    /// Any [`AttachError`] variant: I/O failure, bad magic/version, or an
    /// internally inconsistent superblock.
    pub fn attach<P: AsRef<Path>>(path: P) -> Result<Self, AttachError> {
        Self::attach_with(path, PoolMode::Instrumented)
    }

    /// [`attach`](Self::attach) with an explicit [`PoolMode`].
    ///
    /// # Errors
    ///
    /// Any [`AttachError`] variant: I/O failure, bad magic/version, or an
    /// internally inconsistent superblock.
    pub fn attach_with<P: AsRef<Path>>(path: P, mode: PoolMode) -> Result<Self, AttachError> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let fb = FileBacking::new(file, 0);
        let magic = fb.read_sb(seg::SB_MAGIC)?;
        if magic != seg::MAGIC {
            return Err(AttachError::BadMagic { found: magic });
        }
        let version = fb.read_sb(seg::SB_VERSION)?;
        if version != seg::LAYOUT_VERSION {
            return Err(AttachError::BadVersion { found: version });
        }
        let layout = Layout::from_base(fb.read_sb(seg::SB_BASE)?)?;
        let granularity = match fb.read_sb(seg::SB_GRANULARITY)? {
            0 => FlushGranularity::Line,
            1 => FlushGranularity::Word,
            _ => return Err(AttachError::Corrupt("unknown flush-granularity code")),
        };
        let committed = fb.read_sb(seg::SB_COMMITTED)?;
        if committed == 0 || committed >> seg::SLOTS != 0 {
            return Err(AttachError::Corrupt("committed-segment bitmap out of range"));
        }
        // The previous owner is dead: attaching is the crash boundary, so
        // the new generation is published durably before any operation.
        let generation = fb.read_sb(seg::SB_GENERATION)?.wrapping_add(1);
        fb.write_sb(seg::SB_GENERATION, generation);
        let file_len = fb.read_len()?;
        let mut app = [0u64; 1 + seg::APP_WORDS];
        for (w, slot) in app.iter_mut().enumerate() {
            *slot = fb.read_sb(seg::SB_APP_KIND + w as u64)?;
        }
        let mut segments: Vec<(usize, Vec<u64>)> = Vec::new();
        for slot in 0..seg::SLOTS {
            if committed & (1 << slot) == 0 {
                continue;
            }
            if file_len < seg::HEADER_BYTES + 8 * layout.end(slot) {
                return Err(AttachError::Corrupt("file shorter than its committed watermark"));
            }
            segments.push((slot, fb.read_segment(&layout, slot)?));
        }
        fb.set_committed(committed);
        let pool = Self::assemble(layout, granularity, mode, SegmentBacking::File(fb), generation);
        for (slot, values) in segments {
            let words: Box<[Word]> = values.into_iter().map(Word::persisted_at).collect();
            if pool.dir.install(slot, words).is_err() {
                unreachable!("attach owns the pool; no racing materialisation");
            }
        }
        for (w, &v) in app.iter().enumerate() {
            pool.app[w].store(v, SeqCst);
        }
        Ok(pool)
    }

    /// The pool's instrumentation mode.
    pub fn mode(&self) -> PoolMode {
        if self.instrumented {
            PoolMode::Instrumented
        } else {
            PoolMode::Raw
        }
    }

    /// Sets the artificial latency of a flush, in spin-loop iterations
    /// (default 0).
    ///
    /// On real hardware `CLWB` + `SFENCE` to an Optane DIMM costs hundreds
    /// of nanoseconds while a cached store costs a few; that asymmetry —
    /// not the raw instruction count — is what separates the queue variants
    /// in the paper's Figure 5. Benchmarks set a penalty so the simulator
    /// reproduces the cost *shape*; correctness tests leave it at 0.
    ///
    /// `Relaxed` ordering: the knob synchronises nothing (see the module
    /// docs' ordering policy).
    pub fn set_flush_penalty(&self, spins: u64) {
        self.flush_penalty.store(spins, std::sync::atomic::Ordering::Relaxed);
    }

    /// The current flush penalty in spin-loop iterations.
    pub fn flush_penalty(&self) -> u64 {
        self.flush_penalty.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Currently materialised number of words. At least the initial
    /// capacity rounded up to whole cache lines; grows as higher addresses
    /// are touched.
    pub fn capacity(&self) -> usize {
        self.dir.materialised_words() as usize
    }

    /// Materialises backing storage for all words in `[0, words)`.
    pub fn reserve(&self, words: usize) {
        if words == 0 {
            return;
        }
        let last = self.dir.layout().slot_of(words as u64 - 1);
        for slot in 0..=last {
            self.segment(slot);
        }
    }

    /// Sets the region-placement policy [`plan_regions`](Self::plan_regions)
    /// uses (default [`PlacementPolicy::Interleave`]). A pure planning
    /// knob: it affects only future plans, never established addresses.
    pub fn set_placement(&self, policy: PlacementPolicy) {
        self.dir.set_policy(policy);
    }

    /// The current region-placement policy.
    pub fn placement(&self) -> PlacementPolicy {
        self.dir.policy()
    }

    /// Plans `region_words.len()` application regions of the given sizes
    /// at or after word `first_free`, under the pool's
    /// [placement policy](Self::set_placement). See
    /// [`Memory::plan_regions`].
    pub fn plan_regions(&self, first_free: u64, region_words: &[u64]) -> Vec<Range<u64>> {
        seg::plan_with(self.dir.layout(), self.dir.policy(), first_free, region_words)
    }

    /// The pool's flush granularity.
    pub fn granularity(&self) -> FlushGranularity {
        self.granularity
    }

    /// Number of crashes this pool has survived.
    pub fn generation(&self) -> u64 {
        self.generation.load(SeqCst)
    }

    /// The segment for directory `slot`, materialising it if needed.
    ///
    /// `OnceLock` makes materialisation race-free without locking readers:
    /// losers of an init race drop their allocation and use the winner's,
    /// and established segments are never moved, so word references remain
    /// stable for the pool's lifetime.
    #[inline]
    fn segment(&self, slot: usize) -> &[Word] {
        self.dir.get_or_init(slot, || {
            // File-backed growth is crash-atomic: the file covers the new
            // segment (zeros) and its committed bit is published before
            // any word of it can be written back.
            if let SegmentBacking::File(fb) = &self.backing {
                fb.commit_segment(self.dir.layout(), slot);
            }
            (0..self.dir.layout().len(slot)).map(|_| Word::new()).collect()
        })
    }

    #[inline]
    fn word(&self, addr: PAddr) -> &Word {
        let (slot, off) = self.dir.locate(addr.index());
        &self.segment(slot)[off]
    }

    /// Crash hook + statistics, skipped entirely in [`PoolMode::Raw`].
    #[inline]
    fn instrument(&self, count: impl FnOnce(&Stats)) {
        if self.instrumented {
            hook::step();
            count(&self.stats);
        }
    }

    /// Atomically loads the volatile value at `addr`.
    #[inline]
    pub fn load(&self, addr: PAddr) -> u64 {
        self.instrument(Stats::count_load);
        self.word(addr).volatile.load(SeqCst)
    }

    /// Atomically stores `value` at `addr` (volatile only; call
    /// [`flush`](Self::flush) to persist).
    ///
    /// A plain store is **not** a fence point for write-behind coalescing:
    /// just as a real store does not order earlier `CLWB`s, pending
    /// coalesced flushes stay pending across it. Only [`cas`](Self::cas)
    /// (a locked instruction), [`fence`](Self::fence), and
    /// [`drain`](Self::drain) write them back.
    #[inline]
    pub fn store(&self, addr: PAddr, value: u64) {
        self.instrument(Stats::count_store);
        let w = self.word(addr);
        w.volatile.store(value, SeqCst);
        w.dirty.store(true, SeqCst);
    }

    /// Atomically compares-and-swaps the volatile value at `addr`.
    ///
    /// Returns `Ok(expected)` on success and `Err(actual)` on failure,
    /// mirroring [`std::sync::atomic::AtomicU64::compare_exchange`].
    ///
    /// A CAS is a locked instruction and therefore a fence point for
    /// write-behind coalescing: it drains this thread's pending flushes
    /// first, success or failure. Algorithms that flush a link before a
    /// tail-advancing CAS therefore keep their persistence ordering under
    /// coalescing.
    ///
    /// With per-address drains enabled
    /// ([`set_per_address_drains`](Self::set_per_address_drains)) the CAS
    /// only writes back the pending unit covering its *own* address — a
    /// CAS on a clean control word no longer forces a full writeback, and
    /// any ordering against other lines is the algorithm's job via
    /// explicit [`drain_line`](Self::drain_line) calls.
    #[inline]
    pub fn cas(&self, addr: PAddr, expected: u64, new: u64) -> Result<u64, u64> {
        if self.coalesce.load(Relaxed) {
            if self.per_address.load(Relaxed) {
                self.drain_units(&[self.flush_unit(addr)]);
            } else {
                self.drain();
            }
        }
        if self.instrumented {
            hook::step();
        }
        let w = self.word(addr);
        let r = w.volatile.compare_exchange(expected, new, SeqCst, SeqCst);
        if r.is_ok() {
            w.dirty.store(true, SeqCst);
        }
        if self.instrumented {
            self.stats.count_cas(r.is_ok());
        }
        r
    }

    /// Persists the data at `addr`, modelling PMDK's `pmem_persist`
    /// (CLWB + SFENCE): after `flush` returns, the value most recently
    /// written to `addr` (and, under line granularity, its cache-line
    /// neighbours) survives any subsequent crash.
    ///
    /// Under write-behind coalescing ([`set_coalescing`](Self::set_coalescing))
    /// a flush behaves like a bare `CLWB` instead: the unit (line or word)
    /// is added to a per-thread pending set and written back — paying the
    /// flush penalty — only at the next fence point (a [`cas`](Self::cas),
    /// [`fence`](Self::fence), or explicit
    /// [`drain`](Self::drain)). Duplicate flushes of an already-pending
    /// unit and flushes of entirely clean units cost nothing and are
    /// counted in [`StatsSnapshot::flushes_coalesced`]. A crash before the
    /// next fence point drops the pending units exactly as real hardware
    /// drops an un-fenced `CLWB`.
    #[inline]
    pub fn flush(&self, addr: PAddr) {
        self.instrument(Stats::count_flush);
        if self.coalesce.load(Relaxed) {
            self.flush_coalesced(addr);
            return;
        }
        self.pay_penalty();
        self.writeback_unit(self.flush_unit(addr));
    }

    /// The flush unit containing `addr`: the line base under line
    /// granularity, the word index under word granularity.
    #[inline]
    fn flush_unit(&self, addr: PAddr) -> u64 {
        match self.granularity {
            FlushGranularity::Word => addr.index(),
            FlushGranularity::Line => addr.index() / WORDS_PER_LINE * WORDS_PER_LINE,
        }
    }

    #[inline]
    fn pay_penalty(&self) {
        let penalty = self.flush_penalty.load(Relaxed);
        for _ in 0..penalty {
            std::hint::spin_loop();
        }
    }

    /// Writes back every word of `unit` (line base or word index).
    fn writeback_unit(&self, unit: u64) {
        match self.granularity {
            FlushGranularity::Word => self.writeback(self.word(PAddr::from_index(unit)), unit),
            FlushGranularity::Line => {
                // Segment boundaries are line-aligned (see `crate::seg`),
                // so the whole line lives in the unit's segment.
                let (slot, off) = self.dir.locate(unit);
                let seg = self.segment(slot);
                for (k, w) in seg[off..off + WORDS_PER_LINE as usize].iter().enumerate() {
                    self.writeback(w, unit + k as u64);
                }
            }
        }
    }

    /// Whether every word of `unit` is clean (volatile == persisted), in
    /// which case a flush of it is a no-op. A store racing with this check
    /// may be missed — the same latitude real hardware has for a value
    /// written after the flush began.
    fn unit_clean(&self, unit: u64) -> bool {
        match self.granularity {
            FlushGranularity::Word => !self.word(PAddr::from_index(unit)).dirty.load(SeqCst),
            FlushGranularity::Line => {
                let (slot, off) = self.dir.locate(unit);
                let seg = self.segment(slot);
                seg[off..off + WORDS_PER_LINE as usize].iter().all(|w| !w.dirty.load(SeqCst))
            }
        }
    }

    /// The write-behind path of [`flush`](Self::flush): absorb duplicate
    /// and clean-unit flushes, defer the rest.
    fn flush_coalesced(&self, addr: PAddr) {
        let unit = self.flush_unit(addr);
        let generation = self.generation.load(SeqCst);
        PENDING.with(|p| {
            let mut map = p.borrow_mut();
            let set = map
                .entry(self.id)
                .and_modify(|s| {
                    // Entries pended before a crash are stale: the crash
                    // already reverted their volatile state, so replaying
                    // the writeback would be wrong (and pointless).
                    if s.generation != generation {
                        s.generation = generation;
                        s.units.clear();
                    }
                })
                .or_insert_with(|| PendingSet { generation, units: VecDeque::new() });
            if set.touch(unit) {
                // Already pending: this flush is absorbed outright (and
                // the unit is now the most recently flushed, so LRU
                // eviction keeps it pended longest).
                if self.instrumented {
                    self.stats.count_flush_coalesced();
                }
                return;
            }
            if self.unit_clean(unit) {
                // Nothing to persist: the unit's last writeback already
                // holds its current value (e.g. a helping thread
                // re-flushing a link the owner persisted).
                if self.instrumented {
                    self.stats.count_flush_coalesced();
                }
                return;
            }
            if set.units.len() >= MAX_PENDING {
                // Evict the OLDEST pending unit to make room rather than
                // draining everything: a 64-unit writeback burst stalls
                // this thread for 64 flush penalties mid-operation, and
                // under contention every other thread spins on its CASes
                // for the duration. Early writeback of a dirty line is
                // always legal — real hardware may evict any cache line at
                // any moment — so pay one penalty and keep going.
                let evicted = set.units.pop_front().expect("set is at capacity");
                self.pay_penalty();
                self.writeback_unit(evicted);
            }
            // Absent (the `touch` above missed), so append unconditionally.
            set.units.push_back(unit);
        });
    }

    /// An explicit store fence.
    ///
    /// In this simulator [`flush`](Self::flush) is synchronous, so the fence
    /// is a counted no-op; it exists so algorithms that issue a standalone
    /// `SFENCE` (e.g. PMwCAS) keep their instruction sequence — and their
    /// crash-point indices — faithful to the original. Under coalescing the
    /// fence is where deferred flushes actually write back.
    #[inline]
    pub fn fence(&self) {
        self.instrument(Stats::count_fence);
        if self.coalesce.load(Relaxed) {
            self.drain();
        }
    }

    /// Enables or disables write-behind flush coalescing (default off).
    ///
    /// With coalescing off, every flush pays its penalty and writes back
    /// synchronously — the exact seed behaviour. Toggling it off drains the
    /// calling thread's pending units; other threads drain at their next
    /// fence point.
    ///
    /// `Relaxed` ordering: like the flush penalty, the knob synchronises
    /// nothing (see the module docs' ordering policy).
    pub fn set_coalescing(&self, on: bool) {
        self.coalesce.store(on, Relaxed);
        if !on {
            self.drain();
        }
    }

    /// Whether write-behind flush coalescing is enabled.
    pub fn coalescing(&self) -> bool {
        self.coalesce.load(Relaxed)
    }

    /// Enables or disables per-address ordering drains (default off).
    ///
    /// Only meaningful while coalescing is on. With the knob off,
    /// [`drain_line`](Self::drain_line) falls back to a whole-set
    /// [`drain`](Self::drain) and [`cas`](Self::cas) keeps draining the
    /// full pending set — the conservative PR 2 baseline. With it on, a
    /// fence point writes back only the lines it orders against and
    /// everything else stays pended across it.
    ///
    /// `Relaxed` ordering: like the other knobs, it synchronises nothing.
    pub fn set_per_address_drains(&self, on: bool) {
        self.per_address.store(on, Relaxed);
    }

    /// Whether per-address ordering drains are enabled.
    pub fn per_address_drains(&self) -> bool {
        self.per_address.load(Relaxed)
    }

    /// Writes back every flush this thread has pending on this pool,
    /// paying the deferred flush penalty per unit.
    ///
    /// Not an instrumented operation: draining neither steps crash
    /// countdowns nor counts in the statistics, so operation-indexed crash
    /// sweeps see identical indices with coalescing on and off.
    pub fn drain(&self) {
        PENDING.with(|p| {
            let mut map = p.borrow_mut();
            let Some(set) = map.get_mut(&self.id) else { return };
            if set.generation == self.generation.load(SeqCst) {
                for &u in &set.units {
                    self.pay_penalty();
                    self.writeback_unit(u);
                }
            }
            // Stale (pre-crash) entries are simply discarded: the crash
            // already reverted volatile state, so there is nothing to
            // write back. Removing the drained entry keeps the per-thread
            // map from accumulating dead pools.
            map.remove(&self.id);
        });
    }

    /// Writes back only the pending flush unit covering `addr`, leaving
    /// every other pending unit deferred. See [`Memory::drain_line`] for
    /// the full semantics; with per-address drains off this is the
    /// whole-set [`drain`](Self::drain), and with coalescing off it is a
    /// no-op (flushes were synchronous).
    ///
    /// Like [`drain`](Self::drain), not an instrumented operation: crash
    /// countdowns and statistics are untouched, so operation-indexed crash
    /// sweeps see identical indices across drain modes.
    pub fn drain_line(&self, addr: PAddr) {
        self.drain_lines(&[addr]);
    }

    /// [`drain_line`](Self::drain_line) over several addresses at once;
    /// addresses sharing a flush unit are written back once.
    pub fn drain_lines(&self, addrs: &[PAddr]) {
        if !self.coalesce.load(Relaxed) {
            return; // flushes were synchronous: nothing is pending
        }
        if !self.per_address.load(Relaxed) {
            // Conservative fallback: order against everything, exactly as
            // the whole-set baseline does at its fence points.
            self.drain();
            return;
        }
        match addrs {
            [] => {}
            [a] => self.drain_units(&[self.flush_unit(*a)]),
            _ => {
                let units: Vec<u64> = addrs.iter().map(|&a| self.flush_unit(a)).collect();
                self.drain_units(&units);
            }
        }
    }

    /// Persists a batch of addresses with one ordering point: every flush
    /// unit covering an address is flushed exactly once, then a single
    /// [`drain_lines`](Self::drain_lines) over the batch orders the set.
    ///
    /// This is the batch analogue of `flush` + `drain_line` and composes
    /// with every flush mode:
    /// * coalescing off — each deduplicated unit pays one synchronous
    ///   writeback (duplicate addresses in the batch are free, unlike a
    ///   per-op flush sequence which pays per call);
    /// * coalescing on, per-address off — units pend, then one whole-set
    ///   [`drain`](Self::drain);
    /// * coalescing on, per-address on — units pend, then only the
    ///   batch's own units are written back, leaving unrelated pending
    ///   flushes coalescible across the fence.
    ///
    /// On return every address in the batch is in the persistence domain;
    /// the flat-combining layer uses this as its one-persist-per-phase
    /// primitive.
    pub fn persist_batch(&self, addrs: &[PAddr]) {
        if addrs.is_empty() {
            return;
        }
        let mut units: Vec<u64> = addrs.iter().map(|&a| self.flush_unit(a)).collect();
        units.sort_unstable();
        units.dedup();
        let reps: Vec<PAddr> = units.into_iter().map(PAddr::from_index).collect();
        for &r in &reps {
            self.flush(r);
        }
        self.drain_lines(&reps);
    }

    /// Writes back the named units if this thread has them pending,
    /// paying the deferred flush penalty per unit actually written back.
    fn drain_units(&self, units: &[u64]) {
        PENDING.with(|p| {
            let mut map = p.borrow_mut();
            let Some(set) = map.get_mut(&self.id) else { return };
            if set.generation != self.generation.load(SeqCst) {
                // Stale (pre-crash) entries: the crash already reverted the
                // volatile state, so discard rather than replay.
                map.remove(&self.id);
                return;
            }
            for &u in units {
                if set.remove(u) {
                    self.pay_penalty();
                    self.writeback_unit(u);
                }
            }
            if set.units.is_empty() {
                map.remove(&self.id);
            }
        });
    }

    fn writeback(&self, w: &Word, index: u64) {
        // Snapshot-then-store: a racing store may or may not be included,
        // which is exactly the latitude real hardware has for a value
        // written after the flush began. Equal values skip the stores —
        // storing an identical persisted value is a no-op, and this keeps
        // whole-line flushes cheap (most words of a line are clean). On a
        // file-backed pool the persisted shadow writes through to the pool
        // file: reaching the persistence domain IS reaching the file.
        let v = w.volatile.load(SeqCst);
        if w.persisted.load(SeqCst) != v {
            w.persisted.store(v, SeqCst);
            if let SegmentBacking::File(fb) = &self.backing {
                fb.write_word(index, v);
            }
        }
        w.dirty.store(false, SeqCst);
    }

    /// Simulates a system-wide crash: volatile state reverts to the
    /// persistence domain.
    ///
    /// First the `adversary` decides, for every dirty word, whether a
    /// spontaneous cache eviction persisted it; then every volatile value is
    /// replaced by its persisted shadow and the pool's
    /// [`generation`](Self::generation) increments. Every materialised
    /// segment is visited, so growth never exempts words from the crash.
    ///
    /// The caller must ensure no thread is concurrently operating on the
    /// pool (the machine has, after all, crashed).
    pub fn crash(&self, adversary: &WritebackAdversary) {
        let mut rng = match adversary {
            WritebackAdversary::Random { seed, prob } => {
                assert!((0.0..=1.0).contains(prob), "probability out of range");
                Some((CrashRng::new(*seed), *prob))
            }
            _ => None,
        };
        for slot in 0..seg::SLOTS {
            let Some(seg) = self.dir.get(slot) else { continue };
            let start = self.dir.layout().start(slot);
            for (i, w) in seg.iter().enumerate() {
                if w.dirty.load(SeqCst) {
                    let persist = match adversary {
                        WritebackAdversary::None => false,
                        WritebackAdversary::All => true,
                        WritebackAdversary::Random { .. } => {
                            let (rng, prob) = rng.as_mut().expect("rng initialized");
                            rng.survives(*prob)
                        }
                    };
                    if persist {
                        let v = w.volatile.load(SeqCst);
                        w.persisted.store(v, SeqCst);
                        if let SegmentBacking::File(fb) = &self.backing {
                            fb.write_word(start + i as u64, v);
                        }
                    }
                    w.dirty.store(false, SeqCst);
                }
                w.volatile.store(w.persisted.load(SeqCst), SeqCst);
            }
        }
        let generation = self.generation.fetch_add(1, SeqCst) + 1;
        if let SegmentBacking::File(fb) = &self.backing {
            fb.write_sb(seg::SB_GENERATION, generation);
        }
    }

    /// Arms the **current thread** to crash (unwind with
    /// [`CrashSignal`](crate::CrashSignal)) after `ops` more pmem
    /// operations. See the crate docs for the harness protocol.
    ///
    /// Only [`PoolMode::Instrumented`] pools step the countdown.
    pub fn arm_crash_after(&self, ops: u64) {
        hook::arm(ops);
    }

    /// Cancels any crash plan armed on the current thread.
    pub fn disarm_crash(&self) {
        hook::disarm();
    }

    /// Operations remaining before the current thread's armed crash fires
    /// (0 when disarmed). Lets a sweep detect that an operation completed
    /// without reaching the requested crash point.
    pub fn crash_countdown(&self) -> u64 {
        hook::remaining()
    }

    /// The pool's operation counters (all zero in [`PoolMode::Raw`]).
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Resets the pool's operation counters.
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Test/inspection helper: the persisted shadow of `addr` (what a crash
    /// right now would preserve), bypassing hooks and stats.
    pub fn persisted_value(&self, addr: PAddr) -> u64 {
        self.word(addr).persisted.load(SeqCst)
    }

    /// Test/inspection helper: the volatile value of `addr`, bypassing hooks
    /// and stats.
    pub fn peek(&self, addr: PAddr) -> u64 {
        self.word(addr).volatile.load(SeqCst)
    }

    /// Test/inspection helper: whether `addr` has been written since its
    /// last flush.
    pub fn is_dirty(&self, addr: PAddr) -> bool {
        self.word(addr).dirty.load(SeqCst)
    }

    /// Whether this pool's persistence domain is a file (created with
    /// [`create`](Self::create) or [`attach`](Self::attach)) rather than
    /// anonymous process memory.
    pub fn is_file_backed(&self) -> bool {
        matches!(self.backing, SegmentBacking::File(_))
    }

    /// Number of application-config words available to
    /// [`set_app_config`](Self::set_app_config).
    pub const APP_CONFIG_WORDS: usize = seg::APP_WORDS;

    /// Records the owning structure's identity in the pool: a `kind` tag
    /// plus up to [`APP_CONFIG_WORDS`](Self::APP_CONFIG_WORDS) parameter
    /// words (thread counts, nodes per thread, …). On a file-backed pool
    /// the words are written through to the superblock, which is what
    /// makes a pool file *self-describing*: `attach` needs nothing but the
    /// path. Anonymous pools keep them in DRAM (useful for symmetry in
    /// tests).
    ///
    /// # Panics
    ///
    /// Panics if `kind` is 0 (the "unset" sentinel) or `params` exceeds
    /// [`APP_CONFIG_WORDS`](Self::APP_CONFIG_WORDS).
    pub fn set_app_config(&self, kind: u64, params: &[u64]) {
        assert!(kind != 0, "app kind 0 is the unset sentinel");
        assert!(params.len() <= seg::APP_WORDS, "too many app-config words");
        self.app[0].store(kind, SeqCst);
        for (i, &p) in params.iter().enumerate() {
            self.app[1 + i].store(p, SeqCst);
        }
        if let SegmentBacking::File(fb) = &self.backing {
            fb.write_sb(seg::SB_APP_KIND, kind);
            for (i, &p) in params.iter().enumerate() {
                fb.write_sb(seg::SB_APP + i as u64, p);
            }
        }
    }

    /// The structure-kind tag recorded by
    /// [`set_app_config`](Self::set_app_config), or 0 if none was.
    pub fn app_kind(&self) -> u64 {
        self.app[0].load(SeqCst)
    }

    /// The application-config parameter words (zeros where unset).
    pub fn app_config(&self) -> [u64; seg::APP_WORDS] {
        let mut out = [0u64; seg::APP_WORDS];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.app[1 + i].load(SeqCst);
        }
        out
    }
}

impl Memory for PmemPool {
    fn create(words: usize, granularity: FlushGranularity) -> Self {
        PmemPool::with_granularity(words, granularity)
    }

    fn load(&self, addr: PAddr) -> u64 {
        PmemPool::load(self, addr)
    }

    fn store(&self, addr: PAddr, value: u64) {
        PmemPool::store(self, addr, value)
    }

    fn cas(&self, addr: PAddr, expected: u64, new: u64) -> Result<u64, u64> {
        PmemPool::cas(self, addr, expected, new)
    }

    fn flush(&self, addr: PAddr) {
        PmemPool::flush(self, addr)
    }

    fn fence(&self) {
        PmemPool::fence(self)
    }

    fn granularity(&self) -> FlushGranularity {
        PmemPool::granularity(self)
    }

    fn capacity(&self) -> usize {
        PmemPool::capacity(self)
    }

    fn reserve(&self, words: usize) {
        PmemPool::reserve(self, words)
    }

    fn peek(&self, addr: PAddr) -> u64 {
        PmemPool::peek(self, addr)
    }

    fn set_flush_penalty(&self, spins: u64) {
        PmemPool::set_flush_penalty(self, spins)
    }

    fn flush_penalty(&self) -> u64 {
        PmemPool::flush_penalty(self)
    }

    fn stats(&self) -> StatsSnapshot {
        PmemPool::stats(self)
    }

    fn reset_stats(&self) {
        PmemPool::reset_stats(self)
    }

    fn set_coalescing(&self, on: bool) {
        PmemPool::set_coalescing(self, on)
    }

    fn coalescing(&self) -> bool {
        PmemPool::coalescing(self)
    }

    fn drain(&self) {
        PmemPool::drain(self)
    }

    fn drain_line(&self, addr: PAddr) {
        PmemPool::drain_line(self, addr)
    }

    fn drain_lines(&self, addrs: &[PAddr]) {
        PmemPool::drain_lines(self, addrs)
    }

    fn persist_batch(&self, addrs: &[PAddr]) {
        PmemPool::persist_batch(self, addrs)
    }

    fn set_per_address_drains(&self, on: bool) {
        PmemPool::set_per_address_drains(self, on)
    }

    fn per_address_drains(&self) -> bool {
        PmemPool::per_address_drains(self)
    }

    fn crash_generation(&self) -> u64 {
        PmemPool::generation(self)
    }

    fn set_placement(&self, policy: PlacementPolicy) {
        PmemPool::set_placement(self, policy)
    }

    fn placement(&self) -> PlacementPolicy {
        PmemPool::placement(self)
    }

    fn plan_regions(&self, first_free: u64, region_words: &[u64]) -> Vec<Range<u64>> {
        PmemPool::plan_regions(self, first_free, region_words)
    }
}

impl fmt::Debug for PmemPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PmemPool")
            .field("capacity", &self.capacity())
            .field("granularity", &self.granularity)
            .field("mode", &self.mode())
            .field("generation", &self.generation.load(SeqCst))
            .field(
                "backing",
                &match self.backing {
                    SegmentBacking::Anonymous => "anonymous",
                    SegmentBacking::File(_) => "file",
                },
            )
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(i: u64) -> PAddr {
        PAddr::from_index(i)
    }

    #[test]
    fn store_is_volatile_until_flushed() {
        let p = PmemPool::with_capacity(32);
        p.store(addr(1), 42);
        assert_eq!(p.load(addr(1)), 42);
        assert_eq!(p.persisted_value(addr(1)), 0);
        assert!(p.is_dirty(addr(1)));
        p.flush(addr(1));
        assert_eq!(p.persisted_value(addr(1)), 42);
        assert!(!p.is_dirty(addr(1)));
    }

    #[test]
    fn crash_discards_unflushed_state() {
        let p = PmemPool::with_capacity(32);
        p.store(addr(1), 1);
        p.flush(addr(1));
        p.store(addr(1), 2); // unflushed overwrite
        p.store(addr(9), 3); // different line, unflushed
        p.crash(&WritebackAdversary::None);
        assert_eq!(p.load(addr(1)), 1);
        assert_eq!(p.load(addr(9)), 0);
        assert_eq!(p.generation(), 1);
    }

    #[test]
    fn adversary_all_persists_everything() {
        let p = PmemPool::with_capacity(32);
        p.store(addr(1), 7);
        p.store(addr(20), 8);
        p.crash(&WritebackAdversary::All);
        assert_eq!(p.load(addr(1)), 7);
        assert_eq!(p.load(addr(20)), 8);
    }

    #[test]
    fn adversary_random_is_reproducible() {
        let outcome = |seed| {
            let p = PmemPool::with_capacity(256);
            for i in 1..256 {
                p.store(addr(i), i);
            }
            p.crash(&WritebackAdversary::Random { seed, prob: 0.5 });
            (1..256).map(|i| p.load(addr(i))).collect::<Vec<_>>()
        };
        assert_eq!(outcome(12), outcome(12));
        assert_ne!(outcome(12), outcome(13), "distinct seeds should differ");
    }

    #[test]
    fn cas_success_and_failure() {
        let p = PmemPool::with_capacity(8);
        assert_eq!(p.cas(addr(1), 0, 5), Ok(0));
        assert_eq!(p.cas(addr(1), 0, 6), Err(5));
        assert_eq!(p.load(addr(1)), 5);
        let s = p.stats();
        assert_eq!(s.cas_ok, 1);
        assert_eq!(s.cas_fail, 1);
    }

    #[test]
    fn line_granularity_persists_neighbours() {
        let p = PmemPool::with_granularity(32, FlushGranularity::Line);
        p.store(addr(8), 1); // line 1 spans words 8..16
        p.store(addr(15), 2);
        p.flush(addr(8));
        p.crash(&WritebackAdversary::None);
        assert_eq!(p.load(addr(8)), 1);
        assert_eq!(p.load(addr(15)), 2, "same line flushed together");
    }

    #[test]
    fn word_granularity_persists_only_the_word() {
        let p = PmemPool::with_granularity(32, FlushGranularity::Word);
        p.store(addr(8), 1);
        p.store(addr(9), 2);
        p.flush(addr(8));
        p.crash(&WritebackAdversary::None);
        assert_eq!(p.load(addr(8)), 1);
        assert_eq!(p.load(addr(9)), 0, "neighbour not flushed");
    }

    #[test]
    fn armed_crash_unwinds_with_signal() {
        let p = PmemPool::with_capacity(8);
        p.arm_crash_after(2);
        p.store(addr(1), 1);
        assert_eq!(p.crash_countdown(), 1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.store(addr(2), 2);
        }));
        assert!(r.unwrap_err().downcast_ref::<crate::CrashSignal>().is_some());
        // The interrupted store never executed.
        assert_eq!(p.peek(addr(2)), 0);
        p.disarm_crash();
    }

    #[test]
    fn stats_count_all_primitives() {
        let p = PmemPool::with_capacity(8);
        p.reset_stats();
        p.load(addr(1));
        p.store(addr(1), 1);
        let _ = p.cas(addr(1), 1, 2);
        p.flush(addr(1));
        p.fence();
        let s = p.stats();
        assert_eq!((s.loads, s.stores, s.cas_ok, s.flushes, s.fences), (1, 1, 1, 1, 1));
    }

    #[test]
    fn raw_mode_counts_nothing_and_never_crashes() {
        let p = PmemPool::with_mode(32, FlushGranularity::Line, PoolMode::Raw);
        assert_eq!(p.mode(), PoolMode::Raw);
        p.arm_crash_after(1); // must never fire: raw pools don't step hooks
        p.store(addr(1), 7);
        p.load(addr(1));
        let _ = p.cas(addr(1), 7, 8);
        p.flush(addr(1));
        p.fence();
        p.disarm_crash();
        assert_eq!(p.stats(), StatsSnapshot::default());
        // Persistence semantics are unchanged by the mode.
        p.crash(&WritebackAdversary::None);
        assert_eq!(p.load(addr(1)), 8, "flushed value survives in raw mode");
    }

    #[test]
    fn flush_last_partial_line_in_bounds() {
        // Capacity not a multiple of the line size: flushing the last line
        // must not index out of bounds (the layout rounds up to a line).
        let p = PmemPool::with_granularity(10, FlushGranularity::Line);
        p.store(addr(9), 3);
        p.flush(addr(9));
        p.crash(&WritebackAdversary::None);
        assert_eq!(p.load(addr(9)), 3);
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn zero_capacity_rejected() {
        let _ = PmemPool::with_capacity(0);
    }

    #[test]
    fn grows_past_initial_capacity_without_panicking() {
        let p = PmemPool::with_capacity(16);
        let initial = p.capacity();
        assert!(initial >= 16);
        // Address far past the initial capacity: materialises on demand.
        let far = addr(10 * initial as u64);
        p.store(far, 77);
        assert_eq!(p.load(far), 77);
        assert!(p.capacity() > 10 * initial, "capacity grew to cover the access");
        // Untouched words in between read as zero without materialising
        // their own values.
        assert_eq!(p.load(addr(initial as u64 + 1)), 0);
    }

    #[test]
    fn crash_semantics_unchanged_under_growth() {
        let p = PmemPool::with_capacity(16);
        let far = addr(1000); // well past the initial 16 words
        p.store(far, 5);
        p.flush(far);
        p.store(far, 6); // unflushed overwrite in a grown segment
        p.store(addr(1), 9); // unflushed in the initial segment
        p.crash(&WritebackAdversary::None);
        assert_eq!(p.load(far), 5, "grown segment participates in the crash");
        assert_eq!(p.load(addr(1)), 0);
    }

    #[test]
    fn reserve_materialises_capacity_up_front() {
        let p = PmemPool::with_capacity(8);
        let before = p.capacity();
        p.reserve(before * 6);
        assert!(p.capacity() >= before * 6);
        p.reserve(1); // idempotent, never shrinks
        assert!(p.capacity() >= before * 6);
    }

    #[test]
    fn flush_penalty_round_trip() {
        let p = PmemPool::with_capacity(8);
        assert_eq!(p.flush_penalty(), 0);
        p.set_flush_penalty(10);
        assert_eq!(p.flush_penalty(), 10);
        p.store(addr(1), 1);
        p.flush(addr(1)); // still correct, just slower
        assert_eq!(p.persisted_value(addr(1)), 1);
    }

    #[test]
    fn debug_is_nonempty() {
        let p = PmemPool::with_capacity(8);
        assert!(format!("{p:?}").contains("PmemPool"));
    }

    #[test]
    fn coalescing_defers_writeback_until_fence() {
        let p = PmemPool::with_granularity(32, FlushGranularity::Word);
        p.set_coalescing(true);
        assert!(p.coalescing());
        p.store(addr(1), 7);
        p.flush(addr(1)); // pended, not written back yet
        assert_eq!(p.persisted_value(addr(1)), 0, "flush is write-behind");
        p.fence();
        assert_eq!(p.persisted_value(addr(1)), 7, "fence drains pending flushes");
    }

    #[test]
    fn coalescing_dedups_repeat_flushes_and_counts_them() {
        let p = PmemPool::with_granularity(32, FlushGranularity::Word);
        p.set_coalescing(true);
        p.reset_stats();
        p.store(addr(1), 7);
        p.flush(addr(1));
        p.flush(addr(1)); // duplicate: absorbed by the pending set
        let s = p.stats();
        assert_eq!(s.flushes, 2, "every flush call is counted, coalesced or not");
        assert_eq!(s.flushes_coalesced, 1, "the duplicate was absorbed");
        assert_eq!(s.stores, 1);
        p.fence();
        assert_eq!(p.persisted_value(addr(1)), 7);
    }

    #[test]
    fn coalescing_line_granularity_dedups_neighbours() {
        let p = PmemPool::with_granularity(32, FlushGranularity::Line);
        p.set_coalescing(true);
        p.reset_stats();
        p.store(addr(8), 1);
        p.store(addr(9), 2);
        p.flush(addr(8));
        p.flush(addr(9)); // same line: coalesced
        let s = p.stats();
        assert_eq!(s.flushes, 2, "every flush call is counted");
        assert_eq!(s.flushes_coalesced, 1, "the same-line repeat was absorbed");
        p.fence();
        assert_eq!(p.persisted_value(addr(8)), 1);
        assert_eq!(p.persisted_value(addr(9)), 2);
    }

    #[test]
    fn coalescing_suppresses_clean_unit_flushes() {
        let p = PmemPool::with_granularity(32, FlushGranularity::Word);
        p.set_coalescing(true);
        p.store(addr(1), 7);
        p.flush(addr(1));
        p.fence(); // word now clean
        p.reset_stats();
        p.flush(addr(1)); // nothing dirty: absorbed without pending
        let s = p.stats();
        assert_eq!((s.flushes, s.flushes_coalesced), (1, 1));
        p.fence();
        assert_eq!(p.persisted_value(addr(1)), 7);
    }

    #[test]
    fn cas_drains_pending_flushes_but_store_does_not() {
        let p = PmemPool::with_granularity(32, FlushGranularity::Word);
        p.set_coalescing(true);
        p.store(addr(1), 7);
        p.flush(addr(1));
        p.store(addr(2), 1); // a plain store is not a fence point
        assert_eq!(p.persisted_value(addr(1)), 0);
        let _ = p.cas(addr(2), 1, 2); // a locked instruction is, win or lose
        assert_eq!(p.persisted_value(addr(1)), 7);
        p.store(addr(3), 3);
        p.flush(addr(3));
        let _ = p.cas(addr(2), 9, 9); // failing CAS
        assert_eq!(p.persisted_value(addr(3)), 3);
    }

    #[test]
    fn crash_drops_pending_flushes() {
        let p = PmemPool::with_granularity(32, FlushGranularity::Word);
        p.set_coalescing(true);
        p.store(addr(1), 7);
        p.flush(addr(1)); // pended, never drained
        p.crash(&WritebackAdversary::None);
        assert_eq!(p.load(addr(1)), 0, "a pending flush is lost at a crash");
        // The stale pending entry must not leak into the new generation.
        p.store(addr(2), 9);
        p.drain();
        assert_eq!(p.persisted_value(addr(1)), 0, "stale pending entry discarded");
        assert_eq!(p.persisted_value(addr(2)), 0, "addr 2 was never flushed");
    }

    #[test]
    fn disabling_coalescing_drains_the_calling_thread() {
        let p = PmemPool::with_granularity(32, FlushGranularity::Word);
        p.set_coalescing(true);
        p.store(addr(1), 7);
        p.flush(addr(1));
        p.set_coalescing(false);
        assert!(!p.coalescing());
        assert_eq!(p.persisted_value(addr(1)), 7, "turn-off drains pending flushes");
        // Back in eager mode, flushes write back immediately again.
        p.store(addr(2), 8);
        p.flush(addr(2));
        assert_eq!(p.persisted_value(addr(2)), 8);
    }

    #[test]
    fn pending_set_overflow_evicts_incrementally() {
        let n = MAX_PENDING as u64;
        let p = PmemPool::with_granularity(1024, FlushGranularity::Word);
        p.set_coalescing(true);
        for i in 1..=n + 1 {
            p.store(addr(i), i);
            p.flush(addr(i));
        }
        // The (MAX_PENDING+1)th distinct unit overflowed the bounded
        // pending set, evicting exactly one unit (the least recently
        // flushed) instead of bursting the whole set back; everything else
        // stays pending.
        assert_eq!(p.persisted_value(addr(1)), 1, "one unit evicted on overflow");
        assert_eq!(p.persisted_value(addr(2)), 0, "the rest stay pending");
        assert_eq!(p.persisted_value(addr(n)), 0);
        assert_eq!(p.persisted_value(addr(n + 1)), 0);
        p.drain();
        assert_eq!(p.persisted_value(addr(2)), 2);
        assert_eq!(p.persisted_value(addr(n + 1)), n + 1);
    }

    #[test]
    fn duplicate_flush_refreshes_eviction_recency() {
        let n = MAX_PENDING as u64;
        let p = PmemPool::with_granularity(1024, FlushGranularity::Word);
        p.set_coalescing(true);
        for i in 1..=n {
            p.store(addr(i), i);
            p.flush(addr(i));
        }
        // Re-flushing the oldest unit is absorbed AND marks it most
        // recently used, so the next overflow evicts unit 2, not unit 1.
        p.flush(addr(1));
        p.store(addr(n + 1), n + 1);
        p.flush(addr(n + 1));
        assert_eq!(p.persisted_value(addr(1)), 0, "touched unit stays pending");
        assert_eq!(p.persisted_value(addr(2)), 2, "LRU unit evicted instead");
    }

    #[test]
    fn pools_do_not_share_pending_sets() {
        let a = PmemPool::with_granularity(32, FlushGranularity::Word);
        let b = PmemPool::with_granularity(32, FlushGranularity::Word);
        a.set_coalescing(true);
        b.set_coalescing(true);
        a.store(addr(1), 1);
        a.flush(addr(1));
        b.store(addr(1), 2);
        b.flush(addr(1));
        a.drain();
        assert_eq!(a.persisted_value(addr(1)), 1);
        assert_eq!(b.persisted_value(addr(1)), 0, "draining pool a leaves pool b pending");
        b.drain();
        assert_eq!(b.persisted_value(addr(1)), 2);
    }

    #[test]
    fn per_address_cas_drains_only_its_own_line() {
        let p = PmemPool::with_granularity(64, FlushGranularity::Word);
        p.set_coalescing(true);
        p.set_per_address_drains(true);
        assert!(p.per_address_drains());
        p.store(addr(1), 7);
        p.flush(addr(1)); // pended on an unrelated line
        p.store(addr(2), 1);
        p.flush(addr(2));
        let _ = p.cas(addr(2), 1, 3); // fence point only for its own unit
        assert_eq!(p.persisted_value(addr(2)), 1, "the CAS wrote back its own unit");
        assert_eq!(p.persisted_value(addr(1)), 0, "the unrelated unit stayed pended");
        p.drain();
        assert_eq!(p.persisted_value(addr(1)), 7);
    }

    #[test]
    fn per_address_cas_on_clean_word_writes_back_nothing() {
        let p = PmemPool::with_granularity(64, FlushGranularity::Word);
        p.set_coalescing(true);
        p.set_per_address_drains(true);
        p.store(addr(1), 7);
        p.flush(addr(1));
        // CAS on a word that was never flushed: no pending unit to drain.
        let _ = p.cas(addr(9), 0, 1);
        assert_eq!(p.persisted_value(addr(1)), 0, "clean control word forced no writeback");
        p.fence(); // SFENCE still orders everything
        assert_eq!(p.persisted_value(addr(1)), 7);
    }

    #[test]
    fn drain_line_writes_back_only_the_named_line() {
        let p = PmemPool::with_granularity(64, FlushGranularity::Line);
        p.set_coalescing(true);
        p.set_per_address_drains(true);
        p.store(addr(8), 1); // line 1
        p.flush(addr(8));
        p.store(addr(16), 2); // line 2
        p.flush(addr(16));
        p.drain_line(addr(9)); // any address within line 1
        assert_eq!(p.persisted_value(addr(8)), 1);
        assert_eq!(p.persisted_value(addr(16)), 0, "other line stayed pended");
        p.drain_lines(&[addr(16), addr(17)]); // same unit named twice
        assert_eq!(p.persisted_value(addr(16)), 2);
    }

    #[test]
    fn drain_line_without_per_address_falls_back_to_whole_set() {
        let p = PmemPool::with_granularity(64, FlushGranularity::Word);
        p.set_coalescing(true);
        p.store(addr(1), 1);
        p.flush(addr(1));
        p.store(addr(2), 2);
        p.flush(addr(2));
        p.drain_line(addr(1)); // knob off: conservative whole-set drain
        assert_eq!(p.persisted_value(addr(1)), 1);
        assert_eq!(p.persisted_value(addr(2)), 2);
    }

    #[test]
    fn drain_line_is_a_noop_without_coalescing() {
        let p = PmemPool::with_granularity(64, FlushGranularity::Word);
        p.set_per_address_drains(true);
        p.store(addr(1), 1);
        p.drain_line(addr(1)); // nothing pending, nothing flushed
        assert_eq!(p.persisted_value(addr(1)), 0);
    }

    #[test]
    fn crash_drops_pending_flushes_under_per_address_drains() {
        let p = PmemPool::with_granularity(64, FlushGranularity::Word);
        p.set_coalescing(true);
        p.set_per_address_drains(true);
        p.store(addr(1), 7);
        p.flush(addr(1)); // pended, never drained
        p.store(addr(2), 9);
        p.flush(addr(2));
        p.drain_line(addr(2)); // only this line was ordered
        p.crash(&WritebackAdversary::None);
        assert_eq!(p.load(addr(1)), 0, "an un-drained line is lost at a crash");
        assert_eq!(p.load(addr(2)), 9, "a drained line survives");
        // Stale entries must not replay into the new generation.
        p.store(addr(3), 3);
        p.flush(addr(3));
        p.drain_line(addr(1));
        assert_eq!(p.persisted_value(addr(1)), 0, "stale pending entry discarded");
    }

    /// A unique temp path for file-backing tests (no external tempdir
    /// crate in the offline workspace).
    fn temp_pool_path(tag: &str) -> std::path::PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Relaxed);
        std::env::temp_dir().join(format!("dss-pool-test-{}-{tag}-{n}", std::process::id()))
    }

    struct TempFile(std::path::PathBuf);
    impl Drop for TempFile {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn create_attach_round_trip_preserves_flushed_state() {
        let t = TempFile(temp_pool_path("roundtrip"));
        {
            let p = PmemPool::create(&t.0, 64, FlushGranularity::Line).unwrap();
            assert!(p.is_file_backed());
            p.store(addr(1), 41);
            p.flush(addr(1));
            p.store(addr(2), 99); // never flushed: must NOT survive
            p.set_app_config(7, &[3, 4]);
        } // pool dropped — simulates the process dying
        let p = PmemPool::attach(&t.0).unwrap();
        assert!(p.is_file_backed());
        assert_eq!(p.granularity(), FlushGranularity::Line);
        assert_eq!(p.load(addr(1)), 41, "flushed state survives the process");
        assert_eq!(p.load(addr(2)), 0, "unflushed state dies with the process");
        assert!(!p.is_dirty(addr(1)));
        assert_eq!(p.generation(), 1, "attach is a crash boundary");
        assert_eq!(p.app_kind(), 7);
        assert_eq!(p.app_config()[..2], [3, 4]);
    }

    #[test]
    fn attach_loses_pended_coalesced_flushes() {
        let t = TempFile(temp_pool_path("pended"));
        {
            let p = PmemPool::create(&t.0, 64, FlushGranularity::Word).unwrap();
            p.set_coalescing(true);
            p.store(addr(1), 7);
            p.flush(addr(1)); // pended, never fenced
            p.store(addr(2), 8);
            p.flush(addr(2));
            p.fence(); // both written back at the fence
            p.store(addr(3), 9);
            p.flush(addr(3)); // pended again, no fence before "death"
        }
        let p = PmemPool::attach(&t.0).unwrap();
        assert_eq!(p.load(addr(1)), 7);
        assert_eq!(p.load(addr(2)), 8);
        assert_eq!(p.load(addr(3)), 0, "un-fenced CLWB dies with the process");
    }

    #[test]
    fn attach_rejects_garbage_and_missing_files() {
        let t = TempFile(temp_pool_path("garbage"));
        std::fs::write(&t.0, b"definitely not a pool file, far too short").unwrap();
        match PmemPool::attach(&t.0) {
            Err(AttachError::Io(_)) | Err(AttachError::BadMagic { .. }) => {}
            other => panic!("expected Io/BadMagic, got {other:?}"),
        }
        let missing = temp_pool_path("missing");
        assert!(matches!(PmemPool::attach(&missing), Err(AttachError::Io(_))));
    }

    #[test]
    fn attach_rejects_bad_version_and_corrupt_superblock() {
        use std::os::unix::fs::FileExt;
        let t = TempFile(temp_pool_path("version"));
        drop(PmemPool::create(&t.0, 64, FlushGranularity::Line).unwrap());
        let f = std::fs::OpenOptions::new().write(true).open(&t.0).unwrap();
        f.write_all_at(&99u64.to_le_bytes(), 8 * seg::SB_VERSION).unwrap();
        assert!(matches!(PmemPool::attach(&t.0), Err(AttachError::BadVersion { found: 99 })));
        f.write_all_at(&seg::LAYOUT_VERSION.to_le_bytes(), 8 * seg::SB_VERSION).unwrap();
        f.write_all_at(&3u64.to_le_bytes(), 8 * seg::SB_GRANULARITY).unwrap();
        let e = PmemPool::attach(&t.0).unwrap_err();
        assert!(matches!(e, AttachError::Corrupt(_)), "bad granularity code: {e}");
    }

    #[test]
    fn file_backed_growth_is_crash_atomic_across_attach() {
        let t = TempFile(temp_pool_path("growth"));
        let far = addr(4096);
        {
            let p = PmemPool::create(&t.0, 16, FlushGranularity::Line).unwrap();
            p.store(far, 55); // materialises (and commits) a far segment
            p.flush(far);
        }
        let p = PmemPool::attach(&t.0).unwrap();
        assert_eq!(p.load(far), 55, "grown segment survives via the watermark");
        assert!(p.capacity() > 4096);
    }

    #[test]
    fn in_process_crash_works_on_file_backed_pools() {
        let t = TempFile(temp_pool_path("crash"));
        let p = PmemPool::create(&t.0, 64, FlushGranularity::Line).unwrap();
        p.store(addr(1), 1);
        p.flush(addr(1));
        p.store(addr(1), 2); // unflushed overwrite
        p.crash(&WritebackAdversary::None);
        assert_eq!(p.load(addr(1)), 1);
        assert_eq!(p.generation(), 1);
        drop(p);
        // The crash's generation bump is durable in the superblock.
        let p = PmemPool::attach(&t.0).unwrap();
        assert_eq!(p.generation(), 2, "in-process crash + attach boundary");
        assert_eq!(p.load(addr(1)), 1);
    }

    #[test]
    fn anonymous_pools_report_no_file_backing() {
        let p = PmemPool::with_capacity(8);
        assert!(!p.is_file_backed());
        // App config still round-trips in DRAM for API symmetry.
        p.set_app_config(3, &[1]);
        assert_eq!(p.app_kind(), 3);
        assert_eq!(p.app_config()[0], 1);
    }

    #[test]
    fn concurrent_cas_is_atomic() {
        use std::sync::Arc;
        let p = Arc::new(PmemPool::with_capacity(8));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let p = Arc::clone(&p);
                std::thread::spawn(move || {
                    let mut wins = 0u64;
                    for _ in 0..1000 {
                        loop {
                            let cur = p.load(addr(1));
                            if p.cas(addr(1), cur, cur + 1).is_ok() {
                                wins += 1;
                                break;
                            }
                        }
                    }
                    wins
                })
            })
            .collect();
        let total: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
        assert_eq!(total, 4000);
        assert_eq!(p.load(addr(1)), 4000);
    }

    #[test]
    fn concurrent_growth_is_consistent() {
        use std::sync::Arc;
        let p = Arc::new(PmemPool::with_capacity(8));
        // All threads race to touch the same far segment: exactly one
        // materialisation wins and every increment lands.
        let far = 4096u64;
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let p = Arc::clone(&p);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let a = addr(far + (i % 64));
                        loop {
                            let cur = p.load(a);
                            if p.cas(a, cur, cur + 1).is_ok() {
                                break;
                            }
                        }
                        let _ = t;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let total: u64 = (0..64).map(|i| p.load(addr(far + i))).sum();
        assert_eq!(total, 2000);
    }
}
