//! Fixed-size node allocation with per-thread pools.
//!
//! The paper's evaluation pre-allocates "a fixed size pool of queue nodes at
//! initialization" per thread. [`NodePool`] manages a contiguous region of a
//! [`PmemPool`](crate::PmemPool) as an array of equal-sized nodes, with one
//! free list per thread (work-stealing when a thread's own list runs dry).
//!
//! The allocator's metadata (the free lists) is deliberately **volatile** —
//! it lives in ordinary Rust memory and is lost at a crash, just like a real
//! in-DRAM allocator. After a crash, recovery code determines the set of
//! *live* nodes (reachable from the data structure or referenced by
//! detectability state) and calls [`NodePool::rebuild`], which is how the
//! paper's recovery procedure is "extended straightforwardly to prevent
//! memory leaks" (§4).

use crate::sync::Mutex;

use crate::{Ebr, PAddr};

/// A region of persistent memory carved into fixed-size nodes, with
/// per-thread free lists.
///
/// # Examples
///
/// ```
/// use dss_pmem::{NodePool, PAddr};
///
/// // 2 threads, 4 nodes each, 3 words per node, region starting at word 10.
/// let pool = NodePool::new(PAddr::from_index(10), 3, 4, 2);
/// assert_eq!(pool.region_words(), 2 * 4 * 3);
/// let n = pool.alloc(0).expect("fresh pool has free nodes");
/// assert!(pool.contains(n));
/// pool.free(0, n);
/// ```
#[derive(Debug)]
pub struct NodePool {
    base: u64,
    node_words: u64,
    total_nodes: u64,
    free: Box<[Mutex<Vec<PAddr>>]>,
}

impl NodePool {
    /// Creates a pool of `nodes_per_thread * nthreads` nodes of
    /// `node_words` words each, starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `node_words`, `nodes_per_thread`, or `nthreads` is zero, or
    /// if `base` is NULL.
    pub fn new(base: PAddr, node_words: u64, nodes_per_thread: u64, nthreads: usize) -> Self {
        assert!(node_words > 0, "nodes must have at least one word");
        assert!(nodes_per_thread > 0, "each thread needs at least one node");
        assert!(nthreads > 0, "need at least one thread");
        assert!(!base.is_null(), "node region cannot start at NULL");
        let total_nodes = nodes_per_thread * nthreads as u64;
        let free: Box<[Mutex<Vec<PAddr>>]> = (0..nthreads)
            .map(|t| {
                let t = t as u64;
                Mutex::new(
                    (t * nodes_per_thread..(t + 1) * nodes_per_thread)
                        .map(|i| PAddr::from_index(base.index() + i * node_words))
                        .collect(),
                )
            })
            .collect();
        NodePool { base: base.index(), node_words, total_nodes, free }
    }

    /// Total words spanned by the node region (for pool sizing).
    pub fn region_words(&self) -> u64 {
        self.total_nodes * self.node_words
    }

    /// First word of the region.
    pub fn base(&self) -> PAddr {
        PAddr::from_index(self.base)
    }

    /// Words per node.
    pub fn node_words(&self) -> u64 {
        self.node_words
    }

    /// Total number of nodes (free and allocated).
    pub fn total_nodes(&self) -> u64 {
        self.total_nodes
    }

    /// Returns `true` if `addr` is the base address of a node in this
    /// region.
    pub fn contains(&self, addr: PAddr) -> bool {
        let i = addr.index();
        i >= self.base
            && i < self.base + self.region_words()
            && (i - self.base).is_multiple_of(self.node_words)
    }

    /// Allocates a node for thread `tid`, stealing from other threads'
    /// free lists if its own is empty. Returns `None` when the region is
    /// exhausted.
    ///
    /// The node's contents are whatever its previous use left behind;
    /// callers initialize (and flush) fields themselves, as the paper's
    /// `new Node(val)` does.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn alloc(&self, tid: usize) -> Option<PAddr> {
        if let Some(a) = self.free[tid].lock().pop() {
            return Some(a);
        }
        for (t, list) in self.free.iter().enumerate() {
            if t != tid {
                if let Some(a) = list.lock().pop() {
                    return Some(a);
                }
            }
        }
        None
    }

    /// Allocates a node for thread `tid`, retrying through epoch-based
    /// reclamation when the free lists run dry: collect every node `ebr`
    /// has quiesced, return it to the free lists, and try again, yielding
    /// between rounds (another thread may hold the missing nodes pinned
    /// until it passes through an unpinned state). Returns `None` after the
    /// retry budget is exhausted — the region is genuinely over-committed.
    ///
    /// This is the one retry-through-EBR dance every structure in the
    /// workspace shares; callers map `None` onto their own full-pool error.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn alloc_with_reclaim(&self, tid: usize, ebr: &Ebr) -> Option<PAddr> {
        self.alloc_with_reclaim_guarded(tid, ebr, Vec::new)
    }

    /// [`alloc_with_reclaim`](Self::alloc_with_reclaim) with a
    /// detectability guard: `protected` returns the nodes that must not be
    /// recycled yet even though the epochs have quiesced them — typically
    /// the nodes a structure's per-thread detectability words still
    /// reference, which `resolve` may dereference arbitrarily long after
    /// the operation completed (the crash-free counterpart of the liveness
    /// rule recovery's allocator rebuild applies). Protected nodes are
    /// re-retired and become reclaimable once no longer protected.
    ///
    /// `protected` is consulted once per reclamation round, *after* the
    /// epoch check has quiesced the candidates: any thread that could
    /// still publish a reference to a candidate was pinned when the
    /// candidate was retired, so its announcement store precedes the epoch
    /// advance that released the candidate, and a post-collect read
    /// observes it.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn alloc_with_reclaim_guarded<F: FnMut() -> Vec<PAddr>>(
        &self,
        tid: usize,
        ebr: &Ebr,
        mut protected: F,
    ) -> Option<PAddr> {
        if let Some(a) = self.alloc(tid) {
            return Some(a);
        }
        for _ in 0..64 {
            let collected = ebr.collect_all(tid);
            if !collected.is_empty() {
                let guard: std::collections::HashSet<PAddr> = protected().into_iter().collect();
                for a in collected {
                    if guard.contains(&a) {
                        ebr.retire(tid, a);
                    } else {
                        self.free(tid, a);
                    }
                }
            }
            if let Some(a) = self.alloc(tid) {
                return Some(a);
            }
            std::thread::yield_now();
        }
        None
    }

    /// Returns `addr` to thread `tid`'s free list.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a node base address of this region (double
    /// frees are *not* detected; use the type system or EBR discipline for
    /// that).
    pub fn free(&self, tid: usize, addr: PAddr) {
        assert!(self.contains(addr), "freeing {addr:?} which is not a node of this region");
        self.free[tid].lock().push(addr);
    }

    /// Number of currently free nodes (approximate under concurrency).
    pub fn free_count(&self) -> u64 {
        self.free.iter().map(|l| l.lock().len() as u64).sum()
    }

    /// Rebuilds the free lists after a crash: every node *not* in `live`
    /// becomes free, distributed round-robin over the per-thread lists.
    ///
    /// `live` entries that are not node base addresses of this region are
    /// ignored (detectability words often hold tagged pointers to nodes
    /// plus sentinel values; callers can pass them through unfiltered).
    pub fn rebuild<I: IntoIterator<Item = PAddr>>(&self, live: I) {
        let live: std::collections::HashSet<PAddr> =
            live.into_iter().filter(|a| self.contains(*a)).collect();
        let nthreads = self.free.len();
        let mut lists: Vec<Vec<PAddr>> = vec![Vec::new(); nthreads];
        for i in 0..self.total_nodes {
            let a = PAddr::from_index(self.base + i * self.node_words);
            if !live.contains(&a) {
                lists[(i as usize) % nthreads].push(a);
            }
        }
        for (slot, list) in self.free.iter().zip(lists) {
            *slot.lock() = list;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> NodePool {
        NodePool::new(PAddr::from_index(8), 3, 2, 2)
    }

    #[test]
    fn geometry() {
        let p = pool();
        assert_eq!(p.region_words(), 12);
        assert_eq!(p.total_nodes(), 4);
        assert_eq!(p.node_words(), 3);
        assert_eq!(p.base(), PAddr::from_index(8));
    }

    #[test]
    fn contains_only_node_bases() {
        let p = pool();
        assert!(p.contains(PAddr::from_index(8)));
        assert!(p.contains(PAddr::from_index(11)));
        assert!(!p.contains(PAddr::from_index(9)), "mid-node address");
        assert!(!p.contains(PAddr::from_index(20)), "past the region");
        assert!(!p.contains(PAddr::from_index(5)), "before the region");
    }

    #[test]
    fn alloc_free_round_trip() {
        let p = pool();
        let a = p.alloc(0).unwrap();
        let b = p.alloc(0).unwrap();
        assert_ne!(a, b);
        p.free(0, a);
        p.free(0, b);
        assert_eq!(p.free_count(), 4);
    }

    #[test]
    fn alloc_steals_when_own_list_empty() {
        let p = pool();
        // Drain thread 0's two nodes, then two more must come from thread 1.
        let mut got = Vec::new();
        for _ in 0..4 {
            got.push(p.alloc(0).expect("steals from thread 1"));
        }
        assert_eq!(p.alloc(0), None, "region exhausted");
        assert_eq!(p.alloc(1), None);
        got.sort();
        got.dedup();
        assert_eq!(got.len(), 4, "no node handed out twice");
    }

    #[test]
    fn rebuild_frees_exactly_the_dead_nodes() {
        let p = pool();
        let live = PAddr::from_index(11);
        p.rebuild([live, PAddr::from_index(9) /* ignored: not a base */]);
        assert_eq!(p.free_count(), 3);
        // The live node is never handed out again.
        let mut handed = Vec::new();
        while let Some(a) = p.alloc(0) {
            handed.push(a);
        }
        assert!(!handed.contains(&live));
        assert_eq!(handed.len(), 3);
    }

    #[test]
    #[should_panic(expected = "not a node")]
    fn free_rejects_foreign_address() {
        pool().free(0, PAddr::from_index(100));
    }
}
