//! Bounded exponential backoff for contended CAS retry loops.
//!
//! Under contention a failed CAS means another thread just made progress;
//! retrying immediately mostly re-collides on the same cache line. Spinning
//! for an exponentially growing, bounded number of iterations before the
//! retry lets the winner's store propagate and spreads the losers out —
//! the classic contention-management layer the paper's evaluation omits
//! but any "as fast as the hardware allows" build needs.
//!
//! [`Backoff`] is constructed per operation (not per structure): the delay
//! resets at every operation boundary so an uncontended phase never pays
//! for an earlier contended one. Construction takes an `enabled` flag so
//! structures can gate backoff behind a runtime knob without branching at
//! every call site; a disabled `Backoff` is free.
//!
//! The spin-exponent *cap* is no longer a global constant: each structure
//! owns a [`BackoffTuner`] that adapts the cap to the CAS-failure rate it
//! actually observes. A window of operations with many retries per op
//! raises the cap (losers wait longer, collisions thin out); a quiet
//! window lowers it back (uncontended phases stop paying for contended
//! ones). Waits past [`YIELD_SHIFT`] yield the CPU instead of spinning —
//! at that point the thread is better off letting the winner run than
//! burning its own timeslice.
//!
//! Spinning, yielding, and tuner bookkeeping execute no pool primitives,
//! so crash sweeps that index operations see identical indices with
//! backoff on and off.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::Relaxed};

/// Default spin exponent cap: waits bounded by `2^6` (= 64) iterations of
/// [`std::hint::spin_loop`]. Small on purpose — the loops this protects
/// are a handful of instructions long, and an over-long bound turns
/// backoff into added latency on lightly contended runs. This is the
/// fixed cap [`Backoff::new`] uses when no tuner is attached.
const DEFAULT_CAP: u32 = 6;

/// The tuned cap never shrinks below this: keeping a little randomising
/// delay is cheaper than re-learning it at the next contention burst.
const MIN_CAP: u32 = 2;

/// The tuned cap never grows past this (`2^10` = 1024 iterations — past
/// that, waits go through [`YIELD_SHIFT`] yields anyway).
const MAX_CAP: u32 = 10;

/// Shift at which a wait yields the CPU ([`std::thread::yield_now`])
/// instead of spinning: a loser that has already backed off 256 iterations
/// is better off ceding its timeslice than burning it.
const YIELD_SHIFT: u32 = 8;

/// Operations per tuning window: the cap moves at most one step per this
/// many completed operations, so one anomalous op cannot swing it.
const WINDOW: u64 = 256;

/// Average retries per operation at or above which a window raises the
/// cap by one step.
const RAISE_AT: u64 = 4;

/// Average retries per operation at or below which a window lowers the
/// cap by one step.
const LOWER_AT: u64 = 1;

/// Per-structure adaptive cap for [`Backoff`], tuned from the observed
/// CAS-failure rate.
///
/// Each completed operation reports how many retries (spins) it needed;
/// every [`WINDOW`] operations the tuner compares the window's average
/// retry rate against [`RAISE_AT`]/[`LOWER_AT`] and moves the cap one
/// step within `[MIN_CAP, MAX_CAP]`. All counters are `Relaxed`: they are
/// monotone tuning inputs, and a lost update merely skews one window.
#[derive(Debug)]
pub struct BackoffTuner {
    cap: AtomicU32,
    ops: AtomicU64,
    retries: AtomicU64,
}

impl Default for BackoffTuner {
    fn default() -> Self {
        Self::new()
    }
}

impl BackoffTuner {
    /// Creates a tuner starting at the default cap (`2^6` iterations).
    pub fn new() -> Self {
        BackoffTuner {
            cap: AtomicU32::new(DEFAULT_CAP),
            ops: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        }
    }

    /// The current spin-exponent cap.
    pub fn cap(&self) -> u32 {
        self.cap.load(Relaxed)
    }

    /// Reports one completed operation that needed `retries` backoff
    /// spins, retuning the cap at window boundaries.
    pub fn record_op(&self, retries: u32) {
        let window_retries =
            self.retries.fetch_add(u64::from(retries), Relaxed) + u64::from(retries);
        let ops = self.ops.fetch_add(1, Relaxed) + 1;
        if ops < WINDOW {
            return;
        }
        // One thread wins the window reset; a racing report that lands in
        // the wrong window only skews that window's average.
        if self.ops.compare_exchange(ops, 0, Relaxed, Relaxed).is_err() {
            return;
        }
        self.retries.store(0, Relaxed);
        let avg = window_retries / ops;
        let cap = self.cap.load(Relaxed);
        if avg >= RAISE_AT && cap < MAX_CAP {
            self.cap.store(cap + 1, Relaxed);
        } else if avg <= LOWER_AT && cap > MIN_CAP {
            self.cap.store(cap - 1, Relaxed);
        }
    }
}

/// A per-operation bounded exponential backoff.
///
/// # Examples
///
/// ```
/// use dss_pmem::Backoff;
///
/// let mut bo = Backoff::new(true);
/// for attempt in 0..3 {
///     // ... CAS failed ...
///     bo.spin(); // 1, then 2, then 4 spin-loop hints
///     let _ = attempt;
/// }
///
/// let mut off = Backoff::new(false);
/// off.spin(); // disabled: returns immediately
/// ```
#[derive(Debug)]
pub struct Backoff<'a> {
    enabled: bool,
    shift: u32,
    cap: u32,
    spins: u32,
    tuner: Option<&'a BackoffTuner>,
}

impl Backoff<'static> {
    /// Creates a backoff starting at one spin iteration with the fixed
    /// default cap; `enabled: false` makes every [`spin`](Self::spin) a
    /// no-op.
    pub fn new(enabled: bool) -> Self {
        Backoff { enabled, shift: 0, cap: DEFAULT_CAP, spins: 0, tuner: None }
    }
}

impl<'a> Backoff<'a> {
    /// Creates a backoff whose cap comes from (and whose retry count is
    /// reported back to) a per-structure [`BackoffTuner`]. The cap is
    /// sampled once at operation start: a mid-operation retune applies
    /// from the next operation on.
    pub fn attached(enabled: bool, tuner: &'a BackoffTuner) -> Self {
        Backoff { enabled, shift: 0, cap: tuner.cap(), spins: 0, tuner: Some(tuner) }
    }

    /// Spins for the current wait (1 → 2 → 4 → … → `2^cap` iterations,
    /// then stays there) and doubles it; waits past `2^8` yield the CPU
    /// instead. No-op when disabled.
    #[inline]
    pub fn spin(&mut self) {
        if !self.enabled {
            return;
        }
        self.spins = self.spins.saturating_add(1);
        if self.shift >= YIELD_SHIFT {
            std::thread::yield_now();
        } else {
            for _ in 0..1u32 << self.shift {
                std::hint::spin_loop();
            }
        }
        if self.shift < self.cap {
            self.shift += 1;
        }
    }

    /// Resets the wait to one iteration (e.g. after making progress).
    #[inline]
    pub fn reset(&mut self) {
        self.shift = 0;
    }
}

impl Drop for Backoff<'_> {
    fn drop(&mut self) {
        // One operation completed (or unwound): report its retry count so
        // the structure's tuner sees failure rates, not just failures.
        if self.enabled {
            if let Some(t) = self.tuner {
                t.record_op(self.spins);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_grows_and_saturates() {
        let mut bo = Backoff::new(true);
        for _ in 0..20 {
            bo.spin();
        }
        assert_eq!(bo.shift, DEFAULT_CAP, "bounded at 2^{DEFAULT_CAP} iterations");
        bo.reset();
        assert_eq!(bo.shift, 0);
    }

    #[test]
    fn disabled_backoff_never_advances() {
        let mut bo = Backoff::new(false);
        for _ in 0..5 {
            bo.spin();
        }
        assert_eq!(bo.shift, 0, "disabled spin is a no-op");
    }

    #[test]
    fn tuner_raises_cap_under_sustained_contention() {
        let t = BackoffTuner::new();
        assert_eq!(t.cap(), DEFAULT_CAP);
        // Two windows of heavily retried operations: cap steps up twice.
        for _ in 0..2 * WINDOW {
            let mut bo = Backoff::attached(true, &t);
            for _ in 0..8 {
                bo.spin();
            }
        }
        assert_eq!(t.cap(), DEFAULT_CAP + 2, "contended windows raise the cap one step each");
    }

    #[test]
    fn tuner_lowers_cap_when_contention_subsides() {
        let t = BackoffTuner::new();
        for _ in 0..WINDOW {
            let mut bo = Backoff::attached(true, &t);
            for _ in 0..8 {
                bo.spin();
            }
        }
        assert_eq!(t.cap(), DEFAULT_CAP + 1);
        // Retry-free windows walk it back down to the floor, no further.
        for _ in 0..20 * WINDOW {
            let _bo = Backoff::attached(true, &t);
        }
        assert_eq!(t.cap(), MIN_CAP, "quiet windows lower the cap to its floor");
    }

    #[test]
    fn attached_backoff_saturates_at_the_tuned_cap() {
        let t = BackoffTuner::new();
        t.cap.store(MAX_CAP, Relaxed);
        let mut bo = Backoff::attached(true, &t);
        for _ in 0..40 {
            bo.spin(); // walks through the yield regime without hanging
        }
        assert_eq!(bo.shift, MAX_CAP);
        drop(bo);
        assert_eq!(t.ops.load(Relaxed), 1, "the finished operation was reported");
        assert_eq!(t.retries.load(Relaxed), 40);
    }

    #[test]
    fn disabled_attached_backoff_reports_nothing() {
        let t = BackoffTuner::new();
        {
            let mut bo = Backoff::attached(false, &t);
            bo.spin();
        }
        assert_eq!(t.ops.load(Relaxed), 0, "disabled operations don't skew the tuner");
    }
}
