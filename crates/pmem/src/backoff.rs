//! Bounded exponential backoff for contended CAS retry loops.
//!
//! Under contention a failed CAS means another thread just made progress;
//! retrying immediately mostly re-collides on the same cache line. Spinning
//! for an exponentially growing, bounded number of iterations before the
//! retry lets the winner's store propagate and spreads the losers out —
//! the classic contention-management layer the paper's evaluation omits
//! but any "as fast as the hardware allows" build needs.
//!
//! [`Backoff`] is constructed per operation (not per structure): the delay
//! resets at every operation boundary so an uncontended phase never pays
//! for an earlier contended one. Construction takes an `enabled` flag so
//! structures can gate backoff behind a runtime knob without branching at
//! every call site; a disabled `Backoff` is free.
//!
//! Spinning executes no pool primitives, so crash sweeps that index
//! operations see identical indices with backoff on and off.

/// Maximum spin exponent: waits are bounded by `2^MAX_SHIFT` (= 64)
/// iterations of [`std::hint::spin_loop`]. Small on purpose — the loops
/// this protects are a handful of instructions long, and an over-long
/// bound turns backoff into added latency on lightly contended runs.
const MAX_SHIFT: u32 = 6;

/// A per-operation bounded exponential backoff.
///
/// # Examples
///
/// ```
/// use dss_pmem::Backoff;
///
/// let mut bo = Backoff::new(true);
/// for attempt in 0..3 {
///     // ... CAS failed ...
///     bo.spin(); // 1, then 2, then 4 spin-loop hints
///     let _ = attempt;
/// }
///
/// let mut off = Backoff::new(false);
/// off.spin(); // disabled: returns immediately
/// ```
#[derive(Debug)]
pub struct Backoff {
    enabled: bool,
    shift: u32,
}

impl Backoff {
    /// Creates a backoff starting at one spin iteration; `enabled: false`
    /// makes every [`spin`](Self::spin) a no-op.
    pub fn new(enabled: bool) -> Self {
        Backoff { enabled, shift: 0 }
    }

    /// Spins for the current wait (1 → 2 → 4 → … → 64 iterations, then
    /// stays at 64) and doubles it. No-op when disabled.
    #[inline]
    pub fn spin(&mut self) {
        if !self.enabled {
            return;
        }
        for _ in 0..1u32 << self.shift {
            std::hint::spin_loop();
        }
        if self.shift < MAX_SHIFT {
            self.shift += 1;
        }
    }

    /// Resets the wait to one iteration (e.g. after making progress).
    #[inline]
    pub fn reset(&mut self) {
        self.shift = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_grows_and_saturates() {
        let mut bo = Backoff::new(true);
        for _ in 0..20 {
            bo.spin();
        }
        assert_eq!(bo.shift, MAX_SHIFT, "bounded at 2^{MAX_SHIFT} iterations");
        bo.reset();
        assert_eq!(bo.shift, 0);
    }

    #[test]
    fn disabled_backoff_never_advances() {
        let mut bo = Backoff::new(false);
        for _ in 0..5 {
            bo.spin();
        }
        assert_eq!(bo.shift, 0, "disabled spin is a no-op");
    }
}
