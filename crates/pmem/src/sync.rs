//! Poison-free mutex.
//!
//! Crash injection unwinds threads with a [`CrashSignal`](crate::CrashSignal)
//! panic while they may hold allocator or reclamation locks. `std`'s mutex
//! would poison on that unwind and fail every later `lock()`; a simulated
//! crash, however, is an *expected* event after which the pool is repaired
//! by an explicit rebuild, not by refusing the lock. This wrapper keeps the
//! no-poisoning semantics the code was written against (previously provided
//! by `parking_lot`, which the offline build environment cannot fetch).

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose guard acquisition never fails: a poisoned
/// state (a panic while locked) is ignored and the data returned as-is.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking the current thread until it is available.
    /// Unlike [`std::sync::Mutex::lock`] this cannot fail.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let r = catch_unwind(AssertUnwindSafe(move || {
            let _g = m2.lock();
            panic!("simulated crash while holding the lock");
        }));
        assert!(r.is_err());
        assert_eq!(*m.lock(), 7, "data accessible after a poisoning panic");
    }
}
