//! Epoch-based memory reclamation (EBR).
//!
//! Lock-free structures cannot free a node the moment it is unlinked:
//! another thread may still hold a reference obtained before the unlink.
//! The paper's evaluation reclaims dequeued nodes "using epoch-based
//! reclamation" (Fraser 2004), borrowed there from the `pmwcas` repository;
//! this module is our own implementation of the same classic three-epoch
//! scheme.
//!
//! Protocol: a thread [`pin`](Ebr::pin)s before operating on the shared
//! structure and unpins when done (the guard's `Drop`). Unlinked nodes are
//! [`retire`](Ebr::retire)d, not freed. The global epoch advances only when
//! every pinned thread has observed it, so a node retired in epoch *e* is
//! safe to reuse once the global epoch reaches *e + 2*:
//! [`collect`](Ebr::collect) returns such nodes to the caller (who typically
//! pushes them back into a [`NodePool`](crate::NodePool)).
//!
//! # Examples
//!
//! ```
//! use dss_pmem::{Ebr, PAddr};
//!
//! let ebr = Ebr::new(2);
//! let node = PAddr::from_index(42);
//! {
//!     let _guard = ebr.pin(0);
//!     ebr.retire(0, node);
//! } // unpinned
//! // With no other pinned threads the epoch can advance twice:
//! let mut freed = Vec::new();
//! for _ in 0..3 {
//!     freed.extend(ebr.collect(0));
//! }
//! assert_eq!(freed, vec![node]);
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};

use crate::sync::Mutex;

use crate::PAddr;

const INACTIVE: u64 = 0;

struct Slot {
    /// `INACTIVE`, or `epoch + 1` while the thread is pinned in `epoch`.
    announced: AtomicU64,
    /// Nodes retired by this thread, with the epoch at retirement.
    limbo: Mutex<VecDeque<(u64, PAddr)>>,
}

/// A three-epoch reclamation domain for a fixed set of threads.
///
/// Thread IDs index a fixed slot array; the structure is `Sync` and all
/// methods take `&self`.
#[derive(Debug)]
pub struct Ebr {
    global: AtomicU64,
    slots: Box<[Slot]>,
}

impl std::fmt::Debug for Slot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slot")
            .field("announced", &self.announced.load(SeqCst))
            .field("limbo_len", &self.limbo.lock().len())
            .finish()
    }
}

/// RAII guard returned by [`Ebr::pin`]; the thread stays pinned until the
/// guard drops.
#[derive(Debug)]
pub struct EbrGuard<'a> {
    ebr: &'a Ebr,
    tid: usize,
}

impl Drop for EbrGuard<'_> {
    fn drop(&mut self) {
        self.ebr.slots[self.tid].announced.store(INACTIVE, SeqCst);
    }
}

impl Ebr {
    /// Creates a reclamation domain for `nthreads` threads.
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` is zero.
    pub fn new(nthreads: usize) -> Self {
        assert!(nthreads > 0, "need at least one thread");
        Ebr {
            global: AtomicU64::new(1),
            slots: (0..nthreads)
                .map(|_| Slot {
                    announced: AtomicU64::new(INACTIVE),
                    limbo: Mutex::new(VecDeque::new()),
                })
                .collect(),
        }
    }

    /// The current global epoch (starts at 1).
    pub fn epoch(&self) -> u64 {
        self.global.load(SeqCst)
    }

    /// Pins thread `tid` in the current epoch. While pinned, no node retired
    /// in this epoch or later will be recycled.
    ///
    /// Re-pinning a thread that is already pinned is not supported and may
    /// delay reclamation; each thread holds at most one guard at a time.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn pin(&self, tid: usize) -> EbrGuard<'_> {
        let e = self.global.load(SeqCst);
        self.slots[tid].announced.store(e + 1, SeqCst);
        EbrGuard { ebr: self, tid }
    }

    /// Retires `addr` on behalf of thread `tid`: it becomes reclaimable two
    /// epochs from now.
    pub fn retire(&self, tid: usize, addr: PAddr) {
        let e = self.global.load(SeqCst);
        self.slots[tid].limbo.lock().push_back((e, addr));
    }

    /// Tries to advance the global epoch, then returns thread `tid`'s
    /// retired nodes that are now safe to reuse.
    ///
    /// Call periodically (e.g. when the allocator runs dry); each call
    /// advances the epoch at most once, so draining a long limbo list takes
    /// several calls, which bounds latency.
    pub fn collect(&self, tid: usize) -> Vec<PAddr> {
        let e = self.global.load(SeqCst);
        let all_observed = self.slots.iter().all(|s| {
            let a = s.announced.load(SeqCst);
            a == INACTIVE || a == e + 1
        });
        if all_observed {
            // A racing collect may have advanced it already; that's fine.
            let _ = self.global.compare_exchange(e, e + 1, SeqCst, SeqCst);
        }
        let now = self.global.load(SeqCst);
        let mut out = Vec::new();
        let mut limbo = self.slots[tid].limbo.lock();
        while let Some(&(re, addr)) = limbo.front() {
            if re + 2 <= now {
                out.push(addr);
                limbo.pop_front();
            } else {
                break;
            }
        }
        out
    }

    /// Like [`collect`](Self::collect), but drains the eligible retirees of
    /// **every** thread, not just the caller's.
    ///
    /// Per-thread limbo lists are only drained when their owner allocates;
    /// an allocator under memory pressure uses this to reclaim nodes
    /// stranded in other threads' lists (ownership of the freed nodes
    /// passes to the caller).
    pub fn collect_all(&self, tid: usize) -> Vec<PAddr> {
        let mut out = self.collect(tid);
        let now = self.global.load(SeqCst);
        for s in self.slots.iter() {
            let mut limbo = s.limbo.lock();
            while let Some(&(re, addr)) = limbo.front() {
                if re + 2 <= now {
                    out.push(addr);
                    limbo.pop_front();
                } else {
                    break;
                }
            }
        }
        out
    }

    /// Number of nodes awaiting reclamation across all threads.
    pub fn limbo_len(&self) -> usize {
        self.slots.iter().map(|s| s.limbo.lock().len()).sum()
    }

    /// Takes over slot `tid` from a thread that will never unpin it.
    ///
    /// A thread that vanishes (crash, partial restart) while pinned leaves
    /// a stale epoch announcement behind, which blocks the global epoch —
    /// and with it every thread's reclamation — forever. The adopter
    /// clears the announcement; the dead thread's limbo list is *kept* and
    /// inherited in place, so its retirees are reclaimed through the
    /// ordinary [`collect`](Self::collect)/[`collect_all`](Self::collect_all)
    /// path under the new owner instead of silently aliasing the next
    /// thread to reuse the slot id.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn adopt_slot(&self, tid: usize) {
        self.slots[tid].announced.store(INACTIVE, SeqCst);
    }

    /// Discards all limbo records and resets announcements, e.g. after a
    /// simulated crash when the allocator is rebuilt from a liveness scan
    /// and limbo contents would otherwise double-free.
    pub fn reset(&self) {
        for s in self.slots.iter() {
            s.announced.store(INACTIVE, SeqCst);
            s.limbo.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn retired_node_not_reclaimed_while_epoch_held() {
        let ebr = Ebr::new(2);
        let _g1 = ebr.pin(1); // thread 1 parked in the current epoch
        {
            let _g0 = ebr.pin(0);
            ebr.retire(0, PAddr::from_index(7));
        }
        // Thread 1 still announces the old epoch, so it can advance at most
        // once; retire-epoch + 2 is never reached.
        for _ in 0..5 {
            assert!(ebr.collect(0).is_empty());
        }
        drop(_g1);
        let mut freed = Vec::new();
        for _ in 0..5 {
            freed.extend(ebr.collect(0));
        }
        assert_eq!(freed, vec![PAddr::from_index(7)]);
    }

    #[test]
    fn collect_preserves_order_and_drains_incrementally() {
        let ebr = Ebr::new(1);
        ebr.retire(0, PAddr::from_index(1));
        ebr.retire(0, PAddr::from_index(2));
        assert_eq!(ebr.limbo_len(), 2);
        let mut freed = Vec::new();
        for _ in 0..4 {
            freed.extend(ebr.collect(0));
        }
        assert_eq!(freed, vec![PAddr::from_index(1), PAddr::from_index(2)]);
        assert_eq!(ebr.limbo_len(), 0);
    }

    #[test]
    fn reset_clears_limbo() {
        let ebr = Ebr::new(1);
        ebr.retire(0, PAddr::from_index(1));
        ebr.reset();
        assert_eq!(ebr.limbo_len(), 0);
        for _ in 0..4 {
            assert!(ebr.collect(0).is_empty());
        }
    }

    #[test]
    fn concurrent_pin_retire_collect_smoke() {
        let ebr = Arc::new(Ebr::new(4));
        let handles: Vec<_> = (0..4)
            .map(|tid| {
                let ebr = Arc::clone(&ebr);
                std::thread::spawn(move || {
                    let mut freed = 0usize;
                    for i in 0..500u64 {
                        {
                            let _g = ebr.pin(tid);
                            ebr.retire(tid, PAddr::from_index(1 + tid as u64 * 1000 + i));
                        }
                        freed += ebr.collect(tid).len();
                    }
                    // Drain the tail.
                    for _ in 0..8 {
                        freed += ebr.collect(tid).len();
                    }
                    freed
                })
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total + ebr.limbo_len(), 2000, "every retiree is freed or in limbo");
    }

    #[test]
    fn adopt_slot_unblocks_epoch_and_inherits_limbo() {
        let ebr = Ebr::new(2);
        // Thread 1 pins and then "dies" without ever dropping its guard —
        // the stale announcement would block the epoch forever.
        let g = ebr.pin(1);
        std::mem::forget(g);
        ebr.retire(1, PAddr::from_index(9));
        for _ in 0..5 {
            assert!(ebr.collect_all(0).is_empty(), "stale pin must block reclamation");
        }
        // An adopter takes over the slot: the pin clears, the limbo list
        // survives and drains under the new owner.
        ebr.adopt_slot(1);
        let mut freed = Vec::new();
        for _ in 0..5 {
            freed.extend(ebr.collect_all(0));
        }
        assert_eq!(freed, vec![PAddr::from_index(9)], "inherited retiree reclaimed");
    }

    #[test]
    fn epoch_monotonically_advances_when_quiescent() {
        let ebr = Ebr::new(2);
        let e0 = ebr.epoch();
        ebr.collect(0);
        ebr.collect(0);
        assert!(ebr.epoch() >= e0 + 2);
    }
}
