//! Address layout and backing store of a growable segmented pool.
//!
//! A pool's words live in up to [`SLOTS`] independently-allocated segments
//! listed in a fixed directory, so the pool can grow lock-free: segment 0
//! has the initial capacity (rounded up to whole cache lines) and each
//! subsequent segment doubles the total, the classic segmented-vector
//! layout. A word address maps to (slot, offset) with two shifts and no
//! locks, existing segments are never moved (so `&Word` references stay
//! valid forever), and the directory is small enough to scan when a crash
//! or capacity query needs to visit every materialised word.
//!
//! Because segment 0's length is a multiple of
//! [`WORDS_PER_LINE`](crate::WORDS_PER_LINE) and every later segment's
//! length is `base << k`, segment boundaries always fall on cache-line
//! boundaries: a line flush never straddles two segments.
//!
//! # Segment backing
//!
//! A pool's *persistence domain* lives behind a [`SegmentBacking`]:
//!
//! * [`SegmentBacking::Anonymous`] — persisted shadows live in process
//!   DRAM, exactly the pre-file behaviour. Nothing outlives the process.
//! * [`SegmentBacking::File`] — persisted shadows are written through to a
//!   pool *file*, so a process that dies (even by `SIGKILL`) leaves behind
//!   precisely its persistence domain: everything flushed-and-fenced
//!   survives, everything volatile (unflushed stores, pended coalesced
//!   flushes) dies with the process, with no crash-reversion step needed.
//!   A fresh process [`attach`](crate::PmemPool::attach)es by reading the
//!   file back.
//!
//! # On-disk format
//!
//! The file starts with a 4096-byte superblock of little-endian u64 words
//! (`SB_*` offsets below): magic, layout version, segment-0 length, flush
//! granularity, crash generation, the committed-segment bitmap, and eight
//! application-config words a data structure uses to make its pool file
//! self-describing. Word `i`'s persisted value lives at byte
//! `HEADER_BYTES + 8 * i`.
//!
//! **Crash-atomic growth**: materialising segment `s` first extends the
//! file to cover `[0, end(s))` (new bytes read as zero), *then* publishes
//! bit `s` of the committed bitmap. A crash between the two leaves a
//! longer file whose extra bytes no attach will ever read — the bitmap is
//! the watermark of record. Reads and writebacks stay lock-free; only the
//! cold grow path serialises on a mutex.

use std::fmt;
use std::fs::File;
use std::io;
use std::ops::Range;
use std::os::unix::fs::FileExt;
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::{Mutex, OnceLock};

use crate::WORDS_PER_LINE;

/// Superblock word offsets (u64 indices into the header).
pub(crate) const SB_MAGIC: u64 = 0;
pub(crate) const SB_VERSION: u64 = 1;
pub(crate) const SB_BASE: u64 = 2;
pub(crate) const SB_GRANULARITY: u64 = 3;
pub(crate) const SB_GENERATION: u64 = 4;
pub(crate) const SB_COMMITTED: u64 = 5;
pub(crate) const SB_APP_KIND: u64 = 6;
pub(crate) const SB_APP: u64 = 7;

/// Number of application-config words after [`SB_APP_KIND`].
pub(crate) const APP_WORDS: usize = 8;

/// `b"DSSPOOL1"` as a little-endian u64.
pub(crate) const MAGIC: u64 = u64::from_le_bytes(*b"DSSPOOL1");

/// Bumped whenever the on-disk layout changes incompatibly.
pub(crate) const LAYOUT_VERSION: u64 = 1;

/// Byte length of the superblock; word data starts here.
pub(crate) const HEADER_BYTES: u64 = 4096;

/// Why a pool file could not be created or attached.
///
/// Implements [`std::error::Error`], so harness binaries propagate it
/// with `?` instead of `map_err`/`unwrap` chains.
#[derive(Debug)]
pub enum AttachError {
    /// The underlying file operation failed.
    Io(io::Error),
    /// The file does not start with the pool magic — not a pool file.
    BadMagic {
        /// The value found where [`MAGIC`] was expected.
        found: u64,
    },
    /// The file is a pool, but of an incompatible layout version.
    BadVersion {
        /// The version the file declares.
        found: u64,
    },
    /// A superblock field is internally inconsistent (bad granularity
    /// code, unaligned segment-0 length, committed bitmap out of range,
    /// file shorter than its committed watermark promises, …).
    Corrupt(&'static str),
    /// The file holds a different data structure than the attacher
    /// expected (application-kind word mismatch).
    AppMismatch {
        /// The kind the attaching structure expected.
        expected: u64,
        /// The kind recorded in the file.
        found: u64,
    },
}

impl fmt::Display for AttachError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttachError::Io(e) => write!(f, "pool file I/O error: {e}"),
            AttachError::BadMagic { found } => {
                write!(f, "not a pool file (magic {found:#018x})")
            }
            AttachError::BadVersion { found } => {
                write!(f, "unsupported pool layout version {found}")
            }
            AttachError::Corrupt(what) => write!(f, "corrupt pool file: {what}"),
            AttachError::AppMismatch { expected, found } => {
                write!(f, "pool file holds structure kind {found}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for AttachError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AttachError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for AttachError {
    fn from(e: io::Error) -> Self {
        AttachError::Io(e)
    }
}

/// Every data-structure kind that can own a pool file, with its
/// application-kind word (the [`SB_APP_KIND`] superblock slot).
///
/// The tag values are the on-disk format: they were assigned in the order
/// the structures landed and must never be renumbered. Structures expose
/// `KIND_*` constants defined through [`AppKind::word`], and attach paths
/// compare the file's kind word against their own, so a queue pool can
/// never be misread as a stack pool (see
/// [`AttachError::AppMismatch`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u64)]
pub enum AppKind {
    /// The detectable DSS queue (`DssQueue`).
    DssQueue = 1,
    /// The detectable DSS stack (`DssStack`).
    DssStack = 2,
    /// The detectable single-word register.
    DetectableRegister = 3,
    /// The detectable compare-and-swap object.
    DetectableCas = 4,
    /// The universal detectable construction over an `OpWords` spec.
    Universal = 5,
    /// The durable (non-detectable) queue baseline.
    DurableQueue = 6,
    /// The log-structured queue baseline.
    LogQueue = 7,
    /// The plain Michael–Scott queue baseline.
    MsQueue = 8,
    /// The PMwCAS-style CWE queue.
    CweQueue = 9,
    /// The DSS queue under the flat-combining execution layer.
    DssQueueCombining = 10,
    /// The DSS queue under the log-fed replica execution layer.
    DssQueueReplicated = 11,
    /// The detectable bucket-chained hash map (`DetectableMap`).
    DetectableMap = 12,
}

impl AppKind {
    /// Every kind, in tag order. Kept exhaustive by the round-trip test.
    pub const ALL: [AppKind; 12] = [
        AppKind::DssQueue,
        AppKind::DssStack,
        AppKind::DetectableRegister,
        AppKind::DetectableCas,
        AppKind::Universal,
        AppKind::DurableQueue,
        AppKind::LogQueue,
        AppKind::MsQueue,
        AppKind::CweQueue,
        AppKind::DssQueueCombining,
        AppKind::DssQueueReplicated,
        AppKind::DetectableMap,
    ];

    /// The application-kind word this kind stamps into a pool file.
    pub const fn word(self) -> u64 {
        self as u64
    }

    /// The kind a pool file's application-kind word names, if any.
    pub fn from_word(word: u64) -> Option<AppKind> {
        AppKind::ALL.iter().copied().find(|k| k.word() == word)
    }
}

impl fmt::Display for AppKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AppKind::DssQueue => "dss-queue",
            AppKind::DssStack => "dss-stack",
            AppKind::DetectableRegister => "detectable-register",
            AppKind::DetectableCas => "detectable-cas",
            AppKind::Universal => "universal",
            AppKind::DurableQueue => "durable-queue",
            AppKind::LogQueue => "log-queue",
            AppKind::MsQueue => "ms-queue",
            AppKind::CweQueue => "cwe-queue",
            AppKind::DssQueueCombining => "dss-queue-combining",
            AppKind::DssQueueReplicated => "dss-queue-replicated",
            AppKind::DetectableMap => "detectable-map",
        };
        f.write_str(name)
    }
}

/// Where a pool's persistence domain lives. See the [module docs](self).
pub(crate) enum SegmentBacking {
    /// Persisted shadows in process DRAM (the historical behaviour).
    Anonymous,
    /// Persisted shadows written through to a pool file.
    File(FileBacking),
}

/// The file half of [`SegmentBacking::File`]: the handle, the committed
/// bitmap mirror, and the growth lock.
pub(crate) struct FileBacking {
    file: File,
    /// DRAM mirror of the [`SB_COMMITTED`] bitmap (bit `s` = segment `s`
    /// exists in the file).
    committed: AtomicU64,
    /// Serialises the cold grow path (extend file, then publish the bit).
    grow: Mutex<()>,
}

impl FileBacking {
    pub(crate) fn new(file: File, committed: u64) -> Self {
        FileBacking { file, committed: AtomicU64::new(committed), grow: Mutex::new(()) }
    }

    /// Byte offset of word `index`'s persisted value.
    fn data_offset(index: u64) -> u64 {
        HEADER_BYTES + 8 * index
    }

    /// Writes one superblock word. Panics on I/O failure: the simulator
    /// treats a failing pool file like failing DIMM hardware.
    pub(crate) fn write_sb(&self, word: u64, value: u64) {
        self.file
            .write_all_at(&value.to_le_bytes(), 8 * word)
            .expect("pool file superblock write failed");
    }

    pub(crate) fn read_sb(&self, word: u64) -> io::Result<u64> {
        let mut buf = [0u8; 8];
        self.file.read_exact_at(&mut buf, 8 * word)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes through one word's persisted value.
    pub(crate) fn write_word(&self, index: u64, value: u64) {
        self.file
            .write_all_at(&value.to_le_bytes(), Self::data_offset(index))
            .expect("pool file write failed");
    }

    /// Reads segment `slot`'s persisted values (the caller checked the
    /// committed bit).
    pub(crate) fn read_segment(&self, layout: &Layout, slot: usize) -> io::Result<Vec<u64>> {
        let len = layout.len(slot) as usize;
        let mut bytes = vec![0u8; len * 8];
        self.file.read_exact_at(&mut bytes, Self::data_offset(layout.start(slot)))?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    /// Installs the bitmap read from an attached file's superblock.
    pub(crate) fn set_committed(&self, bits: u64) {
        self.committed.store(bits, SeqCst);
    }

    /// Current file length in bytes.
    pub(crate) fn read_len(&self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    /// Crash-atomically commits segment `slot`: extends the file to cover
    /// `[0, end(slot))` first (fresh bytes read as zero), then publishes
    /// the committed bit — the watermark ordering that makes growth safe
    /// against a kill between the two steps.
    pub(crate) fn commit_segment(&self, layout: &Layout, slot: usize) {
        let bit = 1u64 << slot;
        if self.committed.load(SeqCst) & bit != 0 {
            return;
        }
        let _g = self.grow.lock().expect("grow lock poisoned");
        if self.committed.load(SeqCst) & bit != 0 {
            return;
        }
        let want = Self::data_offset(layout.end(slot));
        let have = self.file.metadata().expect("pool file metadata failed").len();
        if have < want {
            self.file.set_len(want).expect("pool file extend failed");
        }
        let committed = self.committed.load(SeqCst) | bit;
        self.write_sb(SB_COMMITTED, committed);
        self.committed.store(committed, SeqCst);
    }
}

/// Number of directory slots. Segment 0 holds at least one cache line
/// (8 words) and capacity doubles per slot, so 48 slots cover the entire
/// 48-bit address space with room to spare.
pub(crate) const SLOTS: usize = 48;

/// The address→segment mapping for a pool with a given initial capacity.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Layout {
    /// Words in segment 0: the requested initial capacity rounded up to a
    /// whole number of cache lines (minimum one line).
    base: u64,
}

impl Layout {
    /// Creates the layout for an initial capacity of `words`.
    ///
    /// # Panics
    ///
    /// Panics if `words` is 0 or exceeds the 48-bit address space.
    pub(crate) fn new(words: usize) -> Self {
        assert!(words >= 1, "pool must contain at least the NULL word");
        assert!((words as u64) <= crate::tag::ADDR_MASK, "pool exceeds the 48-bit address space");
        let base = (words as u64).div_ceil(WORDS_PER_LINE) * WORDS_PER_LINE;
        Layout { base }
    }

    /// Initial capacity (segment 0 length) in words.
    pub(crate) fn base(&self) -> u64 {
        self.base
    }

    /// Rebuilds a layout from a superblock's [`SB_BASE`] word, validating
    /// the invariants [`Layout::new`] establishes by construction.
    pub(crate) fn from_base(base: u64) -> Result<Self, AttachError> {
        if base == 0 || !base.is_multiple_of(WORDS_PER_LINE) {
            return Err(AttachError::Corrupt("segment-0 length not a positive line multiple"));
        }
        if base > crate::tag::ADDR_MASK {
            return Err(AttachError::Corrupt("segment-0 length exceeds the address space"));
        }
        Ok(Layout { base })
    }

    /// Directory slot containing word index `i`.
    #[inline]
    pub(crate) fn slot_of(&self, i: u64) -> usize {
        let q = i / self.base;
        if q == 0 {
            0
        } else {
            // Slot s ≥ 1 covers [base·2^(s−1), base·2^s): s = ⌊log₂ q⌋ + 1.
            (64 - q.leading_zeros()) as usize
        }
    }

    /// First word index of segment `slot`.
    #[inline]
    pub(crate) fn start(&self, slot: usize) -> u64 {
        if slot == 0 {
            0
        } else {
            self.base << (slot - 1)
        }
    }

    /// Length of segment `slot` in words.
    #[inline]
    pub(crate) fn len(&self, slot: usize) -> u64 {
        if slot == 0 {
            self.base
        } else {
            self.base << (slot - 1)
        }
    }

    /// One past the last word index of segment `slot`.
    #[inline]
    pub(crate) fn end(&self, slot: usize) -> u64 {
        self.base << slot
    }
}

/// How a pool's owner lays application regions over the segment directory.
///
/// The directory itself is placement-blind — any address materialises its
/// segment on demand — but a data structure that carves its address space
/// into per-replica (or per-shard) regions can ask
/// [`Memory::plan_regions`](crate::Memory::plan_regions) to place them
/// according to a policy:
///
/// * [`PlacementPolicy::Interleave`] packs regions contiguously
///   (line-aligned), the historical layout: neighbouring regions share
///   directory segments and, on a file-backed pool, file extents.
/// * [`PlacementPolicy::Sharded`] gives each region its own run of
///   directory segments: a region starts on a segment boundary and the
///   plan skips to the end of the last segment the region touches before
///   placing the next, so **no two regions share a segment**. The skipped
///   address ranges cost nothing — uncommitted segments are never
///   materialised — so sharding spends address space, not memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Pack regions contiguously, line-aligned (the historical layout).
    #[default]
    Interleave,
    /// One run of directory segments per region; regions never share a
    /// segment (and hence never share a backing allocation or file
    /// extent).
    Sharded,
}

impl PlacementPolicy {
    /// Stable numeric code, for storage in an atomic knob word.
    pub(crate) fn code(self) -> u64 {
        match self {
            PlacementPolicy::Interleave => 0,
            PlacementPolicy::Sharded => 1,
        }
    }

    pub(crate) fn from_code(code: u64) -> Self {
        match code {
            1 => PlacementPolicy::Sharded,
            _ => PlacementPolicy::Interleave,
        }
    }
}

#[inline]
fn align_line(words: u64) -> u64 {
    words.next_multiple_of(WORDS_PER_LINE)
}

/// Places `region_words.len()` regions of the given sizes (in words) at or
/// after `first_free`, under `policy`, for a pool whose segment 0 spans
/// `layout`. Every returned range is line-aligned and the ranges are
/// pairwise disjoint and ascending.
pub(crate) fn plan_with(
    layout: &Layout,
    policy: PlacementPolicy,
    first_free: u64,
    region_words: &[u64],
) -> Vec<Range<u64>> {
    let mut cursor = align_line(first_free);
    let mut out = Vec::with_capacity(region_words.len());
    for &words in region_words {
        let len = align_line(words.max(1));
        let start = match policy {
            PlacementPolicy::Interleave => cursor,
            PlacementPolicy::Sharded => {
                // Up to the next segment boundary (cursor may already be
                // one: after the first region it always is).
                let slot = layout.slot_of(cursor);
                if cursor == layout.start(slot) {
                    cursor
                } else {
                    layout.end(slot)
                }
            }
        };
        let end = start + len;
        cursor = match policy {
            PlacementPolicy::Interleave => end,
            // Claim the rest of the region's last segment so the next
            // region starts in a fresh one.
            PlacementPolicy::Sharded => layout.end(layout.slot_of(end - 1)),
        };
        out.push(start..end);
    }
    out
}

/// The directory slots whose segments back `region`, for a pool created
/// with `initial_words` of capacity (cf. [`Memory::plan_regions`]: the
/// same `initial_words` the pool was created with).
///
/// Under [`PlacementPolicy::Sharded`] plans, distinct regions' slot ranges
/// are disjoint — the property this helper exists to assert in tests.
///
/// [`Memory::plan_regions`]: crate::Memory::plan_regions
///
/// # Panics
///
/// Panics if `region` is empty or `initial_words` is out of range.
pub fn region_segments(initial_words: usize, region: &Range<u64>) -> Range<usize> {
    assert!(region.start < region.end, "empty region has no backing segments");
    let layout = Layout::new(initial_words);
    layout.slot_of(region.start)..layout.slot_of(region.end - 1) + 1
}

/// Free-function form of [`Memory::plan_regions`](crate::Memory::plan_regions)
/// for callers that plan before constructing a pool: `initial_words` is
/// the capacity the pool will be created with (segment geometry depends on
/// it), `first_free` the first word the regions may use.
///
/// # Panics
///
/// Panics if `initial_words` is 0 or exceeds the 48-bit address space.
pub fn plan_regions(
    initial_words: usize,
    policy: PlacementPolicy,
    first_free: u64,
    region_words: &[u64],
) -> Vec<Range<u64>> {
    plan_with(&Layout::new(initial_words), policy, first_free, region_words)
}

/// The segment directory both backends build on: a [`Layout`], a
/// [`PlacementPolicy`] knob, and up to [`SLOTS`] lazily-materialised
/// segments of `W` words.
///
/// Materialisation is race-free without locking readers (`OnceLock`):
/// losers of an init race drop their allocation and use the winner's, and
/// established segments never move, so `&W` references remain stable for
/// the directory's lifetime. What a segment's words *are* (shadowed
/// simulator words, bare atomics) and how materialisation interacts with
/// a backing file stay the owning pool's business — the directory only
/// owns the address→segment structure.
pub(crate) struct SegmentDirectory<W> {
    layout: Layout,
    /// [`PlacementPolicy::code`] of the planning policy. `Relaxed` would
    /// do — the knob synchronises nothing — but `SeqCst` keeps it uniform
    /// with the rare-path knobs around it.
    policy: AtomicU64,
    slots: Box<[OnceLock<Box<[W]>>]>,
}

impl<W> SegmentDirectory<W> {
    pub(crate) fn new(layout: Layout) -> Self {
        SegmentDirectory {
            layout,
            policy: AtomicU64::new(PlacementPolicy::default().code()),
            slots: (0..SLOTS).map(|_| OnceLock::new()).collect(),
        }
    }

    #[inline]
    pub(crate) fn layout(&self) -> &Layout {
        &self.layout
    }

    pub(crate) fn policy(&self) -> PlacementPolicy {
        PlacementPolicy::from_code(self.policy.load(SeqCst))
    }

    pub(crate) fn set_policy(&self, policy: PlacementPolicy) {
        self.policy.store(policy.code(), SeqCst);
    }

    /// The segment in `slot` if it has been materialised.
    #[inline]
    pub(crate) fn get(&self, slot: usize) -> Option<&[W]> {
        self.slots[slot].get().map(|s| &s[..])
    }

    /// The segment in `slot`, materialising it with `init` if needed.
    /// `init` must return exactly [`Layout::len`]`(slot)` words.
    #[inline]
    pub(crate) fn get_or_init(&self, slot: usize, init: impl FnOnce() -> Box<[W]>) -> &[W] {
        self.slots[slot].get_or_init(init)
    }

    /// Installs a pre-built segment (the attach path). Fails if the slot
    /// was already materialised.
    pub(crate) fn install(&self, slot: usize, words: Box<[W]>) -> Result<(), ()> {
        self.slots[slot].set(words).map_err(|_| ())
    }

    /// One past the highest materialised word index.
    pub(crate) fn materialised_words(&self) -> u64 {
        let mut cap = 0u64;
        for slot in 0..SLOTS {
            if self.slots[slot].get().is_some() {
                cap = cap.max(self.layout.end(slot));
            }
        }
        cap
    }

    /// `(slot, offset)` of word index `i`.
    #[inline]
    pub(crate) fn locate(&self, i: u64) -> (usize, usize) {
        let slot = self.layout.slot_of(i);
        (slot, (i - self.layout.start(slot)) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_kind_words_round_trip_exhaustively() {
        // Every kind survives word() -> from_word(), the tag values are
        // the historical on-disk assignment, and no two kinds collide.
        for (i, kind) in AppKind::ALL.iter().copied().enumerate() {
            assert_eq!(kind.word(), i as u64 + 1, "{kind} renumbered");
            assert_eq!(AppKind::from_word(kind.word()), Some(kind));
            assert!(!kind.to_string().is_empty());
        }
        let words: std::collections::BTreeSet<u64> =
            AppKind::ALL.iter().map(|k| k.word()).collect();
        assert_eq!(words.len(), AppKind::ALL.len(), "duplicate kind words");
        // Unassigned words name no kind (0 is "no kind stamped yet").
        assert_eq!(AppKind::from_word(0), None);
        assert_eq!(AppKind::from_word(AppKind::ALL.len() as u64 + 1), None);
    }

    #[test]
    fn rounds_initial_capacity_to_lines() {
        assert_eq!(Layout::new(1).base(), WORDS_PER_LINE);
        assert_eq!(Layout::new(8).base(), 8);
        assert_eq!(Layout::new(10).base(), 16);
        assert_eq!(Layout::new(64).base(), 64);
    }

    #[test]
    fn slots_partition_the_address_space() {
        let l = Layout::new(64);
        // Every index maps to exactly the slot whose [start, end) contains it.
        for i in [0, 1, 63, 64, 65, 127, 128, 255, 256, 1_000_000, 1 << 40] {
            let s = l.slot_of(i);
            assert!(l.start(s) <= i && i < l.end(s), "index {i} slot {s}");
            assert_eq!(l.end(s) - l.start(s), l.len(s));
        }
    }

    #[test]
    fn segments_double() {
        let l = Layout::new(64);
        assert_eq!((l.start(0), l.len(0)), (0, 64));
        assert_eq!((l.start(1), l.len(1)), (64, 64));
        assert_eq!((l.start(2), l.len(2)), (128, 128));
        assert_eq!((l.start(3), l.len(3)), (256, 256));
    }

    #[test]
    fn segment_boundaries_are_line_aligned() {
        let l = Layout::new(10); // base rounds to 16
        for s in 0..12 {
            assert_eq!(l.start(s) % WORDS_PER_LINE, 0);
            assert_eq!(l.len(s) % WORDS_PER_LINE, 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn zero_capacity_rejected() {
        let _ = Layout::new(0);
    }

    #[test]
    fn interleave_packs_contiguously() {
        let plan = plan_regions(64, PlacementPolicy::Interleave, 24, &[10, 8, 1]);
        assert_eq!(plan, vec![24..40, 40..48, 48..56]);
    }

    #[test]
    fn sharded_regions_share_no_segment() {
        for first_free in [8, 24, 64, 100] {
            for sizes in [&[8u64, 8, 8, 8][..], &[100, 8, 300], &[1, 1]] {
                let plan = plan_regions(64, PlacementPolicy::Sharded, first_free, sizes);
                let mut used: Vec<Range<usize>> =
                    plan.iter().map(|r| region_segments(64, r)).collect();
                for (r, &words) in plan.iter().zip(sizes) {
                    assert!(r.start >= first_free);
                    assert!(r.end - r.start >= words.max(1), "region too small: {r:?}");
                    assert_eq!(r.start % WORDS_PER_LINE, 0);
                }
                used.sort_by_key(|s| s.start);
                for pair in used.windows(2) {
                    assert!(
                        pair[0].end <= pair[1].start,
                        "regions share a segment: {pair:?} (plan {plan:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_regions_start_on_segment_boundaries() {
        let l = Layout::new(64);
        let plan = plan_regions(64, PlacementPolicy::Sharded, 24, &[8, 72]);
        for r in &plan {
            let slot = l.slot_of(r.start);
            assert_eq!(r.start, l.start(slot), "region {r:?} not on a segment boundary");
        }
    }

    #[test]
    #[should_panic(expected = "empty region")]
    fn empty_region_has_no_segments() {
        let _ = region_segments(64, &(8..8));
    }

    #[test]
    fn directory_materialises_and_reports_capacity() {
        let d: SegmentDirectory<u64> = SegmentDirectory::new(Layout::new(16));
        assert_eq!(d.materialised_words(), 0);
        assert!(d.get(0).is_none());
        let seg = d.get_or_init(0, || (0..d.layout().len(0)).collect());
        assert_eq!(seg.len(), 16);
        assert_eq!(d.materialised_words(), 16);
        assert_eq!(d.locate(17), (1, 1));
        assert!(d.install(0, Box::new([])).is_err(), "slot 0 already materialised");
        assert!(d.install(2, (0..d.layout().len(2)).collect()).is_ok());
        assert_eq!(d.materialised_words(), 64);
    }

    #[test]
    fn policy_knob_round_trips() {
        let d: SegmentDirectory<u64> = SegmentDirectory::new(Layout::new(16));
        assert_eq!(d.policy(), PlacementPolicy::Interleave);
        d.set_policy(PlacementPolicy::Sharded);
        assert_eq!(d.policy(), PlacementPolicy::Sharded);
        assert_eq!(
            PlacementPolicy::from_code(PlacementPolicy::Sharded.code()),
            PlacementPolicy::Sharded
        );
    }
}
