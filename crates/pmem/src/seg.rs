//! Address layout of a growable segmented pool.
//!
//! A pool's words live in up to [`SLOTS`] independently-allocated segments
//! listed in a fixed directory, so the pool can grow lock-free: segment 0
//! has the initial capacity (rounded up to whole cache lines) and each
//! subsequent segment doubles the total, the classic segmented-vector
//! layout. A word address maps to (slot, offset) with two shifts and no
//! locks, existing segments are never moved (so `&Word` references stay
//! valid forever), and the directory is small enough to scan when a crash
//! or capacity query needs to visit every materialised word.
//!
//! Because segment 0's length is a multiple of
//! [`WORDS_PER_LINE`](crate::WORDS_PER_LINE) and every later segment's
//! length is `base << k`, segment boundaries always fall on cache-line
//! boundaries: a line flush never straddles two segments.

use crate::WORDS_PER_LINE;

/// Number of directory slots. Segment 0 holds at least one cache line
/// (8 words) and capacity doubles per slot, so 48 slots cover the entire
/// 48-bit address space with room to spare.
pub(crate) const SLOTS: usize = 48;

/// The address→segment mapping for a pool with a given initial capacity.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Layout {
    /// Words in segment 0: the requested initial capacity rounded up to a
    /// whole number of cache lines (minimum one line).
    base: u64,
}

impl Layout {
    /// Creates the layout for an initial capacity of `words`.
    ///
    /// # Panics
    ///
    /// Panics if `words` is 0 or exceeds the 48-bit address space.
    pub(crate) fn new(words: usize) -> Self {
        assert!(words >= 1, "pool must contain at least the NULL word");
        assert!((words as u64) <= crate::tag::ADDR_MASK, "pool exceeds the 48-bit address space");
        let base = (words as u64).div_ceil(WORDS_PER_LINE) * WORDS_PER_LINE;
        Layout { base }
    }

    /// Initial capacity (segment 0 length) in words.
    #[cfg(test)]
    pub(crate) fn base(&self) -> u64 {
        self.base
    }

    /// Directory slot containing word index `i`.
    #[inline]
    pub(crate) fn slot_of(&self, i: u64) -> usize {
        let q = i / self.base;
        if q == 0 {
            0
        } else {
            // Slot s ≥ 1 covers [base·2^(s−1), base·2^s): s = ⌊log₂ q⌋ + 1.
            (64 - q.leading_zeros()) as usize
        }
    }

    /// First word index of segment `slot`.
    #[inline]
    pub(crate) fn start(&self, slot: usize) -> u64 {
        if slot == 0 {
            0
        } else {
            self.base << (slot - 1)
        }
    }

    /// Length of segment `slot` in words.
    #[inline]
    pub(crate) fn len(&self, slot: usize) -> u64 {
        if slot == 0 {
            self.base
        } else {
            self.base << (slot - 1)
        }
    }

    /// One past the last word index of segment `slot`.
    #[inline]
    pub(crate) fn end(&self, slot: usize) -> u64 {
        self.base << slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_initial_capacity_to_lines() {
        assert_eq!(Layout::new(1).base(), WORDS_PER_LINE);
        assert_eq!(Layout::new(8).base(), 8);
        assert_eq!(Layout::new(10).base(), 16);
        assert_eq!(Layout::new(64).base(), 64);
    }

    #[test]
    fn slots_partition_the_address_space() {
        let l = Layout::new(64);
        // Every index maps to exactly the slot whose [start, end) contains it.
        for i in [0, 1, 63, 64, 65, 127, 128, 255, 256, 1_000_000, 1 << 40] {
            let s = l.slot_of(i);
            assert!(l.start(s) <= i && i < l.end(s), "index {i} slot {s}");
            assert_eq!(l.end(s) - l.start(s), l.len(s));
        }
    }

    #[test]
    fn segments_double() {
        let l = Layout::new(64);
        assert_eq!((l.start(0), l.len(0)), (0, 64));
        assert_eq!((l.start(1), l.len(1)), (64, 64));
        assert_eq!((l.start(2), l.len(2)), (128, 128));
        assert_eq!((l.start(3), l.len(3)), (256, 256));
    }

    #[test]
    fn segment_boundaries_are_line_aligned() {
        let l = Layout::new(10); // base rounds to 16
        for s in 0..12 {
            assert_eq!(l.start(s) % WORDS_PER_LINE, 0);
            assert_eq!(l.len(s) % WORDS_PER_LINE, 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn zero_capacity_rejected() {
        let _ = Layout::new(0);
    }
}
