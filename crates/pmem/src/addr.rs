//! Word addresses in a [`PmemPool`](crate::PmemPool).

use std::fmt;

/// Address of a 64-bit word in a [`PmemPool`](crate::PmemPool).
///
/// Addresses are word *indices*, not byte offsets. Index `0` is reserved as
/// the NULL address, mirroring a NULL pointer in the paper's pseudocode; the
/// pool never hands it out and algorithms use [`PAddr::NULL`] to represent
/// "no node".
///
/// Only the low [`tag::ADDR_BITS`](crate::tag::ADDR_BITS) bits are
/// significant, matching x86-64's 48 implemented address bits; the top 16
/// bits are available for tags (see the [`tag`](crate::tag) module), exactly
/// as the DSS queue repurposes pointer bits for `ENQ_PREP_TAG` et al.
///
/// # Examples
///
/// ```
/// use dss_pmem::PAddr;
///
/// let a = PAddr::from_index(42);
/// assert_eq!(a.index(), 42);
/// assert!(!a.is_null());
/// assert!(PAddr::NULL.is_null());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PAddr(u64);

impl PAddr {
    /// The NULL address (word index 0).
    pub const NULL: PAddr = PAddr(0);

    /// Creates an address from a word index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in the 48-bit address space.
    #[inline]
    pub fn from_index(index: u64) -> Self {
        assert!(
            index <= crate::tag::ADDR_MASK,
            "word index {index} exceeds the 48-bit address space"
        );
        PAddr(index)
    }

    /// Returns the word index of this address.
    #[inline]
    pub fn index(self) -> u64 {
        self.0
    }

    /// Returns `true` if this is the NULL address.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Returns the address `offset` words past `self`.
    ///
    /// Used to reach the fields of a multi-word record, e.g. a queue node's
    /// `next` pointer at offset 1.
    ///
    /// # Panics
    ///
    /// Panics if the result leaves the 48-bit address space, or if `self` is
    /// NULL (offsetting NULL is always a bug).
    #[inline]
    pub fn offset(self, offset: u64) -> Self {
        assert!(!self.is_null(), "cannot offset the NULL address");
        PAddr::from_index(self.0 + offset)
    }

    /// Reinterprets a raw word value as an address, discarding tag bits.
    ///
    /// This is how algorithms turn a value loaded from persistent memory
    /// back into a pointer; see [`tag::addr_of`](crate::tag::addr_of).
    #[inline]
    pub fn from_word(word: u64) -> Self {
        PAddr(word & crate::tag::ADDR_MASK)
    }

    /// Returns this address as a raw (untagged) word value.
    #[inline]
    pub fn to_word(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for PAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "PAddr(NULL)")
        } else {
            write!(f, "PAddr({})", self.0)
        }
    }
}

impl fmt::Display for PAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_index_zero() {
        assert_eq!(PAddr::NULL.index(), 0);
        assert!(PAddr::NULL.is_null());
        assert!(!PAddr::from_index(1).is_null());
    }

    #[test]
    fn offset_reaches_fields() {
        let base = PAddr::from_index(10);
        assert_eq!(base.offset(0), base);
        assert_eq!(base.offset(2).index(), 12);
    }

    #[test]
    #[should_panic(expected = "NULL")]
    fn offset_null_panics() {
        let _ = PAddr::NULL.offset(1);
    }

    #[test]
    #[should_panic(expected = "48-bit")]
    fn from_index_rejects_tagged_range() {
        let _ = PAddr::from_index(1 << 48);
    }

    #[test]
    fn from_word_strips_tags() {
        let word = 42 | crate::tag::ENQ_PREP;
        assert_eq!(PAddr::from_word(word), PAddr::from_index(42));
    }

    #[test]
    fn word_round_trip() {
        let a = PAddr::from_index(12345);
        assert_eq!(PAddr::from_word(a.to_word()), a);
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", PAddr::NULL), "PAddr(NULL)");
        assert_eq!(format!("{:?}", PAddr::from_index(3)), "PAddr(3)");
    }
}
