//! Crash-point injection.
//!
//! A crash sweep ("inject a crash at every instruction boundary") needs a way
//! to stop a thread mid-operation without instrumenting algorithm code. The
//! pool primitives call [`step`] once per memory operation; when the current
//! thread has an armed plan the counter decrements and, on reaching zero, the
//! thread unwinds with a [`CrashSignal`] panic payload. The harness catches
//! the unwind (`std::panic::catch_unwind`), then calls
//! [`PmemPool::crash`](crate::PmemPool::crash) to discard volatile state.
//!
//! The plan is thread-local: only the thread that called
//! [`arm_crash_after`](crate::PmemPool::arm_crash_after) is interrupted,
//! which is exactly what a sweep over one victim operation needs. A
//! system-wide crash is then simulated by stopping the remaining threads
//! cooperatively and calling `crash` on the pool.

use std::cell::Cell;

thread_local! {
    /// Remaining pmem operations before this thread crashes; 0 = disarmed.
    static CRASH_COUNTDOWN: Cell<u64> = const { Cell::new(0) };
}

/// Panic payload used to simulate a crash of the current thread.
///
/// Algorithms never observe this type; it exists so a harness can tell a
/// simulated crash apart from a genuine bug:
///
/// ```
/// use dss_pmem::{CrashSignal, PmemPool, PAddr};
///
/// let pool = PmemPool::with_capacity(8);
/// pool.arm_crash_after(1);
/// let unwind = std::panic::catch_unwind(|| {
///     pool.store(PAddr::from_index(1), 5); // 1st op: crashes here
/// });
/// let payload = unwind.unwrap_err();
/// assert!(payload.downcast_ref::<CrashSignal>().is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSignal;

/// Arms the current thread to crash after `ops` more pmem operations.
pub(crate) fn arm(ops: u64) {
    silence_crash_signal_reports();
    CRASH_COUNTDOWN.with(|c| c.set(ops));
}

/// Installs (once, process-wide) a panic hook that suppresses the default
/// "thread panicked" report for [`CrashSignal`] payloads — simulated
/// crashes are expected and caught, and their traces would drown real
/// failures in harness output. All other panics report as usual.
fn silence_crash_signal_reports() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashSignal>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Disarms any pending crash plan for the current thread.
pub(crate) fn disarm() {
    CRASH_COUNTDOWN.with(|c| c.set(0));
}

/// Returns the number of operations remaining before the armed crash, or 0.
pub(crate) fn remaining() -> u64 {
    CRASH_COUNTDOWN.with(|c| c.get())
}

/// Called by every pool primitive; panics with [`CrashSignal`] when the
/// armed countdown expires.
#[inline]
pub(crate) fn step() {
    CRASH_COUNTDOWN.with(|c| {
        let n = c.get();
        if n > 0 {
            if n == 1 {
                c.set(0);
                std::panic::panic_any(CrashSignal);
            }
            c.set(n - 1);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn countdown_fires_exactly_once() {
        arm(3);
        step();
        step();
        let r = std::panic::catch_unwind(step);
        assert!(r.unwrap_err().downcast_ref::<CrashSignal>().is_some());
        // Disarmed afterwards: further steps are harmless.
        step();
        step();
    }

    #[test]
    fn disarm_cancels() {
        arm(1);
        disarm();
        step(); // must not panic
        assert_eq!(remaining(), 0);
    }
}
