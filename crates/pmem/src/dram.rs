//! The zero-overhead DRAM backend.

use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};

use crate::seg::{self, Layout, PlacementPolicy, SegmentDirectory};
use crate::{FlushGranularity, Memory, PAddr};

/// A pool of plain sequentially consistent `AtomicU64` words: no persisted
/// shadow, no dirty bits, no crash hooks, no statistics.
///
/// This is the peak-throughput baseline backend: running the same algorithm
/// on a [`DramPool`] and a [`PmemPool`](crate::PmemPool) separates the
/// algorithm's own cost from the simulator's bookkeeping (experiment E8).
/// [`Memory::flush`] and [`Memory::fence`] are free-function no-ops — DRAM
/// has no persistence domain to maintain — so the flush-heavy detectable
/// algorithms keep their instruction sequence but pay nothing for it.
///
/// Like [`PmemPool`](crate::PmemPool), the pool grows on demand through a
/// lock-free segment directory (see [`crate::seg`]).
///
/// # Examples
///
/// ```
/// use dss_pmem::{DramPool, FlushGranularity, Memory, PAddr};
///
/// let pool = DramPool::new(16);
/// let a = PAddr::from_index(3);
/// assert_eq!(pool.cas(a, 0, 10), Ok(0));
/// pool.flush(a); // no-op: nothing to persist
/// assert_eq!(pool.load(a), 10);
///
/// // Or through the backend-generic constructor:
/// let pool = <DramPool as Memory>::create(16, FlushGranularity::Line);
/// assert!(pool.capacity() >= 16);
/// ```
pub struct DramPool {
    dir: SegmentDirectory<AtomicU64>,
    granularity: FlushGranularity,
}

impl DramPool {
    /// Creates a zero-initialised pool with `words` words of initial
    /// capacity; grows on demand past it.
    ///
    /// # Panics
    ///
    /// Panics if `words` is 0 or exceeds the 48-bit address space.
    pub fn new(words: usize) -> Self {
        <Self as Memory>::create(words, FlushGranularity::default())
    }

    #[inline]
    fn segment(&self, slot: usize) -> &[AtomicU64] {
        self.dir.get_or_init(slot, || {
            (0..self.dir.layout().len(slot)).map(|_| AtomicU64::new(0)).collect()
        })
    }

    #[inline]
    fn word(&self, addr: PAddr) -> &AtomicU64 {
        let (slot, off) = self.dir.locate(addr.index());
        &self.segment(slot)[off]
    }
}

impl Memory for DramPool {
    fn create(words: usize, granularity: FlushGranularity) -> Self {
        let pool = DramPool { dir: SegmentDirectory::new(Layout::new(words)), granularity };
        pool.segment(0);
        pool
    }

    #[inline]
    fn load(&self, addr: PAddr) -> u64 {
        self.word(addr).load(SeqCst)
    }

    #[inline]
    fn store(&self, addr: PAddr, value: u64) {
        self.word(addr).store(value, SeqCst);
    }

    #[inline]
    fn cas(&self, addr: PAddr, expected: u64, new: u64) -> Result<u64, u64> {
        self.word(addr).compare_exchange(expected, new, SeqCst, SeqCst)
    }

    #[inline]
    fn flush(&self, _addr: PAddr) {}

    #[inline]
    fn fence(&self) {}

    fn granularity(&self) -> FlushGranularity {
        self.granularity
    }

    fn capacity(&self) -> usize {
        self.dir.materialised_words() as usize
    }

    fn reserve(&self, words: usize) {
        if words == 0 {
            return;
        }
        let last = self.dir.layout().slot_of(words as u64 - 1);
        for slot in 0..=last {
            self.segment(slot);
        }
    }

    #[inline]
    fn peek(&self, addr: PAddr) -> u64 {
        self.word(addr).load(SeqCst)
    }

    fn set_placement(&self, policy: PlacementPolicy) {
        self.dir.set_policy(policy);
    }

    fn placement(&self) -> PlacementPolicy {
        self.dir.policy()
    }

    fn plan_regions(&self, first_free: u64, region_words: &[u64]) -> Vec<Range<u64>> {
        seg::plan_with(self.dir.layout(), self.dir.policy(), first_free, region_words)
    }
}

impl fmt::Debug for DramPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DramPool").field("capacity", &self.capacity()).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(i: u64) -> PAddr {
        PAddr::from_index(i)
    }

    #[test]
    fn load_store_cas_roundtrip() {
        let p = DramPool::new(16);
        p.store(addr(1), 42);
        assert_eq!(p.load(addr(1)), 42);
        assert_eq!(p.cas(addr(1), 42, 43), Ok(42));
        assert_eq!(p.cas(addr(1), 42, 44), Err(43));
        assert_eq!(p.peek(addr(1)), 43);
    }

    #[test]
    fn flush_and_fence_are_noops() {
        let p = DramPool::new(16);
        p.store(addr(2), 5);
        p.flush(addr(2));
        p.fence();
        assert_eq!(p.load(addr(2)), 5);
        assert_eq!(p.stats().total(), 0, "dram backend counts nothing");
    }

    #[test]
    fn grows_past_initial_capacity() {
        let p = DramPool::new(8);
        let far = addr(100_000);
        p.store(far, 9);
        assert_eq!(p.load(far), 9);
        assert!(p.capacity() > 100_000);
    }

    #[test]
    fn reserve_materialises() {
        let p = DramPool::new(8);
        p.reserve(4096);
        assert!(p.capacity() >= 4096);
    }

    #[test]
    fn concurrent_cas_is_atomic() {
        use std::sync::Arc;
        let p = Arc::new(DramPool::new(8));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let p = Arc::clone(&p);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        loop {
                            let cur = p.load(addr(1));
                            if p.cas(addr(1), cur, cur + 1).is_ok() {
                                break;
                            }
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(p.load(addr(1)), 4000);
    }

    #[test]
    fn debug_is_nonempty() {
        let p = DramPool::new(8);
        assert!(format!("{p:?}").contains("DramPool"));
    }
}
