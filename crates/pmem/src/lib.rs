//! Software persistent-memory simulator.
//!
//! This crate emulates the memory system assumed by Li & Golab's *Detectable
//! Sequential Specifications for Recoverable Shared Objects* (DISC 2021): a
//! byte-addressable persistent main memory (Intel Optane DCPMM in the paper)
//! sitting below a **volatile** CPU cache, accessed with sequentially
//! consistent 64-bit atomic operations and explicit persistence instructions
//! (`CLWB` + `SFENCE`, wrapped by PMDK's `pmem_persist`).
//!
//! The simulator models exactly the ordering contract those instructions
//! provide, and nothing more:
//!
//! * Every 64-bit word in a [`PmemPool`] has a *volatile* value — what
//!   [`PmemPool::load`], [`PmemPool::store`] and [`PmemPool::cas`] observe —
//!   and a *persisted* shadow — what survives a crash.
//! * [`PmemPool::flush`] copies volatile → persisted for the addressed word
//!   (or its whole 64-byte cache line, see [`FlushGranularity`]), modelling
//!   `pmem_persist`.
//! * [`PmemPool::crash`] discards all unflushed state: volatile values revert
//!   to the persisted shadows. A [`WritebackAdversary`] may first persist an
//!   arbitrary subset of dirty words, modelling spontaneous cache-line
//!   eviction, which real hardware is always permitted to perform.
//!
//! On top of the raw pool the crate provides the pieces a recoverable data
//! structure needs:
//!
//! * [`PAddr`] — word addresses with NULL, plus [`tag`] helpers for packing
//!   16 tag bits above a 48-bit address, as the DSS queue does (the paper's
//!   footnote 5).
//! * Crash-point injection ([`PmemPool::arm_crash_after`]) so a test harness
//!   can enumerate *every* instruction boundary as a crash point without
//!   instrumenting algorithm code.
//! * Operation statistics ([`Stats`]) for flush-count ablations.
//! * A fixed-size node allocator with per-thread pools ([`NodePool`]) and
//!   epoch-based reclamation ([`Ebr`]), mirroring the paper's evaluation
//!   setup ("each thread pre-allocates a fixed size pool of queue nodes …
//!   dequeued nodes are returned to the free pool using epoch-based
//!   reclamation").
//!
//! # Quick example
//!
//! ```
//! use dss_pmem::{PmemPool, PAddr, WritebackAdversary};
//!
//! let pool = PmemPool::with_capacity(64);
//! let a = PAddr::from_index(1);
//! pool.store(a, 7);          // volatile only
//! let b = PAddr::from_index(9); // a different cache line than `a`
//! pool.store(b, 9);
//! pool.flush(b);             // persisted
//! pool.crash(&WritebackAdversary::None);
//! assert_eq!(pool.load(a), 0);   // lost
//! assert_eq!(pool.load(b), 9);   // survived
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod addr;
mod alloc;
mod ebr;
mod hook;
mod pool;
mod stats;

pub mod tag;

pub use addr::PAddr;
pub use alloc::NodePool;
pub use ebr::{Ebr, EbrGuard};
pub use hook::CrashSignal;
pub use pool::{FlushGranularity, PmemPool, WritebackAdversary, WORDS_PER_LINE};
pub use stats::{Stats, StatsSnapshot};
