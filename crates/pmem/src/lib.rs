//! The layered memory substrate: pluggable [`Memory`] backends under every
//! algorithm in this workspace.
//!
//! Li & Golab's *Detectable Sequential Specifications for Recoverable
//! Shared Objects* (DISC 2021) assumes a byte-addressable persistent main
//! memory (Intel Optane DCPMM in the paper) below a **volatile** CPU cache,
//! accessed with sequentially consistent 64-bit atomics and explicit
//! persistence instructions (`CLWB` + `SFENCE`, wrapped by PMDK's
//! `pmem_persist`). This crate provides that memory model as three layers:
//!
//! # Layer 1 — the [`Memory`] trait
//!
//! The primitive contract (`load`/`store`/`cas`/`flush`/`fence`, capacity
//! and reservation hooks) every backend implements, with two
//! implementations:
//!
//! * [`PmemPool`] — the crash-testable simulator. Every word has a
//!   *volatile* value and a *persisted* shadow; [`PmemPool::flush`] copies
//!   volatile → persisted (whole cache lines under
//!   [`FlushGranularity::Line`]); [`PmemPool::crash`] discards unflushed
//!   state after a [`WritebackAdversary`] persists an arbitrary subset of
//!   dirty words (spontaneous cache eviction, which hardware may always
//!   perform).
//! * [`DramPool`] — plain `AtomicU64`s with no shadow, no dirty bits, no
//!   hooks, no stats; `flush`/`fence` are no-ops. Running the same
//!   algorithm on both backends separates algorithmic cost from simulator
//!   cost.
//!
//! Crash simulation is deliberately **not** in the trait: arming crash
//! points, adversarial writeback, and persisted-state inspection are
//! inherent [`PmemPool`] APIs, used by harnesses that pick the concrete
//! simulator type.
//!
//! # Layer 2 — pool internals
//!
//! * **Growth**: both backends store words in a lock-free directory of
//!   doubling segments, so pools grow on demand instead of panicking past
//!   a preallocation guess; established words never move.
//! * **Sharded statistics**: operation counters ([`Stats`]) are per-thread
//!   cache-line-padded shards aggregated on snapshot, so counting doesn't
//!   bounce a shared cache line between cores.
//! * **Instrumentation as a mode**: crash-point hooks and statistics are a
//!   [`PoolMode`]; a [`PoolMode::Raw`] pool pays zero per-operation
//!   instrumentation cost.
//!
//! # Layer 3 — allocation and reclamation
//!
//! * [`PAddr`] — word addresses with NULL, plus [`tag`] helpers for packing
//!   16 tag bits above a 48-bit address, as the DSS queue does (the paper's
//!   footnote 5).
//! * [`NodePool`] — a fixed-size node allocator with per-thread free lists,
//!   and [`Ebr`] — epoch-based reclamation, mirroring the paper's
//!   evaluation setup ("each thread pre-allocates a fixed size pool of
//!   queue nodes … dequeued nodes are returned to the free pool using
//!   epoch-based reclamation").
//!
//! # Quick example
//!
//! ```
//! use dss_pmem::{Memory, PmemPool, DramPool, FlushGranularity, PAddr, WritebackAdversary};
//!
//! // Backend-generic code sees only the Memory trait:
//! fn bump<M: Memory>(mem: &M, a: PAddr) -> u64 {
//!     let v = mem.load(a) + 1;
//!     mem.store(a, v);
//!     mem.flush(a);
//!     v
//! }
//!
//! let pmem = PmemPool::with_capacity(64);
//! let dram = DramPool::new(64);
//! let a = PAddr::from_index(1);
//! assert_eq!(bump(&pmem, a), 1);
//! assert_eq!(bump(&dram, a), 1);
//!
//! // Crash testing is pmem-specific:
//! pmem.store(a, 9); // unflushed
//! pmem.crash(&WritebackAdversary::None);
//! assert_eq!(pmem.load(a), 1); // the flushed 1 survived, the 9 did not
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod addr;
mod alloc;
mod backoff;
mod dram;
mod ebr;
mod hook;
mod memory;
mod pool;
mod registry;
mod seg;
mod stats;
mod sync;

pub mod tag;

pub use addr::PAddr;
pub use alloc::NodePool;
pub use backoff::{Backoff, BackoffTuner};
pub use dram::DramPool;
pub use ebr::{Ebr, EbrGuard};
pub use hook::CrashSignal;
pub use memory::Memory;
pub use pool::{FlushGranularity, PmemPool, PoolMode, WritebackAdversary, WORDS_PER_LINE};
pub use registry::{Registry, SlotError, SlotState, ThreadHandle};
pub use seg::{plan_regions, region_segments, AppKind, AttachError, PlacementPolicy};
pub use stats::{Stats, StatsSnapshot};
