//! The persistent thread-slot registry: on-pool thread identity.
//!
//! The paper's model (§2) assumes a dense, crash-surviving set of thread
//! IDs; its §3.3 independent-recovery variant additionally assumes a
//! recovering thread can name *its own* slot without global coordination.
//! This module makes both assumptions operational: thread identity lives
//! **in the pool**, as a fixed array of cache-line-padded slots, and every
//! data structure hands out [`ThreadHandle`]s minted here instead of
//! trusting caller-supplied `usize` indices.
//!
//! # Layout
//!
//! The registry occupies `region_words(nslots)` words, line-aligned, at a
//! base chosen by the owning structure (always *after* its existing
//! regions, so persisted layouts of pre-registry pools are unchanged):
//!
//! ```text
//! header line:  [ R_GEN | nslots | 0.. ]
//! slot i line:  [ state word | lease | nonce | pid | 0.. ]
//! state word =  (slot_gen << 2) | state     state ∈ {FREE=0, LIVE=1}
//! ```
//!
//! `R_GEN` is the *registry generation*, bumped once per recovery.
//! **ORPHANED is derived, not stored**: a slot is orphaned iff its state
//! is `LIVE` and its `slot_gen < R_GEN` — so the FREE→LIVE→ORPHANED
//! transition at a crash needs no code to run at crash time, and a crash
//! *during* recovery simply leaves the slot orphaned for the next pass.
//!
//! # Slot lifecycle
//!
//! ```text
//! FREE --acquire--> LIVE(gen = R_GEN) --[crash bumps R_GEN]--> ORPHANED
//!   ^                    |                                        |
//!   '------release-------'               adopt: re-LIVE at new gen'
//! ```
//!
//! [`acquire`](Registry::acquire), [`release`](Registry::release) and
//! [`adopt`](Registry::adopt) are lock-free (one pool CAS on the state
//! word decides each transition). Every registry mutation is flushed and
//! drained immediately, so the registry is durable under all
//! coalescing/per-address knob combinations.
//!
//! # Recovery
//!
//! [`begin_recovery`](Registry::begin_recovery) bumps `R_GEN` (turning
//! every `LIVE` slot ORPHANED) **at most once per pool crash** — it keys
//! off [`Memory::crash_generation`], so calling `recover()` twice without
//! an intervening crash does not re-orphan slots the first pass already
//! adopted. The bump writes `max(R_GEN, max slot_gen) + 1`, which keeps
//! orphan detection sound even if a previous recovery's `R_GEN` write was
//! itself lost to the crash while some adoptions persisted.
//!
//! # Cross-process
//!
//! Nothing in a slot transition is process-local: every transition is one
//! CAS on a plain pool word (futex-free — no locks, no thread parking, no
//! in-DRAM ownership table), so the same protocol works when the pool is
//! a file shared across process lifetimes. A lease is keyed by
//! `(pid, nonce)`: [`mint`](Registry::acquire) records the owning process
//! id at `W_PID` and derives the nonce from a per-process counter mixed
//! with that pid, so leases minted by different processes on the same
//! pool file never collide. When the owner is a dead *process* (SIGKILL,
//! power loss), [`PmemPool::attach`](crate::PmemPool::attach) bumps the
//! crash generation, [`Registry::attach`] rebinds to the formatted region
//! without reformatting it, and the ordinary
//! `begin_recovery`/`adopt_orphans` pass reclaims the dead process's
//! slots — exactly the dead-thread path, because ORPHANED never cared
//! what kind of owner died.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::Arc;

use crate::{Memory, PAddr, PmemPool, WORDS_PER_LINE};

const STATE_FREE: u64 = 0;
const STATE_LIVE: u64 = 1;
const STATE_MASK: u64 = 0b11;

// Slot-line word offsets.
const W_STATE: u64 = 0;
const W_LEASE: u64 = 1;
const W_NONCE: u64 = 2;
const W_PID: u64 = 3;

/// Sentinel for "no crash generation orphaned yet".
const NEVER: u64 = u64::MAX;

/// Process-unique registry instance ids, so a handle minted by one
/// registry is recognisably foreign to another.
static REGISTRY_IDS: AtomicU64 = AtomicU64::new(1);

/// A registry slot's observable state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SlotState {
    /// Unowned; [`Registry::acquire`] may claim it.
    Free,
    /// Owned by a thread of the current registry generation.
    Live,
    /// Owned at crash time and not yet adopted: its generation predates
    /// the current `R_GEN`.
    Orphaned,
}

/// A typed slot-registry error — the replacement for the old
/// `assert!(tid < nthreads)` aborts: a bad slot or handle is an error
/// surfaced through the registry, never a panic in an operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SlotError {
    /// The named slot index does not exist in this registry.
    OutOfRange {
        /// The offending slot index.
        slot: usize,
        /// The registry's slot count.
        nslots: usize,
    },
    /// Every slot is LIVE or ORPHANED; no identity can be minted.
    Exhausted,
    /// [`Registry::adopt`] on a slot that is not orphaned.
    NotOrphaned {
        /// The slot that was not orphaned.
        slot: usize,
    },
    /// The handle's lease is no longer current (the slot was released
    /// and re-acquired, or adopted, since the handle was minted).
    StaleHandle {
        /// The handle's slot index.
        slot: usize,
    },
    /// The handle was minted by a different registry instance.
    ForeignHandle,
}

impl fmt::Display for SlotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlotError::OutOfRange { slot, nslots } => {
                write!(f, "slot {slot} out of range (registry has {nslots} slots)")
            }
            SlotError::Exhausted => f.write_str("no free thread slot available"),
            SlotError::NotOrphaned { slot } => write!(f, "slot {slot} is not orphaned"),
            SlotError::StaleHandle { slot } => {
                write!(f, "stale handle for slot {slot} (lease superseded)")
            }
            SlotError::ForeignHandle => f.write_str("handle minted by a different registry"),
        }
    }
}

impl std::error::Error for SlotError {}

/// A thread's registry-minted identity: the slot index every per-thread
/// resource (`X[slot]`, node pools, EBR slot, op counters) keys off.
///
/// Handles are **valid by construction** — only the registry mints them,
/// always with `slot < nslots` — so operations consume them without
/// re-validation and without touching the pool (per-operation pmem-op
/// counts are unchanged by the handle plumbing). The nonce ties a handle
/// to one lease of its slot: [`Registry::release`] rejects a handle
/// whose lease was superseded. Operations themselves treat the handle as
/// advisory identity (the paper's model has no adversarial callers);
/// enforcement lives at the registry transitions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ThreadHandle {
    slot: u32,
    nonce: u64,
    registry: u64,
}

impl ThreadHandle {
    /// The slot index, used to index per-thread state.
    pub fn slot(&self) -> usize {
        self.slot as usize
    }

    /// The lease nonce this handle was minted under.
    pub fn nonce(&self) -> u64 {
        self.nonce
    }

    /// The minting registry's instance id.
    pub fn registry_id(&self) -> u64 {
        self.registry
    }
}

/// The persistent thread-slot registry. See the [module docs](self) for
/// layout, lifecycle, and crash semantics.
pub struct Registry<M: Memory = PmemPool> {
    pool: Arc<M>,
    base: u64,
    nslots: usize,
    id: u64,
    nonces: AtomicU64,
    /// Crash generation `begin_recovery` last bumped `R_GEN` for
    /// (volatile; `NEVER` until the first recovery of this process).
    last_bump: AtomicU64,
}

impl<M: Memory> Registry<M> {
    /// Words the registry region occupies for `nslots` slots (header line
    /// plus one line per slot).
    pub fn region_words(nslots: usize) -> u64 {
        WORDS_PER_LINE * (1 + nslots as u64)
    }

    /// Formats a fresh registry at word index `base` (must be
    /// line-aligned): generation 1, every slot FREE. All writes are
    /// flushed and drained before returning.
    ///
    /// # Panics
    ///
    /// Panics if `nslots` is zero or `base` is not line-aligned.
    pub fn create(pool: Arc<M>, base: u64, nslots: usize) -> Self {
        assert!(nslots > 0, "need at least one slot");
        assert!(base.is_multiple_of(WORDS_PER_LINE), "registry base must be line-aligned");
        let r = Registry {
            pool,
            base,
            nslots,
            id: REGISTRY_IDS.fetch_add(1, SeqCst),
            nonces: AtomicU64::new(1),
            last_bump: AtomicU64::new(NEVER),
        };
        r.pool.store(r.gen_addr(), 1);
        r.pool.store(r.gen_addr().offset(1), nslots as u64);
        r.pool.flush(r.gen_addr());
        for slot in 0..nslots {
            let a = r.slot_addr(slot);
            r.pool.store(a.offset(W_STATE), STATE_FREE);
            r.pool.store(a.offset(W_LEASE), 0);
            r.pool.store(a.offset(W_NONCE), 0);
            r.pool.store(a.offset(W_PID), 0);
            r.pool.flush(a);
        }
        r.pool.drain();
        r
    }

    /// Rebinds to a registry a previous process already formatted at
    /// `base`, validating the persisted header instead of rewriting it —
    /// slot states, leases, and owner pids are exactly as the dead
    /// process left them, which is what lets the attacher's
    /// `begin_recovery`/`adopt_orphans` pass find its orphans.
    ///
    /// # Errors
    ///
    /// [`AttachError::Corrupt`] if `base` is not line-aligned, the region
    /// was never formatted, or the slot count is implausible.
    pub fn attach(pool: Arc<M>, base: u64) -> Result<Self, crate::AttachError> {
        use crate::AttachError;
        if !base.is_multiple_of(WORDS_PER_LINE) {
            return Err(AttachError::Corrupt("registry base not line-aligned"));
        }
        let generation = pool.peek(PAddr::from_index(base));
        if generation == 0 {
            return Err(AttachError::Corrupt("registry region was never formatted"));
        }
        let nslots = pool.peek(PAddr::from_index(base + 1));
        if nslots == 0 || nslots > (1 << 20) {
            return Err(AttachError::Corrupt("implausible registry slot count"));
        }
        Ok(Registry {
            pool,
            base,
            nslots: nslots as usize,
            id: REGISTRY_IDS.fetch_add(1, SeqCst),
            nonces: AtomicU64::new(1),
            last_bump: AtomicU64::new(NEVER),
        })
    }

    fn gen_addr(&self) -> PAddr {
        PAddr::from_index(self.base)
    }

    fn slot_addr(&self, slot: usize) -> PAddr {
        PAddr::from_index(self.base + (1 + slot as u64) * WORDS_PER_LINE)
    }

    fn pack(gen: u64, state: u64) -> u64 {
        (gen << 2) | state
    }

    fn gen_of(word: u64) -> u64 {
        word >> 2
    }

    fn state_of(word: u64) -> u64 {
        word & STATE_MASK
    }

    /// The current registry generation.
    pub fn generation(&self) -> u64 {
        self.pool.load(self.gen_addr())
    }

    /// Number of slots.
    pub fn nslots(&self) -> usize {
        self.nslots
    }

    /// This registry instance's process-unique id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The observable state of `slot`.
    ///
    /// # Errors
    ///
    /// [`SlotError::OutOfRange`] if `slot >= nslots`.
    pub fn slot_state(&self, slot: usize) -> Result<SlotState, SlotError> {
        if slot >= self.nslots {
            return Err(SlotError::OutOfRange { slot, nslots: self.nslots });
        }
        let w = self.pool.load(self.slot_addr(slot).offset(W_STATE));
        Ok(match Self::state_of(w) {
            STATE_FREE => SlotState::Free,
            _ if Self::gen_of(w) < self.generation() => SlotState::Orphaned,
            _ => SlotState::Live,
        })
    }

    /// Mints a fresh handle for this slot's current lease, persisting the
    /// lease bump and nonce. The state-word CAS that claimed the slot is
    /// the linearization point; a crash between it and these writes
    /// leaves the slot LIVE (hence adoptable) with a superseded nonce,
    /// which is exactly a lease that died immediately.
    fn mint(&self, slot: usize) -> ThreadHandle {
        let a = self.slot_addr(slot);
        let nonce = self.next_nonce();
        let lease = self.pool.load(a.offset(W_LEASE)) + 1;
        self.pool.store(a.offset(W_LEASE), lease);
        self.pool.store(a.offset(W_NONCE), nonce);
        self.pool.store(a.offset(W_PID), u64::from(std::process::id()));
        self.pool.flush(a);
        self.pool.drain_line(a);
        ThreadHandle { slot: slot as u32, nonce, registry: self.id }
    }

    /// A lease nonce unique across threads *and* processes: the process
    /// id seeds the high bits before the multiplicative hash, so two
    /// processes minting on the same pool file never produce colliding
    /// leases no matter how their counters align.
    fn next_nonce(&self) -> u64 {
        let raw = self.nonces.fetch_add(1, SeqCst) ^ (u64::from(std::process::id()) << 32);
        raw.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1
    }

    /// The process id recorded by the slot's most recent lease (0 if the
    /// slot was never leased). Diagnostic: tells an adopter *which* dead
    /// process owned an orphan.
    ///
    /// # Errors
    ///
    /// [`SlotError::OutOfRange`] if `slot >= nslots`.
    pub fn slot_pid(&self, slot: usize) -> Result<u64, SlotError> {
        if slot >= self.nslots {
            return Err(SlotError::OutOfRange { slot, nslots: self.nslots });
        }
        Ok(self.pool.peek(self.slot_addr(slot).offset(W_PID)))
    }

    /// The nonce minted by the slot's most recent lease (0 if the slot was
    /// never leased). The flat-combining layer uses this to decide whether
    /// a combiner lease is stale: a lease nonce no LIVE slot carries
    /// belongs to a dead or departed holder and may be stolen.
    ///
    /// # Errors
    ///
    /// [`SlotError::OutOfRange`] if `slot >= nslots`.
    pub fn slot_nonce(&self, slot: usize) -> Result<u64, SlotError> {
        if slot >= self.nslots {
            return Err(SlotError::OutOfRange { slot, nslots: self.nslots });
        }
        Ok(self.pool.peek(self.slot_addr(slot).offset(W_NONCE)))
    }

    /// Claims the lowest FREE slot and mints a handle for it.
    ///
    /// On a fresh registry, successive acquires return slots `0, 1, 2, …`
    /// in order, so single-process callers get the dense ids the paper's
    /// figures assume.
    ///
    /// # Errors
    ///
    /// [`SlotError::Exhausted`] when no slot is FREE.
    pub fn acquire(&self) -> Result<ThreadHandle, SlotError> {
        let r_gen = self.generation();
        for slot in 0..self.nslots {
            let a = self.slot_addr(slot).offset(W_STATE);
            let w = self.pool.load(a);
            if Self::state_of(w) != STATE_FREE {
                continue;
            }
            if self.pool.cas(a, w, Self::pack(r_gen, STATE_LIVE)).is_ok() {
                self.pool.flush(a);
                return Ok(self.mint(slot));
            }
            // Lost the race for this slot; keep scanning.
        }
        Err(SlotError::Exhausted)
    }

    /// Releases a handle's slot back to FREE.
    ///
    /// # Errors
    ///
    /// [`SlotError::ForeignHandle`] for a handle from another registry,
    /// [`SlotError::StaleHandle`] if the slot's lease has moved on (the
    /// slot was already released, re-acquired, or adopted), and
    /// [`SlotError::OutOfRange`] for a corrupted slot index.
    pub fn release(&self, h: ThreadHandle) -> Result<(), SlotError> {
        if h.registry != self.id {
            return Err(SlotError::ForeignHandle);
        }
        let slot = h.slot();
        if slot >= self.nslots {
            return Err(SlotError::OutOfRange { slot, nslots: self.nslots });
        }
        let a = self.slot_addr(slot);
        if self.pool.load(a.offset(W_NONCE)) != h.nonce {
            return Err(SlotError::StaleHandle { slot });
        }
        let w = self.pool.load(a.offset(W_STATE));
        if Self::state_of(w) != STATE_LIVE {
            return Err(SlotError::StaleHandle { slot });
        }
        self.pool
            .cas(a.offset(W_STATE), w, STATE_FREE)
            .map_err(|_| SlotError::StaleHandle { slot })?;
        self.pool.flush(a.offset(W_STATE));
        self.pool.drain_line(a);
        Ok(())
    }

    /// Adopts one ORPHANED slot: re-LIVEs it at the current generation
    /// and mints a fresh handle (new lease, new nonce) for the adopter.
    ///
    /// # Errors
    ///
    /// [`SlotError::OutOfRange`] if `slot >= nslots` — the typed
    /// replacement for the old out-of-range panic — and
    /// [`SlotError::NotOrphaned`] if the slot is FREE, LIVE, or was
    /// adopted by a racing thread first.
    pub fn adopt(&self, slot: usize) -> Result<ThreadHandle, SlotError> {
        if slot >= self.nslots {
            return Err(SlotError::OutOfRange { slot, nslots: self.nslots });
        }
        let r_gen = self.generation();
        let a = self.slot_addr(slot).offset(W_STATE);
        let w = self.pool.load(a);
        if Self::state_of(w) != STATE_LIVE || Self::gen_of(w) >= r_gen {
            return Err(SlotError::NotOrphaned { slot });
        }
        self.pool
            .cas(a, w, Self::pack(r_gen, STATE_LIVE))
            .map_err(|_| SlotError::NotOrphaned { slot })?;
        self.pool.flush(a);
        Ok(self.mint(slot))
    }

    /// Adopts every ORPHANED slot (ascending slot order) and returns the
    /// minted handles. Slots a racing adopter wins are skipped.
    pub fn adopt_orphans(&self) -> Vec<ThreadHandle> {
        (0..self.nslots).filter_map(|slot| self.adopt(slot).ok()).collect()
    }

    /// Marks the crash boundary: bumps the registry generation so every
    /// LIVE slot becomes ORPHANED. Idempotent per pool crash — repeated
    /// calls without an intervening [`Memory::crash_generation`] change
    /// (including racing calls from concurrent recoverers) bump at most
    /// once, so a second `recover()` does not re-orphan slots the first
    /// already adopted.
    pub fn begin_recovery(&self) {
        let crash_gen = self.pool.crash_generation();
        let prev = self.last_bump.load(SeqCst);
        if prev == crash_gen
            || self.last_bump.compare_exchange(prev, crash_gen, SeqCst, SeqCst).is_err()
        {
            return;
        }
        // `max` over slot generations keeps orphan detection sound even
        // when a prior recovery's R_GEN write was lost to the crash while
        // some of its adoptions persisted (their slot_gen would otherwise
        // look current).
        let mut g = self.generation();
        for slot in 0..self.nslots {
            g = g.max(Self::gen_of(self.pool.load(self.slot_addr(slot).offset(W_STATE))));
        }
        self.pool.store(self.gen_addr(), g + 1);
        self.pool.flush(self.gen_addr());
        self.pool.drain_line(self.gen_addr());
    }

    /// Number of slots currently in each state: `(free, live, orphaned)`.
    pub fn census(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for slot in 0..self.nslots {
            match self.slot_state(slot).expect("slot in range") {
                SlotState::Free => counts.0 += 1,
                SlotState::Live => counts.1 += 1,
                SlotState::Orphaned => counts.2 += 1,
            }
        }
        counts
    }
}

impl<M: Memory> fmt::Debug for Registry<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("nslots", &self.nslots)
            .field("generation", &self.generation())
            .field("census", &self.census())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlushGranularity, WritebackAdversary};

    fn fresh(nslots: usize) -> Registry {
        let pool = Arc::new(PmemPool::with_granularity(
            Registry::<PmemPool>::region_words(nslots) as usize + 64,
            FlushGranularity::Line,
        ));
        Registry::create(pool, WORDS_PER_LINE, nslots)
    }

    #[test]
    fn acquire_returns_dense_slots_in_order() {
        let r = fresh(3);
        let hs: Vec<_> = (0..3).map(|_| r.acquire().unwrap()).collect();
        assert_eq!(hs.iter().map(|h| h.slot()).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(r.acquire(), Err(SlotError::Exhausted));
        assert_eq!(r.census(), (0, 3, 0));
    }

    #[test]
    fn release_frees_and_rejects_stale_handles() {
        let r = fresh(2);
        let h0 = r.acquire().unwrap();
        r.release(h0).unwrap();
        assert_eq!(r.slot_state(0).unwrap(), SlotState::Free);
        // Double release: the lease is gone.
        assert_eq!(r.release(h0), Err(SlotError::StaleHandle { slot: 0 }));
        // Re-acquire gets slot 0 back with a fresh lease; the old handle
        // still doesn't release it.
        let h0b = r.acquire().unwrap();
        assert_eq!(h0b.slot(), 0);
        assert_ne!(h0b.nonce(), h0.nonce());
        assert_eq!(r.release(h0), Err(SlotError::StaleHandle { slot: 0 }));
        r.release(h0b).unwrap();
    }

    #[test]
    fn foreign_and_out_of_range_are_typed_errors() {
        let r1 = fresh(1);
        let r2 = fresh(1);
        let h = r1.acquire().unwrap();
        assert_eq!(r2.release(h), Err(SlotError::ForeignHandle));
        assert_eq!(r1.adopt(5), Err(SlotError::OutOfRange { slot: 5, nslots: 1 }));
        assert!(r1.slot_state(9).is_err());
    }

    #[test]
    fn crash_orphans_live_slots_and_adopt_reclaims_them() {
        let r = fresh(3);
        let _h0 = r.acquire().unwrap();
        let _h1 = r.acquire().unwrap();
        r.pool.crash(&WritebackAdversary::None);
        // Before recovery marks the boundary, the slots still read LIVE.
        assert_eq!(r.census(), (1, 2, 0));
        r.begin_recovery();
        assert_eq!(r.census(), (1, 0, 2));
        // Adopting a FREE slot is a typed error; orphans adopt fine.
        assert_eq!(r.adopt(2), Err(SlotError::NotOrphaned { slot: 2 }));
        let adopted = r.adopt_orphans();
        assert_eq!(adopted.iter().map(|h| h.slot()).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(r.census(), (1, 2, 0));
    }

    #[test]
    fn begin_recovery_is_idempotent_per_crash() {
        let r = fresh(2);
        let _h = r.acquire().unwrap();
        r.pool.crash(&WritebackAdversary::None);
        r.begin_recovery();
        let g = r.generation();
        let adopted = r.adopt_orphans();
        assert_eq!(adopted.len(), 1);
        // A second recovery pass without a new crash must not re-orphan.
        r.begin_recovery();
        assert_eq!(r.generation(), g);
        assert!(r.adopt_orphans().is_empty());
        // A new crash re-arms the bump.
        r.pool.crash(&WritebackAdversary::None);
        r.begin_recovery();
        assert_eq!(r.generation(), g + 1);
        assert_eq!(r.adopt_orphans().len(), 1);
    }

    #[test]
    fn registry_state_survives_crash_under_all_knob_combos() {
        for (coalesce, per_address) in [(false, false), (true, false), (true, true)] {
            let r = fresh(2);
            r.pool.set_coalescing(coalesce);
            r.pool.set_per_address_drains(per_address);
            let h = r.acquire().unwrap();
            let _ = h;
            let _h1 = r.acquire().unwrap();
            r.release(h).unwrap();
            // Even the all-dropping adversary cannot revert the registry:
            // every transition drained before returning.
            r.pool.crash(&WritebackAdversary::All);
            assert_eq!(
                r.slot_state(0).unwrap(),
                SlotState::Free,
                "coalesce={coalesce} per_address={per_address}"
            );
            r.begin_recovery();
            assert_eq!(
                r.slot_state(1).unwrap(),
                SlotState::Orphaned,
                "coalesce={coalesce} per_address={per_address}"
            );
            let h1 = r.adopt(1).unwrap();
            assert_eq!(h1.slot(), 1);
        }
    }

    #[test]
    fn attach_rebinds_without_reformatting() {
        let r = fresh(3);
        let h0 = r.acquire().unwrap();
        let _h1 = r.acquire().unwrap();
        assert_eq!(r.slot_pid(0).unwrap(), u64::from(std::process::id()));
        // Simulate the owner dying and a fresh process attaching: the pool
        // crashes, then a NEW registry instance binds to the same region.
        r.pool.crash(&WritebackAdversary::None);
        let r2 = Registry::attach(Arc::clone(&r.pool), WORDS_PER_LINE).unwrap();
        assert_eq!(r2.nslots(), 3, "slot count read back from the header");
        assert_ne!(r2.id(), r.id(), "a fresh instance, not a reformat");
        r2.begin_recovery();
        assert_eq!(r2.census(), (1, 0, 2), "dead owner's slots are orphans");
        let adopted = r2.adopt_orphans();
        assert_eq!(adopted.len(), 2);
        // Handles minted pre-crash belong to the old instance.
        assert_eq!(r2.release(h0), Err(SlotError::ForeignHandle));
    }

    #[test]
    fn attach_rejects_unformatted_and_unaligned_regions() {
        let pool = Arc::new(PmemPool::with_capacity(256));
        assert!(Registry::<PmemPool>::attach(Arc::clone(&pool), 3).is_err());
        assert!(
            Registry::<PmemPool>::attach(pool, WORDS_PER_LINE).is_err(),
            "generation 0 means never formatted"
        );
    }

    #[test]
    fn concurrent_acquire_release_is_linearizable() {
        let r = std::sync::Arc::new(fresh(4));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let r = std::sync::Arc::clone(&r);
                s.spawn(move || {
                    for _ in 0..50 {
                        if let Ok(h) = r.acquire() {
                            r.release(h).unwrap();
                        }
                    }
                });
            }
        });
        assert_eq!(r.census(), (4, 0, 0), "every lease returned");
    }
}
