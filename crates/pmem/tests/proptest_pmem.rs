//! Property-based tests of the persistent-memory simulator's crash
//! semantics — the foundation every algorithm above it relies on.

use std::collections::HashMap;

use proptest::prelude::*;

use dss_pmem::{FlushGranularity, PAddr, PmemPool, WritebackAdversary, WORDS_PER_LINE};

const WORDS: u64 = 64;

#[derive(Clone, Copy, Debug)]
enum Op {
    Store(u64, u64),
    Cas(u64, u64, u64),
    Flush(u64),
    Fence,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1..WORDS, 0u64..50).prop_map(|(a, v)| Op::Store(a, v)),
        (1..WORDS, 0u64..50, 0u64..50).prop_map(|(a, e, n)| Op::Cas(a, e, n)),
        (1..WORDS).prop_map(Op::Flush),
        Just(Op::Fence),
    ]
}

/// A word-level reference model of the volatile/persisted contract.
#[derive(Default)]
struct Model {
    volatile: HashMap<u64, u64>,
    persisted: HashMap<u64, u64>,
}

impl Model {
    fn apply(&mut self, op: Op, granularity: FlushGranularity) {
        match op {
            Op::Store(a, v) => {
                self.volatile.insert(a, v);
            }
            Op::Cas(a, e, n) => {
                let cur = self.volatile.get(&a).copied().unwrap_or(0);
                if cur == e {
                    self.volatile.insert(a, n);
                }
            }
            Op::Flush(a) => match granularity {
                FlushGranularity::Word => {
                    let v = self.volatile.get(&a).copied().unwrap_or(0);
                    self.persisted.insert(a, v);
                }
                FlushGranularity::Line => {
                    let base = a / WORDS_PER_LINE * WORDS_PER_LINE;
                    for i in base..(base + WORDS_PER_LINE).min(WORDS) {
                        let v = self.volatile.get(&i).copied().unwrap_or(0);
                        self.persisted.insert(i, v);
                    }
                }
            },
            Op::Fence => {}
        }
    }
}

proptest! {
    /// Single-threaded runs agree with the reference model before and
    /// after a crash with no spontaneous writeback.
    #[test]
    fn matches_reference_model(
        ops in prop::collection::vec(arb_op(), 0..80),
        line in proptest::bool::ANY,
    ) {
        let granularity = if line { FlushGranularity::Line } else { FlushGranularity::Word };
        let pool = PmemPool::with_granularity(WORDS as usize, granularity);
        let mut model = Model::default();
        for op in &ops {
            match *op {
                Op::Store(a, v) => pool.store(PAddr::from_index(a), v),
                Op::Cas(a, e, n) => {
                    let _ = pool.cas(PAddr::from_index(a), e, n);
                }
                Op::Flush(a) => pool.flush(PAddr::from_index(a)),
                Op::Fence => pool.fence(),
            }
            model.apply(*op, granularity);
        }
        // Volatile state agrees.
        for a in 1..WORDS {
            prop_assert_eq!(
                pool.load(PAddr::from_index(a)),
                model.volatile.get(&a).copied().unwrap_or(0),
                "volatile mismatch at {}", a
            );
        }
        // Crash: only the persisted shadows survive.
        pool.crash(&WritebackAdversary::None);
        for a in 1..WORDS {
            prop_assert_eq!(
                pool.load(PAddr::from_index(a)),
                model.persisted.get(&a).copied().unwrap_or(0),
                "persisted mismatch at {}", a
            );
        }
    }

    /// Under ANY adversary, each post-crash value is either the persisted
    /// shadow or the last volatile value — never anything else — and a
    /// second crash with no writes in between changes nothing.
    #[test]
    fn adversary_only_picks_between_old_and_new(
        ops in prop::collection::vec(arb_op(), 0..60),
        seed in 0u64..1000,
        prob in 0.0f64..=1.0,
    ) {
        let pool = PmemPool::with_capacity(WORDS as usize);
        let mut model = Model::default();
        for op in &ops {
            match *op {
                Op::Store(a, v) => pool.store(PAddr::from_index(a), v),
                Op::Cas(a, e, n) => {
                    let _ = pool.cas(PAddr::from_index(a), e, n);
                }
                Op::Flush(a) => pool.flush(PAddr::from_index(a)),
                Op::Fence => pool.fence(),
            }
            model.apply(*op, FlushGranularity::Line);
        }
        pool.crash(&WritebackAdversary::Random { seed, prob });
        let mut after = Vec::new();
        for a in 1..WORDS {
            let got = pool.load(PAddr::from_index(a));
            let old = model.persisted.get(&a).copied().unwrap_or(0);
            let new = model.volatile.get(&a).copied().unwrap_or(0);
            prop_assert!(
                got == old || got == new,
                "word {}: {} is neither persisted {} nor volatile {}", a, got, old, new
            );
            after.push(got);
        }
        // Idempotence of crash when nothing was written in between.
        pool.crash(&WritebackAdversary::Random { seed: seed + 1, prob });
        for (i, a) in (1..WORDS).enumerate() {
            prop_assert_eq!(pool.load(PAddr::from_index(a)), after[i]);
        }
    }

    /// Flush-then-crash round trip: a flushed word always survives,
    /// whatever else happened.
    #[test]
    fn flushed_words_always_survive(
        writes in prop::collection::vec((1..WORDS, 0u64..100), 1..20),
        seed in 0u64..100,
    ) {
        let pool = PmemPool::with_granularity(WORDS as usize, FlushGranularity::Word);
        let mut last_flushed: HashMap<u64, u64> = HashMap::new();
        for (a, v) in &writes {
            pool.store(PAddr::from_index(*a), *v);
            pool.flush(PAddr::from_index(*a));
            last_flushed.insert(*a, *v);
        }
        pool.crash(&WritebackAdversary::Random { seed, prob: 0.5 });
        for (a, v) in last_flushed {
            prop_assert_eq!(pool.load(PAddr::from_index(a)), v);
        }
    }
}
