//! A chunked bitset keying the linearization search's memoization.
//!
//! The classic checker tracked processed records in a single `u64`, capping
//! every check at 63 operations. Windows produced by cut-point segmentation
//! are usually tiny but have no hard bound, so the search keys its memo on
//! this growable bitset instead. One inline word covers windows up to 64
//! operations without allocating.

use std::hash::{Hash, Hasher};

/// A fixed-capacity set of record indices, cheap to clone and hash.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BitSet {
    /// Windows of at most 64 records: one inline word, no allocation.
    Small(u64),
    /// Larger windows: one word per 64 records.
    Large(Vec<u64>),
}

impl BitSet {
    /// An empty set with capacity for `n` indices.
    pub fn new(n: usize) -> Self {
        if n <= 64 {
            BitSet::Small(0)
        } else {
            BitSet::Large(vec![0; n.div_ceil(64)])
        }
    }

    /// Whether index `i` is in the set.
    pub fn test(&self, i: usize) -> bool {
        match self {
            BitSet::Small(w) => w & (1 << i) != 0,
            BitSet::Large(ws) => ws[i / 64] & (1 << (i % 64)) != 0,
        }
    }

    /// Inserts index `i`.
    pub fn set(&mut self, i: usize) {
        match self {
            BitSet::Small(w) => *w |= 1 << i,
            BitSet::Large(ws) => ws[i / 64] |= 1 << (i % 64),
        }
    }

    /// Number of indices in the set.
    pub fn count(&self) -> usize {
        match self {
            BitSet::Small(w) => w.count_ones() as usize,
            BitSet::Large(ws) => ws.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }
}

impl Hash for BitSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Small(w) and Large([w]) never mix within one search (capacity is
        // fixed per window), so hashing the words alone is enough.
        match self {
            BitSet::Small(w) => w.hash(state),
            BitSet::Large(ws) => ws.hash(state),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_set_roundtrip() {
        let mut b = BitSet::new(10);
        assert!(matches!(b, BitSet::Small(_)));
        assert!(!b.test(3));
        b.set(3);
        b.set(9);
        assert!(b.test(3) && b.test(9) && !b.test(4));
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn large_set_roundtrip() {
        let mut b = BitSet::new(200);
        assert!(matches!(b, BitSet::Large(_)));
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(199);
        assert_eq!(b.count(), 4);
        assert!(b.test(64) && b.test(199) && !b.test(100));
    }

    #[test]
    fn clones_are_independent() {
        let mut a = BitSet::new(100);
        a.set(70);
        let b = a.clone();
        a.set(71);
        assert!(b.test(70) && !b.test(71));
    }
}
