//! From histories to interval-ordered operation records.
//!
//! Each correctness condition differs only in the **deadline** it assigns to
//! an operation that was pending when a crash hit, and in whether that
//! operation may be dropped:
//!
//! | condition | completed op | crashed op |
//! |---|---|---|
//! | linearizability | \[inv, ret+1), must appear | (crashes not allowed) |
//! | strict linearizability | \[inv, ret+1), must appear | \[inv, crash), droppable |
//! | persistent atomicity | \[inv, ret+1), must appear | \[inv, next invoke by same pid), droppable |
//! | recoverable linearizability | same as persistent atomicity on a single object | same |
//!
//! The checker then needs no knowledge of crashes at all: it searches for a
//! linearization of interval-ordered records.

use dss_spec::ProcId;

use crate::history::{Event, History, OpId};
use crate::wgl::Violation;

/// A correctness condition for concurrent objects under crash failures
/// (paper §2.2 lists these "in order from strongest to weakest").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Condition {
    /// Herlihy–Wing linearizability; the history must be crash-free.
    Linearizability,
    /// Aguilera–Frølund: a crashed operation takes effect before the crash
    /// or never.
    StrictLinearizability,
    /// Guerraoui–Levy: a crashed operation takes effect before the same
    /// process's next invocation, or never.
    PersistentAtomicity,
    /// Berryhill–Golab–Tripunitara. On single-object histories (the only
    /// kind this crate checks) it coincides with persistent atomicity,
    /// because program-order inversion "only applies to operations on
    /// distinct objects" (paper §2.2).
    RecoverableLinearizability,
    /// Izraelevitz–Mendes–Scott: thread identifiers are *not* reused
    /// after a crash, which merges persistent atomicity, recoverable
    /// linearizability and plain linearizability into one condition; a
    /// crashed pending operation may take effect at any later point (or
    /// never). The DSS itself is "inherently incompatible" with this
    /// model (paper §2.2) because `resolve` requires recovering under the
    /// same ID — the condition is provided for checking the *plain*
    /// operations of recoverable objects.
    DurableLinearizability,
}

/// One operation, reduced to an interval plus expectations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OpRecord<O, R> {
    /// The operation's ID in the source history.
    pub id: OpId,
    /// Invoking process.
    pub pid: ProcId,
    /// The operation.
    pub op: O,
    /// The observed response; `None` for an operation cut short by a crash
    /// (any response the spec produces is acceptable if it linearizes).
    pub resp: Option<R>,
    /// Earliest point (inclusive) at which the operation may take effect.
    pub inv: u64,
    /// Latest point (exclusive) by which it must have taken effect.
    pub deadline: u64,
    /// Whether the linearization may omit this operation entirely.
    pub droppable: bool,
}

/// Converts a history into interval records under `condition`.
///
/// # Errors
///
/// Returns a [`Violation`] if the history is malformed, or contains a crash
/// under [`Condition::Linearizability`].
pub fn records_for<O: Clone, R: Clone>(
    history: &History<O, R>,
    condition: Condition,
) -> Result<Vec<OpRecord<O, R>>, Violation> {
    history.validate().map_err(Violation::malformed)?;
    if condition == Condition::Linearizability && history.has_crash() {
        return Err(Violation::malformed(
            "linearizability is defined for crash-free histories; \
             use StrictLinearizability or weaker",
        ));
    }

    let events = history.events();
    let mut records: Vec<OpRecord<O, R>> = Vec::new();
    // Operations currently pending: (history id, index into `records`).
    let mut pending: Vec<(OpId, usize)> = Vec::new();

    for (i, e) in events.iter().enumerate() {
        let i = i as u64;
        match e {
            Event::Invoke { pid, op } => {
                records.push(OpRecord {
                    id: OpId(i as usize),
                    pid: *pid,
                    op: op.clone(),
                    resp: None,
                    inv: i,
                    deadline: u64::MAX,
                    droppable: true, // refined on return/crash
                });
                pending.push((OpId(i as usize), records.len() - 1));
            }
            Event::Return { of, resp } => {
                let pos = pending.iter().position(|(id, _)| id == of).expect("validated history");
                let (_, ridx) = pending.swap_remove(pos);
                let r = &mut records[ridx];
                r.resp = Some(resp.clone());
                r.deadline = i + 1;
                r.droppable = false;
            }
            Event::Crash => {
                for (_, ridx) in pending.drain(..) {
                    let r = &mut records[ridx];
                    r.droppable = true;
                    match condition {
                        Condition::Linearizability => unreachable!("checked above"),
                        Condition::StrictLinearizability => r.deadline = i,
                        Condition::PersistentAtomicity | Condition::RecoverableLinearizability => {
                            r.deadline = next_invoke_by(events, r.pid, i as usize);
                        }
                        Condition::DurableLinearizability => r.deadline = u64::MAX,
                    }
                }
            }
        }
    }

    // Operations still pending at the end of the history (no crash): they
    // may have taken effect at any point after invocation, or not at all.
    // Their records already say exactly that (deadline = MAX, droppable).
    Ok(records)
}

fn next_invoke_by<O, R>(events: &[Event<O, R>], pid: ProcId, after: usize) -> u64 {
    events
        .iter()
        .enumerate()
        .skip(after + 1)
        .find_map(|(j, e)| match e {
            Event::Invoke { pid: p, .. } if *p == pid => Some(j as u64),
            _ => None,
        })
        .unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_spec::types::{QueueOp, QueueResp};

    type H = History<QueueOp, QueueResp>;

    #[test]
    fn completed_op_gets_tight_interval() {
        let mut h = H::new();
        let a = h.invoke(0, QueueOp::Enqueue(1));
        h.ret(a, QueueResp::Ok);
        let r = records_for(&h, Condition::Linearizability).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!((r[0].inv, r[0].deadline), (0, 2));
        assert!(!r[0].droppable);
        assert_eq!(r[0].resp, Some(QueueResp::Ok));
    }

    #[test]
    fn crash_deadline_strict_vs_persistent() {
        let mut h = H::new();
        let _a = h.invoke(0, QueueOp::Enqueue(1)); // event 0
        h.crash(); // event 1
        let b = h.invoke(0, QueueOp::Dequeue); // event 2
        h.ret(b, QueueResp::Empty); // event 3

        let strict = records_for(&h, Condition::StrictLinearizability).unwrap();
        assert_eq!(strict[0].deadline, 1, "must take effect before the crash");
        assert!(strict[0].droppable);

        let pa = records_for(&h, Condition::PersistentAtomicity).unwrap();
        assert_eq!(pa[0].deadline, 2, "until process 0's next invocation");

        let rl = records_for(&h, Condition::RecoverableLinearizability).unwrap();
        assert_eq!(rl[0].deadline, pa[0].deadline);
    }

    #[test]
    fn crashed_op_with_no_reinvocation_has_open_deadline_under_pa() {
        let mut h = H::new();
        let _a = h.invoke(0, QueueOp::Enqueue(1));
        h.crash();
        let pa = records_for(&h, Condition::PersistentAtomicity).unwrap();
        assert_eq!(pa[0].deadline, u64::MAX);
    }

    #[test]
    fn durable_linearizability_leaves_deadline_open() {
        let mut h = H::new();
        let _a = h.invoke(0, QueueOp::Enqueue(1));
        h.crash();
        let b = h.invoke(0, QueueOp::Dequeue);
        h.ret(b, QueueResp::Empty);
        let dl = records_for(&h, Condition::DurableLinearizability).unwrap();
        assert_eq!(dl[0].deadline, u64::MAX);
        assert!(dl[0].droppable);
    }

    #[test]
    fn linearizability_rejects_crash_histories() {
        let mut h = H::new();
        h.crash();
        assert!(records_for(&h, Condition::Linearizability).is_err());
    }

    #[test]
    fn pending_without_crash_is_droppable_and_open() {
        let mut h = H::new();
        let _a = h.invoke(0, QueueOp::Enqueue(1));
        let r = records_for(&h, Condition::Linearizability).unwrap();
        assert!(r[0].droppable);
        assert_eq!(r[0].deadline, u64::MAX);
        assert_eq!(r[0].resp, None);
    }
}
