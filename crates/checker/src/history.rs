//! Concurrent histories with crash markers.

use dss_spec::ProcId;

/// Identifies an operation within a [`History`] (the index of its invoke
/// event).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct OpId(pub usize);

/// One event of a concurrent history.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Event<O, R> {
    /// Process `pid` invokes `op`.
    Invoke {
        /// The invoking process.
        pid: ProcId,
        /// The invoked operation.
        op: O,
    },
    /// The operation identified by `of` returns `resp`.
    Return {
        /// The invoke event this response matches.
        of: OpId,
        /// The observed response.
        resp: R,
    },
    /// A system-wide crash: every pending operation is cut short and no
    /// process takes another step until it re-invokes after recovery.
    Crash,
}

/// A sequence of invoke/return/crash events in real-time order.
///
/// Well-formedness rules (checked by [`History::validate`]):
///
/// * a `Return` refers to an earlier `Invoke` of the same history, at most
///   once;
/// * a process has at most one operation pending at a time;
/// * no `Return` matches an `Invoke` from before an intervening `Crash`
///   (the crash killed it — system-wide failures stop every process).
///
/// Build histories either manually (tests) or with the concurrent
/// [`Recorder`](crate::Recorder).
///
/// # Examples
///
/// ```
/// use dss_checker::History;
/// use dss_spec::types::{RegisterOp, RegisterResp};
///
/// let mut h = History::new();
/// let w = h.invoke(0, RegisterOp::Write(1));
/// h.ret(w, RegisterResp::Ok);
/// assert!(h.validate().is_ok());
/// assert_eq!(h.events().len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct History<O, R> {
    events: Vec<Event<O, R>>,
}

impl<O: Clone, R: Clone> History<O, R> {
    /// Creates an empty history.
    pub fn new() -> Self {
        History { events: Vec::new() }
    }

    /// Appends an invoke event, returning the new operation's ID.
    pub fn invoke(&mut self, pid: ProcId, op: O) -> OpId {
        self.events.push(Event::Invoke { pid, op });
        OpId(self.events.len() - 1)
    }

    /// Appends a return event for operation `of`.
    pub fn ret(&mut self, of: OpId, resp: R) {
        self.events.push(Event::Return { of, resp });
    }

    /// Appends a system-wide crash marker.
    pub fn crash(&mut self) {
        self.events.push(Event::Crash);
    }

    /// The events in real-time order.
    pub fn events(&self) -> &[Event<O, R>] {
        &self.events
    }

    /// Returns `true` if the history contains a crash marker.
    pub fn has_crash(&self) -> bool {
        self.events.iter().any(|e| matches!(e, Event::Crash))
    }

    /// Checks the well-formedness rules listed on [`History`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed event.
    pub fn validate(&self) -> Result<(), String> {
        // For every pid: pending op (if any) and the index of the last crash.
        let mut pending: std::collections::HashMap<ProcId, OpId> = Default::default();
        let mut matched: std::collections::HashSet<OpId> = Default::default();
        let mut last_crash: Option<usize> = None;
        for (i, e) in self.events.iter().enumerate() {
            match e {
                Event::Invoke { pid, .. } => {
                    if let Some(prev) = pending.get(pid) {
                        return Err(format!(
                            "event {i}: process {pid} invokes while operation {prev:?} is pending"
                        ));
                    }
                    pending.insert(*pid, OpId(i));
                }
                Event::Return { of, .. } => {
                    let Some(Event::Invoke { pid, .. }) = self.events.get(of.0) else {
                        return Err(format!("event {i}: return does not match an invoke"));
                    };
                    if matched.contains(of) {
                        return Err(format!("event {i}: operation {of:?} returned twice"));
                    }
                    if let Some(c) = last_crash {
                        if of.0 < c {
                            return Err(format!(
                                "event {i}: operation {of:?} returns across the crash at {c}"
                            ));
                        }
                    }
                    if pending.remove(pid) != Some(*of) {
                        return Err(format!(
                            "event {i}: return for {of:?} but process {pid} has a different pending op"
                        ));
                    }
                    matched.insert(*of);
                }
                Event::Crash => {
                    last_crash = Some(i);
                    pending.clear(); // the crash kills all pending operations
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_spec::types::{RegisterOp, RegisterResp};

    type H = History<RegisterOp, RegisterResp>;

    #[test]
    fn simple_history_is_well_formed() {
        let mut h = H::new();
        let a = h.invoke(0, RegisterOp::Write(1));
        let b = h.invoke(1, RegisterOp::Read);
        h.ret(b, RegisterResp::Value(0));
        h.ret(a, RegisterResp::Ok);
        assert!(h.validate().is_ok());
        assert!(!h.has_crash());
    }

    #[test]
    fn double_invoke_rejected() {
        let mut h = H::new();
        h.invoke(0, RegisterOp::Read);
        h.invoke(0, RegisterOp::Read);
        assert!(h.validate().unwrap_err().contains("pending"));
    }

    #[test]
    fn double_return_rejected() {
        let mut h = H::new();
        let a = h.invoke(0, RegisterOp::Read);
        h.ret(a, RegisterResp::Value(0));
        h.ret(a, RegisterResp::Value(0));
        let err = h.validate().unwrap_err();
        assert!(err.contains("twice") || err.contains("different pending"), "{err}");
    }

    #[test]
    fn return_across_crash_rejected() {
        let mut h = H::new();
        let a = h.invoke(0, RegisterOp::Write(1));
        h.crash();
        h.ret(a, RegisterResp::Ok);
        assert!(h.validate().unwrap_err().contains("across the crash"));
    }

    #[test]
    fn reinvoke_after_crash_is_fine() {
        let mut h = H::new();
        let _a = h.invoke(0, RegisterOp::Write(1));
        h.crash();
        let b = h.invoke(0, RegisterOp::Write(1));
        h.ret(b, RegisterResp::Ok);
        assert!(h.validate().is_ok());
        assert!(h.has_crash());
    }

    #[test]
    fn return_matching_a_return_rejected() {
        let mut h = H::new();
        let a = h.invoke(0, RegisterOp::Read);
        h.ret(a, RegisterResp::Value(0));
        h.events.push(Event::Return { of: OpId(1), resp: RegisterResp::Ok });
        assert!(h.validate().unwrap_err().contains("does not match"));
    }
}
