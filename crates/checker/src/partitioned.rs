//! The partitioned, streaming verification pipeline.
//!
//! The monolithic Wing–Gong search ([`check`](crate::check)) explores one
//! global interleaving space and therefore caps at
//! [`MAX_OPS`](crate::MAX_OPS) operations. This module decomposes the
//! problem along the two axes that make full soak-scale histories
//! checkable:
//!
//! 1. **Time — cut-point segmentation.** Wherever every earlier record's
//!    deadline precedes every later record's invocation, the interval order
//!    is total across the cut: *every* linearization puts the whole prefix
//!    before the whole suffix. The record list splits into windows at these
//!    cuts ([`segments`]) and the search runs per window, threading the
//!    *set* of reachable spec states across each cut (a window may end in
//!    several states — e.g. concurrent enqueues left in either order, or a
//!    crashed droppable operation applied or dropped — so a single threaded
//!    state would be unsound). Crash markers complete every pending
//!    operation's deadline, which makes them natural cut points.
//! 2. **Space — P-compositionality.** For a [`Partitionable`] spec,
//!    operations on distinct keys are independent, so the history is
//!    linearizable iff each key's projected sub-history is
//!    ([`check_partitioned`]).
//!
//! Within a window the search is the same memoized DFS as the classic
//! checker, but keyed on a chunked [`BitSet`] instead of a `u64`, so a
//! window may exceed 63 operations (up to
//! [`CheckOptions::max_window_ops`]).
//!
//! Completeness note: segmentation introduces no approximation. A cut is
//! only taken where the interval order forces prefix-before-suffix, and the
//! frontier carries *every* spec state some valid linearization of the
//! prefix can reach, so the pipeline accepts exactly the histories the
//! monolithic search accepts (`tests/checker_equivalence.rs` checks this
//! differentially against [`check`](crate::check) on all ≤ 63-op
//! histories).

use std::collections::{BTreeMap, HashSet};
use std::ops::Range;

use dss_spec::{Partitionable, SequentialSpec};

use crate::bits::BitSet;
use crate::interval::OpRecord;
use crate::wgl::Violation;

/// Tuning knobs of the segmented search.
#[derive(Clone, Debug)]
pub struct CheckOptions {
    /// Upper bound on the records of one window (a run of transitively
    /// overlapping operations). Windows are typically a small multiple of
    /// the thread count; a window that exceeds this bound fails with
    /// [`Violation::WindowTooLarge`] rather than risking an intractable
    /// search.
    pub max_window_ops: usize,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions { max_window_ops: 512 }
    }
}

/// What a successful segmented check covered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Total operations checked.
    pub ops: usize,
    /// Number of windows the history split into (summed over partitions).
    pub windows: usize,
    /// Records in the largest window.
    pub max_window: usize,
    /// Largest state-set carried across any cut.
    pub frontier_peak: usize,
    /// Number of partitions ([`check_partitioned`]) or 1.
    pub partitions: usize,
    /// Whether the FIFO fast path produced the verdict (no window search).
    pub fast_path: bool,
}

impl CheckStats {
    pub(crate) fn absorb(&mut self, other: &CheckStats) {
        self.ops += other.ops;
        self.windows += other.windows;
        self.max_window = self.max_window.max(other.max_window);
        self.frontier_peak = self.frontier_peak.max(other.frontier_peak);
        self.partitions += other.partitions;
    }
}

/// Splits `records` (sorted by invocation) into maximal windows at every
/// cut point — positions where each earlier record's deadline is at most
/// each later record's invocation, so the interval order totally separates
/// prefix from suffix.
pub fn segments<O, R>(records: &[OpRecord<O, R>]) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut max_deadline = 0u64;
    for i in 0..records.len() {
        debug_assert!(i == 0 || records[i - 1].inv <= records[i].inv, "records sorted by inv");
        max_deadline = max_deadline.max(records[i].deadline);
        if i + 1 == records.len() || max_deadline <= records[i + 1].inv {
            out.push(start..i + 1);
            start = i + 1;
            // Records before this cut all precede records after it, so the
            // running maximum restarts per window.
            max_deadline = 0;
        }
    }
    out
}

/// Explores every linearization of one window from each start state,
/// returning the set of spec states reachable by completing the window and
/// the longest prefix covered (for diagnostics on failure).
pub(crate) fn window_end_states<'a, T: SequentialSpec>(
    spec: &T,
    records: &[OpRecord<T::Op, T::Resp>],
    starts: impl IntoIterator<Item = &'a T::State>,
) -> (HashSet<T::State>, usize)
where
    T::State: 'a,
{
    let mut memo = HashSet::new();
    let mut ends = HashSet::new();
    let mut best = 0usize;
    for s in starts {
        explore(spec, records, BitSet::new(records.len()), s, &mut memo, &mut ends, &mut best);
    }
    (ends, best)
}

fn explore<T: SequentialSpec>(
    spec: &T,
    records: &[OpRecord<T::Op, T::Resp>],
    done: BitSet,
    state: &T::State,
    memo: &mut HashSet<(BitSet, T::State)>,
    ends: &mut HashSet<T::State>,
    best: &mut usize,
) {
    let covered = done.count();
    *best = (*best).max(covered);
    if covered == records.len() {
        ends.insert(state.clone());
        return;
    }
    if !memo.insert((done.clone(), state.clone())) {
        return;
    }
    for (i, r) in records.iter().enumerate() {
        if done.test(i) {
            continue;
        }
        // Interval-order constraint, as in the monolithic search: an
        // unprocessed record whose deadline precedes r's invocation must be
        // handled first.
        let forced_later =
            records.iter().enumerate().any(|(j, o)| j != i && !done.test(j) && o.deadline <= r.inv);
        if !forced_later {
            if let Some((next, resp)) = spec.apply(state, &r.op, r.pid) {
                let resp_ok = match &r.resp {
                    Some(expected) => *expected == resp,
                    None => true,
                };
                if resp_ok {
                    let mut d = done.clone();
                    d.set(i);
                    explore(spec, records, d, &next, memo, ends, best);
                }
            }
        }
        if r.droppable {
            let mut d = done.clone();
            d.set(i);
            explore(spec, records, d, state, memo, ends, best);
        }
    }
}

/// Checks an interval-ordered record list of any length by cut-point
/// segmentation, threading the reachable-state frontier across windows.
///
/// Verdict-equivalent to the monolithic [`check`](crate::check) but
/// unbounded in history length; only a single window (a run of
/// transitively overlapping operations) is bounded, by
/// [`CheckOptions::max_window_ops`].
///
/// # Errors
///
/// [`Violation::WindowNoLinearization`] pinpointing the window that admits
/// no linearization, or [`Violation::WindowTooLarge`].
/// [`Violation::Malformed`] on an empty record list: a pipeline that
/// reports success must have checked at least one operation — an empty
/// history reaching the checker is a recording bug upstream, and quietly
/// exiting 0 on it would let a broken harness masquerade as verified.
pub fn check_records<T: SequentialSpec>(
    spec: &T,
    records: &[OpRecord<T::Op, T::Resp>],
    options: &CheckOptions,
) -> Result<CheckStats, Violation> {
    check_records_in(spec, records, options, None)
}

pub(crate) fn check_records_in<T: SequentialSpec>(
    spec: &T,
    records: &[OpRecord<T::Op, T::Resp>],
    options: &CheckOptions,
    partition: Option<&str>,
) -> Result<CheckStats, Violation> {
    if records.is_empty() {
        return Err(Violation::Malformed(match partition {
            Some(p) => format!("empty record list in partition {p}: nothing to check"),
            None => "empty record list: nothing to check".into(),
        }));
    }
    let mut stats =
        CheckStats { ops: records.len(), partitions: 1, frontier_peak: 1, ..Default::default() };
    let mut frontier: HashSet<T::State> = HashSet::from([spec.initial()]);
    for (w, range) in segments(records).into_iter().enumerate() {
        let window = &records[range];
        if window.len() > options.max_window_ops {
            return Err(Violation::WindowTooLarge {
                window: w,
                first_op: window[0].id.0,
                len: window.len(),
                limit: options.max_window_ops,
            });
        }
        let (ends, best) = window_end_states(spec, window, frontier.iter());
        if ends.is_empty() {
            return Err(Violation::WindowNoLinearization {
                window: w,
                first_op: window[0].id.0,
                last_op: window[window.len() - 1].id.0,
                len: window.len(),
                partition: partition.map(String::from),
                best,
            });
        }
        stats.windows += 1;
        stats.max_window = stats.max_window.max(window.len());
        stats.frontier_peak = stats.frontier_peak.max(ends.len());
        frontier = ends;
    }
    Ok(stats)
}

/// Checks a [`Partitionable`] spec's record list by P-compositionality:
/// splits the records by partition key, projects each group onto the
/// partition's sub-spec, and runs the segmented check per partition.
///
/// # Errors
///
/// The first failing partition's [`Violation`], with the partition key in
/// [`Violation::WindowNoLinearization::partition`].
/// [`Violation::Malformed`] on an empty record list (same contract as
/// [`check_records`]): zero partitions checked must never read as a
/// verified history.
pub fn check_partitioned<T: Partitionable>(
    spec: &T,
    records: &[OpRecord<T::Op, T::Resp>],
    options: &CheckOptions,
) -> Result<CheckStats, Violation> {
    if records.is_empty() {
        return Err(Violation::Malformed("empty record list: nothing to check".into()));
    }
    type PartRecord<T> = OpRecord<
        <<T as Partitionable>::Part as SequentialSpec>::Op,
        <<T as Partitionable>::Part as SequentialSpec>::Resp,
    >;
    let mut groups: BTreeMap<T::Key, Vec<PartRecord<T>>> = BTreeMap::new();
    for r in records {
        groups.entry(spec.key_of(&r.op)).or_default().push(OpRecord {
            id: r.id,
            pid: r.pid,
            op: spec.project_op(&r.op),
            resp: r.resp.as_ref().map(|resp| spec.project_resp(resp)),
            inv: r.inv,
            deadline: r.deadline,
            droppable: r.droppable,
        });
    }
    let mut stats = CheckStats::default();
    for (key, group) in &groups {
        let part = spec.part_spec(key);
        let label = format!("{key:?}");
        stats.absorb(&check_records_in(&part, group, options, Some(&label))?);
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check, check_history, records_for, Condition, History};
    use dss_spec::types::{QueueOp, QueueResp, QueueSpec, RegisterOp, RegisterResp, RegisterSpec};
    use dss_spec::Keyed;

    type QH = History<QueueOp, QueueResp>;

    fn sequential_pairs(n: usize) -> QH {
        let mut h = QH::new();
        for i in 0..n as u64 {
            let a = h.invoke(0, QueueOp::Enqueue(i + 1));
            h.ret(a, QueueResp::Ok);
            let b = h.invoke(0, QueueOp::Dequeue);
            h.ret(b, QueueResp::Value(i + 1));
        }
        h
    }

    #[test]
    fn sequential_history_splits_into_unit_windows() {
        let h = sequential_pairs(10);
        let records = records_for(&h, Condition::Linearizability).unwrap();
        let segs = segments(&records);
        assert_eq!(segs.len(), 20, "every sequential op is its own window");
        let stats = check_records(&QueueSpec, &records, &CheckOptions::default()).unwrap();
        assert_eq!(stats.windows, 20);
        assert_eq!(stats.max_window, 1);
    }

    #[test]
    fn histories_far_beyond_max_ops_are_checked() {
        let h = sequential_pairs(500); // 1000 ops >> 63
        let records = records_for(&h, Condition::Linearizability).unwrap();
        assert!(matches!(check(&QueueSpec, &records), Err(Violation::HistoryTooLarge { .. })));
        let stats = check_records(&QueueSpec, &records, &CheckOptions::default()).unwrap();
        assert_eq!(stats.ops, 1000);
    }

    #[test]
    fn overlapping_ops_share_a_window() {
        let mut h = QH::new();
        let a = h.invoke(0, QueueOp::Enqueue(1));
        let b = h.invoke(1, QueueOp::Enqueue(2));
        h.ret(a, QueueResp::Ok);
        h.ret(b, QueueResp::Ok);
        let records = records_for(&h, Condition::Linearizability).unwrap();
        assert_eq!(segments(&records), vec![0..2]);
    }

    #[test]
    fn frontier_carries_both_enqueue_orders_across_the_cut() {
        // Two concurrent enqueues (one window), then sequential dequeues
        // observing the *reverse* order — valid only if the frontier kept
        // both end states across the cut.
        let mut h = QH::new();
        let a = h.invoke(0, QueueOp::Enqueue(1));
        let b = h.invoke(1, QueueOp::Enqueue(2));
        h.ret(a, QueueResp::Ok);
        h.ret(b, QueueResp::Ok);
        let c = h.invoke(0, QueueOp::Dequeue);
        h.ret(c, QueueResp::Value(2));
        let d = h.invoke(0, QueueOp::Dequeue);
        h.ret(d, QueueResp::Value(1));
        let records = records_for(&h, Condition::Linearizability).unwrap();
        assert!(segments(&records).len() >= 2, "dequeues are separate windows");
        check_records(&QueueSpec, &records, &CheckOptions::default()).unwrap();
    }

    #[test]
    fn violation_names_the_offending_window() {
        let mut h = sequential_pairs(50); // ops 0..100 fine
        let a = h.invoke(0, QueueOp::Enqueue(777));
        h.ret(a, QueueResp::Ok);
        let b = h.invoke(0, QueueOp::Dequeue);
        h.ret(b, QueueResp::Value(778)); // wrong value
        let records = records_for(&h, Condition::Linearizability).unwrap();
        let err = check_records(&QueueSpec, &records, &CheckOptions::default()).unwrap_err();
        match err {
            Violation::WindowNoLinearization { first_op, last_op, partition, .. } => {
                assert_eq!((first_op, last_op), (202, 202), "the bad dequeue's own window");
                assert_eq!(partition, None);
            }
            other => panic!("expected window violation, got {other}"),
        }
    }

    #[test]
    fn window_over_limit_reports_window_too_large() {
        // 5 mutually overlapping ops with a 4-op window bound.
        let mut h = QH::new();
        let ids: Vec<_> = (0..5).map(|p| h.invoke(p, QueueOp::Enqueue(p as u64))).collect();
        for id in ids {
            h.ret(id, QueueResp::Ok);
        }
        let records = records_for(&h, Condition::Linearizability).unwrap();
        let err =
            check_records(&QueueSpec, &records, &CheckOptions { max_window_ops: 4 }).unwrap_err();
        assert!(matches!(err, Violation::WindowTooLarge { len: 5, limit: 4, .. }), "{err}");
    }

    #[test]
    fn crash_droppable_outcomes_both_carried() {
        // A crashed enqueue may or may not have taken effect; the frontier
        // must carry both outcomes so either later observation passes.
        for observed in [true, false] {
            let mut h = QH::new();
            let _a = h.invoke(0, QueueOp::Enqueue(5));
            h.crash();
            let b = h.invoke(1, QueueOp::Dequeue);
            h.ret(b, if observed { QueueResp::Value(5) } else { QueueResp::Empty });
            let records = records_for(&h, Condition::StrictLinearizability).unwrap();
            check_records(&QueueSpec, &records, &CheckOptions::default())
                .unwrap_or_else(|e| panic!("observed={observed}: {e}"));
        }
    }

    #[test]
    fn segmented_verdicts_match_monolithic_on_crash_history() {
        let mut h = QH::new();
        let _a = h.invoke(0, QueueOp::Enqueue(5));
        h.crash();
        let b = h.invoke(0, QueueOp::Dequeue);
        h.ret(b, QueueResp::Empty);
        let c = h.invoke(0, QueueOp::Dequeue);
        h.ret(c, QueueResp::Value(5));
        for cond in [
            Condition::StrictLinearizability,
            Condition::PersistentAtomicity,
            Condition::DurableLinearizability,
        ] {
            let records = records_for(&h, cond).unwrap();
            let mono = check(&QueueSpec, &records).is_ok();
            let seg = check_records(&QueueSpec, &records, &CheckOptions::default()).is_ok();
            assert_eq!(mono, seg, "{cond:?}");
            assert_eq!(mono, check_history(&QueueSpec, &h, cond).is_ok(), "{cond:?}");
        }
    }

    #[test]
    fn partitioned_check_splits_by_key() {
        let mem = Keyed::new(RegisterSpec);
        let mut h: History<(u64, RegisterOp), RegisterResp> = History::new();
        for key in 0..8u64 {
            let w = h.invoke(0, (key, RegisterOp::Write(key * 10)));
            h.ret(w, RegisterResp::Ok);
        }
        for key in 0..8u64 {
            let r = h.invoke(1, (key, RegisterOp::Read));
            h.ret(r, RegisterResp::Value(key * 10));
        }
        let records = records_for(&h, Condition::Linearizability).unwrap();
        let stats = check_partitioned(&mem, &records, &CheckOptions::default()).unwrap();
        assert_eq!(stats.partitions, 8);
        assert_eq!(stats.ops, 16);
    }

    #[test]
    fn partitioned_violation_names_the_key() {
        let mem = Keyed::new(RegisterSpec);
        let mut h: History<(u64, RegisterOp), RegisterResp> = History::new();
        let w = h.invoke(0, (3, RegisterOp::Write(1)));
        h.ret(w, RegisterResp::Ok);
        let r = h.invoke(0, (3, RegisterOp::Read));
        h.ret(r, RegisterResp::Value(2)); // new/old inversion on key 3
        let ok = h.invoke(0, (4, RegisterOp::Read));
        h.ret(ok, RegisterResp::Value(0));
        let records = records_for(&h, Condition::Linearizability).unwrap();
        let err = check_partitioned(&mem, &records, &CheckOptions::default()).unwrap_err();
        match err {
            Violation::WindowNoLinearization { partition, .. } => {
                assert_eq!(partition.as_deref(), Some("3"));
            }
            other => panic!("expected window violation, got {other}"),
        }
    }

    #[test]
    fn pending_tail_lands_in_final_window() {
        let mut h = QH::new();
        let a = h.invoke(0, QueueOp::Enqueue(1));
        h.ret(a, QueueResp::Ok);
        let _pending = h.invoke(1, QueueOp::Dequeue); // never returns
        let records = records_for(&h, Condition::Linearizability).unwrap();
        let stats = check_records(&QueueSpec, &records, &CheckOptions::default()).unwrap();
        assert_eq!(stats.ops, 2);
    }
}
