//! The Wing–Gong linearization search over interval-ordered records.

use std::collections::HashSet;
use std::fmt;

use dss_spec::SequentialSpec;

use crate::interval::OpRecord;

/// Why a history failed a check.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Violation {
    /// The history itself is ill-formed (unbalanced invoke/return,
    /// responses from unknown operations, …) — nothing was checked.
    Malformed(String),
    /// The monolithic checker ([`check`]) was handed more records than one
    /// search window may hold (it keys processed-record sets as a `u64`
    /// bitmask, so a *window* caps at [`MAX_OPS`] operations). The bound is
    /// per window, not per history: the segmented pipeline
    /// ([`check_records`](crate::check_records)) cuts arbitrarily long
    /// histories into windows and only fails this way if a single window —
    /// a run of transitively overlapping operations — exceeds
    /// [`CheckOptions::max_window_ops`](crate::CheckOptions::max_window_ops)
    /// (reported as [`Violation::WindowTooLarge`] with window context).
    HistoryTooLarge {
        /// Number of records in the offending history.
        len: usize,
    },
    /// The search exhausted every interleaving without finding a valid
    /// linearization.
    NoLinearization {
        /// Most operations any explored prefix covered.
        best: usize,
        /// Total operations in the history.
        total: usize,
    },
    /// One window of a segmented check exceeded the configured per-window
    /// operation bound (a run of transitively overlapping operations too
    /// long to search exhaustively).
    WindowTooLarge {
        /// Ordinal of the offending window (0-based).
        window: usize,
        /// [`OpId`](crate::OpId) value of the window's first record.
        first_op: usize,
        /// Number of records in the window.
        len: usize,
        /// The configured per-window bound it exceeded.
        limit: usize,
    },
    /// One window of a segmented (possibly partitioned) check admitted no
    /// linearization from any spec state reachable at its left cut point.
    WindowNoLinearization {
        /// Ordinal of the offending window (0-based) within its partition.
        window: usize,
        /// [`OpId`](crate::OpId) value of the window's first record.
        first_op: usize,
        /// [`OpId`](crate::OpId) value of the window's last record.
        last_op: usize,
        /// Number of records in the window.
        len: usize,
        /// Partition key (its `Debug` rendering) when the check was split
        /// by [`Partitionable`](dss_spec::Partitionable); `None` for
        /// single-object checks.
        partition: Option<String>,
        /// Most operations any explored prefix of the window covered.
        best: usize,
    },
    /// The FIFO fast path found a concrete queue-order violation.
    FifoOrder {
        /// What the offending operations did wrong.
        reason: String,
        /// [`OpId`](crate::OpId) values of the operations that witness the
        /// violation.
        ops: Vec<usize>,
    },
}

impl Violation {
    pub(crate) fn malformed(msg: impl Into<String>) -> Self {
        Violation::Malformed(msg.into())
    }

    /// Human-readable description of the failure.
    pub fn message(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Malformed(msg) => write!(f, "malformed history: {msg}"),
            Violation::HistoryTooLarge { len } => {
                write!(
                    f,
                    "{len} operations exceed the monolithic checker's per-window limit of \
                     {MAX_OPS}; use the segmented pipeline (check_records) for longer histories"
                )
            }
            Violation::NoLinearization { best, total } => {
                write!(
                    f,
                    "no valid linearization: best prefix covered {best} of {total} operations"
                )
            }
            Violation::WindowTooLarge { window, first_op, len, limit } => {
                write!(
                    f,
                    "window {window} (starting at op {first_op}) holds {len} transitively \
                     overlapping operations, exceeding the per-window bound of {limit}"
                )
            }
            Violation::WindowNoLinearization {
                window,
                first_op,
                last_op,
                len,
                partition,
                best,
            } => {
                write!(
                    f,
                    "no valid linearization of window {window} (ops {first_op}..={last_op}, \
                     {len} records"
                )?;
                if let Some(p) = partition {
                    write!(f, ", partition {p}")?;
                }
                write!(f, "): best prefix covered {best} of {len} operations")
            }
            Violation::FifoOrder { reason, ops } => {
                write!(f, "FIFO order violation at ops {ops:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for Violation {}

/// Maximum number of operations per check (records are tracked in a `u64`
/// bitmask).
pub const MAX_OPS: usize = 63;

/// Searches for a linearization of `records` that the `spec` accepts.
///
/// A linearization processes every record exactly once, either *applying*
/// it (the spec transition must exist and, when the record carries an
/// observed response, reproduce it) or *dropping* it (allowed only for
/// [`droppable`](OpRecord::droppable) records). Applied records must respect
/// the interval order: if `deadline(a) <= inv(b)`, then `a` is applied
/// before `b`.
///
/// The search memoizes (set of processed records, abstract state) pairs —
/// the classic Wing–Gong optimization — so repeated interleavings of
/// commuting operations are explored once.
///
/// # Errors
///
/// Returns [`Violation`] if no linearization exists or `records` exceeds
/// [`MAX_OPS`].
pub fn check<T: SequentialSpec>(
    spec: &T,
    records: &[OpRecord<T::Op, T::Resp>],
) -> Result<(), Violation> {
    let n = records.len();
    if n > MAX_OPS {
        return Err(Violation::HistoryTooLarge { len: n });
    }
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut memo: HashSet<(u64, T::State)> = HashSet::new();
    let mut best = 0usize;
    let init = spec.initial();
    if dfs(spec, records, 0, &init, full, &mut memo, &mut best) {
        Ok(())
    } else {
        Err(Violation::NoLinearization { best, total: n })
    }
}

fn dfs<T: SequentialSpec>(
    spec: &T,
    records: &[OpRecord<T::Op, T::Resp>],
    done: u64,
    state: &T::State,
    full: u64,
    memo: &mut HashSet<(u64, T::State)>,
    best: &mut usize,
) -> bool {
    if done == full {
        return true;
    }
    if !memo.insert((done, state.clone())) {
        return false;
    }
    *best = (*best).max(done.count_ones() as usize);

    for (i, r) in records.iter().enumerate() {
        let bit = 1u64 << i;
        if done & bit != 0 {
            continue;
        }
        // Interval-order constraint: another unprocessed record whose
        // deadline precedes r's invocation must be handled first (it can
        // still be dropped first if droppable — that is a separate branch).
        let forced_later = records
            .iter()
            .enumerate()
            .any(|(j, o)| j != i && done & (1 << j) == 0 && o.deadline <= r.inv);
        if !forced_later {
            if let Some((next, resp)) = spec.apply(state, &r.op, r.pid) {
                let resp_ok = match &r.resp {
                    Some(expected) => *expected == resp,
                    None => true,
                };
                if resp_ok && dfs(spec, records, done | bit, &next, full, memo, best) {
                    return true;
                }
            }
        }
        // Dropping has no ordering precondition.
        if r.droppable && dfs(spec, records, done | bit, state, full, memo, best) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_history, records_for, Condition, History};
    use dss_spec::types::{QueueOp, QueueResp, QueueSpec, RegisterOp, RegisterResp, RegisterSpec};

    type QH = History<QueueOp, QueueResp>;
    type RH = History<RegisterOp, RegisterResp>;

    #[test]
    fn sequential_queue_history_linearizable() {
        let mut h = QH::new();
        let a = h.invoke(0, QueueOp::Enqueue(1));
        h.ret(a, QueueResp::Ok);
        let b = h.invoke(0, QueueOp::Dequeue);
        h.ret(b, QueueResp::Value(1));
        assert!(check_history(&QueueSpec, &h, Condition::Linearizability).is_ok());
    }

    #[test]
    fn wrong_value_not_linearizable() {
        let mut h = QH::new();
        let a = h.invoke(0, QueueOp::Enqueue(1));
        h.ret(a, QueueResp::Ok);
        let b = h.invoke(0, QueueOp::Dequeue);
        h.ret(b, QueueResp::Value(2));
        let err = check_history(&QueueSpec, &h, Condition::Linearizability).unwrap_err();
        assert!(err.message().contains("no valid linearization"));
    }

    #[test]
    fn concurrent_overlapping_ops_reorder_freely() {
        // enqueue(1) and enqueue(2) overlap; dequeues can see either order.
        let mut h = QH::new();
        let a = h.invoke(0, QueueOp::Enqueue(1));
        let b = h.invoke(1, QueueOp::Enqueue(2));
        h.ret(b, QueueResp::Ok);
        h.ret(a, QueueResp::Ok);
        let c = h.invoke(0, QueueOp::Dequeue);
        h.ret(c, QueueResp::Value(2)); // 2 first: legal, the enqueues overlapped
        let d = h.invoke(0, QueueOp::Dequeue);
        h.ret(d, QueueResp::Value(1));
        assert!(check_history(&QueueSpec, &h, Condition::Linearizability).is_ok());
    }

    #[test]
    fn real_time_order_is_enforced() {
        // enqueue(1) completes before enqueue(2) begins; dequeuing 2 first
        // violates FIFO under real-time order.
        let mut h = QH::new();
        let a = h.invoke(0, QueueOp::Enqueue(1));
        h.ret(a, QueueResp::Ok);
        let b = h.invoke(1, QueueOp::Enqueue(2));
        h.ret(b, QueueResp::Ok);
        let c = h.invoke(0, QueueOp::Dequeue);
        h.ret(c, QueueResp::Value(2));
        assert!(check_history(&QueueSpec, &h, Condition::Linearizability).is_err());
    }

    #[test]
    fn register_new_old_inversion_rejected() {
        // Classic anomaly: read returns new value, later read returns old.
        let mut h = RH::new();
        let w = h.invoke(0, RegisterOp::Write(1));
        h.ret(w, RegisterResp::Ok);
        let r1 = h.invoke(1, RegisterOp::Read);
        h.ret(r1, RegisterResp::Value(1));
        let r2 = h.invoke(1, RegisterOp::Read);
        h.ret(r2, RegisterResp::Value(0));
        assert!(check_history(&RegisterSpec, &h, Condition::Linearizability).is_err());
    }

    #[test]
    fn pending_op_may_take_effect_or_not() {
        // A pending enqueue can explain a dequeue that returns its value...
        let mut h = QH::new();
        let _a = h.invoke(0, QueueOp::Enqueue(9)); // never returns
        let b = h.invoke(1, QueueOp::Dequeue);
        h.ret(b, QueueResp::Value(9));
        assert!(check_history(&QueueSpec, &h, Condition::Linearizability).is_ok());

        // ...or be dropped when the dequeue finds the queue empty.
        let mut h = QH::new();
        let _a = h.invoke(0, QueueOp::Enqueue(9));
        let b = h.invoke(1, QueueOp::Dequeue);
        h.ret(b, QueueResp::Empty);
        assert!(check_history(&QueueSpec, &h, Condition::Linearizability).is_ok());
    }

    #[test]
    fn strict_forbids_effect_after_crash() {
        // Enqueue crashes; after recovery an empty dequeue, then a dequeue
        // sees the value. Strict linearizability forbids (effect after the
        // crash), persistent atomicity forbids it too (effect after next
        // invocation of the same process).
        let mut h = QH::new();
        let _a = h.invoke(0, QueueOp::Enqueue(5));
        h.crash();
        let b = h.invoke(0, QueueOp::Dequeue);
        h.ret(b, QueueResp::Empty);
        let c = h.invoke(0, QueueOp::Dequeue);
        h.ret(c, QueueResp::Value(5));
        assert!(check_history(&QueueSpec, &h, Condition::StrictLinearizability).is_err());
        assert!(check_history(&QueueSpec, &h, Condition::PersistentAtomicity).is_err());
    }

    #[test]
    fn persistent_atomicity_accepts_late_effect_strict_rejects() {
        // The crashed enqueue's value surfaces in a dequeue by *another*
        // process before process 0 re-invokes: the enqueue linearized after
        // the crash but before p0's next invocation. Legal under persistent
        // atomicity, illegal under strict linearizability... but only if the
        // effect provably happened after the crash. We force that by having
        // p1 observe Empty before the crash.
        let mut h = QH::new();
        let e0 = h.invoke(1, QueueOp::Dequeue);
        h.ret(e0, QueueResp::Empty);
        let _a = h.invoke(0, QueueOp::Enqueue(5)); // starts...
        let probe = h.invoke(1, QueueOp::Dequeue);
        h.ret(probe, QueueResp::Empty); // ...not yet visible...
        h.crash(); // ...and the crash hits.
        let b = h.invoke(1, QueueOp::Dequeue);
        h.ret(b, QueueResp::Value(5));

        // Strict: enqueue must linearize before the crash, but the probe
        // pinned the queue empty right up to the crash... actually the probe
        // overlaps the enqueue, so the enqueue may still slot between probe
        // and crash. Strict accepts this one:
        assert!(check_history(&QueueSpec, &h, Condition::StrictLinearizability).is_ok());

        // To separate the conditions, complete the probe *after* the
        // enqueue's invocation with the crash immediately following the
        // probe's return, and make the probe *not* overlap: p1 probes in a
        // window that ends the era.
        let mut h = QH::new();
        let _a = h.invoke(0, QueueOp::Enqueue(5));
        h.crash();
        // A fresh probe by p1 after the crash still sees empty:
        let p = h.invoke(1, QueueOp::Dequeue);
        h.ret(p, QueueResp::Empty);
        // Then the value appears:
        let b = h.invoke(1, QueueOp::Dequeue);
        h.ret(b, QueueResp::Value(5));
        // Strict: effect strictly before the crash would make the first
        // post-crash dequeue return the value, contradiction → rejected.
        assert!(check_history(&QueueSpec, &h, Condition::StrictLinearizability).is_err());
        // Persistent atomicity: p0 never re-invokes, so the enqueue may
        // linearize between the two dequeues → accepted.
        assert!(check_history(&QueueSpec, &h, Condition::PersistentAtomicity).is_ok());
        assert!(check_history(&QueueSpec, &h, Condition::RecoverableLinearizability).is_ok());
    }

    #[test]
    fn durable_lin_accepts_effect_after_next_invocation() {
        // The crashed enqueue surfaces only after the same process has
        // re-invoked: persistent atomicity rejects, durable accepts
        // (under durable linearizability the "same process" is formally a
        // different thread after the crash).
        let mut h = QH::new();
        let _a = h.invoke(0, QueueOp::Enqueue(5));
        h.crash();
        let b = h.invoke(0, QueueOp::Dequeue);
        h.ret(b, QueueResp::Empty);
        let c = h.invoke(0, QueueOp::Dequeue);
        h.ret(c, QueueResp::Value(5));
        assert!(check_history(&QueueSpec, &h, Condition::PersistentAtomicity).is_err());
        assert!(check_history(&QueueSpec, &h, Condition::DurableLinearizability).is_ok());
    }

    #[test]
    fn too_many_ops_rejected_with_typed_error() {
        let mut h = QH::new();
        for _ in 0..64 {
            let a = h.invoke(0, QueueOp::Enqueue(1));
            h.ret(a, QueueResp::Ok);
        }
        let recs = records_for(&h, Condition::Linearizability).unwrap();
        let err = check(&QueueSpec, &recs).unwrap_err();
        assert_eq!(err, Violation::HistoryTooLarge { len: 64 });
        assert!(err.message().contains("per-window limit"));
    }

    #[test]
    fn empty_history_trivially_ok() {
        let h = QH::new();
        assert!(check_history(&QueueSpec, &h, Condition::Linearizability).is_ok());
    }
}
