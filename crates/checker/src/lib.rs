//! Histories and (crash-aware) linearizability checking.
//!
//! The DSS "must be combined with a suitable linearizability-like
//! correctness condition" (paper §2.2). This crate provides the conditions
//! the paper lists, strongest to weakest, as machine checkers over recorded
//! concurrent histories:
//!
//! * **Linearizability** (Herlihy & Wing 1990) — crash-free histories.
//! * **Strict linearizability** (Aguilera & Frølund 2003) — an operation
//!   pending at a crash either takes effect before the crash or never.
//! * **Persistent atomicity** (Guerraoui & Levy 2004) — an operation pending
//!   at a crash may take effect any time before the *same process's next
//!   invocation*.
//! * **Recoverable linearizability** (Berryhill, Golab & Tripunitara 2016) —
//!   like persistent atomicity but allows "program order inversion" across
//!   *distinct* objects; for the single-object histories checked here it
//!   coincides with persistent atomicity (the paper makes the same point:
//!   the anomaly "only applies to operations on distinct objects").
//!
//! All three reduce to one interval-order search: each operation occupies an
//! interval \[invocation, deadline) and the checker ([`check`]) looks for a
//! permutation that respects the interval order, matches every observed
//! response against a [`SequentialSpec`], and drops only operations that a
//! crash made droppable. The search is the classic Wing–Gong algorithm with
//! memoization on (set of linearized operations, abstract state).
//!
//! # Example
//!
//! ```
//! use dss_checker::{Condition, History, check_history};
//! use dss_spec::types::{QueueOp, QueueResp, QueueSpec};
//!
//! let mut h = History::new();
//! let e = h.invoke(0, QueueOp::Enqueue(5));
//! h.ret(e, QueueResp::Ok);
//! let d = h.invoke(1, QueueOp::Dequeue);
//! h.crash(); // dequeue interrupted by the crash
//! let r = h.invoke(1, QueueOp::Dequeue); // retried after recovery
//! h.ret(r, QueueResp::Value(5));
//! // Strictly linearizable: the crashed dequeue simply never took effect.
//! assert!(check_history(&QueueSpec, &h, Condition::StrictLinearizability).is_ok());
//! let _ = d;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod bits;
mod fifo;
mod history;
mod interval;
mod partitioned;
mod recorder;
mod stream;
mod wgl;

pub use fifo::check_fifo;
pub use history::{Event, History, OpId};
pub use interval::{records_for, Condition, OpRecord};
pub use partitioned::{check_partitioned, check_records, segments, CheckOptions, CheckStats};
pub use recorder::Recorder;
pub use stream::{StreamingChecker, StreamingRecorder};
pub use wgl::{check, Violation, MAX_OPS};

use dss_spec::SequentialSpec;

/// Checks `history` against `spec` under `condition`.
///
/// Convenience composing [`records_for`] and [`check`].
///
/// # Errors
///
/// Returns a [`Violation`] when no valid linearization exists, or when the
/// history is malformed (see [`History`]'s well-formedness rules).
pub fn check_history<T: SequentialSpec>(
    spec: &T,
    history: &History<T::Op, T::Resp>,
    condition: Condition,
) -> Result<(), Violation> {
    let records = records_for(history, condition)?;
    check(spec, &records)
}
