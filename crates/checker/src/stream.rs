//! Streaming verification: seal and check windows as the history is made.
//!
//! [`check_records`](crate::check_records) still materializes the whole
//! record list before segmenting it. For soak runs that is the remaining
//! scalability cliff — a million-op history holds a million `OpRecord`s.
//! [`StreamingChecker`] removes it: events feed in one at a time
//! ([`invoke`](StreamingChecker::invoke) / [`ret`](StreamingChecker::ret) /
//! [`crash`](StreamingChecker::crash)), records are built incrementally
//! exactly as [`records_for`](crate::records_for) would, and as soon as a
//! cut point forms — every buffered record resolved, with all deadlines at
//! or before an incoming invocation — the sealed windows are searched and
//! discarded, keeping only the reachable-state frontier. Memory is bounded
//! by the longest run of transitively overlapping operations, not by the
//! history length.
//!
//! [`StreamingRecorder`] wraps a checker in a mutex with the same
//! interface as [`Recorder`](crate::Recorder), so harness worker threads
//! can verify while they drive.

use std::collections::HashSet;
use std::sync::Mutex;

use dss_spec::{ProcId, SequentialSpec};

use crate::history::OpId;
use crate::interval::{Condition, OpRecord};
use crate::partitioned::{segments, window_end_states, CheckOptions, CheckStats};
use crate::wgl::Violation;

/// An incremental, constant-memory (per overlapping run) history checker.
///
/// Feed it the same events a [`Recorder`](crate::Recorder) would log;
/// windows are verified as soon as the interval order seals them and
/// [`finish`](StreamingChecker::finish) checks the remainder and returns
/// the verdict. Verdicts match the batch pipeline: same segmentation, same
/// per-window search, same frontier threading.
///
/// A detected violation is sticky — later events are accepted but ignored,
/// and `finish` reports the first failure.
#[derive(Debug)]
pub struct StreamingChecker<T: SequentialSpec> {
    spec: T,
    condition: Condition,
    options: CheckOptions,
    /// Records not yet sealed, in invocation order.
    buffer: Vec<OpRecord<T::Op, T::Resp>>,
    /// Operations invoked but not returned: (id, buffer index).
    pending: Vec<(OpId, usize)>,
    /// Under persistent atomicity / recoverable linearizability, crashed
    /// records whose deadline waits for the process's next invocation:
    /// (pid, buffer index).
    awaiting_reinvoke: Vec<(ProcId, usize)>,
    /// Spec states reachable by some linearization of everything sealed.
    frontier: HashSet<T::State>,
    /// Next event index on the history timeline.
    clock: u64,
    stats: CheckStats,
    failed: Option<Violation>,
}

impl<T: SequentialSpec> StreamingChecker<T> {
    /// A checker for histories of `spec` under `condition`.
    pub fn new(spec: T, condition: Condition, options: CheckOptions) -> Self {
        let frontier = HashSet::from([spec.initial()]);
        StreamingChecker {
            spec,
            condition,
            options,
            buffer: Vec::new(),
            pending: Vec::new(),
            awaiting_reinvoke: Vec::new(),
            frontier,
            clock: 0,
            stats: CheckStats { partitions: 1, frontier_peak: 1, ..Default::default() },
            failed: None,
        }
    }

    fn fail(&mut self, v: Violation) {
        if self.failed.is_none() {
            self.failed = Some(v);
        }
    }

    /// Feeds an invocation; returns the ID to pass to
    /// [`ret`](StreamingChecker::ret). Sealable windows are checked first,
    /// so the buffer only ever holds the open overlapping run.
    pub fn invoke(&mut self, pid: ProcId, op: T::Op) -> OpId {
        let at = self.clock;
        self.clock += 1;
        let id = OpId(at as usize);
        if self.failed.is_some() {
            return id;
        }
        if self.pending.iter().any(|&(_, i)| self.buffer[i].pid == pid) {
            self.fail(Violation::malformed(format!(
                "process {pid} invoked an operation while one was pending"
            )));
            return id;
        }
        // A crashed operation under persistent atomicity gets its deadline
        // from this invocation, *before* the cut scan sees the new record.
        let mut i = 0;
        while i < self.awaiting_reinvoke.len() {
            if self.awaiting_reinvoke[i].0 == pid {
                let (_, ridx) = self.awaiting_reinvoke.swap_remove(i);
                self.buffer[ridx].deadline = at;
            } else {
                i += 1;
            }
        }
        self.seal_up_to(at);
        self.buffer.push(OpRecord {
            id,
            pid,
            op,
            resp: None,
            inv: at,
            deadline: u64::MAX,
            droppable: true,
        });
        self.pending.push((id, self.buffer.len() - 1));
        id
    }

    /// Feeds the response of operation `of`.
    pub fn ret(&mut self, of: OpId, resp: T::Resp) {
        let at = self.clock;
        self.clock += 1;
        if self.failed.is_some() {
            return;
        }
        let Some(pos) = self.pending.iter().position(|&(id, _)| id == of) else {
            self.fail(Violation::malformed(format!(
                "response for operation {} which is not pending",
                of.0
            )));
            return;
        };
        let (_, ridx) = self.pending.swap_remove(pos);
        let r = &mut self.buffer[ridx];
        r.resp = Some(resp);
        r.deadline = at + 1;
        r.droppable = false;
    }

    /// Feeds a system-wide crash marker: every pending operation becomes
    /// droppable with the condition's deadline.
    pub fn crash(&mut self) {
        let at = self.clock;
        self.clock += 1;
        if self.failed.is_some() {
            return;
        }
        if self.condition == Condition::Linearizability {
            self.fail(Violation::malformed(
                "linearizability is defined for crash-free histories; \
                 use StrictLinearizability or weaker",
            ));
            return;
        }
        for (_, ridx) in self.pending.drain(..) {
            let r = &mut self.buffer[ridx];
            r.droppable = true;
            match self.condition {
                Condition::Linearizability => unreachable!("checked above"),
                Condition::StrictLinearizability => r.deadline = at,
                Condition::PersistentAtomicity | Condition::RecoverableLinearizability => {
                    self.awaiting_reinvoke.push((r.pid, ridx));
                }
                Condition::DurableLinearizability => r.deadline = u64::MAX,
            }
        }
    }

    /// Checks whatever the buffer still holds and returns the verdict for
    /// the whole streamed history.
    ///
    /// # Errors
    ///
    /// The first [`Violation`] any sealed window produced.
    pub fn finish(mut self) -> Result<CheckStats, Violation> {
        // Operations pending at the end (and crashed ones never
        // re-invoked) keep open deadlines, exactly as `records_for`.
        self.seal_up_to(u64::MAX);
        if let Some(v) = self.failed {
            return Err(v);
        }
        debug_assert!(self.buffer.is_empty() || self.buffer.iter().any(|r| r.deadline == u64::MAX));
        let tail = std::mem::take(&mut self.buffer);
        if !tail.is_empty() {
            self.check_window(&tail);
        }
        match self.failed {
            Some(v) => Err(v),
            None => Ok(self.stats),
        }
    }

    /// Operations checked so far (sealed windows only).
    pub fn checked_ops(&self) -> usize {
        self.stats.ops
    }

    /// Records currently buffered (the open overlapping run).
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Seals and checks every complete window whose records all precede an
    /// invocation at `next_inv`, removing them from the buffer.
    fn seal_up_to(&mut self, next_inv: u64) {
        // Any nonempty sealable prefix contains the first buffered record,
        // so an unresolved front (deadline = MAX) rules sealing out — the
        // common steady state while an operation is in flight.
        if self.failed.is_some() || self.buffer.first().is_none_or(|r| r.deadline == u64::MAX) {
            return;
        }
        let mut max_deadline = 0u64;
        let mut cut = 0;
        for (i, r) in self.buffer.iter().enumerate() {
            max_deadline = max_deadline.max(r.deadline);
            if max_deadline == u64::MAX {
                break; // no cut can form beyond an unresolved record
            }
            let next = self.buffer.get(i + 1).map_or(next_inv, |n| n.inv);
            if max_deadline <= next {
                cut = i + 1;
                max_deadline = 0;
            }
        }
        if cut > 0 {
            // Indices into the buffer shift; pending/awaiting entries always
            // sit at or beyond the cut (their deadlines are unresolved).
            let windows: Vec<_> = self.buffer.drain(..cut).collect();
            for (_, i) in self.pending.iter_mut() {
                *i -= cut;
            }
            for (_, i) in self.awaiting_reinvoke.iter_mut() {
                *i -= cut;
            }
            for range in segments(&windows) {
                self.check_window(&windows[range]);
            }
        }
    }

    fn check_window(&mut self, window: &[OpRecord<T::Op, T::Resp>]) {
        if self.failed.is_some() {
            return;
        }
        let w = self.stats.windows;
        if window.len() > self.options.max_window_ops {
            self.fail(Violation::WindowTooLarge {
                window: w,
                first_op: window[0].id.0,
                len: window.len(),
                limit: self.options.max_window_ops,
            });
            return;
        }
        let (ends, best) = window_end_states(&self.spec, window, self.frontier.iter());
        if ends.is_empty() {
            self.fail(Violation::WindowNoLinearization {
                window: w,
                first_op: window[0].id.0,
                last_op: window[window.len() - 1].id.0,
                len: window.len(),
                partition: None,
                best,
            });
            return;
        }
        self.stats.ops += window.len();
        self.stats.windows += 1;
        self.stats.max_window = self.stats.max_window.max(window.len());
        self.stats.frontier_peak = self.stats.frontier_peak.max(ends.len());
        self.frontier = ends;
    }
}

/// A thread-safe [`StreamingChecker`]: the drop-in verifying counterpart
/// of [`Recorder`](crate::Recorder).
///
/// Worker threads call [`invoke`](StreamingRecorder::invoke) right before
/// an operation and [`ret`](StreamingRecorder::ret) right after; the lock
/// acquisition order yields a valid real-time order, and sealed windows
/// are verified in place of being stored, so memory stays bounded however
/// long the run.
#[derive(Debug)]
pub struct StreamingRecorder<T: SequentialSpec> {
    inner: Mutex<StreamingChecker<T>>,
}

impl<T: SequentialSpec> StreamingRecorder<T> {
    /// A recorder verifying against `spec` under `condition`.
    pub fn new(spec: T, condition: Condition, options: CheckOptions) -> Self {
        StreamingRecorder { inner: Mutex::new(StreamingChecker::new(spec, condition, options)) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, StreamingChecker<T>> {
        // As with Recorder: a simulated crash may poison the lock; the
        // checker state is consistent (every event is applied atomically).
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records (and eventually checks) an invocation by `pid`.
    pub fn invoke(&self, pid: ProcId, op: T::Op) -> OpId {
        self.lock().invoke(pid, op)
    }

    /// Records the response of operation `of`.
    pub fn ret(&self, of: OpId, resp: T::Resp) {
        self.lock().ret(of, resp)
    }

    /// Records a system-wide crash marker. Call only once all worker
    /// threads have stopped.
    pub fn crash(&self) {
        self.lock().crash()
    }

    /// Checks the remaining buffer and returns the verdict.
    ///
    /// # Errors
    ///
    /// The first [`Violation`] any window produced.
    pub fn finish(self) -> Result<CheckStats, Violation> {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_records, records_for, History};
    use dss_spec::types::{QueueOp, QueueResp, QueueSpec};
    use std::sync::Arc;

    #[test]
    fn long_sequential_stream_stays_small() {
        let mut c =
            StreamingChecker::new(QueueSpec, Condition::Linearizability, CheckOptions::default());
        for i in 1..=10_000u64 {
            let a = c.invoke(0, QueueOp::Enqueue(i));
            c.ret(a, QueueResp::Ok);
            assert!(c.buffered() <= 2, "buffer must drain as windows seal");
            let b = c.invoke(1, QueueOp::Dequeue);
            c.ret(b, QueueResp::Value(i));
        }
        let stats = c.finish().unwrap();
        assert_eq!(stats.ops, 20_000);
    }

    #[test]
    fn violation_is_sticky_and_reported() {
        let mut c =
            StreamingChecker::new(QueueSpec, Condition::Linearizability, CheckOptions::default());
        let a = c.invoke(0, QueueOp::Dequeue);
        c.ret(a, QueueResp::Value(9)); // nothing was enqueued
        for i in 0..50u64 {
            let e = c.invoke(0, QueueOp::Enqueue(i));
            c.ret(e, QueueResp::Ok);
        }
        let err = c.finish().unwrap_err();
        assert!(matches!(err, Violation::WindowNoLinearization { first_op: 0, .. }), "{err}");
    }

    #[test]
    fn streamed_verdicts_match_batch_on_crash_histories() {
        // Drive the same events through History + check_records and the
        // streaming checker; verdicts must agree, including the
        // persistent-atomicity deadline that resolves on re-invocation.
        for (cond, observed) in [
            (Condition::StrictLinearizability, false),
            (Condition::StrictLinearizability, true),
            (Condition::PersistentAtomicity, false),
            (Condition::PersistentAtomicity, true),
            (Condition::DurableLinearizability, true),
        ] {
            let mut h = History::new();
            let mut c = StreamingChecker::new(QueueSpec, cond, CheckOptions::default());
            let _ = h.invoke(0, QueueOp::Enqueue(5));
            let _ = c.invoke(0, QueueOp::Enqueue(5));
            h.crash();
            c.crash();
            let resp = if observed { QueueResp::Value(5) } else { QueueResp::Empty };
            let hb = h.invoke(0, QueueOp::Dequeue);
            let cb = c.invoke(0, QueueOp::Dequeue);
            h.ret(hb, resp);
            c.ret(cb, resp);
            let records = records_for(&h, cond).unwrap();
            let batch = check_records(&QueueSpec, &records, &CheckOptions::default()).is_ok();
            let streamed = c.finish().is_ok();
            assert_eq!(batch, streamed, "{cond:?} observed={observed}");
        }
    }

    #[test]
    fn pending_operation_blocks_sealing_until_finish() {
        let mut c =
            StreamingChecker::new(QueueSpec, Condition::Linearizability, CheckOptions::default());
        let _stuck = c.invoke(0, QueueOp::Dequeue); // never returns
        for i in 1..=20u64 {
            let a = c.invoke(1, QueueOp::Enqueue(i));
            c.ret(a, QueueResp::Ok);
        }
        assert_eq!(c.checked_ops(), 0, "open run cannot seal");
        assert_eq!(c.buffered(), 21);
        let stats = c.finish().unwrap();
        assert_eq!(stats.ops, 21);
    }

    #[test]
    fn double_invoke_by_same_pid_is_malformed() {
        let mut c =
            StreamingChecker::new(QueueSpec, Condition::Linearizability, CheckOptions::default());
        let _a = c.invoke(0, QueueOp::Dequeue);
        let _b = c.invoke(0, QueueOp::Dequeue);
        assert!(matches!(c.finish(), Err(Violation::Malformed(_))));
    }

    #[test]
    fn concurrent_streaming_recorder_verifies_on_the_fly() {
        // Cut points are quiescent instants, so a run of continuously busy
        // threads is one giant window (that is the FIFO fast path's case).
        // Model a workload with phases: a barrier between batches
        // guarantees quiescence, bounding every window.
        let rec = Arc::new(StreamingRecorder::new(
            QueueSpec,
            Condition::Linearizability,
            CheckOptions::default(),
        ));
        let barrier = Arc::new(std::sync::Barrier::new(4));
        // The object under test: a mutexed queue, linearizable by
        // construction. Enqueue/dequeue pairs keep it (and therefore the
        // carried frontier) small.
        let obj = Arc::new(Mutex::new(std::collections::VecDeque::new()));
        let handles: Vec<_> = (0..4)
            .map(|pid| {
                let rec = Arc::clone(&rec);
                let barrier = Arc::clone(&barrier);
                let obj = Arc::clone(&obj);
                std::thread::spawn(move || {
                    for batch in 0..5u64 {
                        for i in 0..25u64 {
                            let v = pid as u64 * 1000 + batch * 25 + i;
                            let id = rec.invoke(pid, QueueOp::Enqueue(v));
                            obj.lock().unwrap().push_back(v);
                            rec.ret(id, QueueResp::Ok);
                            let id = rec.invoke(pid, QueueOp::Dequeue);
                            let got = obj.lock().unwrap().pop_front();
                            rec.ret(id, got.map_or(QueueResp::Empty, QueueResp::Value));
                        }
                        barrier.wait();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = Arc::try_unwrap(rec).ok().unwrap().finish().unwrap();
        assert_eq!(stats.ops, 1000);
        assert!(stats.max_window <= 512, "barriers bound the windows");
    }
}
