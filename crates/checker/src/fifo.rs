//! Near-linear FIFO queue checking.
//!
//! The general linearization search is exponential in the number of
//! overlapping operations, but a FIFO queue history with *distinct*
//! enqueued values admits a direct analysis: match each dequeued value to
//! its unique enqueue and compare interval orders. This module implements
//! that fast path in two halves, both sound:
//!
//! * **Rejection by bad pattern.** Each pattern below is a concrete witness
//!   that *no* linearization exists (the queue analogues of the
//!   "bad-pattern" characterizations of Bouajjani–Emmi–Enea–Hamza):
//!   a value dequeued twice or never enqueued, a dequeue that completed
//!   before its enqueue was invoked, a FIFO inversion between two
//!   interval-ordered pairs, a must-apply value that is never dequeued but
//!   precedes a dequeued one, and an empty-dequeue covered by a value that
//!   is provably in the queue throughout.
//! * **Acceptance by greedy witness.** A single forward pass builds an
//!   explicit linearization (push at the latest forced point, pull
//!   overlapping pops forward when the head blocks a forced pop); if the
//!   replay succeeds, the history is linearizable by construction.
//!
//! When neither half decides — unclassifiable operations, duplicate
//! values, or an interleaving the greedy schedule cannot navigate —
//! [`check_fifo`] returns `None` and the caller falls back to the
//! segmented search ([`check_records`](crate::check_records)), so the fast
//! path can never flip a verdict. `tests/checker_equivalence.rs` checks
//! verdict parity differentially against the monolithic search.

use std::collections::{HashMap, VecDeque};

use dss_spec::{FifoResp, FifoSpec};

use crate::interval::OpRecord;
use crate::partitioned::CheckStats;
use crate::wgl::Violation;

/// Per-value bookkeeping: the enqueue record and the (unique) dequeue that
/// returned the value.
struct ValueInfo {
    enq: usize,
    deq: Option<usize>,
}

/// Attempts the FIFO fast path on a queue record list.
///
/// Returns `None` when the fast path cannot decide (the caller must fall
/// back to the general segmented search), `Some(Err(_))` on a definite
/// violation, and `Some(Ok(_))` when an explicit linearization witness was
/// constructed.
pub fn check_fifo<T: FifoSpec>(
    spec: &T,
    records: &[OpRecord<T::Op, T::Resp>],
) -> Option<Result<CheckStats, Violation>> {
    // --- Classification; any unclassifiable record disables the path. ---
    // enq[i] = Some(v) iff record i enqueues v; deq_resp[i] holds a
    // dequeue's observed response.
    let mut enq_val: Vec<Option<u64>> = Vec::with_capacity(records.len());
    let mut values: HashMap<u64, ValueInfo> = HashMap::new();
    let mut empties: Vec<usize> = Vec::new(); // dequeues that observed Empty
    let mut unresolved_deqs = false; // dequeues cut short by a crash
    for (i, r) in records.iter().enumerate() {
        if let Some(v) = spec.enqueue_value(&r.op) {
            enq_val.push(Some(v));
            match r.resp.as_ref().map(|resp| spec.classify_resp(resp)) {
                None | Some(Some(FifoResp::EnqAck)) => {}
                _ => return None, // an enqueue answered like a dequeue
            }
            if values.insert(v, ValueInfo { enq: i, deq: None }).is_some() {
                return None; // duplicate values: matching is ambiguous
            }
        } else if spec.is_dequeue(&r.op) {
            enq_val.push(None);
            match r.resp.as_ref().map(|resp| spec.classify_resp(resp)) {
                None => unresolved_deqs = true,
                Some(Some(FifoResp::Empty)) => empties.push(i),
                Some(Some(FifoResp::Value(_))) => {} // matched below
                _ => return None,
            }
        } else {
            return None; // not a plain queue operation
        }
    }
    // Match dequeued values (second pass so every enqueue is known).
    for (i, r) in records.iter().enumerate() {
        let Some(resp) = r.resp.as_ref() else { continue };
        let Some(FifoResp::Value(v)) = spec.classify_resp(resp) else { continue };
        if enq_val[i].is_some() {
            continue;
        }
        let Some(info) = values.get_mut(&v) else {
            return Some(Err(Violation::FifoOrder {
                reason: format!("dequeue returned {v}, which no enqueue produced"),
                ops: vec![records[i].id.0],
            }));
        };
        if let Some(prev) = info.deq {
            return Some(Err(Violation::FifoOrder {
                reason: format!("value {v} dequeued twice"),
                ops: vec![records[prev].id.0, records[i].id.0],
            }));
        }
        info.deq = Some(i);
    }

    if let Some(v) = bad_patterns(records, &values, &empties, unresolved_deqs) {
        return Some(Err(v));
    }
    if greedy_witness(records, &enq_val, &values) {
        let stats =
            CheckStats { ops: records.len(), partitions: 1, fast_path: true, ..Default::default() };
        return Some(Ok(stats));
    }
    None
}

/// An enqueue must take effect if it completed (non-droppable) or its value
/// was observed by a dequeue.
fn must_apply<O, R>(records: &[OpRecord<O, R>], info: &ValueInfo) -> bool {
    !records[info.enq].droppable || info.deq.is_some()
}

/// Searches for a concrete impossibility witness. Every reported pattern
/// is sound: it rules out all linearizations on its own.
fn bad_patterns<O, R>(
    records: &[OpRecord<O, R>],
    values: &HashMap<u64, ValueInfo>,
    empties: &[usize],
    unresolved_deqs: bool,
) -> Option<Violation> {
    // Pattern: a dequeue that completed before its enqueue was invoked.
    for (v, info) in values {
        let Some(d) = info.deq else { continue };
        if records[info.enq].inv >= records[d].deadline {
            return Some(Violation::FifoOrder {
                reason: format!("value {v} dequeued before its enqueue was invoked"),
                ops: vec![records[info.enq].id.0, records[d].id.0],
            });
        }
    }

    // Pattern: FIFO inversion. ∃ v, w (both dequeued, enqueues applied):
    // enq(v) wholly precedes enq(w) while deq(w) wholly precedes deq(v).
    // Sweep w by enqueue invocation; keep the pulled-forward dequeue
    // horizon (max deq invocation) over values whose enqueue already
    // completed.
    {
        let mut by_enq_deadline: Vec<(&u64, &ValueInfo)> =
            values.iter().filter(|(_, i)| i.deq.is_some()).collect();
        let mut by_enq_inv = by_enq_deadline.clone();
        by_enq_deadline.sort_by_key(|(_, i)| records[i.enq].deadline);
        by_enq_inv.sort_by_key(|(_, i)| records[i.enq].inv);
        let mut active = 0usize; // pointer into by_enq_deadline
        let mut horizon: Option<(&u64, &ValueInfo)> = None; // argmax deq inv
        for (w, wi) in by_enq_inv {
            while active < by_enq_deadline.len() {
                let (v, vi) = by_enq_deadline[active];
                if records[vi.enq].deadline > records[wi.enq].inv {
                    break;
                }
                if horizon.is_none_or(|(_, h)| {
                    records[vi.deq.expect("filtered")].inv > records[h.deq.expect("filtered")].inv
                }) {
                    horizon = Some((v, vi));
                }
                active += 1;
            }
            if let Some((v, vi)) = horizon {
                if v != w
                    && records[wi.deq.expect("filtered")].deadline
                        <= records[vi.deq.expect("filtered")].inv
                {
                    return Some(Violation::FifoOrder {
                        reason: format!(
                            "FIFO inversion: {v} enqueued before {w}, but {w} dequeued before {v}"
                        ),
                        ops: vec![
                            records[vi.enq].id.0,
                            records[wi.enq].id.0,
                            records[wi.deq.expect("filtered")].id.0,
                            records[vi.deq.expect("filtered")].id.0,
                        ],
                    });
                }
            }
        }
    }

    // The remaining patterns assume no dequeue was cut short: an
    // unresolved dequeue may linearize and silently remove any value,
    // un-witnessing them.
    if unresolved_deqs {
        return None;
    }

    // Pattern: a must-apply value that nothing ever dequeues, enqueued
    // wholly before a value that IS dequeued — the earlier value blocks
    // the head forever.
    {
        let stuck = values
            .iter()
            .filter(|(_, i)| i.deq.is_none() && must_apply(records, i))
            .min_by_key(|(_, i)| records[i.enq].deadline);
        let popped =
            values.iter().filter(|(_, i)| i.deq.is_some()).max_by_key(|(_, i)| records[i.enq].inv);
        if let (Some((v, vi)), Some((w, wi))) = (stuck, popped) {
            if records[vi.enq].deadline <= records[wi.enq].inv {
                return Some(Violation::FifoOrder {
                    reason: format!(
                        "{v} is never dequeued yet enqueued wholly before {w}, which is dequeued"
                    ),
                    ops: vec![
                        records[vi.enq].id.0,
                        records[wi.enq].id.0,
                        records[wi.deq.expect("filtered")].id.0,
                    ],
                });
            }
        }
    }

    // Pattern: a covered empty dequeue — some value is provably in the
    // queue for the dequeue's whole interval (enqueued wholly before, and
    // dequeued only after, or never).
    {
        let mut by_enq_deadline: Vec<(&u64, &ValueInfo)> =
            values.iter().filter(|(_, i)| must_apply(records, i)).collect();
        by_enq_deadline.sort_by_key(|(_, i)| records[i.enq].deadline);
        let mut empties: Vec<usize> = empties.to_vec();
        empties.sort_by_key(|&d| records[d].inv);
        let mut active = 0usize;
        // Over activated values: the one whose dequeue starts latest
        // (never-dequeued counts as infinitely late).
        let mut cover: Option<(&u64, &ValueInfo)> = None;
        let deq_inv = |i: &ValueInfo| i.deq.map_or(u64::MAX, |d| records[d].inv);
        for d in empties {
            while active < by_enq_deadline.len() {
                let (v, vi) = by_enq_deadline[active];
                if records[vi.enq].deadline > records[d].inv {
                    break;
                }
                if cover.is_none_or(|(_, c)| deq_inv(vi) > deq_inv(c)) {
                    cover = Some((v, vi));
                }
                active += 1;
            }
            if let Some((v, vi)) = cover {
                if deq_inv(vi) >= records[d].deadline {
                    let mut ops = vec![records[vi.enq].id.0, records[d].id.0];
                    if let Some(dq) = vi.deq {
                        ops.push(records[dq].id.0);
                    }
                    return Some(Violation::FifoOrder {
                        reason: format!(
                            "dequeue observed an empty queue while {v} was provably queued"
                        ),
                        ops,
                    });
                }
            }
        }
    }

    None
}

/// One timeline point of the greedy replay.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum PointKind {
    // Deadlines order before invocations at the same index, mirroring the
    // search's `deadline <= inv` forcing.
    Deadline,
    Invoke,
}

/// Tries to build an explicit linearization by forward replay: apply every
/// operation at its latest admissible point, pulling overlapping pops
/// forward when they block a forced pop, and dropping droppable operations
/// whose effect nothing observed.
fn greedy_witness<O, R>(
    records: &[OpRecord<O, R>],
    enq_val: &[Option<u64>],
    values: &HashMap<u64, ValueInfo>,
) -> bool {
    let mut points: Vec<(u64, PointKind, usize)> = Vec::with_capacity(records.len() * 2);
    for (i, r) in records.iter().enumerate() {
        points.push((r.inv, PointKind::Invoke, i));
        if r.deadline != u64::MAX {
            points.push((r.deadline, PointKind::Deadline, i));
        }
    }
    points.sort_unstable();

    // Record index -> the value its dequeue observed (inverse of
    // `values[_].deq`), so the replay never scans the value map.
    let mut deq_val: Vec<Option<u64>> = vec![None; records.len()];
    for (v, info) in values {
        if let Some(d) = info.deq {
            deq_val[d] = Some(*v);
        }
    }

    let mut queue: VecDeque<u64> = VecDeque::new();
    let mut in_queue: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut applied = vec![false; records.len()]; // applied or dropped
    let mut invoked = vec![false; records.len()];
    // Prerequisite index: values not yet pushed whose enqueue is invoked
    // and whose pop is observed, keyed by the pop's deadline — the forced-
    // precedence order. Populated at enqueue-invoke points, drained (or
    // invalidated by `applied`) as pushes happen.
    let mut prereq: std::collections::BTreeSet<(u64, u64)> = std::collections::BTreeSet::new();

    // Pops the head while the blocking value's own dequeue may be pulled
    // forward to `now`.
    let pull_pops = |queue: &mut VecDeque<u64>,
                     in_queue: &mut std::collections::HashSet<u64>,
                     applied: &mut Vec<bool>,
                     invoked: &[bool],
                     stop_at: Option<u64>,
                     now: u64| {
        while let Some(&head) = queue.front() {
            if Some(head) == stop_at {
                return true;
            }
            let Some(d) = values[&head].deq else { return false };
            if applied[d] || !invoked[d] || records[d].deadline <= now {
                return false;
            }
            applied[d] = true;
            in_queue.remove(&head);
            queue.pop_front();
        }
        stop_at.is_none()
    };

    for &(now, kind, i) in &points {
        match kind {
            PointKind::Invoke => {
                invoked[i] = true;
                if let Some(w) = enq_val[i] {
                    if let Some(d) = values[&w].deq {
                        prereq.insert((records[d].deadline, w));
                    }
                }
            }
            PointKind::Deadline if applied[i] => {} // pulled forward earlier
            PointKind::Deadline => {
                if let Some(u) = enq_val[i] {
                    let info = &values[&u];
                    if !must_apply(records, info) {
                        applied[i] = true; // droppable, unobserved: drop
                        continue;
                    }
                    // Minimal commitment: push first exactly the values
                    // FORCED to precede u in the queue — those whose pop
                    // completes before u's pop is even invoked (if u is
                    // never popped, every popped value must precede it,
                    // since whatever sits behind u can never reach the
                    // head). Pop *deadlines* alone do not order pops —
                    // overlapping pops may apply in either order via
                    // pulls — so anything not forced stays unpushed.
                    let u_pop_inv = info.deq.map_or(u64::MAX, |d| records[d].inv);
                    while let Some(&(dd, w)) = prereq.first() {
                        if dd > u_pop_inv {
                            break;
                        }
                        prereq.pop_first();
                        let e = values[&w].enq;
                        if applied[e] {
                            continue; // pushed through another path already
                        }
                        applied[e] = true;
                        in_queue.insert(w);
                        queue.push_back(w);
                    }
                    applied[i] = true;
                    prereq.remove(&(info.deq.map_or(u64::MAX, |d| records[d].deadline), u));
                    in_queue.insert(u);
                    queue.push_back(u);
                } else {
                    // A dequeue's deadline.
                    match records[i].resp.is_some() {
                        false => applied[i] = true, // crashed, droppable: drop
                        true => {
                            match deq_val[i] {
                                None => {
                                    // Empty: drain pullable pops, then require empty.
                                    if !pull_pops(
                                        &mut queue,
                                        &mut in_queue,
                                        &mut applied,
                                        &invoked,
                                        None,
                                        now,
                                    ) {
                                        return false;
                                    }
                                    applied[i] = true;
                                }
                                Some(v) => {
                                    if !in_queue.contains(&v) {
                                        let e = values[&v].enq;
                                        if applied[e] || !invoked[e] {
                                            return false;
                                        }
                                        if !pull_pops(
                                            &mut queue,
                                            &mut in_queue,
                                            &mut applied,
                                            &invoked,
                                            None,
                                            now,
                                        ) {
                                            return false;
                                        }
                                        applied[e] = true;
                                        prereq.remove(&(records[i].deadline, v));
                                        in_queue.insert(v);
                                        queue.push_back(v);
                                    }
                                    if !pull_pops(
                                        &mut queue,
                                        &mut in_queue,
                                        &mut applied,
                                        &invoked,
                                        Some(v),
                                        now,
                                    ) {
                                        return false;
                                    }
                                    debug_assert_eq!(queue.front(), Some(&v));
                                    queue.pop_front();
                                    in_queue.remove(&v);
                                    applied[i] = true;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    // Whatever never reached a deadline is droppable (pending at the end):
    // dropping is always admissible, and anything observed was pulled.
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check, records_for, Condition, History};
    use dss_spec::types::{QueueOp, QueueResp, QueueSpec};

    type QH = History<QueueOp, QueueResp>;

    fn fifo_verdict(h: &QH, cond: Condition) -> Option<bool> {
        let records = records_for(h, cond).unwrap();
        check_fifo(&QueueSpec, &records).map(|r| r.is_ok())
    }

    #[test]
    fn sequential_pairs_accepted_by_witness() {
        let mut h = QH::new();
        for i in 1..=100u64 {
            let a = h.invoke(0, QueueOp::Enqueue(i));
            h.ret(a, QueueResp::Ok);
            let b = h.invoke(1, QueueOp::Dequeue);
            h.ret(b, QueueResp::Value(i));
        }
        assert_eq!(fifo_verdict(&h, Condition::Linearizability), Some(true));
    }

    #[test]
    fn never_enqueued_value_rejected() {
        let mut h = QH::new();
        let a = h.invoke(0, QueueOp::Enqueue(1));
        h.ret(a, QueueResp::Ok);
        let b = h.invoke(0, QueueOp::Dequeue);
        h.ret(b, QueueResp::Value(9));
        assert_eq!(fifo_verdict(&h, Condition::Linearizability), Some(false));
    }

    #[test]
    fn fifo_inversion_rejected_and_names_ops() {
        let mut h = QH::new();
        let a = h.invoke(0, QueueOp::Enqueue(1));
        h.ret(a, QueueResp::Ok);
        let b = h.invoke(1, QueueOp::Enqueue(2));
        h.ret(b, QueueResp::Ok);
        let c = h.invoke(0, QueueOp::Dequeue);
        h.ret(c, QueueResp::Value(2));
        let d = h.invoke(0, QueueOp::Dequeue);
        h.ret(d, QueueResp::Value(1));
        let records = records_for(&h, Condition::Linearizability).unwrap();
        let err = check_fifo(&QueueSpec, &records).unwrap().unwrap_err();
        match err {
            Violation::FifoOrder { ops, .. } => {
                assert!(ops.contains(&4) && ops.contains(&6), "{ops:?}");
            }
            other => panic!("expected FIFO violation, got {other}"),
        }
        // Ground truth agrees.
        assert!(check(&QueueSpec, &records).is_err());
    }

    #[test]
    fn covered_empty_rejected() {
        let mut h = QH::new();
        let a = h.invoke(0, QueueOp::Enqueue(1));
        h.ret(a, QueueResp::Ok);
        let b = h.invoke(1, QueueOp::Dequeue);
        h.ret(b, QueueResp::Empty); // 1 is queued throughout
        let c = h.invoke(1, QueueOp::Dequeue);
        h.ret(c, QueueResp::Value(1));
        assert_eq!(fifo_verdict(&h, Condition::Linearizability), Some(false));
    }

    #[test]
    fn overlapping_enqueues_any_pop_order_accepted() {
        let mut h = QH::new();
        let a = h.invoke(0, QueueOp::Enqueue(1));
        let b = h.invoke(1, QueueOp::Enqueue(2));
        h.ret(b, QueueResp::Ok);
        h.ret(a, QueueResp::Ok);
        let c = h.invoke(0, QueueOp::Dequeue);
        h.ret(c, QueueResp::Value(2));
        let d = h.invoke(0, QueueOp::Dequeue);
        h.ret(d, QueueResp::Value(1));
        let records = records_for(&h, Condition::Linearizability).unwrap();
        // Accepted — by witness or by falling back (None), never rejected.
        assert_ne!(check_fifo(&QueueSpec, &records).map(|r| r.is_ok()), Some(false));
        assert!(check(&QueueSpec, &records).is_ok());
    }

    #[test]
    fn crashed_enqueue_observed_or_dropped_accepted() {
        for observed in [true, false] {
            let mut h = QH::new();
            let _a = h.invoke(0, QueueOp::Enqueue(5));
            h.crash();
            let b = h.invoke(1, QueueOp::Dequeue);
            h.ret(b, if observed { QueueResp::Value(5) } else { QueueResp::Empty });
            let v = fifo_verdict(&h, Condition::StrictLinearizability);
            assert_ne!(v, Some(false), "observed={observed}");
        }
    }

    #[test]
    fn duplicate_values_fall_back() {
        let mut h = QH::new();
        for _ in 0..2 {
            let a = h.invoke(0, QueueOp::Enqueue(7));
            h.ret(a, QueueResp::Ok);
        }
        let records = records_for(&h, Condition::Linearizability).unwrap();
        assert!(check_fifo(&QueueSpec, &records).is_none());
    }

    #[test]
    fn pending_dequeue_makes_empty_patterns_conservative() {
        // A crashed dequeue could have removed the value; the empty that
        // follows is legal and must not be reported by the fast path.
        let mut h = QH::new();
        let a = h.invoke(0, QueueOp::Enqueue(1));
        h.ret(a, QueueResp::Ok);
        let _d = h.invoke(1, QueueOp::Dequeue); // crashes mid-flight
        h.crash();
        let e = h.invoke(0, QueueOp::Dequeue);
        h.ret(e, QueueResp::Empty);
        let records = records_for(&h, Condition::StrictLinearizability).unwrap();
        assert!(check(&QueueSpec, &records).is_ok());
        assert_ne!(check_fifo(&QueueSpec, &records).map(|r| r.is_ok()), Some(false));
    }
}
