//! Concurrent history recording.

use std::sync::Mutex;

use dss_spec::ProcId;

use crate::{History, OpId};

/// A thread-safe [`History`] builder.
///
/// Worker threads call [`invoke`](Recorder::invoke) immediately before
/// starting an operation on the object under test and
/// [`ret`](Recorder::ret) immediately after it completes; the recorder's
/// internal lock acquisition order then yields a valid real-time order (an
/// operation's invoke is recorded before its effect, its return after).
///
/// The mutex is deliberately coarse: recording is for correctness tests,
/// not benchmarks.
///
/// # Examples
///
/// ```
/// use dss_checker::{Condition, Recorder, check_history};
/// use dss_spec::types::{QueueOp, QueueResp, QueueSpec};
///
/// let rec = Recorder::new();
/// let id = rec.invoke(0, QueueOp::Enqueue(3));
/// rec.ret(id, QueueResp::Ok);
/// let h = rec.into_history();
/// assert!(check_history(&QueueSpec, &h, Condition::Linearizability).is_ok());
/// ```
#[derive(Debug, Default)]
pub struct Recorder<O, R> {
    inner: Mutex<History<O, R>>,
}

impl<O: Clone, R: Clone> Recorder<O, R> {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Recorder { inner: Mutex::new(History::new()) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, History<O, R>> {
        // A panicking worker (e.g. a simulated CrashSignal) may poison the
        // lock; the history it guards is still consistent, since each append
        // is a single push.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records an invocation by `pid`; returns the operation ID to pass to
    /// [`ret`](Recorder::ret).
    pub fn invoke(&self, pid: ProcId, op: O) -> OpId {
        self.lock().invoke(pid, op)
    }

    /// Records the response of operation `of`.
    pub fn ret(&self, of: OpId, resp: R) {
        self.lock().ret(of, resp)
    }

    /// Records a system-wide crash marker. Call only once all worker
    /// threads have stopped.
    pub fn crash(&self) {
        self.lock().crash()
    }

    /// Consumes the recorder and returns the history.
    pub fn into_history(self) -> History<O, R> {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a copy of the history recorded so far.
    pub fn snapshot(&self) -> History<O, R> {
        self.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_spec::types::{QueueOp, QueueResp};
    use std::sync::Arc;

    #[test]
    fn concurrent_recording_is_well_formed() {
        let rec = Arc::new(Recorder::<QueueOp, QueueResp>::new());
        let handles: Vec<_> = (0..4)
            .map(|pid| {
                let rec = Arc::clone(&rec);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        let id = rec.invoke(pid, QueueOp::Enqueue(i));
                        rec.ret(id, QueueResp::Ok);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let h = Arc::try_unwrap(rec).unwrap().into_history();
        assert!(h.validate().is_ok());
        assert_eq!(h.events().len(), 400);
    }

    #[test]
    fn crash_marker_recorded() {
        let rec = Recorder::<QueueOp, QueueResp>::new();
        let _id = rec.invoke(0, QueueOp::Dequeue);
        rec.crash();
        let h = rec.into_history();
        assert!(h.has_crash());
        assert!(h.validate().is_ok());
    }

    #[test]
    fn snapshot_does_not_consume() {
        let rec = Recorder::<QueueOp, QueueResp>::new();
        let id = rec.invoke(0, QueueOp::Enqueue(1));
        let snap = rec.snapshot();
        rec.ret(id, QueueResp::Ok);
        assert_eq!(snap.events().len(), 1);
        assert_eq!(rec.into_history().events().len(), 2);
    }
}
