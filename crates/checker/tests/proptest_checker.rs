//! Property-based tests of the linearizability checkers: soundness on
//! histories generated from genuine sequential executions, and rejection
//! when responses are corrupted.

use proptest::prelude::*;

use dss_checker::{check_history, Condition, Event, History, OpId};
use dss_spec::types::{QueueOp, QueueResp, QueueSpec};
use dss_spec::SequentialSpec;

fn arb_queue_op() -> impl Strategy<Value = QueueOp> {
    prop_oneof![(0u64..20).prop_map(QueueOp::Enqueue), Just(QueueOp::Dequeue)]
}

/// Builds a history by *actually executing* the ops sequentially: such a
/// history is linearizable by construction.
fn sequential_history(script: &[(QueueOp, usize)]) -> History<QueueOp, QueueResp> {
    let spec = QueueSpec;
    let mut state = spec.initial();
    let mut h = History::new();
    for (op, pid) in script {
        let (next, resp) = spec.apply(&state, op, *pid).unwrap();
        let id = h.invoke(*pid, *op);
        h.ret(id, resp);
        state = next;
    }
    h
}

proptest! {
    /// Every history from a genuine sequential execution passes.
    #[test]
    fn sequential_executions_are_linearizable(
        script in prop::collection::vec((arb_queue_op(), 0..3usize), 0..15)
    ) {
        let h = sequential_history(&script);
        prop_assert!(h.validate().is_ok());
        prop_assert!(check_history(&QueueSpec, &h, Condition::Linearizability).is_ok());
        // The strongest crash condition degenerates to plain
        // linearizability on crash-free histories.
        prop_assert!(check_history(&QueueSpec, &h, Condition::StrictLinearizability).is_ok());
    }

    /// Relaxing responses to overlap-free reorderings: swapping the
    /// *return order* of two operations whose executions overlap never
    /// breaks linearizability (the checker must not be order-brittle).
    #[test]
    fn overlapping_ops_commute_in_the_record(
        values in prop::collection::vec(1u64..50, 2..6)
    ) {
        // All enqueues overlap: invoke all, then return all.
        let mut h = History::new();
        let ids: Vec<OpId> =
            values.iter().enumerate().map(|(i, v)| h.invoke(i, QueueOp::Enqueue(*v))).collect();
        for id in &ids {
            h.ret(*id, QueueResp::Ok);
        }
        // Dequeue them in reverse value order by one process — legal,
        // since every enqueue pair overlapped.
        let spec_pid = values.len();
        for v in values.iter().rev() {
            let d = h.invoke(spec_pid, QueueOp::Dequeue);
            h.ret(d, QueueResp::Value(*v));
        }
        prop_assert!(check_history(&QueueSpec, &h, Condition::Linearizability).is_ok());
    }

    /// Corrupting the value of any dequeue response to a never-enqueued
    /// value must be rejected.
    #[test]
    fn corrupted_dequeue_value_rejected(
        script in prop::collection::vec((arb_queue_op(), 0..3usize), 1..12)
    ) {
        let h = sequential_history(&script);
        let mut events: Vec<Event<QueueOp, QueueResp>> = h.events().to_vec();
        let mut tampered = false;
        for e in events.iter_mut() {
            if let Event::Return { resp: QueueResp::Value(v), .. } = e {
                *v = 999; // never enqueued (values are < 20)
                tampered = true;
                break;
            }
        }
        prop_assume!(tampered);
        let mut h2 = History::new();
        for e in events {
            match e {
                Event::Invoke { pid, op } => {
                    h2.invoke(pid, op);
                }
                Event::Return { of, resp } => h2.ret(of, resp),
                Event::Crash => h2.crash(),
            }
        }
        prop_assert!(check_history(&QueueSpec, &h2, Condition::Linearizability).is_err());
    }

    /// A crashed pending operation never *has* to take effect: dropping
    /// it is always an admissible linearization under every crash-aware
    /// condition.
    #[test]
    fn crashed_pending_op_may_always_be_dropped(
        script in prop::collection::vec((arb_queue_op(), 0..3usize), 0..10),
        pending in arb_queue_op(),
    ) {
        let mut h = sequential_history(&script);
        let _ = h.invoke(0, pending); // never returns
        h.crash();
        for cond in [
            Condition::StrictLinearizability,
            Condition::PersistentAtomicity,
            Condition::RecoverableLinearizability,
        ] {
            prop_assert!(check_history(&QueueSpec, &h, cond).is_ok(), "{cond:?}");
        }
    }
}
