//! Differential tests: on every history small enough for the classic
//! monolithic Wing–Gong search (≤ 63 operations), the segmented checker
//! ([`check_records`]), the streaming checker ([`StreamingChecker`]), and —
//! for queues — the FIFO fast path ([`check_fifo`]) must all return the
//! same verdict as [`check`]. The monolithic search is the ground-truth
//! oracle; any disagreement is a bug in the newer pipeline.

use std::collections::HashMap;

use proptest::prelude::*;

use dss_checker::{
    check, check_fifo, check_partitioned, check_records, records_for, CheckOptions, Condition,
    Event, History, OpId, StreamingChecker, Violation,
};
use dss_spec::types::{
    CasOp, CasResp, CasSpec, QueueOp, QueueResp, QueueSpec, RegisterOp, RegisterResp, RegisterSpec,
    StackOp, StackResp, StackSpec,
};
use dss_spec::{Keyed, SequentialSpec};

/// Crash-aware conditions (everything but plain linearizability).
const CRASH_CONDS: [Condition; 4] = [
    Condition::StrictLinearizability,
    Condition::PersistentAtomicity,
    Condition::RecoverableLinearizability,
    Condition::DurableLinearizability,
];

fn condition_for(idx: usize, has_crash: bool) -> Condition {
    if has_crash {
        CRASH_CONDS[idx % CRASH_CONDS.len()]
    } else if idx % 5 == 4 {
        Condition::Linearizability
    } else {
        CRASH_CONDS[idx % CRASH_CONDS.len()]
    }
}

/// One generator step: `kind` selects invoke (0–4), return (5–6), or crash
/// (7); `sel` picks the process / the pending operation.
type Action<O> = (u8, usize, O);

/// Builds a well-formed concurrent history from a script, deriving each
/// response by applying the operation to a running state *at return time*.
/// The return-order permutation is then a linearization witness (if
/// `deadline(a) <= inv(b)` then `a` returned before `b` was invoked, so
/// return order respects the interval order), hence the history is
/// accepted by a sound checker under every condition.
fn valid_concurrent_history<T: SequentialSpec>(
    spec: &T,
    nproc: usize,
    script: &[Action<T::Op>],
    max_crashes: usize,
) -> History<T::Op, T::Resp> {
    let mut h = History::new();
    let mut pending: Vec<(usize, OpId, T::Op)> = Vec::new();
    let mut state = spec.initial();
    let mut crashes = 0;
    for (kind, sel, op) in script {
        match *kind {
            0..=4 => {
                let pid = *sel % nproc;
                if !pending.iter().any(|(p, _, _)| *p == pid) {
                    let id = h.invoke(pid, op.clone());
                    pending.push((pid, id, op.clone()));
                }
            }
            5 | 6 => {
                if !pending.is_empty() {
                    let (pid, id, op) = pending.swap_remove(*sel % pending.len());
                    let (next, resp) = spec.apply(&state, &op, pid).expect("specs here are total");
                    state = next;
                    h.ret(id, resp);
                }
            }
            _ => {
                if crashes < max_crashes {
                    h.crash();
                    // Ops pending at the crash never return; they are
                    // droppable, and the running state simply never
                    // absorbs them.
                    pending.clear();
                    crashes += 1;
                }
            }
        }
    }
    h
}

/// Rebuilds a history from raw events (operation IDs are event indices, so
/// replaying in order reproduces identical IDs).
fn replay<O: Clone, R: Clone>(events: Vec<Event<O, R>>) -> History<O, R> {
    let mut h = History::new();
    for e in events {
        match e {
            Event::Invoke { pid, op } => {
                h.invoke(pid, op);
            }
            Event::Return { of, resp } => h.ret(of, resp),
            Event::Crash => h.crash(),
        }
    }
    h
}

/// The differential core: monolithic vs segmented vs streaming (and, via
/// [`assert_fifo_agrees`], the FIFO fast path). Returns the oracle verdict
/// so callers can additionally pin it.
fn assert_verdicts_agree<T: SequentialSpec + Copy>(
    spec: &T,
    h: &History<T::Op, T::Resp>,
    cond: Condition,
) -> bool {
    let records = records_for(h, cond).expect("generated histories are well-formed");
    assert!(records.len() <= 63, "generator exceeded the monolithic checker's capacity");

    if records.is_empty() {
        // The segmented checker refuses empty record lists by contract
        // (`Malformed`, see `empty_record_lists_are_malformed`) rather
        // than vacuously passing; the oracle comparison only applies to
        // histories with at least one operation.
        assert!(matches!(
            check_records(spec, &records, &CheckOptions::default()),
            Err(Violation::Malformed(_))
        ));
        return true;
    }

    let mono = check(spec, &records).is_ok();
    let seg = check_records(spec, &records, &CheckOptions::default()).is_ok();
    assert_eq!(
        mono, seg,
        "segmented checker disagrees with monolithic oracle under {cond:?}: {records:?}"
    );

    // Streaming replay of the very same events.
    let mut s = StreamingChecker::new(*spec, cond, CheckOptions::default());
    let mut ids: HashMap<OpId, OpId> = HashMap::new();
    for (i, e) in h.events().iter().enumerate() {
        match e {
            Event::Invoke { pid, op } => {
                ids.insert(OpId(i), s.invoke(*pid, op.clone()));
            }
            Event::Return { of, resp } => s.ret(ids[of], resp.clone()),
            Event::Crash => s.crash(),
        }
    }
    let stream = s.finish().is_ok();
    assert_eq!(
        mono, stream,
        "streaming checker disagrees with monolithic oracle under {cond:?}: {records:?}"
    );
    mono
}

/// When the FIFO fast path claims a verdict (`Some`), it must match the
/// oracle; `None` (fall back to the general search) is always acceptable.
fn assert_fifo_agrees(h: &History<QueueOp, QueueResp>, cond: Condition) {
    let records = records_for(h, cond).expect("generated histories are well-formed");
    let mono = check(&QueueSpec, &records).is_ok();
    if let Some(fast) = check_fifo(&QueueSpec, &records) {
        assert_eq!(
            mono,
            fast.is_ok(),
            "FIFO fast path disagrees with monolithic oracle under {cond:?}: {records:?}"
        );
    }
}

/// Corrupts the `k`-th return event's response (if any) with `replacement`,
/// returning the tampered history and whether anything changed.
fn corrupt_return<O: Clone, R: Clone + PartialEq>(
    h: &History<O, R>,
    k: usize,
    replacement: R,
) -> Option<History<O, R>> {
    let mut events: Vec<Event<O, R>> = h.events().to_vec();
    let returns: Vec<usize> = events
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e, Event::Return { .. }))
        .map(|(i, _)| i)
        .collect();
    if returns.is_empty() {
        return None;
    }
    let i = returns[k % returns.len()];
    if let Event::Return { resp, .. } = &mut events[i] {
        if *resp == replacement {
            return None; // not actually a corruption
        }
        *resp = replacement;
    }
    Some(replay(events))
}

/// Extra per-spec cross-check; the queue suite plugs in
/// [`assert_fifo_agrees`], everything else uses this no-op.
fn no_extra_check<O, R>(_h: &History<O, R>, _cond: Condition) {}

macro_rules! equivalence_suite {
    ($module:ident, $spec:expr, $op:expr, $resp:expr, $extra:path) => {
        mod $module {
            use super::*;

            proptest! {
                /// Valid concurrent histories (responses derived from a
                /// return-order witness): every checker must accept.
                #[test]
                fn valid_histories_accepted(
                    script in prop::collection::vec((0u8..8, 0usize..8, $op), 0..48),
                    cond_idx in 0usize..5,
                    nproc in 1usize..5,
                ) {
                    let spec = $spec;
                    let h = valid_concurrent_history(&spec, nproc, &script, 2);
                    let cond = condition_for(cond_idx, h.has_crash());
                    let ok = assert_verdicts_agree(&spec, &h, cond);
                    prop_assert!(ok, "valid-by-construction history rejected under {cond:?}");
                    $extra(&h, cond);
                }

                /// The same histories with one response corrupted: all
                /// checkers must still agree (usually on rejection, but
                /// agreement — not rejection — is the property).
                #[test]
                fn corrupted_histories_agree(
                    script in prop::collection::vec((0u8..8, 0usize..8, $op), 1..40),
                    replacement in $resp,
                    k in 0usize..64,
                    cond_idx in 0usize..5,
                ) {
                    let spec = $spec;
                    let h = valid_concurrent_history(&spec, 3, &script, 1);
                    prop_assume!(h.events().iter().any(|e| matches!(e, Event::Return { .. })));
                    let cond = condition_for(cond_idx, h.has_crash());
                    if let Some(bad) = corrupt_return(&h, k, replacement) {
                        assert_verdicts_agree(&spec, &bad, cond);
                        $extra(&bad, cond);
                    }
                }

                /// Fully random responses (type-correct but arbitrary):
                /// verdict parity on adversarial noise.
                #[test]
                fn random_response_histories_agree(
                    script in prop::collection::vec((0u8..8, 0usize..8, $op, $resp), 0..40),
                    cond_idx in 0usize..5,
                ) {
                    let spec = $spec;
                    let mut h = History::new();
                    let mut pending: Vec<(usize, OpId)> = Vec::new();
                    let mut crashes = 0;
                    for (kind, sel, op, resp) in &script {
                        match *kind {
                            0..=4 => {
                                let pid = *sel % 3;
                                if !pending.iter().any(|(p, _)| *p == pid) {
                                    pending.push((pid, h.invoke(pid, op.clone())));
                                }
                            }
                            5 | 6 => {
                                if !pending.is_empty() {
                                    let (_, id) = pending.swap_remove(*sel % pending.len());
                                    h.ret(id, resp.clone());
                                }
                            }
                            _ => {
                                if crashes < 2 {
                                    h.crash();
                                    pending.clear();
                                    crashes += 1;
                                }
                            }
                        }
                    }
                    let cond = condition_for(cond_idx, h.has_crash());
                    assert_verdicts_agree(&spec, &h, cond);
                    $extra(&h, cond);
                }
            }
        }
    };
}

/// An empty record list must be refused as [`Violation::Malformed`] by
/// every segmented entry point, never accepted as vacuously verified: a
/// pipeline that reports success has to have checked at least one
/// operation, so an empty history reaching the checker is a recording
/// bug upstream.
#[test]
fn empty_record_lists_are_malformed() {
    let whole = check_records(&QueueSpec, &[], &CheckOptions::default());
    match whole {
        Err(Violation::Malformed(msg)) => {
            assert!(msg.contains("empty record list"), "unhelpful message: {msg}")
        }
        other => panic!("empty records must be Malformed, got {other:?}"),
    }

    let partitioned = check_partitioned(&Keyed::new(RegisterSpec), &[], &CheckOptions::default());
    assert!(
        matches!(partitioned, Err(Violation::Malformed(_))),
        "check_partitioned must refuse empty records too, got {partitioned:?}"
    );
}

fn arb_queue_op() -> impl Strategy<Value = QueueOp> {
    prop_oneof![(0u64..6).prop_map(QueueOp::Enqueue), Just(QueueOp::Dequeue)]
}
fn arb_queue_resp() -> impl Strategy<Value = QueueResp> {
    prop_oneof![Just(QueueResp::Ok), (0u64..6).prop_map(QueueResp::Value), Just(QueueResp::Empty)]
}
fn arb_stack_op() -> impl Strategy<Value = StackOp> {
    prop_oneof![(0u64..6).prop_map(StackOp::Push), Just(StackOp::Pop)]
}
fn arb_stack_resp() -> impl Strategy<Value = StackResp> {
    prop_oneof![Just(StackResp::Ok), (0u64..6).prop_map(StackResp::Value), Just(StackResp::Empty)]
}
fn arb_register_op() -> impl Strategy<Value = RegisterOp> {
    prop_oneof![(0u64..6).prop_map(RegisterOp::Write), Just(RegisterOp::Read)]
}
fn arb_register_resp() -> impl Strategy<Value = RegisterResp> {
    prop_oneof![Just(RegisterResp::Ok), (0u64..6).prop_map(RegisterResp::Value)]
}
fn arb_cas_op() -> impl Strategy<Value = CasOp> {
    prop_oneof![
        Just(CasOp::Read),
        (0u64..4, 0u64..4).prop_map(|(expected, new)| CasOp::Cas { expected, new })
    ]
}
fn arb_cas_resp() -> impl Strategy<Value = CasResp> {
    prop_oneof![(0u64..4).prop_map(CasResp::Value), proptest::bool::ANY.prop_map(CasResp::Done)]
}

equivalence_suite!(queue, QueueSpec, arb_queue_op(), arb_queue_resp(), assert_fifo_agrees);
equivalence_suite!(stack, StackSpec, arb_stack_op(), arb_stack_resp(), no_extra_check);
equivalence_suite!(register, RegisterSpec, arb_register_op(), arb_register_resp(), no_extra_check);
equivalence_suite!(cas, CasSpec, arb_cas_op(), arb_cas_resp(), no_extra_check);
