//! Persistent multi-word compare-and-swap and the CASWithEffect queues.
//!
//! The paper's Figure 5b compares the DSS queue against two detectable
//! queues built on Wang, Levandoski & Larson's **PMwCAS** (ICDE 2018) —
//! "a simple queue algorithm where the linked list and detectability state
//! (analogous to X in DSS queue) are manipulated using PMwCAS":
//!
//! * [`CasWithEffectQueue::new_general`] — every word, including the
//!   per-thread detectability word, goes through the full PMwCAS protocol
//!   (descriptor reservation, helping, persistence).
//! * [`CasWithEffectQueue::new_fast`] — PMwCAS "optimized for multi-word
//!   operations that access a combination of shared variables (queue head,
//!   tail, and next pointers) and private variables (detectability
//!   state)": private words skip the reservation CAS and are written
//!   directly at commit, saving one install CAS + flush per word.
//!
//! [`PmwcasArena`] is the underlying multi-word CAS: a descriptor-based,
//! lock-free, persistent protocol. This implementation is the *eager-flush*
//! conservative variant — every installed word and every final value is
//! flushed immediately rather than lazily via Wang et al.'s dirty-bit — and
//! it resolves conflicts without RDCSS, which can fail a descriptor that
//! races with a concurrent writer but never produces an unsafe outcome
//! (callers retry, exactly as the queues do). Descriptors live in
//! persistent memory, so [`PmwcasArena::recover`] can roll every in-flight
//! descriptor forward (decided) or back (undecided) after a crash.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod arena;
mod queue;

pub use arena::{PmwcasArena, MAX_PRIVATE, MAX_SHARED};
pub use queue::{CasWithEffectQueue, CweFull, CweResolved, CweResolvedOp, KIND_CWE_QUEUE};
