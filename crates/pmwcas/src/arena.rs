//! The persistent multi-word CAS protocol.

use std::fmt;
use std::sync::Arc;

use dss_pmem::{tag, Ebr, Memory, NodePool, PAddr, PmemPool};

/// Maximum shared (reserved via CAS) words per PMwCAS.
pub const MAX_SHARED: usize = 3;
/// Maximum private (written at commit) words per PMwCAS.
pub const MAX_PRIVATE: usize = 2;

// Descriptor layout (16 words = 2 cache lines).
const D_STATUS: u64 = 0;
const D_NSHARED: u64 = 1;
const D_NPRIVATE: u64 = 2;
const D_SHARED: u64 = 3; // 3 entries × (addr, expected, new)
const D_PRIVATE: u64 = 12; // 2 entries × (addr, value)
const DESC_WORDS: u64 = 16;

const ST_FREE: u64 = 0;
const ST_UNDECIDED: u64 = 1;
const ST_SUCCEEDED: u64 = 2;
const ST_FAILED: u64 = 3;

/// A region of a [`PmemPool`] managing PMwCAS descriptors, plus the
/// operations over arbitrary words of that pool.
///
/// The arena does not own the pool: data structures lay out their words as
/// usual and route multi-word updates through
/// [`pmwcas`](PmwcasArena::pmwcas) and reads of contended words through
/// [`read`](PmwcasArena::read) (which resolves descriptor pointers by
/// helping).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use dss_pmem::{PmemPool, PAddr};
/// use dss_pmwcas::PmwcasArena;
///
/// let pool = Arc::new(PmemPool::with_capacity(1024));
/// // Descriptors live in [512, 1024); 2 threads, 8 descriptors each.
/// let arena = PmwcasArena::new(Arc::clone(&pool), PAddr::from_index(512), 8, 2);
/// let a = PAddr::from_index(1);
/// let b = PAddr::from_index(9);
/// assert!(arena.pmwcas(0, &[(a, 0, 5), (b, 0, 6)], &[]));
/// assert_eq!(arena.read(0, a), 5);
/// assert_eq!(arena.read(0, b), 6);
/// assert!(!arena.pmwcas(1, &[(a, 0, 7), (b, 6, 8)], &[]), "a is 5, not 0");
/// assert_eq!(arena.read(1, b), 6, "failed PMwCAS rolls back completely");
/// ```
pub struct PmwcasArena<M: Memory = PmemPool> {
    pool: Arc<M>,
    descs: NodePool,
    ebr: Ebr,
}

impl PmwcasArena {
    /// Words needed for a descriptor region (pool-sizing helper;
    /// backend-independent).
    pub fn region_words(descs_per_thread: u64, nthreads: usize) -> u64 {
        descs_per_thread * nthreads as u64 * DESC_WORDS
    }
}

impl<M: Memory> PmwcasArena<M> {
    /// Creates an arena whose descriptors occupy
    /// `descs_per_thread * nthreads * 16` words starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if the region is empty or `base` is not 16-word aligned
    /// (descriptors must not straddle flush lines unpredictably).
    pub fn new(pool: Arc<M>, base: PAddr, descs_per_thread: u64, nthreads: usize) -> Self {
        assert_eq!(base.index() % DESC_WORDS, 0, "descriptor region must be 16-word aligned");
        let descs = NodePool::new(base, DESC_WORDS, descs_per_thread, nthreads);
        PmwcasArena { pool, descs, ebr: Ebr::new(nthreads) }
    }

    fn alloc_desc(&self, tid: usize) -> PAddr {
        // Reclaim eagerly rather than only on exhaustion: a just-released
        // descriptor's status flush is usually still write-pending, so
        // prompt LIFO reuse lets the next initialization flush coalesce
        // into it instead of writing the line back twice.
        for a in self.ebr.collect_all(tid) {
            self.descs.free(tid, a);
        }
        if let Some(a) = self.descs.alloc(tid) {
            return a;
        }
        // Reclamation needs every pinned thread to pass through an
        // unpinned state; with oversubscribed cores a pinned thread can be
        // descheduled for a whole quantum, so escalate from yields to
        // short sleeps before declaring exhaustion.
        for attempt in 0..512 {
            for a in self.ebr.collect_all(tid) {
                self.descs.free(tid, a);
            }
            if let Some(a) = self.descs.alloc(tid) {
                return a;
            }
            if attempt < 64 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        }
        panic!("PMwCAS descriptor pool exhausted (size it for the workload)");
    }

    fn flush_desc(&self, desc: PAddr) {
        // Two cache lines under line granularity; the fields that matter
        // individually (status) are flushed separately by the protocol.
        self.pool.flush(desc);
        self.pool.flush(desc.offset(8));
    }

    /// Atomically compare-and-swaps up to [`MAX_SHARED`] `(addr, expected,
    /// new)` shared words and, on success, writes up to [`MAX_PRIVATE`]
    /// `(addr, value)` private words — all persisted, all-or-nothing
    /// across crashes.
    ///
    /// Private words are the Fast-variant optimization: they are owned by
    /// the calling thread (no concurrent writer), so they skip the
    /// descriptor-reservation CAS and are simply stored at commit.
    ///
    /// Returns `true` if the operation committed. On `false`, no shared or
    /// private word changed.
    ///
    /// # Panics
    ///
    /// Panics if entry limits are exceeded, `shared` is empty, or any new
    /// value collides with the descriptor tag bits.
    pub fn pmwcas(
        &self,
        tid: usize,
        shared: &[(PAddr, u64, u64)],
        private: &[(PAddr, u64)],
    ) -> bool {
        assert!(!shared.is_empty(), "PMwCAS needs at least one shared word");
        assert!(shared.len() <= MAX_SHARED, "too many shared entries");
        assert!(private.len() <= MAX_PRIVATE, "too many private entries");
        for (_, e, n) in shared {
            assert_eq!(e & tag::PMWCAS_DESC, 0, "value collides with the descriptor tag");
            assert_eq!(n & tag::PMWCAS_DESC, 0, "value collides with the descriptor tag");
        }
        // Allocate and initialize before pinning: a pinned thread blocks
        // epoch advancement, which descriptor reclamation depends on.
        let desc = self.alloc_desc(tid);

        // Initialize the descriptor, install order sorted by address so
        // concurrent PMwCAS operations cannot deadlock-livelock each other.
        let mut entries: Vec<(PAddr, u64, u64)> = shared.to_vec();
        entries.sort_by_key(|(a, _, _)| a.index());
        self.pool.store(desc.offset(D_NSHARED), entries.len() as u64);
        self.pool.store(desc.offset(D_NPRIVATE), private.len() as u64);
        for (i, (a, e, n)) in entries.iter().enumerate() {
            let base = desc.offset(D_SHARED + 3 * i as u64);
            self.pool.store(base, a.to_word());
            self.pool.store(base.offset(1), *e);
            self.pool.store(base.offset(2), *n);
        }
        for (j, (a, v)) in private.iter().enumerate() {
            let base = desc.offset(D_PRIVATE + 2 * j as u64);
            self.pool.store(base, a.to_word());
            self.pool.store(base.offset(1), *v);
        }
        self.pool.store(desc.offset(D_STATUS), ST_UNDECIDED);
        self.flush_desc(desc);
        // The descriptor must be persistent before any shared word can
        // point at it: recovery interprets a persisted descriptor pointer
        // through the descriptor's persisted contents.
        self.pool.drain_lines(&[desc, desc.offset(8)]);

        let _g = self.ebr.pin(tid);
        let ok = self.install_and_decide(desc);
        self.finalize(desc, true);

        // Release the descriptor: recovery must no longer consider it.
        self.pool.store(desc.offset(D_STATUS), ST_FREE);
        self.pool.flush(desc.offset(D_STATUS));
        self.ebr.retire(tid, desc);
        ok
    }

    /// Phase 1: reserve every shared word with a descriptor pointer, then
    /// decide the status. Runs identically for the owner and for helpers.
    fn install_and_decide(&self, desc: PAddr) -> bool {
        let n = self.pool.load(desc.offset(D_NSHARED));
        let desc_ptr = tag::set(desc.to_word(), tag::PMWCAS_DESC);
        let mut reserved = [PAddr::NULL; MAX_SHARED];
        let mut nreserved = 0;
        'entries: for i in 0..n {
            let base = desc.offset(D_SHARED + 3 * i);
            let addr = PAddr::from_word(self.pool.load(base));
            let expected = self.pool.load(base.offset(1));
            loop {
                if self.pool.load(desc.offset(D_STATUS)) != ST_UNDECIDED {
                    break 'entries; // someone already decided
                }
                match self.pool.cas(addr, expected, desc_ptr) {
                    Ok(_) => {
                        // Re-validate: without RDCSS a helper can install
                        // into a descriptor that was *just* decided and
                        // finalized — nobody would ever clean that pointer
                        // up. Undo the late install and stop.
                        if self.pool.load(desc.offset(D_STATUS)) != ST_UNDECIDED {
                            let _ = self.pool.cas(addr, desc_ptr, expected);
                            break 'entries;
                        }
                        self.pool.flush(addr);
                        reserved[nreserved] = addr;
                        nreserved += 1;
                        continue 'entries;
                    }
                    Err(cur) if cur == desc_ptr => continue 'entries, // a helper did it
                    Err(cur) if tag::has(cur, tag::PMWCAS_DESC) => {
                        // Another operation holds the word: help it finish,
                        // then retry ours.
                        let other = tag::addr_of(cur);
                        self.help(other);
                        continue;
                    }
                    Err(_) => {
                        // Genuine value mismatch.
                        let _ = self.pool.cas(desc.offset(D_STATUS), ST_UNDECIDED, ST_FAILED);
                        self.pool.flush(desc.offset(D_STATUS));
                        break 'entries;
                    }
                }
            }
        }
        // Every reservation this thread flushed must be persistent before
        // the success decision can be: recovery rolls a SUCCEEDED
        // descriptor forward only through persisted descriptor pointers.
        self.pool.drain_lines(&reserved[..nreserved]);
        let _ = self.pool.cas(desc.offset(D_STATUS), ST_UNDECIDED, ST_SUCCEEDED);
        self.pool.flush(desc.offset(D_STATUS));
        self.pool.load(desc.offset(D_STATUS)) == ST_SUCCEEDED
    }

    /// Phase 2: replace descriptor pointers by final values (roll forward
    /// on success, back on failure) and, on success, write the private
    /// words. Idempotent.
    ///
    /// `write_privates` is true only for the owner and for post-crash
    /// recovery: a *helper* must never store private words, because a
    /// stale helper could otherwise overwrite a value the owner wrote in a
    /// later operation (private words have no descriptor reservation to
    /// make the write conditional). The owner always finalizes before
    /// returning, and after a crash the single-threaded recovery does, so
    /// nothing is lost.
    fn finalize(&self, desc: PAddr, write_privates: bool) {
        // The decision must be persistent before any word is finalized:
        // recovery rolls forward or back by the *persisted* status, so a
        // final value must never outlive the verdict that justifies it.
        self.pool.drain_line(desc.offset(D_STATUS));
        let status = self.pool.load(desc.offset(D_STATUS));
        let succeeded = status == ST_SUCCEEDED;
        let desc_ptr = tag::set(desc.to_word(), tag::PMWCAS_DESC);
        let n = self.pool.load(desc.offset(D_NSHARED));
        let mut written = [PAddr::NULL; MAX_SHARED + MAX_PRIVATE];
        let mut nwritten = 0;
        for i in 0..n {
            let base = desc.offset(D_SHARED + 3 * i);
            let addr = PAddr::from_word(self.pool.load(base));
            let expected = self.pool.load(base.offset(1));
            let new = self.pool.load(base.offset(2));
            let target = if succeeded { new } else { expected };
            if self.pool.cas(addr, desc_ptr, target).is_ok() {
                self.pool.flush(addr);
                written[nwritten] = addr;
                nwritten += 1;
            }
        }
        if succeeded && write_privates {
            let m = self.pool.load(desc.offset(D_NPRIVATE));
            for j in 0..m {
                let base = desc.offset(D_PRIVATE + 2 * j);
                let addr = PAddr::from_word(self.pool.load(base));
                let val = self.pool.load(base.offset(1));
                self.pool.store(addr, val);
                self.pool.flush(addr);
                written[nwritten] = addr;
                nwritten += 1;
            }
        }
        // Finalized words must be persistent before the descriptor can be
        // released: a persisted FREE status over a surviving descriptor
        // pointer would strand that pointer forever.
        self.pool.drain_lines(&written[..nwritten]);
    }

    fn help(&self, desc: PAddr) {
        if self.pool.load(desc.offset(D_STATUS)) == ST_UNDECIDED {
            let _ = self.install_and_decide(desc);
        }
        if self.pool.load(desc.offset(D_STATUS)) != ST_FREE {
            self.finalize(desc, false);
        }
    }

    /// Reads a word, resolving (by helping) any descriptor currently
    /// reserving it.
    pub fn read(&self, tid: usize, addr: PAddr) -> u64 {
        let _g = self.ebr.pin(tid);
        loop {
            let v = self.pool.load(addr);
            if !tag::has(v, tag::PMWCAS_DESC) {
                return v;
            }
            self.help(tag::addr_of(v));
        }
    }

    /// Post-crash recovery: every descriptor still marked in-flight is
    /// rolled forward (`SUCCEEDED`) or back (`UNDECIDED`/`FAILED` — an
    /// undecided operation never took effect), then released.
    ///
    /// Run before any thread resumes operations on structures using this
    /// arena. Idempotent.
    pub fn recover(&self) {
        for i in 0..self.descs.total_nodes() {
            let desc = PAddr::from_index(self.descs.base().index() + i * DESC_WORDS);
            let status = self.pool.load(desc.offset(D_STATUS));
            if status == ST_FREE {
                continue;
            }
            if status == ST_UNDECIDED {
                // Crash interrupted the decision: the operation fails.
                self.pool.store(desc.offset(D_STATUS), ST_FAILED);
                self.pool.flush(desc.offset(D_STATUS));
            }
            self.finalize(desc, true);
            self.pool.store(desc.offset(D_STATUS), ST_FREE);
            self.pool.flush(desc.offset(D_STATUS));
        }
        // Volatile allocator state is gone; all descriptors are now free.
        self.ebr.reset();
        self.descs.rebuild([]);
    }
}

impl<M: Memory> fmt::Debug for PmwcasArena<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PmwcasArena")
            .field("descriptors", &self.descs.total_nodes())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_pmem::{CrashSignal, WritebackAdversary};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn setup(nthreads: usize) -> (Arc<PmemPool>, PmwcasArena) {
        let region = PmwcasArena::region_words(8, nthreads);
        let pool = Arc::new(PmemPool::with_capacity((64 + region) as usize));
        let arena = PmwcasArena::new(Arc::clone(&pool), PAddr::from_index(64), 8, nthreads);
        (pool, arena)
    }

    fn a(i: u64) -> PAddr {
        PAddr::from_index(i)
    }

    #[test]
    fn two_word_swap_commits_atomically() {
        let (pool, arena) = setup(1);
        assert!(arena.pmwcas(0, &[(a(1), 0, 10), (a(9), 0, 20)], &[]));
        assert_eq!(pool.peek(a(1)), 10);
        assert_eq!(pool.peek(a(9)), 20);
        // And it persisted.
        pool.crash(&WritebackAdversary::None);
        assert_eq!(pool.peek(a(1)), 10);
        assert_eq!(pool.peek(a(9)), 20);
    }

    #[test]
    fn mismatch_rolls_back_installed_words() {
        let (pool, arena) = setup(1);
        pool.store(a(9), 99);
        pool.flush(a(9));
        // First word matches (would install), second does not.
        assert!(!arena.pmwcas(0, &[(a(1), 0, 10), (a(9), 0, 20)], &[]));
        assert_eq!(arena.read(0, a(1)), 0, "rolled back");
        assert_eq!(arena.read(0, a(9)), 99);
    }

    #[test]
    fn private_words_written_only_on_success() {
        let (pool, arena) = setup(1);
        assert!(arena.pmwcas(0, &[(a(1), 0, 1)], &[(a(17), 42)]));
        assert_eq!(pool.peek(a(17)), 42);
        assert_eq!(pool.persisted_value(a(17)), 42);
        assert!(!arena.pmwcas(0, &[(a(1), 0, 1)], &[(a(17), 77)]));
        assert_eq!(pool.peek(a(17)), 42, "failure leaves privates alone");
    }

    #[test]
    fn crash_mid_pmwcas_rolls_back_undecided() {
        for k in 1..80 {
            let (pool, arena) = setup(1);
            pool.arm_crash_after(k);
            let r = catch_unwind(AssertUnwindSafe(|| {
                arena.pmwcas(0, &[(a(1), 0, 10), (a(9), 0, 20)], &[(a(17), 5)])
            }));
            pool.disarm_crash();
            let crashed = match r {
                Ok(_) => false,
                Err(p) if p.downcast_ref::<CrashSignal>().is_some() => true,
                Err(p) => std::panic::resume_unwind(p),
            };
            if !crashed {
                break;
            }
            pool.crash(&WritebackAdversary::None);
            arena.recover();
            let (v1, v9, v17) = (pool.peek(a(1)), pool.peek(a(9)), pool.peek(a(17)));
            // All-or-nothing across every crash point:
            assert!(
                (v1, v9, v17) == (0, 0, 0) || (v1, v9, v17) == (10, 20, 5),
                "k={k}: torn PMwCAS state ({v1}, {v9}, {v17})"
            );
        }
    }

    #[test]
    fn crash_mid_pmwcas_with_writeback_adversary() {
        for k in 1..80 {
            let (pool, arena) = setup(1);
            pool.arm_crash_after(k);
            let r = catch_unwind(AssertUnwindSafe(|| {
                arena.pmwcas(0, &[(a(1), 0, 10), (a(9), 0, 20)], &[])
            }));
            pool.disarm_crash();
            if r.is_ok() {
                break;
            }
            pool.crash(&WritebackAdversary::All);
            arena.recover();
            let (v1, v9) = (pool.peek(a(1)), pool.peek(a(9)));
            assert!(
                (v1, v9) == (0, 0) || (v1, v9) == (10, 20),
                "k={k}: torn PMwCAS state ({v1}, {v9})"
            );
        }
    }

    #[test]
    fn concurrent_pmwcas_transfers_conserve_sum() {
        // Classic bank-transfer test: move 1 between two accounts under
        // contention; the sum is invariant and no update is ever torn.
        use std::sync::Arc as StdArc;
        let (pool, arena) = setup(4);
        pool.store(a(1), 1000);
        pool.store(a(9), 1000);
        pool.flush(a(1));
        pool.flush(a(9));
        let arena = StdArc::new(arena);
        let handles: Vec<_> = (0..4)
            .map(|tid| {
                let arena = StdArc::clone(&arena);
                std::thread::spawn(move || {
                    let mut done = 0;
                    while done < 100 {
                        let x = arena.read(tid, a(1));
                        let y = arena.read(tid, a(9));
                        let (nx, ny) = if tid % 2 == 0 { (x - 1, y + 1) } else { (x + 1, y - 1) };
                        if arena.pmwcas(tid, &[(a(1), x, nx), (a(9), y, ny)], &[]) {
                            done += 1;
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(arena.read(0, a(1)) + arena.read(0, a(9)), 2000);
    }

    #[test]
    #[should_panic(expected = "at least one shared")]
    fn empty_shared_rejected() {
        let (_pool, arena) = setup(1);
        arena.pmwcas(0, &[], &[(a(17), 1)]);
    }

    #[test]
    fn recover_is_idempotent() {
        let (pool, arena) = setup(1);
        assert!(arena.pmwcas(0, &[(a(1), 0, 3)], &[]));
        pool.crash(&WritebackAdversary::None);
        arena.recover();
        arena.recover();
        assert_eq!(pool.peek(a(1)), 3);
    }
}
