//! The General and Fast CASWithEffect detectable queues (paper Figure 5b).

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;

use dss_pmem::{
    tag, AppKind, AttachError, Backoff, BackoffTuner, Ebr, FlushGranularity, Memory, NodePool,
    PAddr, PmemPool, Registry, SlotError, ThreadHandle, WORDS_PER_LINE,
};
use dss_spec::types::QueueResp;

use crate::PmwcasArena;

// Node: {value, next, deqTid, pad}. Unlike the DSS queue, `deqTid` uses 0
// for "unclaimed" and `tid + 1` for a claim — u64::MAX would collide with
// the PMwCAS descriptor tag bits.
const F_VALUE: u64 = 0;
const F_NEXT: u64 = 1;
const F_DEQ_TID: u64 = 2;
const NODE_WORDS: u64 = 4;

const UNCLAIMED: u64 = 0;

// Head, tail and each X[tid] slot on their own cache line.
const A_HEAD: u64 = WORDS_PER_LINE;
const A_TAIL: u64 = 2 * WORDS_PER_LINE;
const A_X_BASE: u64 = 3 * WORDS_PER_LINE;

// Each thread has at most one PMwCAS in flight, but helpers and EBR lag
// keep a few descriptors alive.
const DESCS_PER_THREAD: u64 = 128;

/// Superblock structure-kind word of a pool file holding a
/// [`CasWithEffectQueue`]. Both variants share the kind: whether the file
/// was created General or Fast is the third application-config word, and
/// [`attach`](CasWithEffectQueue::attach) reconstructs whichever variant
/// the file records.
pub const KIND_CWE_QUEUE: u64 = AppKind::CweQueue.word();

/// The CASWithEffect queue's pool layout, derived from
/// `(nthreads, nodes_per_thread)` alone — which is exactly why those
/// parameters in a pool file's superblock make the file self-describing.
/// (The `fast` flag changes protocol, not layout.)
struct CweLayout {
    sentinel: u64,
    node_region: u64,
    desc_region: u64,
    reg_base: u64,
    words: u64,
}

impl CweLayout {
    fn new(nthreads: usize, nodes_per_thread: u64) -> Self {
        assert!(nthreads > 0 && nodes_per_thread > 0);
        let x_end = A_X_BASE + nthreads as u64 * WORDS_PER_LINE;
        let sentinel = x_end.next_multiple_of(NODE_WORDS);
        let node_region = sentinel + NODE_WORDS;
        let node_words = nodes_per_thread * nthreads as u64 * NODE_WORDS;
        // Descriptor region, 16-word aligned.
        let desc_region = (node_region + node_words).next_multiple_of(16);
        let desc_end =
            desc_region + PmwcasArena::<PmemPool>::region_words(DESCS_PER_THREAD, nthreads);
        let reg_base = desc_end.next_multiple_of(WORDS_PER_LINE);
        let words = reg_base + Registry::<PmemPool>::region_words(nthreads);
        CweLayout { sentinel, node_region, desc_region, reg_base, words }
    }
}

/// Enqueue-side error: the node pool is exhausted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CweFull;

impl fmt::Display for CweFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("CASWithEffect queue node pool exhausted")
    }
}

impl std::error::Error for CweFull {}

/// The operation reported by [`CasWithEffectQueue::resolve`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CweResolvedOp {
    /// The last prepared operation was `enqueue(value)`.
    Enqueue(u64),
    /// The last prepared operation was `dequeue()`.
    Dequeue,
}

/// The `(A[pᵢ], R[pᵢ])` answer of [`CasWithEffectQueue::resolve`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CweResolved {
    /// The most recently prepared operation, if any.
    pub op: Option<CweResolvedOp>,
    /// Its response, if it took effect.
    pub resp: Option<QueueResp>,
}

/// A detectable recoverable queue whose linked list **and** detectability
/// state are manipulated with PMwCAS (paper §4, Figure 5b).
///
/// Each enqueue is one PMwCAS over `{last.next, tail, X[tid]}`; each
/// non-empty dequeue is one PMwCAS over `{head, next.deqTid, X[tid]}` —
/// head and tail therefore never lag, recovery reduces to the arena's
/// descriptor roll-forward/roll-back, and the implementation is a fraction
/// of the DSS queue's size. The price is the descriptor protocol on every
/// operation, which is exactly the bottleneck Figure 5b shows.
///
/// The **General** variant routes `X[tid]` through the full protocol as a
/// shared word; the **Fast** variant declares it private (it is only ever
/// written by its owner and the single-threaded recovery), skipping one
/// reservation CAS and flush per operation — the paper measures this
/// optimization at up to 1.5×.
///
/// # Examples
///
/// ```
/// use dss_pmwcas::CasWithEffectQueue;
/// use dss_spec::types::QueueResp;
///
/// let q = CasWithEffectQueue::new_fast(2, 16);
/// let h0 = q.register_thread().unwrap();
/// let h1 = q.register_thread().unwrap();
/// q.prep_enqueue(h0, 7).unwrap();
/// q.exec_enqueue(h0);
/// q.prep_dequeue(h1);
/// assert_eq!(q.exec_dequeue(h1), QueueResp::Value(7));
/// assert_eq!(q.resolve(h1).resp, Some(QueueResp::Value(7)));
/// ```
pub struct CasWithEffectQueue<M: Memory = PmemPool> {
    pool: Arc<M>,
    arena: PmwcasArena<M>,
    nodes: NodePool,
    ebr: Ebr,
    nthreads: usize,
    fast: bool,
    backoff: AtomicBool,
    tuner: BackoffTuner,
    registry: Registry<M>,
}

impl CasWithEffectQueue {
    /// Creates the **General** variant (detectability word treated as a
    /// shared word of the PMwCAS) on a fresh [`PmemPool`].
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero.
    pub fn new_general(nthreads: usize, nodes_per_thread: u64) -> Self {
        Self::new_general_in(nthreads, nodes_per_thread)
    }

    /// Creates the **Fast** variant (detectability word written as a
    /// private word at commit) on a fresh [`PmemPool`].
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero.
    pub fn new_fast(nthreads: usize, nodes_per_thread: u64) -> Self {
        Self::new_fast_in(nthreads, nodes_per_thread)
    }

    /// Creates the **General** variant on a **file-backed** pool at `path`:
    /// the file records [`KIND_CWE_QUEUE`], `nthreads`, `nodes_per_thread`
    /// and the variant flag, so a fresh process rebuilds everything with
    /// [`attach`](Self::attach) from the path alone.
    ///
    /// # Errors
    ///
    /// [`AttachError::Io`] if the pool file cannot be created.
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero.
    pub fn create_general<P: AsRef<std::path::Path>>(
        path: P,
        nthreads: usize,
        nodes_per_thread: u64,
    ) -> Result<Self, AttachError> {
        Self::create(path, nthreads, nodes_per_thread, false)
    }

    /// Creates the **Fast** variant on a **file-backed** pool at `path`.
    ///
    /// # Errors
    ///
    /// [`AttachError::Io`] if the pool file cannot be created.
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero.
    pub fn create_fast<P: AsRef<std::path::Path>>(
        path: P,
        nthreads: usize,
        nodes_per_thread: u64,
    ) -> Result<Self, AttachError> {
        Self::create(path, nthreads, nodes_per_thread, true)
    }

    fn create<P: AsRef<std::path::Path>>(
        path: P,
        nthreads: usize,
        nodes_per_thread: u64,
        fast: bool,
    ) -> Result<Self, AttachError> {
        let layout = CweLayout::new(nthreads, nodes_per_thread);
        let pool =
            Arc::new(PmemPool::create(path, layout.words as usize, FlushGranularity::default())?);
        pool.set_app_config(KIND_CWE_QUEUE, &[nthreads as u64, nodes_per_thread, fast as u64]);
        let registry = Registry::create(Arc::clone(&pool), layout.reg_base, nthreads);
        let q = Self::assemble(pool, registry, &layout, nthreads, nodes_per_thread, fast);
        q.format(layout.sentinel);
        Ok(q)
    }

    /// Rebuilds a queue (of whichever variant the file records) from a pool
    /// file with no in-process state: the registry is re-bound, the node
    /// allocator is rebuilt from the persisted list, a fresh descriptor
    /// arena is bound over the persisted descriptor region, and fresh EBR
    /// domains replace the dead process's.
    ///
    /// Attaching is a crash boundary: follow with
    /// [`recover`](Self::recover) (the descriptor roll-forward/roll-back),
    /// then [`begin_recovery`](Self::begin_recovery) /
    /// [`adopt_orphans`](Self::adopt_orphans) and
    /// [`resolve`](Self::resolve) per adopted handle.
    ///
    /// # Errors
    ///
    /// Any [`AttachError`]: I/O or superblock validation failure, or
    /// [`AttachError::AppMismatch`] if the file holds a different
    /// structure.
    pub fn attach<P: AsRef<std::path::Path>>(path: P) -> Result<Self, AttachError> {
        let pool = Arc::new(PmemPool::attach(path)?);
        let found = pool.app_kind();
        if found != KIND_CWE_QUEUE {
            return Err(AttachError::AppMismatch { expected: KIND_CWE_QUEUE, found });
        }
        let [nthreads, nodes_per_thread, fast, ..] = pool.app_config();
        if nthreads == 0 || nodes_per_thread == 0 {
            return Err(AttachError::Corrupt("CASWithEffect queue parameter words are zero"));
        }
        let nthreads = nthreads as usize;
        let layout = CweLayout::new(nthreads, nodes_per_thread);
        if (pool.capacity() as u64) < layout.words {
            return Err(AttachError::Corrupt(
                "pool smaller than the CASWithEffect queue layout requires",
            ));
        }
        let registry = Registry::attach(Arc::clone(&pool), layout.reg_base)?;
        let q = Self::assemble(pool, registry, &layout, nthreads, nodes_per_thread, fast != 0);
        // Superset-safe before `recover`: reachability from the persisted
        // head only over-approximates the live set.
        q.rebuild_allocator();
        Ok(q)
    }
}

impl<M: Memory> CasWithEffectQueue<M> {
    /// Backend-generic constructor for the **General** variant
    /// ([`Memory::create`]).
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero.
    pub fn new_general_in(nthreads: usize, nodes_per_thread: u64) -> Self {
        Self::build(nthreads, nodes_per_thread, false)
    }

    /// Backend-generic constructor for the **Fast** variant
    /// ([`Memory::create`]).
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero.
    pub fn new_fast_in(nthreads: usize, nodes_per_thread: u64) -> Self {
        Self::build(nthreads, nodes_per_thread, true)
    }

    fn build(nthreads: usize, nodes_per_thread: u64, fast: bool) -> Self {
        let layout = CweLayout::new(nthreads, nodes_per_thread);
        let pool = Arc::new(M::create(layout.words as usize, FlushGranularity::default()));
        let registry = Registry::create(Arc::clone(&pool), layout.reg_base, nthreads);
        let q = Self::assemble(pool, registry, &layout, nthreads, nodes_per_thread, fast);
        q.format(layout.sentinel);
        q
    }

    /// The shared constructor tail: in-DRAM side tables (descriptor arena
    /// handle, node allocator, EBR domain, backoff tuner) over an existing
    /// pool + registry — everything `attach` must rebuild rather than map.
    fn assemble(
        pool: Arc<M>,
        registry: Registry<M>,
        layout: &CweLayout,
        nthreads: usize,
        nodes_per_thread: u64,
        fast: bool,
    ) -> Self {
        let arena = PmwcasArena::new(
            Arc::clone(&pool),
            PAddr::from_index(layout.desc_region),
            DESCS_PER_THREAD,
            nthreads,
        );
        let nodes = NodePool::new(
            PAddr::from_index(layout.node_region),
            NODE_WORDS,
            nodes_per_thread,
            nthreads,
        );
        CasWithEffectQueue {
            pool,
            arena,
            nodes,
            ebr: Ebr::new(nthreads),
            nthreads,
            fast,
            backoff: AtomicBool::new(false),
            tuner: BackoffTuner::new(),
            registry,
        }
    }

    /// Writes and persists the initial queue state (fresh pools only —
    /// never run on attach).
    fn format(&self, sentinel: u64) {
        let s = PAddr::from_index(sentinel);
        self.pool.store(s.offset(F_VALUE), 0);
        self.pool.store(s.offset(F_NEXT), 0);
        self.pool.store(s.offset(F_DEQ_TID), UNCLAIMED);
        self.pool.flush(s);
        self.pool.store(self.head(), s.to_word());
        self.pool.flush(self.head());
        self.pool.store(self.tail(), s.to_word());
        self.pool.flush(self.tail());
        for i in 0..self.nthreads {
            self.pool.store(self.x(i), 0);
            self.pool.flush(self.x(i));
        }
        self.pool.drain();
    }

    /// Enables or disables bounded exponential backoff after failed PMwCAS.
    /// Default off.
    pub fn set_backoff(&self, on: bool) {
        self.backoff.store(on, Relaxed);
    }

    fn new_backoff(&self) -> Backoff<'_> {
        Backoff::attached(self.backoff.load(Relaxed), &self.tuner)
    }

    fn head(&self) -> PAddr {
        PAddr::from_index(A_HEAD)
    }

    fn tail(&self) -> PAddr {
        PAddr::from_index(A_TAIL)
    }

    // Handles are valid by construction (the registry hands out only
    // in-range slots), so the index needs no range check.
    fn x(&self, tid: usize) -> PAddr {
        PAddr::from_index(A_X_BASE + tid as u64 * WORDS_PER_LINE)
    }

    /// The queue's pool.
    pub fn pool(&self) -> &Arc<M> {
        &self.pool
    }

    /// Number of threads the queue was built for.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Whether this is the Fast variant.
    pub fn is_fast(&self) -> bool {
        self.fast
    }

    /// The persistent slot registry governing thread identity. (The PMwCAS
    /// descriptor arena keeps using raw slot indices internally.)
    pub fn registry(&self) -> &Registry<M> {
        &self.registry
    }

    /// Claims a free slot and returns the [`ThreadHandle`] every operation
    /// requires. Fails with [`SlotError::Exhausted`] once all `nthreads`
    /// slots are taken.
    pub fn register_thread(&self) -> Result<ThreadHandle, SlotError> {
        let h = self.registry.acquire()?;
        self.ebr.adopt_slot(h.slot());
        Ok(h)
    }

    /// Returns a handle's slot to the free pool for reuse.
    pub fn release_thread(&self, h: ThreadHandle) -> Result<(), SlotError> {
        self.registry.release(h)
    }

    /// Marks the crash boundary in the registry: every slot LIVE at the
    /// crash becomes ORPHANED. [`recover`](Self::recover) stays a
    /// descriptor roll-forward (the queue's own pointers need no repair);
    /// this exists to let harnesses reclaim dead threads' slots via
    /// [`adopt`](Self::adopt) / [`adopt_orphans`](Self::adopt_orphans).
    pub fn begin_recovery(&self) {
        self.registry.begin_recovery();
    }

    /// Adopts one orphaned slot, inheriting its EBR state.
    pub fn adopt(&self, slot: usize) -> Result<ThreadHandle, SlotError> {
        let h = self.registry.adopt(slot)?;
        self.ebr.adopt_slot(slot);
        Ok(h)
    }

    /// Adopts every orphaned slot in ascending order.
    pub fn adopt_orphans(&self) -> Vec<ThreadHandle> {
        let hs = self.registry.adopt_orphans();
        for h in &hs {
            self.ebr.adopt_slot(h.slot());
        }
        hs
    }

    fn alloc(&self, tid: usize) -> Result<PAddr, CweFull> {
        self.nodes.alloc_with_reclaim(tid, &self.ebr).ok_or(CweFull)
    }

    /// One multi-word update covering the shared entries plus the `X[tid]`
    /// transition — as a shared word (General) or a private word (Fast).
    fn update(
        &self,
        tid: usize,
        shared: &[(PAddr, u64, u64)],
        x_expected: u64,
        x_new: u64,
    ) -> bool {
        // The announce in `X[tid]` must be persistent before the op can
        // take effect: the Fast variant never CASes X (it rewrites it as a
        // private word), so nothing downstream would write the prep flush
        // back before the commit.
        self.pool.drain_line(self.x(tid));
        if self.fast {
            self.arena.pmwcas(tid, shared, &[(self.x(tid), x_new)])
        } else {
            let mut all = shared.to_vec();
            all.push((self.x(tid), x_expected, x_new));
            self.arena.pmwcas(tid, &all, &[])
        }
    }

    /// **prep-enqueue(val)**: persists a fresh node and announces it in
    /// `X[tid]` (a plain store + flush; preparation is inherently
    /// single-threaded).
    ///
    /// # Errors
    ///
    /// Returns [`CweFull`] when the node pool is exhausted.
    pub fn prep_enqueue(&self, h: ThreadHandle, val: u64) -> Result<(), CweFull> {
        let tid = h.slot();
        let node = self.alloc(tid)?;
        self.pool.store(node.offset(F_VALUE), val);
        self.pool.store(node.offset(F_NEXT), 0);
        self.pool.store(node.offset(F_DEQ_TID), UNCLAIMED);
        self.pool.flush(node);
        // Ordering point: the announce must not persist ahead of the node
        // it names. Its own flush may stay pending — exec drains it before
        // the enqueue can take effect.
        self.pool.drain_line(node);
        self.pool.store(self.x(tid), tag::set(node.to_word(), tag::ENQ_PREP));
        self.pool.flush(self.x(tid));
        Ok(())
    }

    /// **exec-enqueue()**: a single PMwCAS links the node, swings the
    /// tail, and marks completion in `X[tid]` — atomically.
    ///
    /// Idempotent after completion: re-executing a completed enqueue (e.g.
    /// a retry loop that crashed before observing the return) is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if no enqueue is prepared.
    pub fn exec_enqueue(&self, h: ThreadHandle) {
        let tid = h.slot();
        let _g = self.ebr.pin(tid);
        let x = self.arena.read(tid, self.x(tid));
        assert!(tag::has(x, tag::ENQ_PREP), "exec-enqueue without a prepared enqueue");
        if tag::has(x, tag::ENQ_COMPL) {
            return; // already took effect
        }
        let node = tag::addr_of(x);
        let mut bo = self.new_backoff();
        loop {
            let last_w = self.arena.read(tid, self.tail());
            let last = tag::addr_of(last_w);
            let next_w = self.arena.read(tid, last.offset(F_NEXT));
            if !tag::addr_of(next_w).is_null() {
                bo.spin();
                continue; // stale tail snapshot; retry
            }
            if self.update(
                tid,
                &[(last.offset(F_NEXT), 0, node.to_word()), (self.tail(), last_w, node.to_word())],
                x,
                tag::set(x, tag::ENQ_COMPL),
            ) {
                // Every effect word was drained by the PMwCAS finalizer;
                // only the descriptor-release flush may stay pending, and
                // recovery re-finalizes an un-released descriptor.
                self.pool.drain_lines(&[]);
                return;
            }
            bo.spin();
        }
    }

    /// **prep-dequeue()**.
    pub fn prep_dequeue(&self, h: ThreadHandle) {
        let tid = h.slot();
        self.pool.store(self.x(tid), tag::DEQ_PREP);
        self.pool.flush(self.x(tid));
        // No drain: see prep_enqueue — exec fences before any effect.
    }

    /// **exec-dequeue()**: a single PMwCAS claims the node, advances the
    /// head, and records the predecessor in `X[tid]` — atomically.
    ///
    /// # Panics
    ///
    /// Panics if no dequeue is prepared.
    pub fn exec_dequeue(&self, h: ThreadHandle) -> QueueResp {
        let tid = h.slot();
        let _g = self.ebr.pin(tid);
        let x = self.arena.read(tid, self.x(tid));
        assert!(tag::has(x, tag::DEQ_PREP), "exec-dequeue without a prepared dequeue");
        let mut bo = self.new_backoff();
        loop {
            let first_w = self.arena.read(tid, self.head());
            let last_w = self.arena.read(tid, self.tail());
            let first = tag::addr_of(first_w);
            let next_w = self.arena.read(tid, first.offset(F_NEXT));
            let next = tag::addr_of(next_w);
            if self.arena.read(tid, self.head()) != first_w {
                bo.spin();
                continue;
            }
            if first_w == last_w {
                if next.is_null() {
                    // Empty queue: record EMPTY in the detectability word.
                    if self.fast {
                        // A purely private single-word update: a plain
                        // failure-atomic store + flush suffices.
                        self.pool.store(self.x(tid), tag::DEQ_PREP | tag::EMPTY);
                        self.pool.flush(self.x(tid));
                        // No descriptor exists for recovery to replay: the
                        // EMPTY verdict must be durable before the return.
                        self.pool.drain_line(self.x(tid));
                        return QueueResp::Empty;
                    }
                    if self.arena.pmwcas(tid, &[(self.x(tid), x, tag::DEQ_PREP | tag::EMPTY)], &[])
                    {
                        self.pool.drain_lines(&[]);
                        return QueueResp::Empty;
                    }
                }
                bo.spin();
                continue; // stale snapshot; retry
            }
            if self.update(
                tid,
                &[
                    (self.head(), first_w, next_w),
                    (next.offset(F_DEQ_TID), UNCLAIMED, tid as u64 + 1),
                ],
                x,
                tag::set(first.to_word(), tag::DEQ_PREP),
            ) {
                if self.nodes.contains(first) {
                    self.ebr.retire(tid, first);
                }
                let val = self.arena.read(tid, next.offset(F_VALUE));
                self.pool.drain_lines(&[]);
                return QueueResp::Value(val);
            }
            bo.spin();
        }
    }

    /// **resolve()**: the `(A[pᵢ], R[pᵢ])` pair, same case analysis as the
    /// DSS queue (§3), but with `ENQ_COMPL` guaranteed atomic with the
    /// link, so no recovery fix-up of `X` is ever needed.
    pub fn resolve(&self, h: ThreadHandle) -> CweResolved {
        let tid = h.slot();
        let x = self.arena.read(tid, self.x(tid));
        if tag::has(x, tag::ENQ_PREP) {
            let node = tag::addr_of(x);
            let value = self.pool.load(node.offset(F_VALUE));
            CweResolved {
                op: Some(CweResolvedOp::Enqueue(value)),
                resp: tag::has(x, tag::ENQ_COMPL).then_some(QueueResp::Ok),
            }
        } else if tag::has(x, tag::DEQ_PREP) {
            let ptr = tag::addr_of(x);
            let resp = if ptr.is_null() {
                tag::has(x, tag::EMPTY).then_some(QueueResp::Empty)
            } else {
                // The claim and the X update committed atomically, so a
                // predecessor pointer implies effect; the check is kept
                // defensive.
                let next = tag::addr_of(self.pool.load(ptr.offset(F_NEXT)));
                if !next.is_null() && self.pool.load(next.offset(F_DEQ_TID)) == tid as u64 + 1 {
                    Some(QueueResp::Value(self.pool.load(next.offset(F_VALUE))))
                } else {
                    None
                }
            };
            CweResolved { op: Some(CweResolvedOp::Dequeue), resp }
        } else {
            CweResolved { op: None, resp: None }
        }
    }

    /// Post-crash recovery: rolls PMwCAS descriptors (the queue's own
    /// pointers need no separate repair — every update was atomic).
    pub fn recover(&self) {
        self.arena.recover();
        self.pool.drain();
    }

    /// Rebuilds the volatile allocator after a crash.
    pub fn rebuild_allocator(&self) {
        let mut live = Vec::new();
        let mut cur = tag::addr_of(self.pool.load(self.head()));
        loop {
            live.push(cur);
            let next = tag::addr_of(self.pool.load(cur.offset(F_NEXT)));
            if next.is_null() {
                break;
            }
            cur = next;
        }
        for i in 0..self.nthreads {
            let d = tag::addr_of(self.pool.load(self.x(i)));
            if !d.is_null() {
                live.push(d);
                let next = tag::addr_of(self.pool.load(d.offset(F_NEXT)));
                if !next.is_null() {
                    live.push(next);
                }
            }
        }
        self.nodes.rebuild(live);
        self.ebr.reset();
    }

    /// Volatile snapshot of queued values (test helper; skips in-flight
    /// descriptor links).
    pub fn snapshot_values(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cur = tag::addr_of(self.pool.peek(self.head()));
        loop {
            let next_w = self.pool.peek(cur.offset(F_NEXT));
            if tag::has(next_w, tag::PMWCAS_DESC) {
                return out;
            }
            let next = tag::addr_of(next_w);
            if next.is_null() {
                return out;
            }
            if self.pool.peek(next.offset(F_DEQ_TID)) == UNCLAIMED {
                out.push(self.pool.peek(next.offset(F_VALUE)));
            }
            cur = next;
        }
    }
}

impl<M: Memory> fmt::Debug for CasWithEffectQueue<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CasWithEffectQueue")
            .field("nthreads", &self.nthreads)
            .field("fast", &self.fast)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_pmem::{CrashSignal, WritebackAdversary};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    fn both() -> Vec<CasWithEffectQueue> {
        vec![CasWithEffectQueue::new_general(2, 32), CasWithEffectQueue::new_fast(2, 32)]
    }

    #[test]
    fn fifo_order_both_variants() {
        for q in both() {
            let h0 = q.register_thread().unwrap();
            let h1 = q.register_thread().unwrap();
            for v in [1, 2, 3] {
                q.prep_enqueue(h0, v).unwrap();
                q.exec_enqueue(h0);
            }
            for v in [1, 2, 3] {
                q.prep_dequeue(h1);
                assert_eq!(q.exec_dequeue(h1), QueueResp::Value(v), "fast={}", q.is_fast());
            }
            q.prep_dequeue(h1);
            assert_eq!(q.exec_dequeue(h1), QueueResp::Empty);
        }
    }

    #[test]
    fn resolve_round_trips() {
        for q in both() {
            let h0 = q.register_thread().unwrap();
            q.prep_enqueue(h0, 9).unwrap();
            assert_eq!(
                q.resolve(h0),
                CweResolved { op: Some(CweResolvedOp::Enqueue(9)), resp: None }
            );
            q.exec_enqueue(h0);
            assert_eq!(
                q.resolve(h0),
                CweResolved { op: Some(CweResolvedOp::Enqueue(9)), resp: Some(QueueResp::Ok) }
            );
            q.prep_dequeue(h0);
            assert_eq!(q.resolve(h0), CweResolved { op: Some(CweResolvedOp::Dequeue), resp: None });
            assert_eq!(q.exec_dequeue(h0), QueueResp::Value(9));
            assert_eq!(
                q.resolve(h0),
                CweResolved { op: Some(CweResolvedOp::Dequeue), resp: Some(QueueResp::Value(9)) }
            );
        }
    }

    #[test]
    fn enqueue_crash_sweep_both_variants() {
        for fast in [false, true] {
            for adv in [WritebackAdversary::None, WritebackAdversary::All] {
                for k in 1..150 {
                    let q = if fast {
                        CasWithEffectQueue::new_fast(1, 8)
                    } else {
                        CasWithEffectQueue::new_general(1, 8)
                    };
                    let h0 = q.register_thread().unwrap();
                    q.pool().arm_crash_after(k);
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        q.prep_enqueue(h0, 42).unwrap();
                        q.exec_enqueue(h0);
                    }));
                    q.pool().disarm_crash();
                    let crashed = match r {
                        Ok(_) => false,
                        Err(p) if p.downcast_ref::<CrashSignal>().is_some() => true,
                        Err(p) => std::panic::resume_unwind(p),
                    };
                    if !crashed {
                        break;
                    }
                    q.pool().crash(&adv);
                    q.recover();
                    q.rebuild_allocator();
                    let in_queue = q.snapshot_values() == vec![42];
                    match q.resolve(h0) {
                        CweResolved { op: None, resp: None } => {
                            assert!(!in_queue, "fast={fast} k={k} {adv:?}")
                        }
                        CweResolved { op: Some(CweResolvedOp::Enqueue(42)), resp } => match resp {
                            Some(QueueResp::Ok) => {
                                assert!(in_queue, "fast={fast} k={k} {adv:?}")
                            }
                            None => assert!(!in_queue, "fast={fast} k={k} {adv:?}"),
                            other => panic!("impossible response {other:?}"),
                        },
                        other => panic!("fast={fast} k={k}: impossible {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn dequeue_crash_sweep_both_variants() {
        for fast in [false, true] {
            for adv in [WritebackAdversary::None, WritebackAdversary::All] {
                for k in 1..150 {
                    let q = if fast {
                        CasWithEffectQueue::new_fast(1, 8)
                    } else {
                        CasWithEffectQueue::new_general(1, 8)
                    };
                    let h0 = q.register_thread().unwrap();
                    q.prep_enqueue(h0, 7).unwrap();
                    q.exec_enqueue(h0);
                    q.pool().arm_crash_after(k);
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        q.prep_dequeue(h0);
                        let _ = q.exec_dequeue(h0);
                    }));
                    q.pool().disarm_crash();
                    let crashed = match r {
                        Ok(_) => false,
                        Err(p) if p.downcast_ref::<CrashSignal>().is_some() => true,
                        Err(p) => std::panic::resume_unwind(p),
                    };
                    if !crashed {
                        break;
                    }
                    q.pool().crash(&adv);
                    q.recover();
                    q.rebuild_allocator();
                    let still_there = q.snapshot_values() == vec![7];
                    match q.resolve(h0) {
                        // Crash before the prep persisted: X still shows the
                        // completed enqueue.
                        CweResolved {
                            op: Some(CweResolvedOp::Enqueue(7)),
                            resp: Some(QueueResp::Ok),
                        } => assert!(still_there, "fast={fast} k={k} {adv:?}"),
                        CweResolved { op: Some(CweResolvedOp::Dequeue), resp } => match resp {
                            Some(QueueResp::Value(7)) => {
                                assert!(!still_there, "fast={fast} k={k} {adv:?}")
                            }
                            None => assert!(still_there, "fast={fast} k={k} {adv:?}"),
                            other => panic!("impossible response {other:?}"),
                        },
                        other => panic!("fast={fast} k={k}: impossible {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn concurrent_stress_conserves_values() {
        for fast in [false, true] {
            let q = Arc::new(if fast {
                CasWithEffectQueue::new_fast(4, 64)
            } else {
                CasWithEffectQueue::new_general(4, 64)
            });
            let hs: Vec<_> = (0..4).map(|_| q.register_thread().unwrap()).collect();
            let handles: Vec<_> = (0..4)
                .map(|tid| {
                    let q = Arc::clone(&q);
                    let h = hs[tid];
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        for i in 0..150u64 {
                            q.prep_enqueue(h, (tid as u64) << 32 | (i + 1)).unwrap();
                            q.exec_enqueue(h);
                            q.prep_dequeue(h);
                            if let QueueResp::Value(v) = q.exec_dequeue(h) {
                                got.push(v);
                            }
                        }
                        got
                    })
                })
                .collect();
            let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
            all.extend(q.snapshot_values());
            all.sort_unstable();
            let mut expected: Vec<u64> =
                (0..4u64).flat_map(|t| (1..=150).map(move |i| t << 32 | i)).collect();
            expected.sort_unstable();
            assert_eq!(all, expected, "fast={fast}");
        }
    }

    #[test]
    fn fast_variant_issues_fewer_ops_than_general() {
        let measure = |q: &CasWithEffectQueue| {
            let h0 = q.register_thread().unwrap();
            q.pool().reset_stats();
            q.prep_enqueue(h0, 1).unwrap();
            q.exec_enqueue(h0);
            q.prep_dequeue(h0);
            let _ = q.exec_dequeue(h0);
            q.pool().stats().total()
        };
        let general = CasWithEffectQueue::new_general(1, 8);
        let fast = CasWithEffectQueue::new_fast(1, 8);
        assert!(measure(&fast) < measure(&general), "the Fast variant must do less work per op");
    }
}
