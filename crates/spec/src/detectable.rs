//! The detectable transformation `T ↦ D⟨T⟩` (paper §2.1, Figure 1).

use std::fmt;
use std::hash::{Hash, Hasher};

use crate::{ProcId, SequentialSpec};

/// Operations of `D⟨T⟩`: the original operations plus the auxiliary
/// `prep-op`, `exec-op`, and `resolve`.
///
/// `Prep` carries the auxiliary disambiguation argument the paper
/// recommends (§2.1, last paragraph): when a process applies the *same*
/// operation repeatedly, `resolve`'s answer would be ambiguous; a sequence
/// tag "saved in the state component `A[pᵢ]` but ignored in the computation
/// of the state transition" removes the ambiguity. (A single parity bit
/// suffices; we carry a full `u64` for convenience.)
///
/// `Exec` takes no operation argument: Axiom 2's precondition
/// `A[pᵢ] = op` already pins down which operation executes, namely the one
/// most recently prepared by the calling process.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum DetOp<O> {
    /// `prep-op` (Axiom 1): record the intent to apply `op` detectably.
    Prep {
        /// The operation being prepared.
        op: O,
        /// Disambiguation tag, stored in `A[pᵢ]`, ignored by `δ`.
        seq: u64,
    },
    /// `exec-op` (Axiom 2): apply the prepared operation.
    Exec,
    /// `resolve` (Axiom 3): report the prepared operation's status.
    Resolve,
    /// The original, non-detectable operation (Axiom 4).
    Plain(O),
}

/// Responses of `D⟨T⟩`: `R̄ = R ∪ {(op, r) | op ∈ OP ∪ {⊥} ∧ r ∈ R ∪ {⊥}}`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum DetResp<O, R> {
    /// The `⊥` acknowledgement returned by `prep-op`.
    Ack,
    /// An ordinary response of the base type (from `exec-op` or a plain
    /// operation).
    Ret(R),
    /// `resolve`'s answer `(A[pᵢ], R[pᵢ])`: the prepared operation (with its
    /// tag) if any, and its response if it took effect.
    Resolved(Option<(O, u64)>, Option<R>),
}

impl<O, R> DetResp<O, R> {
    /// Returns `true` for `Resolved(_, Some(_))` — the prepared operation
    /// took effect.
    pub fn took_effect(&self) -> bool {
        matches!(self, DetResp::Resolved(_, Some(_)))
    }
}

/// Abstract state of `D⟨T⟩`: a tuple `(s, A, R)` where `A` maps each process
/// to its prepared operation (or `⊥`) and `R` to that operation's response
/// (or `⊥`).
pub struct DetState<T: SequentialSpec> {
    /// The base object's state `s`.
    pub inner: T::State,
    /// `A`: the operation (and tag) each process most recently prepared.
    pub prepared: Vec<Option<(T::Op, u64)>>,
    /// `R`: the response of each process's prepared operation, once it has
    /// taken effect.
    pub result: Vec<Option<T::Resp>>,
}

// Manual impls: `derive` would demand the bounds on `T` itself rather than
// on `T::State`/`T::Op`/`T::Resp`.
impl<T: SequentialSpec> Clone for DetState<T> {
    fn clone(&self) -> Self {
        DetState {
            inner: self.inner.clone(),
            prepared: self.prepared.clone(),
            result: self.result.clone(),
        }
    }
}

impl<T: SequentialSpec> PartialEq for DetState<T> {
    fn eq(&self, other: &Self) -> bool {
        self.inner == other.inner && self.prepared == other.prepared && self.result == other.result
    }
}

impl<T: SequentialSpec> Eq for DetState<T> {}

impl<T: SequentialSpec> Hash for DetState<T> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.inner.hash(state);
        self.prepared.hash(state);
        self.result.hash(state);
    }
}

impl<T: SequentialSpec> fmt::Debug for DetState<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DetState")
            .field("inner", &self.inner)
            .field("prepared", &self.prepared)
            .field("result", &self.result)
            .finish()
    }
}

/// The detectable embodiment `D⟨T⟩` of a base type `T` (paper Figure 1).
///
/// `Detectable<T>` is itself a [`SequentialSpec`], so it can be nested, fed
/// to checkers, or transformed again — the transformation is generic and
/// closed over the trait. The number of processes is fixed at construction
/// because the abstract state carries per-process recovery components `A`
/// and `R` (which is also why DSS-based objects need linear space, §2.2).
///
/// # Examples
///
/// ```
/// use dss_spec::{Detectable, DetOp, DetResp, SequentialSpec};
/// use dss_spec::types::{QueueOp, QueueResp, QueueSpec};
///
/// let d = Detectable::new(QueueSpec, 1);
/// let s0 = d.initial();
/// // resolve before any prep returns (⊥, ⊥):
/// let (_, r) = d.apply(&s0, &DetOp::Resolve, 0).unwrap();
/// assert_eq!(r, DetResp::Resolved(None, None));
/// // exec without prep violates Axiom 2's precondition:
/// assert!(d.apply(&s0, &DetOp::Exec, 0).is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Detectable<T> {
    inner: T,
    nprocs: usize,
}

impl<T: SequentialSpec> Detectable<T> {
    /// Wraps `inner` for a system of `nprocs` processes.
    ///
    /// # Panics
    ///
    /// Panics if `nprocs` is zero.
    pub fn new(inner: T, nprocs: usize) -> Self {
        assert!(nprocs > 0, "need at least one process");
        Detectable { inner, nprocs }
    }

    /// The wrapped base specification.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Number of processes `|Π|`.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }
}

impl<T: SequentialSpec> SequentialSpec for Detectable<T> {
    type State = DetState<T>;
    type Op = DetOp<T::Op>;
    type Resp = DetResp<T::Op, T::Resp>;

    fn initial(&self) -> Self::State {
        DetState {
            inner: self.inner.initial(),
            prepared: vec![None; self.nprocs],
            result: vec![None; self.nprocs],
        }
    }

    fn apply(
        &self,
        state: &Self::State,
        op: &Self::Op,
        pid: ProcId,
    ) -> Option<(Self::State, Self::Resp)> {
        assert!(pid < self.nprocs, "process ID {pid} out of range");
        match op {
            // Axiom 1: {true} prep-op / pᵢ / ⊥ {A'[pᵢ]=op ∧ R'[pᵢ]=⊥}
            DetOp::Prep { op, seq } => {
                let mut s = state.clone();
                s.prepared[pid] = Some((op.clone(), *seq));
                s.result[pid] = None;
                Some((s, DetResp::Ack))
            }
            // Axiom 2: {A[pᵢ]=op ∧ R[pᵢ]=⊥} exec-op / pᵢ / ρ(s,op,pᵢ)
            //          {s'=δ(s,op,pᵢ) ∧ R'[pᵢ]=ρ(s,op,pᵢ)}
            DetOp::Exec => {
                let (prepared_op, _seq) = state.prepared[pid].as_ref()?;
                if state.result[pid].is_some() {
                    return None; // already took effect: precondition R[pᵢ]=⊥ fails
                }
                let (inner2, resp) = self.inner.apply(&state.inner, prepared_op, pid)?;
                let mut s = state.clone();
                s.inner = inner2;
                s.result[pid] = Some(resp.clone());
                Some((s, DetResp::Ret(resp)))
            }
            // Axiom 3: {true} resolve / pᵢ / (A[pᵢ], R[pᵢ]) {}
            DetOp::Resolve => Some((
                state.clone(),
                DetResp::Resolved(state.prepared[pid].clone(), state.result[pid].clone()),
            )),
            // Axiom 4: {true} op / pᵢ / ρ(s,op,pᵢ) {s'=δ(s,op,pᵢ)}
            DetOp::Plain(op) => {
                let (inner2, resp) = self.inner.apply(&state.inner, op, pid)?;
                let mut s = state.clone();
                s.inner = inner2;
                Some((s, DetResp::Ret(resp)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{QueueOp, QueueResp, QueueSpec, RegisterOp, RegisterResp, RegisterSpec};

    type DReg = Detectable<RegisterSpec>;

    fn dreg() -> DReg {
        Detectable::new(RegisterSpec, 2)
    }

    #[test]
    fn figure2a_prep_exec_resolve() {
        let d = dreg();
        let s0 = d.initial();
        let w1 = DetOp::Prep { op: RegisterOp::Write(1), seq: 0 };
        let (s1, r) = d.apply(&s0, &w1, 0).unwrap();
        assert_eq!(r, DetResp::Ack);
        let (s2, r) = d.apply(&s1, &DetOp::Exec, 0).unwrap();
        assert_eq!(r, DetResp::Ret(RegisterResp::Ok));
        assert_eq!(s2.inner, 1, "write took effect on the base state");
        let (s3, r) = d.apply(&s2, &DetOp::Resolve, 0).unwrap();
        assert_eq!(r, DetResp::Resolved(Some((RegisterOp::Write(1), 0)), Some(RegisterResp::Ok)));
        assert!(r.took_effect());
        assert_eq!(s3, s2, "resolve has no side-effect");
    }

    #[test]
    fn figure2c_prep_without_exec_resolves_to_bottom_response() {
        let d = dreg();
        let s0 = d.initial();
        let (s1, _) = d.apply(&s0, &DetOp::Prep { op: RegisterOp::Write(1), seq: 7 }, 0).unwrap();
        let (_, r) = d.apply(&s1, &DetOp::Resolve, 0).unwrap();
        assert_eq!(r, DetResp::Resolved(Some((RegisterOp::Write(1), 7)), None));
        assert!(!r.took_effect());
    }

    #[test]
    fn resolve_before_any_prep_returns_bottom_bottom() {
        let d = dreg();
        let (_, r) = d.apply(&d.initial(), &DetOp::Resolve, 1).unwrap();
        assert_eq!(r, DetResp::Resolved(None, None));
    }

    #[test]
    fn exec_without_prep_is_illegal() {
        let d = dreg();
        assert!(d.apply(&d.initial(), &DetOp::Exec, 0).is_none());
    }

    #[test]
    fn double_exec_is_illegal() {
        let d = dreg();
        let s0 = d.initial();
        let (s1, _) = d.apply(&s0, &DetOp::Prep { op: RegisterOp::Write(3), seq: 0 }, 0).unwrap();
        let (s2, _) = d.apply(&s1, &DetOp::Exec, 0).unwrap();
        assert!(d.apply(&s2, &DetOp::Exec, 0).is_none(), "R[pᵢ] ≠ ⊥");
    }

    #[test]
    fn prep_is_idempotent() {
        let d = dreg();
        let s0 = d.initial();
        let p = DetOp::Prep { op: RegisterOp::Write(1), seq: 4 };
        let (s1, _) = d.apply(&s0, &p, 0).unwrap();
        let (s2, _) = d.apply(&s1, &p, 0).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn re_prep_resets_result() {
        let d = dreg();
        let s0 = d.initial();
        let (s, _) = d.apply(&s0, &DetOp::Prep { op: RegisterOp::Write(1), seq: 0 }, 0).unwrap();
        let (s, _) = d.apply(&s, &DetOp::Exec, 0).unwrap();
        let (s, _) = d.apply(&s, &DetOp::Prep { op: RegisterOp::Write(2), seq: 1 }, 0).unwrap();
        let (_, r) = d.apply(&s, &DetOp::Resolve, 0).unwrap();
        assert_eq!(r, DetResp::Resolved(Some((RegisterOp::Write(2), 1)), None));
    }

    #[test]
    fn resolve_is_idempotent() {
        let d = dreg();
        let s0 = d.initial();
        let (s, _) = d.apply(&s0, &DetOp::Prep { op: RegisterOp::Write(1), seq: 0 }, 0).unwrap();
        let (s, _) = d.apply(&s, &DetOp::Exec, 0).unwrap();
        let (s1, r1) = d.apply(&s, &DetOp::Resolve, 0).unwrap();
        let (s2, r2) = d.apply(&s1, &DetOp::Resolve, 0).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn per_process_state_is_independent() {
        let d = dreg();
        let s0 = d.initial();
        let (s, _) = d.apply(&s0, &DetOp::Prep { op: RegisterOp::Write(9), seq: 0 }, 0).unwrap();
        let (_, r) = d.apply(&s, &DetOp::Resolve, 1).unwrap();
        assert_eq!(r, DetResp::Resolved(None, None), "process 1 never prepared");
    }

    #[test]
    fn plain_ops_do_not_touch_detection_state() {
        let d = dreg();
        let s0 = d.initial();
        let (s, r) = d.apply(&s0, &DetOp::Plain(RegisterOp::Write(5)), 0).unwrap();
        assert_eq!(r, DetResp::Ret(RegisterResp::Ok));
        assert_eq!(s.inner, 5);
        assert_eq!(s.prepared, vec![None, None]);
        assert_eq!(s.result, vec![None, None]);
    }

    #[test]
    fn exec_observes_interleaved_plain_ops() {
        // prep read; another process writes; exec returns the *new* value —
        // exec takes effect at its own point in the sequential order.
        let d = dreg();
        let s0 = d.initial();
        let (s, _) = d.apply(&s0, &DetOp::Prep { op: RegisterOp::Read, seq: 0 }, 0).unwrap();
        let (s, _) = d.apply(&s, &DetOp::Plain(RegisterOp::Write(42)), 1).unwrap();
        let (_, r) = d.apply(&s, &DetOp::Exec, 0).unwrap();
        assert_eq!(r, DetResp::Ret(RegisterResp::Value(42)));
    }

    #[test]
    fn detectable_queue_end_to_end() {
        let d = Detectable::new(QueueSpec, 2);
        let s0 = d.initial();
        let (s, _) = d.apply(&s0, &DetOp::Prep { op: QueueOp::Enqueue(10), seq: 0 }, 0).unwrap();
        let (s, r) = d.apply(&s, &DetOp::Exec, 0).unwrap();
        assert_eq!(r, DetResp::Ret(QueueResp::Ok));
        let (s, _) = d.apply(&s, &DetOp::Prep { op: QueueOp::Dequeue, seq: 0 }, 1).unwrap();
        let (s, r) = d.apply(&s, &DetOp::Exec, 1).unwrap();
        assert_eq!(r, DetResp::Ret(QueueResp::Value(10)));
        let (_, r) = d.apply(&s, &DetOp::Resolve, 1).unwrap();
        assert_eq!(r, DetResp::Resolved(Some((QueueOp::Dequeue, 0)), Some(QueueResp::Value(10))));
    }

    #[test]
    fn nesting_detectable_of_detectable_composes() {
        // D⟨D⟨register⟩⟩ is a perfectly good sequential spec: the
        // transformation is closed over the trait (the "no N in DSS"
        // discussion of §2.2).
        let dd = Detectable::new(Detectable::new(RegisterSpec, 2), 2);
        let s0 = dd.initial();
        let inner_op = DetOp::Prep { op: RegisterOp::Write(1), seq: 0 };
        let (s, _) = dd.apply(&s0, &DetOp::Prep { op: inner_op.clone(), seq: 0 }, 0).unwrap();
        let (s, r) = dd.apply(&s, &DetOp::Exec, 0).unwrap();
        // Executing the outer exec performs the inner *prep*.
        assert_eq!(r, DetResp::Ret(DetResp::Ack));
        let (_, r) = dd.apply(&s, &DetOp::Resolve, 0).unwrap();
        assert_eq!(r, DetResp::Resolved(Some((inner_op, 0)), Some(DetResp::Ack)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pid_out_of_range_panics() {
        let d = dreg();
        let _ = d.apply(&d.initial(), &DetOp::Resolve, 5);
    }
}
