//! The sequential-specification trait.

use std::fmt::Debug;
use std::hash::Hash;

/// Process (thread) identifier.
///
/// The paper assumes "a set Π of processes … where each process pᵢ has a
/// distinct ID i", and that a process recovers under the same ID (§2). IDs
/// are small dense integers, used to index per-process recovery state.
pub type ProcId = usize;

/// A sequential specification `T = (S, s0, OP, R, δ, ρ)` (paper §2.1).
///
/// * [`State`](Self::State) is `S`; [`initial`](Self::initial) is `s0`.
/// * [`Op`](Self::Op) is `OP`; [`Resp`](Self::Resp) is `R`.
/// * [`apply`](Self::apply) combines the transition function `δ` and the
///   response function `ρ`; both take the process ID because "a detectable
///   type encodes special recovery state for each process, and some of the
///   operations query this state directly" (footnote 2).
///
/// `apply` returns `None` when no axiom of the specification permits `op` in
/// `state` (a violated precondition). Base types are typically total and
/// never return `None`; the detectable transformation
/// [`Detectable`](crate::Detectable) is partial (e.g. `exec` without a
/// pending `prep` is illegal).
///
/// Specifications are value objects: implementations are usually unit
/// structs, but `&self` allows parameterized types (bounded queues, etc.).
///
/// # Examples
///
/// ```
/// use dss_spec::{ProcId, SequentialSpec};
///
/// /// A saturating 8-bit counter.
/// #[derive(Debug)]
/// struct SatCounter;
///
/// impl SequentialSpec for SatCounter {
///     type State = u8;
///     type Op = ();
///     type Resp = u8;
///     fn initial(&self) -> u8 { 0 }
///     fn apply(&self, s: &u8, _op: &(), _p: ProcId) -> Option<(u8, u8)> {
///         Some((s.saturating_add(1), *s))
///     }
/// }
///
/// let c = SatCounter;
/// let (s1, old) = c.apply(&c.initial(), &(), 0).unwrap();
/// assert_eq!((s1, old), (1, 0));
/// ```
pub trait SequentialSpec {
    /// Abstract states `S`.
    type State: Clone + Eq + Hash + Debug;
    /// Operations `OP`.
    type Op: Clone + Eq + Hash + Debug;
    /// Responses `R`.
    type Resp: Clone + Eq + Hash + Debug;

    /// The initial state `s0`.
    fn initial(&self) -> Self::State;

    /// Applies `op` by process `pid` in `state`, returning the new state
    /// `δ(s, op, pid)` and response `ρ(s, op, pid)`, or `None` when the
    /// operation's precondition does not hold in `state`.
    fn apply(
        &self,
        state: &Self::State,
        op: &Self::Op,
        pid: ProcId,
    ) -> Option<(Self::State, Self::Resp)>;

    /// Runs a whole sequence of `(op, pid)` pairs from the initial state,
    /// returning the responses, or `None` if any step is illegal.
    ///
    /// Convenience for tests and reference executions.
    fn run<'a, I>(&self, script: I) -> Option<Vec<Self::Resp>>
    where
        Self::Op: 'a,
        I: IntoIterator<Item = (&'a Self::Op, ProcId)>,
    {
        let mut state = self.initial();
        let mut out = Vec::new();
        for (op, pid) in script {
            let (next, resp) = self.apply(&state, op, pid)?;
            state = next;
            out.push(resp);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{QueueOp, QueueResp, QueueSpec};

    #[test]
    fn run_threads_state_through() {
        let q = QueueSpec;
        let script = [
            (QueueOp::Enqueue(1), 0),
            (QueueOp::Enqueue(2), 1),
            (QueueOp::Dequeue, 0),
            (QueueOp::Dequeue, 1),
            (QueueOp::Dequeue, 0),
        ];
        let resps = q.run(script.iter().map(|(op, p)| (op, *p))).unwrap();
        assert_eq!(
            resps,
            vec![
                QueueResp::Ok,
                QueueResp::Ok,
                QueueResp::Value(1),
                QueueResp::Value(2),
                QueueResp::Empty,
            ]
        );
    }
}
