//! Partition hooks: decomposing a specification's operations into
//! independent sub-objects.
//!
//! The Wing–Gong search is exponential in the number of overlapping
//! operations, so the checker's scalability hinges on *decomposition*. Two
//! decompositions are orthogonal:
//!
//! * **By sub-object (this module).** Castañeda–Rajsbaum–Raynal's
//!   interval-sequential framing justifies checking a composite object's
//!   history per component: linearizability is *local* (Herlihy & Wing,
//!   Theorem 1 — "P-compositionality"), so a history over a keyed family of
//!   independent objects is linearizable iff each key's sub-history is
//!   linearizable against that key's sub-specification. [`Partitionable`]
//!   exposes exactly the hooks a checker needs to split a history this way.
//! * **By time.** Wherever the interval order is total — every earlier
//!   operation's deadline precedes every later operation's invocation — the
//!   search decomposes into windows with state threaded across the cut.
//!   That lives in the checker crate (`dss-checker`), which consumes these
//!   hooks.
//!
//! The module also defines [`FifoSpec`], the classification hooks that let
//! a checker recognise a FIFO queue history and verify it with a
//! near-linear matching algorithm instead of the exponential search.

use std::collections::BTreeMap;
use std::fmt::Debug;
use std::hash::Hash;

use crate::{ProcId, SequentialSpec};

/// A specification whose operations split into independent sub-objects
/// ("partitions"), identified by [`Key`](Partitionable::Key).
///
/// The contract backing P-compositionality: operations with different keys
/// commute and observe disjoint components of the state, so a concurrent
/// history is linearizable w.r.t. `Self` iff, for every key `k`, the
/// sub-history of key-`k` operations (projected through
/// [`project_op`](Partitionable::project_op) /
/// [`project_resp`](Partitionable::project_resp)) is linearizable w.r.t.
/// [`part_spec(k)`](Partitionable::part_spec).
///
/// Implementations must guarantee:
///
/// * every operation maps to exactly one key;
/// * `apply` on `Self` agrees with `apply` on the key's partition spec,
///   component-wise (ops on key `k` neither read nor write any other key's
///   component).
pub trait Partitionable: SequentialSpec {
    /// Partition identifier.
    type Key: Clone + Eq + Ord + Hash + Debug;
    /// The sub-specification governing one partition.
    type Part: SequentialSpec;

    /// The partition an operation belongs to.
    fn key_of(&self, op: &Self::Op) -> Self::Key;

    /// Projects a composite operation onto its partition's operation.
    fn project_op(&self, op: &Self::Op) -> <Self::Part as SequentialSpec>::Op;

    /// Projects a composite response onto the partition's response.
    fn project_resp(&self, resp: &Self::Resp) -> <Self::Part as SequentialSpec>::Resp;

    /// The specification of one partition.
    fn part_spec(&self, key: &Self::Key) -> Self::Part;
}

/// A keyed family of independent objects of type `T`: operation `(k, op)`
/// applies `op` to the `T`-instance at key `k`.
///
/// The canonical [`Partitionable`] type — a map of registers is a memory, a
/// map of queues is a sharded queue service. Every key's component starts
/// in `T`'s initial state.
///
/// # Examples
///
/// ```
/// use dss_spec::{Keyed, Partitionable, SequentialSpec};
/// use dss_spec::types::{RegisterOp, RegisterResp, RegisterSpec};
///
/// let mem = Keyed::new(RegisterSpec);
/// let s = mem.initial();
/// let (s, _) = mem.apply(&s, &(7, RegisterOp::Write(3)), 0).unwrap();
/// let (_, r) = mem.apply(&s, &(7, RegisterOp::Read), 1).unwrap();
/// assert_eq!(r, RegisterResp::Value(3));
/// assert_eq!(mem.key_of(&(7, RegisterOp::Read)), 7);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Keyed<T> {
    inner: T,
}

impl<T: SequentialSpec> Keyed<T> {
    /// Wraps `inner` as the per-key specification.
    pub fn new(inner: T) -> Self {
        Keyed { inner }
    }

    /// The per-key specification.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: SequentialSpec + Clone> SequentialSpec for Keyed<T> {
    type State = BTreeMap<u64, T::State>;
    type Op = (u64, T::Op);
    type Resp = T::Resp;

    fn initial(&self) -> Self::State {
        BTreeMap::new()
    }

    fn apply(
        &self,
        state: &Self::State,
        (key, op): &Self::Op,
        pid: ProcId,
    ) -> Option<(Self::State, Self::Resp)> {
        let sub = state.get(key).cloned().unwrap_or_else(|| self.inner.initial());
        let (next, resp) = self.inner.apply(&sub, op, pid)?;
        let mut state = state.clone();
        state.insert(*key, next);
        Some((state, resp))
    }
}

impl<T: SequentialSpec + Clone> Partitionable for Keyed<T> {
    type Key = u64;
    type Part = T;

    fn key_of(&self, (key, _): &Self::Op) -> u64 {
        *key
    }

    fn project_op(&self, (_, op): &Self::Op) -> T::Op {
        op.clone()
    }

    fn project_resp(&self, resp: &Self::Resp) -> T::Resp {
        resp.clone()
    }

    fn part_spec(&self, _key: &u64) -> T {
        self.inner.clone()
    }
}

/// How a FIFO-classified response reads.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FifoResp {
    /// Acknowledgement of an enqueue.
    EnqAck,
    /// A dequeue returned this value.
    Value(u64),
    /// A dequeue found the queue empty.
    Empty,
}

/// Classification hooks for specifications whose histories a checker may
/// verify with the FIFO enq/deq matching fast path instead of the
/// exponential linearization search.
///
/// The fast path needs to know, for each operation, whether it is an
/// enqueue (and of which value) or a dequeue, and how to read a dequeue's
/// response. Any operation or response the hooks decline to classify
/// (returning `None`) disables the fast path for the whole history — the
/// checker falls back to the general search, so partial classifications are
/// safe.
pub trait FifoSpec: SequentialSpec {
    /// The enqueued value, if `op` is an enqueue.
    fn enqueue_value(&self, op: &Self::Op) -> Option<u64>;

    /// Whether `op` is a dequeue.
    fn is_dequeue(&self, op: &Self::Op) -> bool;

    /// Classifies a response; `None` means the fast path cannot interpret
    /// it and must fall back.
    fn classify_resp(&self, resp: &Self::Resp) -> Option<FifoResp>;
}

impl FifoSpec for crate::types::QueueSpec {
    fn enqueue_value(&self, op: &crate::types::QueueOp) -> Option<u64> {
        match op {
            crate::types::QueueOp::Enqueue(v) => Some(*v),
            crate::types::QueueOp::Dequeue => None,
        }
    }

    fn is_dequeue(&self, op: &crate::types::QueueOp) -> bool {
        matches!(op, crate::types::QueueOp::Dequeue)
    }

    fn classify_resp(&self, resp: &crate::types::QueueResp) -> Option<FifoResp> {
        Some(match resp {
            crate::types::QueueResp::Ok => FifoResp::EnqAck,
            crate::types::QueueResp::Value(v) => FifoResp::Value(*v),
            crate::types::QueueResp::Empty => FifoResp::Empty,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{QueueOp, QueueResp, QueueSpec, RegisterOp, RegisterResp, RegisterSpec};

    #[test]
    fn keyed_components_are_independent() {
        let mem = Keyed::new(RegisterSpec);
        let s = mem.initial();
        let (s, _) = mem.apply(&s, &(1, RegisterOp::Write(10)), 0).unwrap();
        let (s, _) = mem.apply(&s, &(2, RegisterOp::Write(20)), 0).unwrap();
        let (_, r1) = mem.apply(&s, &(1, RegisterOp::Read), 1).unwrap();
        let (_, r2) = mem.apply(&s, &(2, RegisterOp::Read), 1).unwrap();
        let (_, r3) = mem.apply(&s, &(3, RegisterOp::Read), 1).unwrap();
        assert_eq!(r1, RegisterResp::Value(10));
        assert_eq!(r2, RegisterResp::Value(20));
        assert_eq!(r3, RegisterResp::Value(0), "untouched keys read the initial state");
    }

    #[test]
    fn keyed_projection_agrees_with_part_spec() {
        // The Partitionable contract: applying the composite op equals
        // applying the projected op on the partition spec.
        let mem = Keyed::new(RegisterSpec);
        let op = (9u64, RegisterOp::Write(5));
        let (s, resp) = mem.apply(&mem.initial(), &op, 0).unwrap();
        let part = mem.part_spec(&mem.key_of(&op));
        let (ps, presp) = part.apply(&part.initial(), &mem.project_op(&op), 0).unwrap();
        assert_eq!(mem.project_resp(&resp), presp);
        assert_eq!(s.get(&9), Some(&ps));
    }

    #[test]
    fn keyed_queue_shards_fifo_independently() {
        let q = Keyed::new(QueueSpec);
        let s = q.initial();
        let (s, _) = q.apply(&s, &(0, QueueOp::Enqueue(1)), 0).unwrap();
        let (s, _) = q.apply(&s, &(1, QueueOp::Enqueue(2)), 0).unwrap();
        let (s, r) = q.apply(&s, &(1, QueueOp::Dequeue), 0).unwrap();
        assert_eq!(r, QueueResp::Value(2));
        let (_, r) = q.apply(&s, &(0, QueueOp::Dequeue), 0).unwrap();
        assert_eq!(r, QueueResp::Value(1));
    }

    #[test]
    fn queue_spec_fifo_classification() {
        let q = QueueSpec;
        assert_eq!(q.enqueue_value(&QueueOp::Enqueue(7)), Some(7));
        assert_eq!(q.enqueue_value(&QueueOp::Dequeue), None);
        assert!(q.is_dequeue(&QueueOp::Dequeue));
        assert!(!q.is_dequeue(&QueueOp::Enqueue(7)));
        assert_eq!(q.classify_resp(&QueueResp::Ok), Some(FifoResp::EnqAck));
        assert_eq!(q.classify_resp(&QueueResp::Value(3)), Some(FifoResp::Value(3)));
        assert_eq!(q.classify_resp(&QueueResp::Empty), Some(FifoResp::Empty));
    }
}
