//! Sequential specifications and the detectable transformation `D⟨T⟩`.
//!
//! This crate is the formal heart of the reproduction of Li & Golab,
//! *Detectable Sequential Specifications for Recoverable Shared Objects*
//! (DISC 2021). The paper models an object type `T` as a sequential
//! specification `(S, s0, OP, R, δ, ρ)` and defines a *transformation*
//! `T ↦ D⟨T⟩` (§2.1, Figure 1) that augments `T` with auxiliary operations:
//!
//! * `prep-op` — declare the intent to apply `op` detectably (Axiom 1);
//! * `exec-op` — apply the prepared operation (Axiom 2);
//! * `resolve` — report the prepared operation and, if it took effect, its
//!   response (Axiom 3);
//! * every original `op` remains available non-detectably (Axiom 4).
//!
//! Here [`SequentialSpec`] encodes `(S, s0, OP, R, δ, ρ)` and
//! [`Detectable`] implements the transformation generically, for *any*
//! sequential type. The [`types`] module provides the canonical base types
//! used throughout the paper and its experiments: read/write register,
//! compare-and-swap object, fetch-and-add counter, FIFO queue, and stack.
//!
//! Concurrent correctness (linearizability and its crash-aware relatives)
//! lives in the companion `dss-checker` crate; per the paper's approach, the
//! DSS is "used in tandem with an off-the-shelf correctness condition".
//!
//! # Example: the DSS of a register (paper Figure 2)
//!
//! ```
//! use dss_spec::{Detectable, DetOp, DetResp, SequentialSpec};
//! use dss_spec::types::{RegisterOp, RegisterResp, RegisterSpec};
//!
//! let spec = Detectable::new(RegisterSpec, 2);
//! let s0 = spec.initial();
//!
//! // Process 0 prepares and executes write(1), then resolves (Fig. 2a).
//! let (s1, r) = spec
//!     .apply(&s0, &DetOp::Prep { op: RegisterOp::Write(1), seq: 0 }, 0)
//!     .expect("prep is total");
//! assert_eq!(r, DetResp::Ack);
//! let (s2, r) = spec.apply(&s1, &DetOp::Exec, 0).expect("prepared");
//! assert_eq!(r, DetResp::Ret(RegisterResp::Ok));
//! let (_s3, r) = spec.apply(&s2, &DetOp::Resolve, 0).expect("resolve is total");
//! assert_eq!(
//!     r,
//!     DetResp::Resolved(Some((RegisterOp::Write(1), 0)), Some(RegisterResp::Ok))
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod detectable;
mod partition;
mod seq;

pub mod types;

pub use detectable::{DetOp, DetResp, DetState, Detectable};
pub use partition::{FifoResp, FifoSpec, Keyed, Partitionable};
pub use seq::{ProcId, SequentialSpec};
