//! Canonical sequential object types.
//!
//! Values are `u64` throughout — the natural width of the persistent-memory
//! simulator's words and of the 64-bit failure-atomic writes current
//! hardware offers (paper footnote 1). Each type is total: every operation
//! is legal in every state (`apply` never returns `None`), so partiality
//! only ever comes from the detectable transformation's preconditions.

use crate::{ProcId, SequentialSpec};
use std::collections::VecDeque;

// ---------------------------------------------------------------------------
// Read/write register
// ---------------------------------------------------------------------------

/// Operations of a read/write register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RegisterOp {
    /// Return the current value.
    Read,
    /// Replace the current value.
    Write(u64),
}

/// Responses of a read/write register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RegisterResp {
    /// Acknowledgement of a write.
    Ok,
    /// The value returned by a read.
    Value(u64),
}

/// A multi-reader multi-writer register initialized to 0 (the base object of
/// paper Figure 2).
///
/// # Examples
///
/// ```
/// use dss_spec::SequentialSpec;
/// use dss_spec::types::{RegisterOp, RegisterResp, RegisterSpec};
///
/// let r = RegisterSpec;
/// let (s, _) = r.apply(&r.initial(), &RegisterOp::Write(3), 0).unwrap();
/// let (_, v) = r.apply(&s, &RegisterOp::Read, 1).unwrap();
/// assert_eq!(v, RegisterResp::Value(3));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RegisterSpec;

impl SequentialSpec for RegisterSpec {
    type State = u64;
    type Op = RegisterOp;
    type Resp = RegisterResp;

    fn initial(&self) -> u64 {
        0
    }

    fn apply(&self, s: &u64, op: &RegisterOp, _pid: ProcId) -> Option<(u64, RegisterResp)> {
        Some(match op {
            RegisterOp::Read => (*s, RegisterResp::Value(*s)),
            RegisterOp::Write(v) => (*v, RegisterResp::Ok),
        })
    }
}

// ---------------------------------------------------------------------------
// Compare-and-swap object
// ---------------------------------------------------------------------------

/// Operations of a compare-and-swap object.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CasOp {
    /// Return the current value.
    Read,
    /// If the current value equals `expected`, replace it with `new`.
    Cas {
        /// Value the object must currently hold.
        expected: u64,
        /// Replacement value on success.
        new: u64,
    },
}

/// Responses of a compare-and-swap object.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CasResp {
    /// The value returned by a read.
    Value(u64),
    /// Whether a CAS succeeded.
    Done(bool),
}

/// A CAS object initialized to 0 — the second base-object type of the DSS
/// queue ("an implementation of a DSS-based detectable queue from
/// read/write register and Compare-And-Swap base objects", §2.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CasSpec;

impl SequentialSpec for CasSpec {
    type State = u64;
    type Op = CasOp;
    type Resp = CasResp;

    fn initial(&self) -> u64 {
        0
    }

    fn apply(&self, s: &u64, op: &CasOp, _pid: ProcId) -> Option<(u64, CasResp)> {
        Some(match op {
            CasOp::Read => (*s, CasResp::Value(*s)),
            CasOp::Cas { expected, new } => {
                if s == expected {
                    (*new, CasResp::Done(true))
                } else {
                    (*s, CasResp::Done(false))
                }
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Fetch-and-add counter
// ---------------------------------------------------------------------------

/// Operations of a fetch-and-add counter.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CounterOp {
    /// Return the current count.
    Read,
    /// Add `u64` to the count, returning the previous value (wrapping).
    FetchAdd(u64),
}

/// Responses of a fetch-and-add counter.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CounterResp {
    /// The current or previous count.
    Value(u64),
}

/// A wrapping fetch-and-add counter initialized to 0.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CounterSpec;

impl SequentialSpec for CounterSpec {
    type State = u64;
    type Op = CounterOp;
    type Resp = CounterResp;

    fn initial(&self) -> u64 {
        0
    }

    fn apply(&self, s: &u64, op: &CounterOp, _pid: ProcId) -> Option<(u64, CounterResp)> {
        Some(match op {
            CounterOp::Read => (*s, CounterResp::Value(*s)),
            CounterOp::FetchAdd(d) => (s.wrapping_add(*d), CounterResp::Value(*s)),
        })
    }
}

// ---------------------------------------------------------------------------
// FIFO queue
// ---------------------------------------------------------------------------

/// Operations of a FIFO queue.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum QueueOp {
    /// Append a value at the tail.
    Enqueue(u64),
    /// Remove the value at the head.
    Dequeue,
}

/// Responses of a FIFO queue.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum QueueResp {
    /// Acknowledgement of an enqueue.
    Ok,
    /// The dequeued value.
    Value(u64),
    /// The queue was empty (the paper's special `EMPTY` response).
    Empty,
}

/// An unbounded FIFO queue — the type whose detectable embodiment
/// `D⟨queue⟩` the DSS queue algorithm implements (paper §3).
///
/// # Examples
///
/// ```
/// use dss_spec::SequentialSpec;
/// use dss_spec::types::{QueueOp, QueueResp, QueueSpec};
///
/// let q = QueueSpec;
/// let (s, _) = q.apply(&q.initial(), &QueueOp::Enqueue(7), 0).unwrap();
/// let (s, r) = q.apply(&s, &QueueOp::Dequeue, 1).unwrap();
/// assert_eq!(r, QueueResp::Value(7));
/// let (_, r) = q.apply(&s, &QueueOp::Dequeue, 1).unwrap();
/// assert_eq!(r, QueueResp::Empty);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct QueueSpec;

impl SequentialSpec for QueueSpec {
    type State = VecDeque<u64>;
    type Op = QueueOp;
    type Resp = QueueResp;

    fn initial(&self) -> VecDeque<u64> {
        VecDeque::new()
    }

    fn apply(
        &self,
        s: &VecDeque<u64>,
        op: &QueueOp,
        _pid: ProcId,
    ) -> Option<(VecDeque<u64>, QueueResp)> {
        let mut s = s.clone();
        Some(match op {
            QueueOp::Enqueue(v) => {
                s.push_back(*v);
                (s, QueueResp::Ok)
            }
            QueueOp::Dequeue => match s.pop_front() {
                Some(v) => (s, QueueResp::Value(v)),
                None => (s, QueueResp::Empty),
            },
        })
    }
}

// ---------------------------------------------------------------------------
// LIFO stack
// ---------------------------------------------------------------------------

/// Operations of a LIFO stack.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StackOp {
    /// Push a value.
    Push(u64),
    /// Pop the most recently pushed value.
    Pop,
}

/// Responses of a LIFO stack.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StackResp {
    /// Acknowledgement of a push.
    Ok,
    /// The popped value.
    Value(u64),
    /// The stack was empty.
    Empty,
}

/// An unbounded LIFO stack, used to exercise the universal construction on a
/// second container type.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct StackSpec;

impl SequentialSpec for StackSpec {
    type State = Vec<u64>;
    type Op = StackOp;
    type Resp = StackResp;

    fn initial(&self) -> Vec<u64> {
        Vec::new()
    }

    fn apply(&self, s: &Vec<u64>, op: &StackOp, _pid: ProcId) -> Option<(Vec<u64>, StackResp)> {
        let mut s = s.clone();
        Some(match op {
            StackOp::Push(v) => {
                s.push(*v);
                (s, StackResp::Ok)
            }
            StackOp::Pop => match s.pop() {
                Some(v) => (s, StackResp::Value(v)),
                None => (s, StackResp::Empty),
            },
        })
    }
}

// ---------------------------------------------------------------------------
// Key-value cell and the map built from it
// ---------------------------------------------------------------------------

/// Operations of one key's cell in a key-value map.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum KvOp {
    /// Return the key's value, or report absence.
    Get,
    /// Bind the key to a value (insert or overwrite).
    Put(u64),
    /// Unbind the key. Removing an absent key is legal and acknowledged —
    /// the map is total, like every other base type here.
    Remove,
}

/// Responses of one key's cell.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum KvResp {
    /// Acknowledgement of a put or remove.
    Ok,
    /// The value a get found.
    Value(u64),
    /// The key was absent.
    Absent,
}

/// One key's cell: an optional value, initially absent. The map
/// specification is the keyed family of these — see [`MapSpec`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct KvSpec;

impl SequentialSpec for KvSpec {
    type State = Option<u64>;
    type Op = KvOp;
    type Resp = KvResp;

    fn initial(&self) -> Option<u64> {
        None
    }

    fn apply(&self, s: &Option<u64>, op: &KvOp, _pid: ProcId) -> Option<(Option<u64>, KvResp)> {
        Some(match op {
            KvOp::Get => match s {
                Some(v) => (*s, KvResp::Value(*v)),
                None => (None, KvResp::Absent),
            },
            KvOp::Put(v) => (Some(*v), KvResp::Ok),
            KvOp::Remove => (None, KvResp::Ok),
        })
    }
}

/// The key-value map specification: a keyed family of [`KvSpec`] cells.
///
/// Being a [`Keyed`](crate::Keyed) family it is
/// [`Partitionable`](crate::Partitionable) for free, so a checker can
/// verify each key's sub-history at full length instead of sampling — the
/// decomposition the DSS map's crash matrix relies on.
///
/// # Examples
///
/// ```
/// use dss_spec::types::{KvOp, KvResp, MapSpec};
/// use dss_spec::{Keyed, SequentialSpec};
///
/// let m = MapSpec::default();
/// let s = m.initial();
/// let (s, _) = m.apply(&s, &(7, KvOp::Put(3)), 0).unwrap();
/// let (_, r) = m.apply(&s, &(7, KvOp::Get), 1).unwrap();
/// assert_eq!(r, KvResp::Value(3));
/// let (_, r) = m.apply(&s, &(8, KvOp::Get), 1).unwrap();
/// assert_eq!(r, KvResp::Absent);
/// ```
pub type MapSpec = crate::Keyed<KvSpec>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_read_write() {
        let r = RegisterSpec;
        assert_eq!(r.initial(), 0);
        let (s, resp) = r.apply(&0, &RegisterOp::Read, 0).unwrap();
        assert_eq!((s, resp), (0, RegisterResp::Value(0)));
        let (s, resp) = r.apply(&0, &RegisterOp::Write(5), 0).unwrap();
        assert_eq!((s, resp), (5, RegisterResp::Ok));
    }

    #[test]
    fn cas_success_failure_and_read() {
        let c = CasSpec;
        let (s, r) = c.apply(&0, &CasOp::Cas { expected: 0, new: 3 }, 0).unwrap();
        assert_eq!((s, r), (3, CasResp::Done(true)));
        let (s, r) = c.apply(&3, &CasOp::Cas { expected: 0, new: 9 }, 1).unwrap();
        assert_eq!((s, r), (3, CasResp::Done(false)));
        let (_, r) = c.apply(&3, &CasOp::Read, 0).unwrap();
        assert_eq!(r, CasResp::Value(3));
    }

    #[test]
    fn counter_fetch_add_returns_old_value() {
        let c = CounterSpec;
        let (s, r) = c.apply(&10, &CounterOp::FetchAdd(5), 0).unwrap();
        assert_eq!((s, r), (15, CounterResp::Value(10)));
        let (s, r) = c.apply(&u64::MAX, &CounterOp::FetchAdd(1), 0).unwrap();
        assert_eq!((s, r), (0, CounterResp::Value(u64::MAX)), "wraps");
    }

    #[test]
    fn queue_fifo_order_and_empty() {
        let q = QueueSpec;
        let mut s = q.initial();
        for v in [1, 2, 3] {
            s = q.apply(&s, &QueueOp::Enqueue(v), 0).unwrap().0;
        }
        for expect in [1, 2, 3] {
            let (next, r) = q.apply(&s, &QueueOp::Dequeue, 1).unwrap();
            assert_eq!(r, QueueResp::Value(expect));
            s = next;
        }
        let (_, r) = q.apply(&s, &QueueOp::Dequeue, 1).unwrap();
        assert_eq!(r, QueueResp::Empty);
    }

    #[test]
    fn stack_lifo_order_and_empty() {
        let st = StackSpec;
        let mut s = st.initial();
        for v in [1, 2, 3] {
            s = st.apply(&s, &StackOp::Push(v), 0).unwrap().0;
        }
        for expect in [3, 2, 1] {
            let (next, r) = st.apply(&s, &StackOp::Pop, 0).unwrap();
            assert_eq!(r, StackResp::Value(expect));
            s = next;
        }
        let (_, r) = st.apply(&s, &StackOp::Pop, 0).unwrap();
        assert_eq!(r, StackResp::Empty);
    }

    #[test]
    fn kv_cell_put_get_remove() {
        let kv = KvSpec;
        assert_eq!(kv.initial(), None);
        let (s, r) = kv.apply(&None, &KvOp::Get, 0).unwrap();
        assert_eq!((s, r), (None, KvResp::Absent));
        let (s, r) = kv.apply(&None, &KvOp::Put(5), 0).unwrap();
        assert_eq!((s, r), (Some(5), KvResp::Ok));
        let (s, r) = kv.apply(&Some(5), &KvOp::Get, 1).unwrap();
        assert_eq!((s, r), (Some(5), KvResp::Value(5)));
        let (s, r) = kv.apply(&Some(5), &KvOp::Remove, 0).unwrap();
        assert_eq!((s, r), (None, KvResp::Ok));
        let (s, r) = kv.apply(&None, &KvOp::Remove, 0).unwrap();
        assert_eq!((s, r), (None, KvResp::Ok), "removing an absent key is legal");
    }

    #[test]
    fn map_spec_keys_are_independent() {
        use crate::Partitionable;
        let m = MapSpec::default();
        let s = m.initial();
        let (s, _) = m.apply(&s, &(1, KvOp::Put(10)), 0).unwrap();
        let (s, _) = m.apply(&s, &(2, KvOp::Put(20)), 0).unwrap();
        let (s, _) = m.apply(&s, &(1, KvOp::Remove), 1).unwrap();
        let (_, r1) = m.apply(&s, &(1, KvOp::Get), 1).unwrap();
        let (_, r2) = m.apply(&s, &(2, KvOp::Get), 1).unwrap();
        assert_eq!(r1, KvResp::Absent);
        assert_eq!(r2, KvResp::Value(20));
        assert_eq!(m.key_of(&(2, KvOp::Get)), 2);
    }

    #[test]
    fn specs_are_pid_agnostic() {
        // Base types ignore the process ID; only D⟨T⟩ uses it.
        let q = QueueSpec;
        let a = q.apply(&q.initial(), &QueueOp::Enqueue(1), 0).unwrap();
        let b = q.apply(&q.initial(), &QueueOp::Enqueue(1), 7).unwrap();
        assert_eq!(a, b);
    }
}
