//! Property-based tests for the detectable transformation.
//!
//! These check the DSS axioms (paper Figure 1) against randomly generated
//! operation scripts over `D⟨queue⟩` with several processes.

use proptest::prelude::*;

use dss_spec::types::{QueueOp, QueueSpec};
use dss_spec::{DetOp, DetResp, Detectable, SequentialSpec};

const NPROCS: usize = 3;

fn arb_queue_op() -> impl Strategy<Value = QueueOp> {
    prop_oneof![(0u64..100).prop_map(QueueOp::Enqueue), Just(QueueOp::Dequeue),]
}

fn arb_det_op() -> impl Strategy<Value = DetOp<QueueOp>> {
    prop_oneof![
        (arb_queue_op(), 0u64..4).prop_map(|(op, seq)| DetOp::Prep { op, seq }),
        Just(DetOp::Exec),
        Just(DetOp::Resolve),
        arb_queue_op().prop_map(DetOp::Plain),
    ]
}

fn arb_script() -> impl Strategy<Value = Vec<(DetOp<QueueOp>, usize)>> {
    prop::collection::vec((arb_det_op(), 0..NPROCS), 0..40)
}

/// Runs a script, skipping steps whose preconditions fail (an application
/// would never issue them), and returns the trace of applied steps.
type QueueDetResp = DetResp<QueueOp, <QueueSpec as SequentialSpec>::Resp>;

fn run_legal(
    spec: &Detectable<QueueSpec>,
    script: &[(DetOp<QueueOp>, usize)],
) -> Vec<(DetOp<QueueOp>, usize, QueueDetResp)> {
    let mut state = spec.initial();
    let mut trace = Vec::new();
    for (op, pid) in script {
        if let Some((next, resp)) = spec.apply(&state, op, *pid) {
            state = next;
            trace.push((op.clone(), *pid, resp));
        }
    }
    trace
}

proptest! {
    /// Plain operations on D⟨T⟩ behave exactly like T.
    #[test]
    fn plain_ops_mirror_base_type(ops in prop::collection::vec((arb_queue_op(), 0..NPROCS), 0..40)) {
        let base = QueueSpec;
        let det = Detectable::new(QueueSpec, NPROCS);
        let mut bs = base.initial();
        let mut ds = det.initial();
        for (op, pid) in &ops {
            let (bs2, br) = base.apply(&bs, op, *pid).unwrap();
            let (ds2, dr) = det.apply(&ds, &DetOp::Plain(*op), *pid).unwrap();
            prop_assert_eq!(DetResp::Ret(br), dr);
            bs = bs2;
            ds = ds2;
            prop_assert_eq!(&bs, &ds.inner);
        }
    }

    /// After any legal script, each process's resolve answer reflects its
    /// most recent prep and whether an exec followed it.
    #[test]
    fn resolve_reports_last_prep_and_effect(script in arb_script()) {
        let det = Detectable::new(QueueSpec, NPROCS);
        let mut state = det.initial();
        // Shadow bookkeeping maintained independently from the spec.
        let mut last_prep: Vec<Option<(QueueOp, u64)>> = vec![None; NPROCS];
        let mut last_result: Vec<Option<_>> = vec![None; NPROCS];
        for (op, pid) in &script {
            let Some((next, resp)) = det.apply(&state, op, *pid) else { continue };
            match op {
                DetOp::Prep { op, seq } => {
                    last_prep[*pid] = Some((*op, *seq));
                    last_result[*pid] = None;
                }
                DetOp::Exec => {
                    let DetResp::Ret(r) = &resp else { panic!("exec returns Ret") };
                    last_result[*pid] = Some(*r);
                }
                DetOp::Resolve => {
                    prop_assert_eq!(
                        &resp,
                        &DetResp::Resolved(last_prep[*pid], last_result[*pid])
                    );
                }
                DetOp::Plain(_) => {}
            }
            state = next;
        }
        // Final resolves agree with the bookkeeping for every process.
        for pid in 0..NPROCS {
            let (_, resp) = det.apply(&state, &DetOp::Resolve, pid).unwrap();
            prop_assert_eq!(
                resp,
                DetResp::Resolved(last_prep[pid], last_result[pid])
            );
        }
    }

    /// The base state reached through D⟨T⟩ equals the base state reached by
    /// applying the effective operations (execs resolve to their prepared
    /// op) directly to T: the transformation adds bookkeeping, never new
    /// base behaviour.
    #[test]
    fn projection_to_base_type(script in arb_script()) {
        let det = Detectable::new(QueueSpec, NPROCS);
        let base = QueueSpec;
        let trace = run_legal(&det, &script);

        // Replay the trace through the detectable spec.
        let mut ds = det.initial();
        for (op, pid, _) in &trace {
            ds = det.apply(&ds, op, *pid).unwrap().0;
        }

        // Project: Prep/Resolve vanish, Exec becomes its prepared op.
        let mut bs = base.initial();
        let mut pending: Vec<Option<QueueOp>> = vec![None; NPROCS];
        for (op, pid, _) in &trace {
            match op {
                DetOp::Prep { op, .. } => pending[*pid] = Some(*op),
                DetOp::Exec => {
                    let op = pending[*pid].expect("exec only legal after prep");
                    bs = base.apply(&bs, &op, *pid).unwrap().0;
                }
                DetOp::Plain(op) => bs = base.apply(&bs, op, *pid).unwrap().0,
                DetOp::Resolve => {}
            }
        }
        prop_assert_eq!(bs, ds.inner);
    }

    /// Exec is never legal twice without an intervening prep (Axiom 2's
    /// precondition R[pᵢ] = ⊥).
    #[test]
    fn no_double_exec(script in arb_script()) {
        let det = Detectable::new(QueueSpec, NPROCS);
        let mut state = det.initial();
        let mut executed: Vec<bool> = vec![false; NPROCS];
        for (op, pid) in &script {
            match det.apply(&state, op, *pid) {
                Some((next, _)) => {
                    match op {
                        DetOp::Exec => {
                            prop_assert!(!executed[*pid], "double exec permitted");
                            executed[*pid] = true;
                        }
                        DetOp::Prep { .. } => executed[*pid] = false,
                        _ => {}
                    }
                    state = next;
                }
                None => {
                    // Illegal exec must be exactly the no-prep / double-exec case.
                    prop_assert!(matches!(op, DetOp::Exec));
                }
            }
        }
    }
}
