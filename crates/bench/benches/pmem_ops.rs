//! Microscopic cost of the persistent-memory simulator primitives.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use dss_pmem::{FlushGranularity, PAddr, PmemPool};

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("pmem");
    group
        .sample_size(50)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    let pool = PmemPool::with_capacity(1024);
    let a = PAddr::from_index(8);

    group.bench_function("load", |b| b.iter(|| black_box(pool.load(black_box(a)))));
    group.bench_function("store", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            pool.store(black_box(a), i)
        })
    });
    group.bench_function("cas_success", |b| {
        b.iter(|| {
            let cur = pool.load(a);
            black_box(pool.cas(a, cur, cur.wrapping_add(1)).is_ok())
        })
    });
    group.bench_function("flush_line_dirty", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            pool.store(a, i);
            pool.flush(a)
        })
    });
    group.bench_function("flush_line_clean", |b| {
        pool.flush(a);
        b.iter(|| pool.flush(black_box(a)))
    });
    let word_pool = PmemPool::with_granularity(1024, FlushGranularity::Word);
    group.bench_function("flush_word_dirty", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            word_pool.store(a, i);
            word_pool.flush(a)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
