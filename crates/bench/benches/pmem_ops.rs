//! Microscopic cost of the persistent-memory simulator primitives.

use std::hint::black_box;

use dss_bench::Runner;
use dss_pmem::{FlushGranularity, PAddr, PmemPool};

fn main() {
    let r = Runner::new("pmem").sample_size(50);

    let pool = PmemPool::with_capacity(1024);
    let a = PAddr::from_index(8);

    r.bench("load", || {
        black_box(pool.load(black_box(a)));
    });
    let mut i = 0u64;
    r.bench("store", || {
        i += 1;
        pool.store(black_box(a), i);
    });
    r.bench("cas_success", || {
        let cur = pool.load(a);
        black_box(pool.cas(a, cur, cur.wrapping_add(1)).is_ok());
    });
    let mut i = 0u64;
    r.bench("flush_line_dirty", || {
        i += 1;
        pool.store(a, i);
        pool.flush(a);
    });
    pool.flush(a);
    r.bench("flush_line_clean", || pool.flush(black_box(a)));

    let word_pool = PmemPool::with_granularity(1024, FlushGranularity::Word);
    let mut i = 0u64;
    r.bench("flush_word_dirty", || {
        i += 1;
        word_pool.store(a, i);
        word_pool.flush(a);
    });
}
