//! Per-operation latency of every queue implementation (single thread,
//! uncontended): one enqueue+dequeue pair per iteration.
//!
//! This is the microscopic view of Figures 5a/5b — the same ordering must
//! appear here as in the throughput series. Pass `--backend dram` (or both
//! `--backend pmem --backend dram`) to switch the memory substrate; other
//! flags are ignored because `cargo bench` forwards its own.

use std::hint::black_box;

use dss_bench::{backends_from_args, Runner};
use dss_harness::adapter::QueueKind;

fn main() {
    for backend in backends_from_args() {
        let r = Runner::new(&format!("enq_deq_pair/{}", backend.label()))
            .warm_up_time(std::time::Duration::from_millis(300))
            .measurement_time(std::time::Duration::from_millis(800));
        for kind in QueueKind::all() {
            let q = kind.build_on(backend, 1, 4096);
            q.set_flush_penalty(20);
            let h = q.register_thread();
            let mut i = 0u64;
            r.bench(kind.label(), || {
                i += 1;
                q.enqueue(h, black_box(i));
                black_box(q.dequeue(h));
            });
        }
    }
}
