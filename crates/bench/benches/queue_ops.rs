//! Per-operation latency of every queue implementation (single thread,
//! uncontended): one enqueue+dequeue pair per iteration.
//!
//! This is the microscopic view of Figures 5a/5b — the same ordering must
//! appear here as in the throughput series.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use dss_harness::adapter::QueueKind;

fn bench_pairs(c: &mut Criterion) {
    let mut group = c.benchmark_group("enq_deq_pair");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    for kind in QueueKind::all() {
        let q = kind.build(1, 4096);
        q.pool().set_flush_penalty(20);
        let mut i = 0u64;
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                i += 1;
                q.enqueue(0, black_box(i));
                black_box(q.dequeue(0));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pairs);
criterion_main!(benches);
