//! E15 — replication read-scaling: replica-local reads vs the shared
//! single instance.
//!
//! Every thread runs a read-mixed workload against ONE queue: with
//! probability `read_fraction` an iteration peeks the front value, else
//! it runs one enqueue/dequeue pair. The single-instance DSS queue
//! answers a peek by walking the shared persistent structure; the
//! replicated layer answers from the calling thread's volatile replica
//! after catching up to the committed log prefix — no flushes and no
//! shared-line writes on the read path. The sweep crosses read fractions
//! 0.5/0.9/0.99 × thread counts × 1/2/4 replicas and writes
//! `BENCH_replication.json` (shared envelope schema) to the invoking
//! directory; official runs are copied into `results/`.
//!
//! ```text
//! cargo bench -p dss-bench --bench replication -- \
//!     [--threads N] [--ms M] [--repeats R] [--penalty SPINS]
//!     [--assert-read-scaling]
//! ```
//!
//! `--assert-read-scaling` makes the sweep a CI gate: on a ≥4-CPU host
//! the replicated layer's 0.99-read throughput must be ≥ 1.5× the single
//! instance at 4 threads; on a 2–3-CPU host the gate weakens to
//! parity-within-noise at the highest measured thread count, and on a
//! 1-CPU host it is skipped outright (replica-local reads cannot scale
//! without parallelism — the E14 honesty convention).

use std::time::Duration;

use dss_bench::{json, numeric_flag, switch_flag};
use dss_harness::adapter::QueueKind;
use dss_harness::throughput::{measure_read_mix, ReadMixConfig, Throughput};

const READ_FRACTIONS: [f64; 3] = [0.5, 0.9, 0.99];
const REPLICA_COUNTS: [usize; 3] = [1, 2, 4];

/// One measured column: the single instance, or the replicated layer at
/// a replica count.
#[derive(Clone, Copy)]
enum Column {
    Single,
    Replicated(usize),
}

impl Column {
    fn key(self) -> String {
        match self {
            Column::Single => "single".into(),
            Column::Replicated(r) => format!("replicated_r{r}"),
        }
    }

    fn measure(
        self,
        threads: usize,
        read_fraction: f64,
        ms: u64,
        repeats: usize,
        penalty: u64,
    ) -> Throughput {
        let (kind, replicas) = match self {
            Column::Single => (QueueKind::DssDetectable, 1),
            Column::Replicated(r) => (QueueKind::DssReplicated, r),
        };
        let config = ReadMixConfig {
            threads,
            duration: Duration::from_millis(ms),
            repeats,
            read_fraction,
            replicas,
            flush_penalty: penalty,
            ..Default::default()
        };
        measure_read_mix(kind, &config)
    }
}

fn main() {
    let max_threads = numeric_flag("--threads", 8) as usize;
    let ms = numeric_flag("--ms", 120);
    let repeats = numeric_flag("--repeats", 2) as usize;
    let penalty = numeric_flag("--penalty", 20);

    // 1, 2, 4, ... up to and including the requested thread count.
    let mut counts = vec![];
    let mut n = 1;
    while n < max_threads {
        counts.push(n);
        n *= 2;
    }
    counts.push(max_threads);

    let columns: Vec<Column> = std::iter::once(Column::Single)
        .chain(REPLICA_COUNTS.iter().map(|&r| Column::Replicated(r)))
        .collect();

    let mut envelope = json::Envelope::new("e15_replication_read_scaling", "mops_per_sec")
        .meta("flush_penalty", json::Value::Int(penalty as i64))
        .meta("backend", json::Value::str("pmem"))
        .meta("threads", json::Value::array(counts.iter().map(|&t| json::Value::Int(t as i64))))
        .meta(
            "read_fractions",
            json::Value::array(READ_FRACTIONS.iter().map(|&f| json::Value::Num(f))),
        )
        .meta(
            "replicas",
            json::Value::array(REPLICA_COUNTS.iter().map(|&r| json::Value::Int(r as i64))),
        );

    // series[column][fraction] -> one point per thread count; the 0.99
    // crossover and the gate read from here after the sweep.
    let mut series =
        vec![vec![Vec::with_capacity(counts.len()); READ_FRACTIONS.len()]; columns.len()];
    for (fi, &fraction) in READ_FRACTIONS.iter().enumerate() {
        println!(
            "# E15 read scaling: read fraction {fraction}, flush penalty = {penalty} spins, \
             backend = pmem (Mops/s)"
        );
        print!("{:>8}", "threads");
        for col in &columns {
            print!(" {:>22}", col.key());
        }
        println!();
        for &threads in &counts {
            print!("{threads:>8}");
            for (ci, col) in columns.iter().enumerate() {
                let t = col.measure(threads, fraction, ms, repeats, penalty);
                print!(" {:>14.3} ±{:>6.3}", t.mops_mean, t.mops_stddev);
                series[ci][fi].push(t);
            }
            println!();
        }
        println!();
    }

    // The 0.99-mix crossover, mirroring E14: the lowest thread count at
    // which the best replicated column is at least at parity with the
    // single instance (within the two samples' noise).
    let hi = READ_FRACTIONS.len() - 1;
    let crossover = counts.iter().enumerate().find_map(|(i, &threads)| {
        let single = series[0][hi][i];
        let best = series[1..]
            .iter()
            .map(|col| col[hi][i])
            .max_by(|a, b| a.mops_mean.total_cmp(&b.mops_mean))
            .unwrap();
        (best.mops_mean + best.mops_stddev >= single.mops_mean - single.mops_stddev)
            .then_some(threads)
    });
    match crossover {
        Some(t) => println!(
            "# crossover: replica-local reads reach the single instance at {t} threads (0.99 mix)"
        ),
        None => println!("# crossover: not reached up to {max_threads} threads (0.99 mix)"),
    }

    envelope = envelope.meta(
        "crossover_threads",
        crossover.map_or(json::Value::Null, |t| json::Value::Int(t as i64)),
    );
    for (ci, col) in columns.iter().enumerate() {
        for (fi, &fraction) in READ_FRACTIONS.iter().enumerate() {
            envelope = envelope.series(
                format!("{}_f{}", col.key(), fraction),
                json::Value::array(series[ci][fi].iter().map(|t| {
                    json::Value::object([
                        ("mean", json::Value::rounded(t.mops_mean, 4)),
                        ("stddev", json::Value::rounded(t.mops_stddev, 4)),
                    ])
                })),
            );
        }
    }
    envelope.write("BENCH_replication.json");

    if switch_flag("--assert-read-scaling") {
        assert_read_scaling(&counts, &series, hi);
    }
}

/// The E15 CI gate (see the module docs for the per-host tiers).
fn assert_read_scaling(counts: &[usize], series: &[Vec<Vec<Throughput>>], hi: usize) {
    let cpus = json::host_cpus();
    if cpus < 2 {
        println!(
            "# read-scaling gate skipped: {cpus} CPU — replica-local reads cannot scale \
             without parallelism"
        );
        return;
    }
    let best_at = |i: usize| {
        series[1..]
            .iter()
            .map(|col| col[hi][i])
            .max_by(|a, b| a.mops_mean.total_cmp(&b.mops_mean))
            .unwrap()
    };
    if cpus >= 4 {
        let i = counts
            .iter()
            .position(|&t| t == 4)
            .expect("the read-scaling gate needs a 4-thread point (--threads >= 4)");
        let (single, best) = (series[0][hi][i], best_at(i));
        let ratio = best.mops_mean / single.mops_mean;
        println!("# read-scaling gate: {ratio:.2}x at 4 threads, 0.99 mix (need >= 1.5x)");
        assert!(
            ratio >= 1.5,
            "replica-local 0.99-read throughput below 1.5x single instance at 4 threads: \
             {:.3} vs {:.3} Mops/s",
            best.mops_mean,
            single.mops_mean
        );
    } else {
        let i = counts.len() - 1;
        let (single, best) = (series[0][hi][i], best_at(i));
        println!(
            "# read-scaling gate ({cpus} CPUs): parity-within-noise at {} threads, 0.99 mix",
            counts[i]
        );
        assert!(
            best.mops_mean + best.mops_stddev >= single.mops_mean - single.mops_stddev,
            "replicated fell below the single instance beyond noise at {} threads: \
             {:.3} ±{:.3} vs {:.3} ±{:.3} Mops/s",
            counts[i],
            best.mops_mean,
            best.mops_stddev,
            single.mops_mean,
            single.mops_stddev
        );
    }
}
