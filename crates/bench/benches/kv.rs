//! E16 — YCSB-style key-value throughput on the detectable hash map.
//!
//! The map is loaded with `--keys` keys, then every thread runs a
//! read/update mix against it: a read is a plain `get` (no flushes on the
//! hit path), an update is a detectable `prep_put`/`exec_put` pair (one
//! logical operation, persisted and resolvable after a crash). Key choice
//! follows YCSB's Zipfian request distribution (θ = 0.99) with a uniform
//! column for contrast, and the workload rows are YCSB's core mixes:
//!
//! * workload A — update-heavy, 50% reads;
//! * workload B — read-heavy, 95% reads;
//! * workload C — read-only, 100% reads.
//!
//! The sweep crosses workload × distribution × thread counts and writes
//! `BENCH_kv.json` (shared envelope schema) to the invoking directory;
//! official runs are copied into `results/`.
//!
//! ```text
//! cargo bench -p dss-bench --bench kv -- \
//!     [--threads N] [--ms M] [--repeats R] [--penalty SPINS]
//!     [--keys K] [--assert-kv-mix]
//! ```
//!
//! `--assert-kv-mix` makes the sweep a CI gate: on a ≥4-CPU host the
//! read-heavy Zipfian mix (B) must beat the update-heavy mix (A) by ≥1.2×
//! at 4 threads — plain reads skip the flush path, so detectability must
//! not tax them; on a smaller host the gate weakens to B-at-least-A
//! within the two samples' noise at the highest measured thread count
//! (the E14/E15 honesty convention).

use std::time::Duration;

use dss_bench::{json, numeric_flag, switch_flag};
use dss_harness::throughput::{measure_kv_mix, KvMixConfig, Throughput};

/// YCSB core mixes: (label, read fraction).
const WORKLOADS: [(&str, f64); 3] = [("a", 0.5), ("b", 0.95), ("c", 1.0)];
/// Request distributions: (label, Zipf θ).
const SKEWS: [(&str, f64); 2] = [("zipf", 0.99), ("uniform", 0.0)];

fn main() {
    let max_threads = numeric_flag("--threads", 8) as usize;
    let ms = numeric_flag("--ms", 120);
    let repeats = numeric_flag("--repeats", 2) as usize;
    let penalty = numeric_flag("--penalty", 20);
    let keys = numeric_flag("--keys", 1024);

    // 1, 2, 4, ... up to and including the requested thread count.
    let mut counts = vec![];
    let mut n = 1;
    while n < max_threads {
        counts.push(n);
        n *= 2;
    }
    counts.push(max_threads);

    let mut envelope = json::Envelope::new("e16_ycsb_kv", "mops_per_sec")
        .meta("flush_penalty", json::Value::Int(penalty as i64))
        .meta("backend", json::Value::str("pmem"))
        .meta("keys", json::Value::Int(keys as i64))
        .meta("threads", json::Value::array(counts.iter().map(|&t| json::Value::Int(t as i64))))
        .meta(
            "workload_read_fractions",
            json::Value::object(WORKLOADS.map(|(w, f)| (w, json::Value::Num(f)))),
        )
        .meta("zipf_theta", json::Value::Num(SKEWS[0].1));

    // series[workload][skew] -> one point per thread count.
    let mut series = vec![vec![Vec::with_capacity(counts.len()); SKEWS.len()]; WORKLOADS.len()];
    for (wi, &(workload, read_fraction)) in WORKLOADS.iter().enumerate() {
        println!(
            "# E16 YCSB {workload}: {:.0}% reads over {keys} keys, flush penalty = {penalty} \
             spins, backend = pmem (Mops/s)",
            read_fraction * 100.0
        );
        print!("{:>8}", "threads");
        for &(skew, _) in &SKEWS {
            print!(" {:>22}", skew);
        }
        println!();
        for &threads in &counts {
            print!("{threads:>8}");
            for (si, &(_, zipf_theta)) in SKEWS.iter().enumerate() {
                let config = KvMixConfig {
                    threads,
                    duration: Duration::from_millis(ms),
                    repeats,
                    keyspace: keys,
                    buckets: (keys / 4).next_power_of_two().max(16),
                    flush_penalty: penalty,
                    read_fraction,
                    zipf_theta,
                    ..Default::default()
                };
                let t = measure_kv_mix(&config);
                print!(" {:>14.3} ±{:>6.3}", t.mops_mean, t.mops_stddev);
                series[wi][si].push(t);
            }
            println!();
        }
        println!();
    }

    for (wi, &(workload, _)) in WORKLOADS.iter().enumerate() {
        for (si, &(skew, _)) in SKEWS.iter().enumerate() {
            envelope = envelope.series(
                format!("ycsb_{workload}_{skew}"),
                json::Value::array(series[wi][si].iter().map(|t| {
                    json::Value::object([
                        ("mean", json::Value::rounded(t.mops_mean, 4)),
                        ("stddev", json::Value::rounded(t.mops_stddev, 4)),
                    ])
                })),
            );
        }
    }
    envelope.write("BENCH_kv.json");

    if switch_flag("--assert-kv-mix") {
        assert_kv_mix(&counts, &series);
    }
}

/// The E16 CI gate (see the module docs for the per-host tiers). Indexes
/// `series[workload][skew=zipf]`.
fn assert_kv_mix(counts: &[usize], series: &[Vec<Vec<Throughput>>]) {
    let cpus = json::host_cpus();
    let (update_heavy, read_heavy) = (&series[0][0], &series[1][0]);
    if cpus >= 4 {
        let i = counts
            .iter()
            .position(|&t| t == 4)
            .expect("the kv-mix gate needs a 4-thread point (--threads >= 4)");
        let (a, b) = (update_heavy[i], read_heavy[i]);
        let ratio = b.mops_mean / a.mops_mean;
        println!(
            "# kv-mix gate: {ratio:.2}x read-heavy over update-heavy at 4 threads (need >= 1.2x)"
        );
        assert!(
            ratio >= 1.2,
            "read-heavy YCSB-B throughput below 1.2x update-heavy YCSB-A at 4 threads: \
             {:.3} vs {:.3} Mops/s — plain reads should skip the flush path",
            b.mops_mean,
            a.mops_mean
        );
    } else {
        let i = counts.len() - 1;
        let (a, b) = (update_heavy[i], read_heavy[i]);
        println!(
            "# kv-mix gate ({cpus} CPUs): read-heavy at least update-heavy within noise at {} \
             threads",
            counts[i]
        );
        assert!(
            b.mops_mean + b.mops_stddev >= a.mops_mean - a.mops_stddev,
            "read-heavy YCSB-B fell below update-heavy YCSB-A beyond noise at {} threads: \
             {:.3} ±{:.3} vs {:.3} ±{:.3} Mops/s",
            counts[i],
            b.mops_mean,
            b.mops_stddev,
            a.mops_mean,
            a.mops_stddev
        );
    }
}
