//! Contention benchmark: every thread hammers ONE shared queue with
//! alternating enqueue/dequeue pairs (a 50:50 operation mix) — the
//! adversarial schedule the contention-management layer (bounded backoff,
//! cache-line padding, announce elision) exists for.
//!
//! Each queue kind is measured over the coalesce × backoff grid plus the
//! drain-granularity axis (`per-addr` runs coalescing with per-address
//! dependency drains instead of whole-set drains) so the axes' effect
//! under contention is visible side by side; `off/off` is the
//! seed-identical baseline.
//!
//! After the grid, the E14 crossover sweep compares the two detectable
//! execution layers — CAS-racing `exec` vs the flat-combining layer —
//! across thread counts, and writes the series plus the measured
//! crossover thread count (the lowest count at which combining matches
//! or beats CAS-racing) to `BENCH_contention.json` in the invoking
//! directory; official runs are copied into `results/`.
//!
//! ```text
//! cargo bench -p dss-bench --bench contention -- \
//!     [--threads N] [--ms M] [--repeats R] [--penalty SPINS]
//!     [--backend pmem --backend dram] [--assert-crossover]
//! ```
//!
//! `--penalty` is the simulated writeback cost in spin iterations (default
//! 20, the cross-experiment default). The drain-granularity columns only
//! separate from the whole-set baseline when writebacks cost something: at
//! a realistic penalty (≈200 spins ≈ an Optane CLWB+fence) the writebacks
//! per-address drains absorb dominate; at 0 the columns measure pure
//! bookkeeping. `--assert-crossover` makes the sweep a CI gate: it fails
//! unless combining is at least at parity with CAS-racing (within the
//! observed noise) at the highest thread count.

use std::time::Duration;

use dss_bench::{json, numeric_flag, switch_flag};
use dss_harness::adapter::{Backend, QueueKind};
use dss_harness::throughput::{measure, Throughput, ThroughputConfig};

/// One series as envelope points: `[{ "mean": m, "stddev": s }, ...]`.
fn points_json(points: &[Throughput]) -> json::Value {
    json::Value::array(points.iter().map(|t| {
        json::Value::object([
            ("mean", json::Value::rounded(t.mops_mean, 4)),
            ("stddev", json::Value::rounded(t.mops_stddev, 4)),
        ])
    }))
}

fn main() {
    let threads = numeric_flag("--threads", 4) as usize;
    let ms = numeric_flag("--ms", 150);
    let repeats = numeric_flag("--repeats", 2) as usize;
    let penalty = numeric_flag("--penalty", 20);
    for backend in dss_bench::backends_from_args() {
        println!(
            "# contention: {threads} threads on one queue, 50:50 enq:deq, \
             flush penalty = {penalty} spins, backend = {} (Mops/s)",
            backend.label()
        );
        println!(
            "{:<30} {:>14} {:>14} {:>14} {:>14} {:>14} {:>14}",
            "queue", "off/off", "coalesce", "per-addr", "backoff", "both", "pa+backoff"
        );
        for kind in QueueKind::contention() {
            print!("{:<30}", kind.label());
            let grid = [
                (false, false, false),
                (true, false, false),
                (true, true, false),
                (false, false, true),
                (true, false, true),
                (true, true, true),
            ];
            // Interleave the repeats round-robin across the grid rather
            // than running each cell's repeats back to back: slow machine
            // drift (turbo, co-tenant load) then lands on every column
            // equally instead of biasing whichever column hit a slow patch.
            let mut samples = vec![Vec::with_capacity(repeats); grid.len()];
            for _ in 0..repeats {
                for (cell, &(coalesce, per_address, backoff)) in grid.iter().enumerate() {
                    let config = ThroughputConfig {
                        threads,
                        duration: Duration::from_millis(ms),
                        repeats: 1,
                        backend,
                        coalesce,
                        per_address,
                        backoff,
                        flush_penalty: penalty,
                        ..Default::default()
                    };
                    samples[cell].push(measure(kind, &config).mops_mean);
                }
            }
            for cell in &samples {
                let mean = cell.iter().sum::<f64>() / cell.len() as f64;
                let var = if cell.len() > 1 {
                    cell.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (cell.len() - 1) as f64
                } else {
                    0.0
                };
                print!(" {:>7.3} ±{:>5.3}", mean, var.sqrt());
            }
            println!();
        }
        println!();
    }
    crossover_sweep(threads, ms, repeats, penalty, switch_flag("--assert-crossover"));
}

/// E14: CAS-racing vs flat-combining `exec` across thread counts.
///
/// Both layers run the identical detectable prep/exec workload on the
/// instrumented pmem backend with default flush knobs, so the only
/// difference measured is the execution strategy: per-op CAS retries with
/// per-op persists, vs one combiner applying the announced batch with one
/// persist per batch phase.
fn crossover_sweep(max_threads: usize, ms: u64, repeats: usize, penalty: u64, assert_on: bool) {
    // 1, 2, 4, ... up to and including the grid's thread count.
    let mut counts = vec![];
    let mut n = 1;
    while n < max_threads {
        counts.push(n);
        n *= 2;
    }
    counts.push(max_threads);

    println!(
        "# E14 crossover: CAS-racing vs combining exec, 50:50 enq:deq, \
         flush penalty = {penalty} spins, backend = pmem (Mops/s)"
    );
    println!("{:>8} {:>22} {:>22}", "threads", "cas-racing", "combining");
    let pair = [QueueKind::DssDetectable, QueueKind::DssCombining];
    let mut series = vec![vec![]; pair.len()];
    for &threads in &counts {
        print!("{threads:>8}");
        for (i, &kind) in pair.iter().enumerate() {
            let config = ThroughputConfig {
                threads,
                duration: Duration::from_millis(ms),
                repeats,
                backend: Backend::Pmem,
                flush_penalty: penalty,
                ..Default::default()
            };
            let t = measure(kind, &config);
            print!(" {:>14.3} ±{:>5.3}", t.mops_mean, t.mops_stddev);
            series[i].push(t);
        }
        println!();
    }
    // The crossover: the lowest thread count at which combining is at
    // least at parity with CAS-racing (within the two samples' noise).
    let crossover = counts
        .iter()
        .zip(series[0].iter().zip(series[1].iter()))
        .find(|(_, (cas, comb))| {
            comb.mops_mean + comb.mops_stddev >= cas.mops_mean - cas.mops_stddev
        })
        .map(|(&threads, _)| threads);
    match crossover {
        Some(t) => println!("# crossover: combining reaches CAS-racing at {t} threads"),
        None => println!("# crossover: not reached up to {max_threads} threads"),
    }
    println!();

    // Machine-readable summary through the shared envelope (written to
    // the invoking directory; official runs are copied into results/).
    let mut envelope = json::Envelope::new("e14_contention_combining", "mops_per_sec")
        .meta("flush_penalty", json::Value::Int(penalty as i64))
        .meta("backend", json::Value::str("pmem"))
        .meta("threads", json::Value::array(counts.iter().map(|&t| json::Value::Int(t as i64))))
        .meta(
            "crossover_threads",
            crossover.map_or(json::Value::Null, |t| json::Value::Int(t as i64)),
        );
    for (key, points) in ["cas_racing", "combining"].iter().zip(series.iter()) {
        envelope = envelope.series(*key, points_json(points));
    }
    envelope.write("BENCH_contention.json");

    if assert_on {
        let (cas, comb) = (series[0].last().unwrap(), series[1].last().unwrap());
        assert!(
            comb.mops_mean + comb.mops_stddev >= cas.mops_mean - cas.mops_stddev,
            "combining fell below CAS-racing beyond noise at {max_threads} threads: \
             {:.3} ±{:.3} vs {:.3} ±{:.3} Mops/s",
            comb.mops_mean,
            comb.mops_stddev,
            cas.mops_mean,
            cas.mops_stddev
        );
    }
}
