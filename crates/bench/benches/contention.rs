//! Contention benchmark: every thread hammers ONE shared queue with
//! alternating enqueue/dequeue pairs (a 50:50 operation mix) — the
//! adversarial schedule the contention-management layer (bounded backoff,
//! cache-line padding, announce elision) exists for.
//!
//! Each queue kind is measured over the full coalesce × backoff grid so
//! the axes' effect under contention is visible side by side; `off/off`
//! is the seed-identical baseline.
//!
//! ```text
//! cargo bench -p dss-bench --bench contention -- \
//!     [--threads N] [--ms M] [--backend pmem --backend dram]
//! ```

use std::time::Duration;

use dss_harness::adapter::QueueKind;
use dss_harness::throughput::{measure, ThroughputConfig};

/// Lenient scan for one numeric flag (cargo bench passes harness flags
/// like `--bench` through; ignore everything unknown).
fn numeric_flag(name: &str, default: u64) -> u64 {
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == name {
            if let Some(v) = it.next() {
                return v.parse().unwrap_or_else(|_| panic!("{name} needs a number"));
            }
        }
    }
    default
}

fn main() {
    let threads = numeric_flag("--threads", 4) as usize;
    let ms = numeric_flag("--ms", 150);
    let repeats = numeric_flag("--repeats", 2) as usize;
    for backend in dss_bench::backends_from_args() {
        println!(
            "# contention: {threads} threads on one queue, 50:50 enq:deq, \
             backend = {} (Mops/s)",
            backend.label()
        );
        println!(
            "{:<30} {:>14} {:>14} {:>14} {:>14}",
            "queue", "off/off", "coalesce", "backoff", "both"
        );
        for kind in QueueKind::all() {
            print!("{:<30}", kind.label());
            for (coalesce, backoff) in [(false, false), (true, false), (false, true), (true, true)]
            {
                let config = ThroughputConfig {
                    threads,
                    duration: Duration::from_millis(ms),
                    repeats,
                    backend,
                    coalesce,
                    backoff,
                    ..Default::default()
                };
                let t = measure(kind, &config);
                print!(" {:>7.3} ±{:>5.3}", t.mops_mean, t.mops_stddev);
            }
            println!();
        }
        println!();
    }
}
