//! Contention benchmark: every thread hammers ONE shared queue with
//! alternating enqueue/dequeue pairs (a 50:50 operation mix) — the
//! adversarial schedule the contention-management layer (bounded backoff,
//! cache-line padding, announce elision) exists for.
//!
//! Each queue kind is measured over the coalesce × backoff grid plus the
//! drain-granularity axis (`per-addr` runs coalescing with per-address
//! dependency drains instead of whole-set drains) so the axes' effect
//! under contention is visible side by side; `off/off` is the
//! seed-identical baseline.
//!
//! ```text
//! cargo bench -p dss-bench --bench contention -- \
//!     [--threads N] [--ms M] [--repeats R] [--penalty SPINS]
//!     [--backend pmem --backend dram]
//! ```
//!
//! `--penalty` is the simulated writeback cost in spin iterations (default
//! 20, the cross-experiment default). The drain-granularity columns only
//! separate from the whole-set baseline when writebacks cost something: at
//! a realistic penalty (≈200 spins ≈ an Optane CLWB+fence) the writebacks
//! per-address drains absorb dominate; at 0 the columns measure pure
//! bookkeeping.

use std::time::Duration;

use dss_harness::adapter::QueueKind;
use dss_harness::throughput::{measure, ThroughputConfig};

/// Lenient scan for one numeric flag (cargo bench passes harness flags
/// like `--bench` through; ignore everything unknown).
fn numeric_flag(name: &str, default: u64) -> u64 {
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == name {
            if let Some(v) = it.next() {
                return v.parse().unwrap_or_else(|_| panic!("{name} needs a number"));
            }
        }
    }
    default
}

fn main() {
    let threads = numeric_flag("--threads", 4) as usize;
    let ms = numeric_flag("--ms", 150);
    let repeats = numeric_flag("--repeats", 2) as usize;
    let penalty = numeric_flag("--penalty", 20);
    for backend in dss_bench::backends_from_args() {
        println!(
            "# contention: {threads} threads on one queue, 50:50 enq:deq, \
             flush penalty = {penalty} spins, backend = {} (Mops/s)",
            backend.label()
        );
        println!(
            "{:<30} {:>14} {:>14} {:>14} {:>14} {:>14} {:>14}",
            "queue", "off/off", "coalesce", "per-addr", "backoff", "both", "pa+backoff"
        );
        for kind in QueueKind::all() {
            print!("{:<30}", kind.label());
            let grid = [
                (false, false, false),
                (true, false, false),
                (true, true, false),
                (false, false, true),
                (true, false, true),
                (true, true, true),
            ];
            // Interleave the repeats round-robin across the grid rather
            // than running each cell's repeats back to back: slow machine
            // drift (turbo, co-tenant load) then lands on every column
            // equally instead of biasing whichever column hit a slow patch.
            let mut samples = vec![Vec::with_capacity(repeats); grid.len()];
            for _ in 0..repeats {
                for (cell, &(coalesce, per_address, backoff)) in grid.iter().enumerate() {
                    let config = ThroughputConfig {
                        threads,
                        duration: Duration::from_millis(ms),
                        repeats: 1,
                        backend,
                        coalesce,
                        per_address,
                        backoff,
                        flush_penalty: penalty,
                        ..Default::default()
                    };
                    samples[cell].push(measure(kind, &config).mops_mean);
                }
            }
            for cell in &samples {
                let mean = cell.iter().sum::<f64>() / cell.len() as f64;
                let var = if cell.len() > 1 {
                    cell.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (cell.len() - 1) as f64
                } else {
                    0.0
                };
                print!(" {:>7.3} ±{:>5.3}", mean, var.sqrt());
            }
            println!();
        }
        println!();
    }
}
