//! Regenerates Figure 5a (scaled down) under `cargo bench`.
//!
//! For a longer, fully configurable run use:
//! `cargo run -p dss-harness --release --bin fig5a`.

use std::time::Duration;

use dss_harness::adapter::QueueKind;
use dss_harness::throughput::{print_series, ThroughputConfig};

fn main() {
    // `cargo bench` passes --bench; ignore all flags.
    let base =
        ThroughputConfig { duration: Duration::from_millis(100), repeats: 2, ..Default::default() };
    print_series(
        "Figure 5a (bench-scale): detectability and persistence levels (Mops/s)",
        &QueueKind::figure_5a(),
        &[1, 2, 4],
        &base,
    );
}
