//! Experiment E8: what does the simulator's bookkeeping cost?
//!
//! Runs the same single-threaded DSS-detectable enqueue+dequeue pair on
//! three memory substrates:
//!
//! * `pmem_instrumented` — the default [`PmemPool`]: persisted shadow,
//!   dirty bits, crash hook, sharded statistics.
//! * `pmem_raw` — the same simulator created with [`PoolMode::Raw`]:
//!   persistence semantics intact, per-operation instrumentation compiled
//!   to an early-out.
//! * `dram` — [`DramPool`]: plain atomics, flush/fence are no-ops.
//!
//! The gap between the first two is the price of instrumentation; the gap
//! between raw pmem and dram is the price of modelling persistence at all.
//! Results are quoted in `EXPERIMENTS.md` (E8).

use std::hint::black_box;
use std::time::Duration;

use dss_bench::Runner;
use dss_core::DssQueue;
use dss_pmem::{DramPool, FlushGranularity, Memory, PAddr, PmemPool, PoolMode, StatsSnapshot};

/// A [`PmemPool`] forced into [`PoolMode::Raw`] at creation, so the
/// backend-generic constructors build an uninstrumented simulator.
#[derive(Debug)]
struct RawPmem(PmemPool);

impl Memory for RawPmem {
    fn create(words: usize, granularity: FlushGranularity) -> Self {
        RawPmem(PmemPool::with_mode(words, granularity, PoolMode::Raw))
    }

    #[inline]
    fn load(&self, addr: PAddr) -> u64 {
        self.0.load(addr)
    }

    #[inline]
    fn store(&self, addr: PAddr, value: u64) {
        self.0.store(addr, value)
    }

    #[inline]
    fn cas(&self, addr: PAddr, expected: u64, new: u64) -> Result<u64, u64> {
        self.0.cas(addr, expected, new)
    }

    #[inline]
    fn flush(&self, addr: PAddr) {
        self.0.flush(addr)
    }

    #[inline]
    fn fence(&self) {
        self.0.fence()
    }

    fn granularity(&self) -> FlushGranularity {
        Memory::granularity(&self.0)
    }

    fn capacity(&self) -> usize {
        self.0.capacity()
    }

    fn reserve(&self, words: usize) {
        self.0.reserve(words)
    }

    #[inline]
    fn peek(&self, addr: PAddr) -> u64 {
        self.0.peek(addr)
    }

    fn set_flush_penalty(&self, spins: u64) {
        self.0.set_flush_penalty(spins)
    }

    fn flush_penalty(&self) -> u64 {
        self.0.flush_penalty()
    }

    fn stats(&self) -> StatsSnapshot {
        self.0.stats()
    }

    fn reset_stats(&self) {
        self.0.reset_stats()
    }
}

fn pair_bench<M: Memory>(r: &Runner, name: &str) {
    let q: DssQueue<M> = DssQueue::new_in(1, 4096, FlushGranularity::Line);
    let h = q.register_thread().unwrap();
    let mut i = 0u64;
    r.bench(name, || {
        i += 1;
        q.prep_enqueue(h, black_box(i)).expect("node pool exhausted");
        q.exec_enqueue(h);
        q.prep_dequeue(h);
        black_box(q.exec_dequeue(h));
    });
}

fn main() {
    let r = Runner::new("backend_overhead")
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    pair_bench::<PmemPool>(&r, "pmem_instrumented");
    pair_bench::<RawPmem>(&r, "pmem_raw");
    pair_bench::<DramPool>(&r, "dram");
}
