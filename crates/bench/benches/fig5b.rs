//! Regenerates Figure 5b (scaled down) under `cargo bench`.
//!
//! For a longer, fully configurable run use:
//! `cargo run -p dss-harness --release --bin fig5b`.

use std::time::Duration;

use dss_harness::adapter::QueueKind;
use dss_harness::throughput::{print_series, ThroughputConfig};

fn main() {
    let base =
        ThroughputConfig { duration: Duration::from_millis(100), repeats: 2, ..Default::default() };
    print_series(
        "Figure 5b (bench-scale): detectable queue implementations (Mops/s)",
        &QueueKind::figure_5b(),
        &[1, 2, 4],
        &base,
    );
}
