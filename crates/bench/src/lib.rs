//! Benchmark targets for the DSS reproduction, on an in-tree timing
//! runner.
//!
//! `cargo bench --workspace` runs:
//!
//! * `queue_ops` — micro-benchmarks: one enqueue+dequeue pair per
//!   implementation (the per-operation cost behind Figures 5a/5b), with a
//!   `--backend {pmem,dram}` axis.
//! * `pmem_ops` — micro-benchmarks of the simulator primitives
//!   (load/store/CAS/flush at both granularities).
//! * `backend_overhead` — experiment E8's ablation: the same DSS queue
//!   pair on instrumented pmem, uninstrumented (raw) pmem, and dram.
//! * `fig5a`, `fig5b` — benches that regenerate the paper's two figures
//!   as text series (scaled-down defaults; the `dss-harness` binaries
//!   expose the full parameter space).
//!
//! The runner ([`Runner`]) replaces an external benchmarking dependency:
//! it calibrates an iteration count per sample from a target sample
//! duration, collects a fixed number of samples, and reports mean ± sample
//! standard deviation in ns/iter. That is all the bench targets here need,
//! and it keeps the workspace dependency-free.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use std::time::{Duration, Instant};

/// The shared `BENCH_*.json` envelope every machine-readable result file
/// is written through ([`json::Envelope`]).
///
/// The implementation lives in `dss-harness` because the harness's
/// experiment binaries (below this crate in the dependency graph) write
/// `BENCH_checker.json` through the same writer; bench targets use it as
/// `dss_bench::json`.
pub use dss_harness::json;

/// One benchmark's aggregated timing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stat {
    /// Mean nanoseconds per iteration over all samples.
    pub ns_mean: f64,
    /// Sample standard deviation of the per-sample ns/iter values.
    pub ns_stddev: f64,
    /// Number of samples taken.
    pub samples: usize,
    /// Iterations per sample (fixed after calibration).
    pub iters_per_sample: u64,
}

/// A group of benchmarks sharing configuration, printed as aligned
/// `group/name    mean ± stddev ns/iter` lines as they complete.
#[derive(Debug)]
pub struct Runner {
    group: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Runner {
    /// Creates a runner whose benchmark names are prefixed `group/`.
    pub fn new(group: &str) -> Self {
        Runner {
            group: group.to_string(),
            sample_size: 30,
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_millis(600),
        }
    }

    /// Sets the number of samples per benchmark (default 30).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "need at least two samples for a stddev");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration per benchmark (default 200 ms).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the total measurement duration per benchmark, split evenly
    /// across samples (default 600 ms).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Runs one benchmark: warms up, calibrates iterations per sample,
    /// measures, prints a summary line, and returns the numbers.
    pub fn bench<F: FnMut()>(&self, name: &str, mut f: F) -> Stat {
        // Warm-up, also measuring a rough per-iteration cost for
        // calibration. Run at least once.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            f();
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Aim each sample at measurement/sample_size seconds.
        let sample_target = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters = (sample_target / per_iter.max(1e-9)).ceil().max(1.0) as u64;

        let mut samples_ns = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            samples_ns.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let var = samples_ns.iter().map(|s| (s - mean).powi(2)).sum::<f64>()
            / (samples_ns.len() - 1) as f64;
        let stat = Stat {
            ns_mean: mean,
            ns_stddev: var.sqrt(),
            samples: samples_ns.len(),
            iters_per_sample: iters,
        };
        println!(
            "{:<44} {:>12.1} ns/iter (±{:.1}, {} samples × {} iters)",
            format!("{}/{}", self.group, name),
            stat.ns_mean,
            stat.ns_stddev,
            stat.samples,
            stat.iters_per_sample
        );
        stat
    }
}

/// Lenient scan of bench-target CLI arguments for one numeric flag,
/// ignoring everything unknown (`cargo bench` passes harness flags like
/// `--bench` through to custom runners).
///
/// # Panics
///
/// Panics if the flag is present but its value is not a number.
pub fn numeric_flag(name: &str, default: u64) -> u64 {
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == name {
            if let Some(v) = it.next() {
                return v.parse().unwrap_or_else(|_| panic!("{name} needs a number"));
            }
        }
    }
    default
}

/// Lenient scan of bench-target CLI arguments for a bare switch flag.
pub fn switch_flag(name: &str) -> bool {
    std::env::args().skip(1).any(|flag| flag == name)
}

/// Lenient scan of bench-target CLI arguments for repeated
/// `--backend {pmem,dram}` flags, ignoring everything else (`cargo bench`
/// passes harness flags like `--bench` through to custom runners).
///
/// Returns pmem-only when no `--backend` flag is present, mirroring
/// `dss_harness::cli`.
pub fn backends_from_args() -> Vec<dss_harness::adapter::Backend> {
    let mut backends = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--backend" {
            if let Some(v) = it.next() {
                backends.push(dss_harness::adapter::Backend::parse(&v));
            }
        }
    }
    if backends.is_empty() {
        backends.push(dss_harness::adapter::Backend::Pmem);
    }
    backends
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something() {
        let r = Runner::new("test")
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut x = 0u64;
        let stat = r.bench("noop", || x = x.wrapping_add(1));
        assert!(stat.ns_mean > 0.0);
        assert_eq!(stat.samples, 3);
        assert!(stat.iters_per_sample >= 1);
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn single_sample_rejected() {
        let _ = Runner::new("test").sample_size(1);
    }
}
