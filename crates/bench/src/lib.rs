//! Benchmark targets for the DSS reproduction.
//!
//! `cargo bench --workspace` runs:
//!
//! * `queue_ops` — Criterion micro-benchmarks: one enqueue+dequeue pair
//!   per implementation (the per-operation cost behind Figures 5a/5b).
//! * `pmem_ops` — Criterion micro-benchmarks of the simulator primitives
//!   (load/store/CAS/flush at both granularities).
//! * `fig5a`, `fig5b` — custom-harness benches that regenerate the
//!   paper's two figures as text series (scaled-down defaults; the
//!   `dss-harness` binaries expose the full parameter space).
//!
//! This crate intentionally has no library API; it exists to host the
//! bench targets.
