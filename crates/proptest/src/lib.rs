//! Minimal in-tree stand-in for the [proptest](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment for this repository has no network access and no
//! vendored registry, so external crates cannot be fetched. This crate
//! implements the subset of proptest's API that the workspace's tests
//! actually use — seeded random [`Strategy`] values, the [`proptest!`]
//! runner macro, [`prop_oneof!`], `prop::collection::vec`, and the
//! `prop_assert*` macros — with the same surface syntax, so test code is
//! written exactly as it would be against the real crate.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs and the
//!   case seed verbatim; minimisation is manual. Repository convention is to
//!   copy the reported inputs into an explicit regression `#[test]` (see
//!   `tests/proptest_crash.rs`) and note them in the sibling
//!   `*.proptest-regressions` file.
//! * **Deterministic by default.** Case seeds derive from the test's module
//!   path and name, so runs are reproducible in CI. Set `PROPTEST_SEED` to
//!   explore a different portion of the input space, and `PROPTEST_CASES`
//!   to override the case count.

use std::env;
use std::ops::{Range, RangeInclusive};

/// Splitmix64 pseudo-random generator: tiny, fast, and plenty for test-case
/// generation (not cryptographic).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// A source of random values of one type; the stand-in's equivalent of
/// proptest's `Strategy` (sampling only — no value tree, no shrinking).
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (proptest's `prop_map`).
    fn prop_map<T: std::fmt::Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }

    /// Type-erases this strategy so strategies of different concrete types
    /// can share a container (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased [`Strategy`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, T: std::fmt::Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.strategy.sample(rng))
    }
}

/// Uniform choice between same-valued strategies; built by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: std::fmt::Debug> Union<T> {
    /// Creates a union of the given arms; must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union").field("arms", &self.arms.len()).finish()
    }
}

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: any value.
                    rng.next_u64() as $t
                } else {
                    lo + rng.below(span) as $t
                }
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        // The closed upper end is reachable in principle; for test
        // generation the distinction from the half-open range is moot.
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy producing uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.bool()
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with a length drawn from `len` and elements
    /// drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates `Vec`s of `element` values with lengths in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(96);
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: skip the case without counting it as a pass.
    Reject,
    /// `prop_assert*!` failed with this message.
    Fail(String),
}

/// Support machinery used by the [`proptest!`] expansion; not public API.
#[doc(hidden)]
pub mod runner {
    use super::{ProptestConfig, TestCaseError, TestRng};

    /// Derives the deterministic base seed for one property function.
    pub fn base_seed(test_path: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325; // FNV-1a
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(s) = s.parse::<u64>() {
                h ^= s.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
        }
        h
    }

    /// Runs the property closure over `config.cases` generated cases.
    ///
    /// `case` receives a fresh RNG and returns `(inputs, result)` where
    /// `inputs` is a rendering of the generated values for failure reports.
    pub fn run<F>(test_path: &str, config: &ProptestConfig, mut case: F)
    where
        F: FnMut(&mut TestRng) -> (String, std::thread::Result<Result<(), TestCaseError>>),
    {
        let base = base_seed(test_path);
        let mut passed: u32 = 0;
        let mut attempts: u64 = 0;
        let max_attempts = config.cases as u64 * 20 + 100;
        while passed < config.cases {
            let seed = base ^ attempts.wrapping_mul(0x2545_F491_4F6C_DD1D);
            attempts += 1;
            assert!(
                attempts <= max_attempts,
                "{test_path}: too many rejected cases ({attempts} attempts for \
                 {passed}/{} passes)",
                config.cases
            );
            let mut rng = TestRng::new(seed);
            let (inputs, outcome) = case(&mut rng);
            match outcome {
                Ok(Ok(())) => passed += 1,
                Ok(Err(TestCaseError::Reject)) => {}
                Ok(Err(TestCaseError::Fail(msg))) => {
                    panic!(
                        "property failed: {msg}\n— case seed: {seed:#x}\n— inputs:\n{inputs}\
                         (no shrinking in the in-tree proptest stand-in; add a regression \
                         test with these inputs)"
                    );
                }
                Err(payload) => {
                    eprintln!("property panicked — case seed: {seed:#x}\n— inputs:\n{inputs}");
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

/// Declares property tests: each `fn` runs its body over many generated
/// inputs. Mirrors proptest's macro of the same name (sans shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let path = concat!(module_path!(), "::", stringify!($name));
            $crate::runner::run(path, &config, |rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), rng);)+
                let inputs = {
                    let mut s = ::std::string::String::new();
                    $(s.push_str(&format!(
                        "    {} = {:?}\n", stringify!($arg), &$arg
                    ));)+
                    s
                };
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        move || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        },
                    ),
                );
                (inputs, outcome)
            });
        }
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Property-test assertion: fails the current case (with its inputs
/// reported) rather than aborting the whole test binary.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), l, r
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The glob-import surface test files use (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = Strategy::sample(&(3u64..10), &mut rng);
            assert!((3..10).contains(&v));
            let u = Strategy::sample(&(0usize..4), &mut rng);
            assert!(u < 4);
            let f = Strategy::sample(&(0.0f64..=1.0), &mut rng);
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn determinism_per_seed() {
        let sample = |seed| {
            let mut rng = TestRng::new(seed);
            (0..20).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(sample(5), sample(5));
        assert_ne!(sample(5), sample(6));
    }

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop_oneof![Just(0u64), (1u64..5).prop_map(|v| v * 100),];
        let mut rng = TestRng::new(11);
        let mut saw_zero = false;
        let mut saw_mapped = false;
        for _ in 0..200 {
            match strat.sample(&mut rng) {
                0 => saw_zero = true,
                v => {
                    assert!(v % 100 == 0 && (1..5).contains(&(v / 100)));
                    saw_mapped = true;
                }
            }
        }
        assert!(saw_zero && saw_mapped);
    }

    #[test]
    fn vec_lengths_respect_range() {
        let strat = prop::collection::vec(0u64..3, 2..6);
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro pipeline end-to-end: generation, assertion, assume.
        #[test]
        fn macro_roundtrip(a in 0u64..50, flip in super::bool::ANY) {
            prop_assume!(a != 13);
            prop_assert!(a < 50);
            let b = if flip { a } else { a + 1 - 1 };
            prop_assert_eq!(a, b, "identity at {}", a);
        }
    }
}
