//! Smoke test for the multi-process crash driver: spawns the real
//! `crash_matrix` binary (which handles the `--mp-child` victim role) for
//! every crash point of each victim op, SIGKILLs it mid-operation, and
//! attaches the pool file from this process. The full coalesce ×
//! per-address matrix runs in ci.sh; one permissive combo suffices here.

use std::path::Path;

use dss_harness::crashsim::{multi_process_sweep, SweepConfig, VictimOp};

#[test]
fn multi_process_sweep_has_no_violations() {
    let exe = Path::new(env!("CARGO_BIN_EXE_crash_matrix"));
    let config = SweepConfig { coalesce: true, per_address: true, ..Default::default() };
    for op in VictimOp::all() {
        let out = multi_process_sweep(op, &config, exe);
        assert!(out.crash_points > 0, "{op}: no crash points?");
        assert_eq!(out.violations, 0, "{op}: {out:?}");
    }
}
