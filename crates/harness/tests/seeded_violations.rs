//! Seeded-violation corpus: take known-good histories recorded from the
//! *real* DSS queue, inject a defect (mutate a response, swap two returns),
//! and assert the segmented checker rejects the history with a
//! [`Violation`] that names the window actually containing the defect —
//! the diagnostic contract the full-length pipeline offers that sampled
//! checking never could.

use dss_checker::{check_history, CheckOptions, Condition, Event, Violation};
use dss_harness::record::{
    check_map_history, check_plain, check_recorded_full, record_map_execution,
    record_map_partial_recovery_execution, record_phased_execution, record_plain_execution,
    MapHistory, RecordedHistory,
};
use dss_spec::types::{KvOp, KvResp, KvSpec, QueueResp};
use dss_spec::{DetResp, Keyed};
use proptest::prelude::*;

/// A value no worker ever enqueues (worker values are `(tid << 32) | i`
/// with small `tid`/`i`; the prefill uses values descending from
/// `u64::MAX` for only a handful of slots).
const POISON: u64 = 0xDEAD_BEEF_DEAD_0001;

/// Rebuilds a history from events (IDs are event indices, so in-order
/// replay preserves them).
fn replay<O: Clone, R: Clone>(events: Vec<Event<O, R>>) -> dss_checker::History<O, R> {
    let mut h = dss_checker::History::new();
    for e in events {
        match e {
            Event::Invoke { pid, op } => {
                h.invoke(pid, op);
            }
            Event::Return { of, resp } => h.ret(of, resp),
            Event::Crash => h.crash(),
        }
    }
    h
}

/// Indices of `Exec`-return events that observed a dequeued value, paired
/// with the returning operation's ID.
fn value_returns(h: &RecordedHistory) -> Vec<(usize, usize)> {
    h.events()
        .iter()
        .enumerate()
        .filter_map(|(i, e)| match e {
            Event::Return { of, resp: DetResp::Ret(QueueResp::Value(_)) } => Some((i, of.0)),
            _ => None,
        })
        .collect()
}

/// Asserts `violation` is a [`Violation::WindowNoLinearization`] whose op
/// range contains `op_id`.
fn assert_window_names(violation: &Violation, op_id: usize, what: &str) {
    match violation {
        Violation::WindowNoLinearization { first_op, last_op, .. } => {
            assert!(
                *first_op <= op_id && op_id <= *last_op,
                "{what}: reported window covers ops {first_op}..={last_op}, \
                 but the defect is at op {op_id}"
            );
        }
        other => panic!("{what}: expected WindowNoLinearization, got {other}"),
    }
}

#[test]
fn poisoned_dequeue_value_is_rejected_in_its_window() {
    // A known-good 3-thread phased run, long past the monolithic cap.
    let good = record_phased_execution(3, 120, 5, 21);
    assert!(
        check_recorded_full(&good, Condition::Linearizability, &CheckOptions::default()).is_ok(),
        "corpus base history must be violation-free"
    );
    let victims = value_returns(&good);
    assert!(victims.len() >= 3, "need dequeues observing values to mutate");

    // Mutate the first, a middle, and the last value-bearing return; the
    // poison value was never enqueued, so no linearization of the window
    // containing the mutated operation can reproduce it.
    let picks = [0, victims.len() / 2, victims.len() - 1];
    for &p in &picks {
        let (event_idx, op_id) = victims[p];
        let mut events: Vec<_> = good.events().to_vec();
        match &mut events[event_idx] {
            Event::Return { resp: DetResp::Ret(QueueResp::Value(v)), .. } => *v = POISON,
            _ => unreachable!("indexed a value return"),
        }
        let bad = replay(events);
        let err = check_recorded_full(&bad, Condition::Linearizability, &CheckOptions::default())
            .expect_err("poisoned response must be rejected");
        assert_window_names(&err, op_id, &format!("poison at op {op_id}"));
    }
}

#[test]
fn swapped_dequeue_values_are_rejected_no_later_than_the_second_window() {
    let good = record_phased_execution(3, 120, 5, 33);
    let victims = value_returns(&good);
    assert!(victims.len() >= 2, "need two dequeued values to swap");
    let (ei, oi) = victims[0];
    let (ej, oj) = victims[victims.len() - 1];
    let mut events: Vec<_> = good.events().to_vec();
    let (vi, vj) = match (&events[ei], &events[ej]) {
        (
            Event::Return { resp: DetResp::Ret(QueueResp::Value(a)), .. },
            Event::Return { resp: DetResp::Ret(QueueResp::Value(b)), .. },
        ) => (*a, *b),
        _ => unreachable!(),
    };
    assert_ne!(vi, vj, "distinct worker values");
    // Swap the two observed values: FIFO order (or value availability) now
    // breaks somewhere between the two tampered operations.
    match &mut events[ei] {
        Event::Return { resp: DetResp::Ret(QueueResp::Value(v)), .. } => *v = vj,
        _ => unreachable!(),
    }
    match &mut events[ej] {
        Event::Return { resp: DetResp::Ret(QueueResp::Value(v)), .. } => *v = vi,
        _ => unreachable!(),
    }
    let bad = replay(events);
    let err = check_recorded_full(&bad, Condition::Linearizability, &CheckOptions::default())
        .expect_err("swapped responses must be rejected");
    // The defect spans two windows; the checker reports the first window
    // that admits no linearization, which must lie within the tampered
    // span — never before the first swap, never after the second.
    match &err {
        Violation::WindowNoLinearization { first_op, last_op, .. } => {
            assert!(
                *last_op >= oi.min(oj) && *first_op <= oi.max(oj),
                "reported window {first_op}..={last_op} outside tampered span \
                 [{}, {}]",
                oi.min(oj),
                oi.max(oj)
            );
        }
        other => panic!("expected WindowNoLinearization, got {other}"),
    }
}

#[test]
fn poisoned_plain_history_is_rejected_by_the_fast_path_with_named_ops() {
    // Plain-op recording: distinct values, never-empty — the FIFO fast
    // path's home turf.
    let good = record_plain_execution(3, 400, 8, 5);
    assert!(
        check_plain(&good, Condition::Linearizability, &CheckOptions::default()).is_ok(),
        "corpus base history must be violation-free"
    );
    let mut events: Vec<_> = good.events().to_vec();
    let victim = events
        .iter()
        .enumerate()
        .find_map(|(i, e)| match e {
            Event::Return { of, resp: QueueResp::Value(_) } => Some((i, of.0)),
            _ => None,
        })
        .expect("plain run dequeues values");
    match &mut events[victim.0] {
        Event::Return { resp: QueueResp::Value(v), .. } => *v = POISON,
        _ => unreachable!(),
    }
    let bad = replay(events);
    let err = check_plain(&bad, Condition::Linearizability, &CheckOptions::default())
        .expect_err("poisoned plain response must be rejected");
    match &err {
        // The fast path rejects with the concrete offending ops; the
        // fallback segmented search names the window. Either must point at
        // the tampered operation.
        Violation::FifoOrder { ops, .. } => {
            assert!(ops.contains(&victim.1), "FifoOrder ops {ops:?} omit op {}", victim.1)
        }
        Violation::WindowNoLinearization { first_op, last_op, .. } => {
            assert!(*first_op <= victim.1 && victim.1 <= *last_op)
        }
        other => panic!("expected a located violation, got {other}"),
    }
}

#[test]
fn dropped_enqueue_ack_downgrade_is_rejected() {
    // Replace an enqueue's `Ok` with `Empty` (a response the spec can
    // never produce for an enqueue): the window containing it must fail.
    let good = record_phased_execution(3, 120, 5, 44);
    let victim = good
        .events()
        .iter()
        .enumerate()
        .filter_map(|(i, e)| match e {
            Event::Return { of, resp: DetResp::Ret(QueueResp::Ok) } => Some((i, of.0)),
            _ => None,
        })
        .nth(10)
        .expect("phased run acknowledges enqueues");
    let mut events: Vec<_> = good.events().to_vec();
    match &mut events[victim.0] {
        Event::Return { resp, .. } => *resp = DetResp::Ret(QueueResp::Empty),
        _ => unreachable!(),
    }
    let bad = replay(events);
    let err = check_recorded_full(&bad, Condition::Linearizability, &CheckOptions::default())
        .expect_err("ill-typed response must be rejected");
    assert_window_names(&err, victim.1, "enqueue answered Empty");
}

// ---------------------------------------------------------------------------
// Map corpus: the same seeded-defect contract for `Keyed<KvSpec>`
// histories, which the pipeline splits per key — so a violation must name
// the *partition* containing the defect on top of the window.
// ---------------------------------------------------------------------------

/// `(event index, op id, key, observed value)` of every get that found a
/// value.
fn map_get_values(h: &MapHistory) -> Vec<(usize, usize, u64, u64)> {
    h.events()
        .iter()
        .enumerate()
        .filter_map(|(i, e)| match e {
            Event::Return { of, resp: KvResp::Value(v) } => match h.events()[of.0] {
                Event::Invoke { op: (key, KvOp::Get), .. } => Some((i, of.0, key, *v)),
                _ => None,
            },
            _ => None,
        })
        .collect()
}

/// Asserts `violation` is a window violation naming partition `key` and
/// covering `op_id`.
fn assert_partition_names(violation: &Violation, key: u64, op_id: usize, what: &str) {
    match violation {
        Violation::WindowNoLinearization { first_op, last_op, partition, .. } => {
            assert_eq!(
                partition.as_deref(),
                Some(format!("{key}").as_str()),
                "{what}: wrong partition named"
            );
            assert!(
                *first_op <= op_id && op_id <= *last_op,
                "{what}: reported window covers ops {first_op}..={last_op}, \
                 but the defect is at op {op_id}"
            );
        }
        other => panic!("{what}: expected WindowNoLinearization, got {other}"),
    }
}

#[test]
fn poisoned_map_get_is_rejected_in_its_window_and_partition() {
    let good = record_map_execution(3, 80, 17);
    assert!(
        check_map_history(&good, Condition::Linearizability, &CheckOptions::default()).is_ok(),
        "corpus base history must be violation-free"
    );
    let victims = map_get_values(&good);
    assert!(victims.len() >= 3, "need gets observing values to mutate");
    let picks = [0, victims.len() / 2, victims.len() - 1];
    for &p in &picks {
        let (event_idx, op_id, key, _) = victims[p];
        let mut events: Vec<_> = good.events().to_vec();
        match &mut events[event_idx] {
            Event::Return { resp: KvResp::Value(v), .. } => *v = POISON,
            _ => unreachable!("indexed a value return"),
        }
        let bad = replay(events);
        let err = check_map_history(&bad, Condition::Linearizability, &CheckOptions::default())
            .expect_err("poisoned get must be rejected");
        assert_partition_names(&err, key, op_id, &format!("poison on key {key} at op {op_id}"));
    }
}

#[test]
fn swapped_map_values_across_keys_name_a_tampered_partition() {
    let good = record_map_execution(3, 80, 29);
    let victims = map_get_values(&good);
    // Two value-bearing gets on *different* keys with different values:
    // cross-pollinating them corrupts (at least) one of the two
    // partitions, and no other partition is touched.
    let (i, j) = {
        let mut found = None;
        'outer: for (a, va) in victims.iter().enumerate() {
            for (b, vb) in victims.iter().enumerate().skip(a + 1) {
                if va.2 != vb.2 && va.3 != vb.3 {
                    found = Some((a, b));
                    break 'outer;
                }
            }
        }
        found.expect("need gets on two distinct keys")
    };
    let (ei, oi, ki, vi) = victims[i];
    let (ej, oj, kj, vj) = victims[j];
    let mut events: Vec<_> = good.events().to_vec();
    match &mut events[ei] {
        Event::Return { resp: KvResp::Value(v), .. } => *v = vj,
        _ => unreachable!(),
    }
    match &mut events[ej] {
        Event::Return { resp: KvResp::Value(v), .. } => *v = vi,
        _ => unreachable!(),
    }
    let bad = replay(events);
    let err = check_map_history(&bad, Condition::Linearizability, &CheckOptions::default())
        .expect_err("cross-key value swap must be rejected");
    match &err {
        Violation::WindowNoLinearization { first_op, last_op, partition, .. } => {
            let p = partition.as_deref().expect("partitioned check names the partition");
            assert!(
                p == format!("{ki}") || p == format!("{kj}"),
                "named partition {p} is neither tampered key {ki} nor {kj}"
            );
            let tampered_op = if p == format!("{ki}") { oi } else { oj };
            assert!(
                *first_op <= tampered_op && tampered_op <= *last_op,
                "window {first_op}..={last_op} misses the tampered op {tampered_op} \
                 of partition {p}"
            );
        }
        other => panic!("expected WindowNoLinearization, got {other}"),
    }
}

#[test]
fn a_lost_durable_insert_is_rejected_in_its_partition() {
    // Extend a real history with a sequential tail on a fresh key: an
    // acknowledged (durable) put, then a get that claims the key is
    // absent. The insert's effect has been "lost" — no linearization of
    // that partition explains it, and the two-record partition makes the
    // expected window exact.
    const FRESH_KEY: u64 = 0xFEED;
    let good = record_map_execution(2, 40, 41);
    let mut h = replay(good.events().to_vec());
    let put = h.invoke(0, (FRESH_KEY, KvOp::Put(POISON)));
    h.ret(put, KvResp::Ok);
    let get = h.invoke(0, (FRESH_KEY, KvOp::Get));
    h.ret(get, KvResp::Absent);
    let err = check_map_history(&h, Condition::Linearizability, &CheckOptions::default())
        .expect_err("a lost durable insert must be rejected");
    assert_partition_names(&err, FRESH_KEY, get.0, "get after durable put answered Absent");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Differential property: on small recorded map histories — real
    /// crash runs, swept across the coalesce × per-address flush regimes
    /// — the per-key partitioned full-length pipeline and the monolithic
    /// Wing–Gong oracle on the composite `Keyed<KvSpec>` spec must agree;
    /// and both must accept, because the histories come from the real
    /// detectable map.
    #[test]
    fn partitioned_check_agrees_with_the_wgl_oracle_on_map_crash_histories(
        seed in 0u64..10_000,
        coalesce in prop::bool::ANY,
        per_address in prop::bool::ANY,
    ) {
        // 2 threads × 5 ops + the 8-key post-crash audit stays under the
        // oracle's MAX_OPS bitmask cap.
        let h = record_map_partial_recovery_execution(2, 2, 5, seed, coalesce, per_address);
        prop_assert!(h.validate().is_ok());
        let mono = check_history(
            &Keyed::new(KvSpec), &h, Condition::StrictLinearizability,
        );
        let part = check_map_history(
            &h, Condition::StrictLinearizability, &CheckOptions::default(),
        );
        prop_assert!(
            mono.is_ok() == part.is_ok(),
            "checkers disagree (seed {seed}, coalesce {coalesce}, per-address {per_address}): \
             monolithic {mono:?} vs partitioned {part:?}"
        );
        prop_assert!(part.is_ok(), "real map history rejected: {:?}", part.err());
    }

    /// The same agreement on *tampered* histories: poison one observed
    /// value and both checkers must reject.
    #[test]
    fn partitioned_and_wgl_oracle_agree_on_tampered_map_histories(
        seed in 0u64..10_000,
    ) {
        let good = record_map_partial_recovery_execution(2, 2, 5, seed, false, false);
        let victims = map_get_values(&good);
        prop_assume!(!victims.is_empty());
        let (event_idx, _, _, _) = victims[seed as usize % victims.len()];
        let mut events: Vec<_> = good.events().to_vec();
        match &mut events[event_idx] {
            Event::Return { resp: KvResp::Value(v), .. } => *v = POISON,
            _ => unreachable!("indexed a value return"),
        }
        let bad = replay(events);
        let mono = check_history(&Keyed::new(KvSpec), &bad, Condition::StrictLinearizability);
        let part = check_map_history(
            &bad, Condition::StrictLinearizability, &CheckOptions::default(),
        );
        prop_assert!(mono.is_err(), "oracle accepted a poisoned history (seed {seed})");
        prop_assert!(part.is_err(), "pipeline accepted a poisoned history (seed {seed})");
    }
}
