//! Differential checking of *combined* histories: executions recorded
//! through the flat-combining layer, where every response was produced by
//! some combiner applying a batch, are fed to the FIFO fast path
//! ([`check_fifo`]) and to the classic monolithic Wing–Gong search
//! ([`check`]) — the ground-truth oracle for histories small enough to
//! afford it. The two must agree: on acceptance for genuine recordings
//! (combining preserves `queue`'s sequential specification, not just the
//! structure's internal invariants), and on rejection for the same
//! recordings with a tampered response. Full-length recordings beyond the
//! oracle's 63-operation cap then ride the fast path alone.

use dss_checker::{check, check_fifo, records_for, CheckOptions, Condition, Event};
use dss_harness::record::{
    check_plain, check_recorded, check_recorded_full, record_combining_execution,
    record_plain_combining_execution,
};
use dss_spec::types::{QueueResp, QueueSpec};

/// A value no recorded execution ever enqueues (worker values embed small
/// thread/sequence fields, the prefill descends from `u64::MAX`).
const POISON: u64 = 0xDEAD_BEEF_DEAD_0002;

#[test]
fn small_combined_histories_agree_with_the_monolithic_oracle() {
    for seed in 0..8 {
        // 3 workers × 4 pairs + 4 prefill = 28 operations: within the
        // monolithic checker's capacity.
        let h = record_plain_combining_execution(3, 4, 4, seed);
        let records = records_for(&h, Condition::Linearizability)
            .unwrap_or_else(|e| panic!("seed {seed}: recording ill-formed: {e}"));
        assert!(records.len() <= 63, "history outgrew the oracle");

        let oracle = check(&QueueSpec, &records).is_ok();
        assert!(oracle, "seed {seed}: oracle rejected a genuine combined history");
        let fast = check_fifo(&QueueSpec, &records)
            .expect("distinct-value no-empty combined runs are the fast path's home turf");
        assert_eq!(
            oracle,
            fast.is_ok(),
            "seed {seed}: FIFO fast path disagrees with the Wing–Gong oracle"
        );
    }
}

#[test]
fn tampered_combined_histories_are_rejected_by_both_checkers() {
    for seed in 0..4 {
        let good = record_plain_combining_execution(3, 4, 4, seed);
        let mut events: Vec<_> = good.events().to_vec();
        let victim = events
            .iter()
            .position(|e| matches!(e, Event::Return { resp: QueueResp::Value(_), .. }))
            .expect("combined runs dequeue values");
        match &mut events[victim] {
            Event::Return { resp: QueueResp::Value(v), .. } => *v = POISON,
            _ => unreachable!(),
        }
        let mut bad = dss_checker::History::new();
        for e in events {
            match e {
                Event::Invoke { pid, op } => {
                    bad.invoke(pid, op);
                }
                Event::Return { of, resp } => bad.ret(of, resp),
                Event::Crash => bad.crash(),
            }
        }
        let records = records_for(&bad, Condition::Linearizability).unwrap();
        let oracle = check(&QueueSpec, &records).is_ok();
        assert!(!oracle, "seed {seed}: oracle accepted a poisoned dequeue");
        if let Some(fast) = check_fifo(&QueueSpec, &records) {
            assert_eq!(
                oracle,
                fast.is_ok(),
                "seed {seed}: FIFO fast path disagrees with the oracle on tampered input"
            );
        }
    }
}

#[test]
fn full_length_combined_histories_pass_the_fast_path() {
    // Far beyond the monolithic cap: the fast path (with segmented
    // fallback) certifies the whole run, no sampling.
    for seed in 0..3 {
        let h = record_plain_combining_execution(3, 400, 8, seed);
        check_plain(&h, Condition::Linearizability, &CheckOptions::default())
            .unwrap_or_else(|e| panic!("seed {seed}: full-length combined history rejected: {e}"));
    }
}

#[test]
fn detectable_combined_histories_satisfy_the_dss_spec() {
    // The D⟨queue⟩ recording (prep/exec/resolve responses included) on the
    // combining layer, checked small (sampled pipeline) and full-length.
    for seed in 0..4 {
        let h = record_combining_execution(2, 5, seed);
        h.validate().unwrap_or_else(|e| panic!("seed {seed}: ill-formed: {e}"));
        check_recorded(&h, Condition::Linearizability)
            .unwrap_or_else(|e| panic!("seed {seed}: combined D⟨queue⟩ history rejected: {e}"));
    }
    let h = record_combining_execution(3, 40, 9);
    check_recorded_full(&h, Condition::Linearizability, &CheckOptions::default())
        .unwrap_or_else(|e| panic!("full-length combined D⟨queue⟩ history rejected: {e}"));
}
