//! The paper's throughput workload (§4).
//!
//! "In each experiment, the queue is initialized with 16 queue nodes, and
//! each thread executes alternating pairs of enqueue and dequeue
//! operations for 30 seconds. Each point plotted in the graphs is the mean
//! throughput value (millions of operations per second) computed over a
//! sample of ten runs."
//!
//! Durations and repeat counts are parameters here (the defaults in the
//! experiment binaries are scaled down for a 1-vCPU host), but the
//! workload shape is identical.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::time::{Duration, Instant};

use dss_core::DetectableMap;

use crate::adapter::{Backend, QueueKind};

/// Parameters of one throughput measurement.
#[derive(Clone, Debug)]
pub struct ThroughputConfig {
    /// Number of worker threads (each with its own queue thread ID).
    pub threads: usize,
    /// Wall-clock duration of each run.
    pub duration: Duration,
    /// Number of measured runs to average (the paper uses 10).
    pub repeats: usize,
    /// Initial queue length (the paper uses 16).
    pub prefill: u64,
    /// Pre-allocated nodes per thread.
    pub nodes_per_thread: u64,
    /// Artificial flush latency in spin iterations (models the
    /// CLWB+SFENCE cost on Optane; 0 = flushes cost the same as stores).
    pub flush_penalty: u64,
    /// Memory backend the queue runs on (E8's ablation axis).
    pub backend: Backend,
    /// Flush coalescing on the backend (E9's first axis).
    pub coalesce: bool,
    /// Per-address dependency drains at ordering points instead of
    /// whole-set drains (E10's axis; meaningful only under coalescing).
    pub per_address: bool,
    /// Bounded exponential backoff in the queue's retry loops (E9's
    /// second axis).
    pub backoff: bool,
}

impl Default for ThroughputConfig {
    fn default() -> Self {
        ThroughputConfig {
            threads: 1,
            duration: Duration::from_millis(200),
            repeats: 3,
            prefill: 16,
            nodes_per_thread: 4096,
            flush_penalty: 20,
            backend: Backend::Pmem,
            coalesce: false,
            per_address: false,
            backoff: false,
        }
    }
}

/// The result of one measurement: mean and standard deviation of Mops/s
/// over the configured repeats.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Throughput {
    /// Mean millions of operations per second.
    pub mops_mean: f64,
    /// Sample standard deviation of Mops/s.
    pub mops_stddev: f64,
}

/// Runs the paper's alternating enqueue/dequeue workload on `kind`.
///
/// Each repeat builds a fresh queue, pre-fills it, then launches
/// `config.threads` workers; every worker alternates `enqueue(v)` /
/// `dequeue()` pairs until the stop flag flips. Throughput counts both
/// operations of a pair.
pub fn measure(kind: QueueKind, config: &ThroughputConfig) -> Throughput {
    let mut samples = Vec::with_capacity(config.repeats);
    for _ in 0..config.repeats {
        samples.push(run_once(kind, config));
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var = if samples.len() > 1 {
        samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (samples.len() - 1) as f64
    } else {
        0.0
    };
    Throughput { mops_mean: mean, mops_stddev: var.sqrt() }
}

fn run_once(kind: QueueKind, config: &ThroughputConfig) -> f64 {
    let queue = kind.build_on(config.backend, config.threads, config.nodes_per_thread);
    queue.set_flush_penalty(config.flush_penalty);
    queue.set_coalescing(config.coalesce);
    queue.set_per_address_drains(config.per_address);
    queue.set_backoff(config.backoff);
    // Claim every worker's registry slot up front, on the main thread.
    let hs: Vec<_> = (0..config.threads).map(|_| queue.register_thread()).collect();
    for i in 0..config.prefill {
        queue.enqueue(hs[0], i + 1);
    }
    let stop = AtomicBool::new(false);
    let total_ops = AtomicU64::new(0);
    let elapsed = std::sync::Mutex::new(Duration::ZERO);

    std::thread::scope(|scope| {
        let queue = &queue;
        let stop = &stop;
        let total_ops = &total_ops;
        for (tid, &h) in hs.iter().enumerate() {
            scope.spawn(move || {
                let mut ops = 0u64;
                let mut i = 0u64;
                while !stop.load(Relaxed) {
                    i += 1;
                    queue.enqueue(h, (tid as u64) << 32 | i);
                    let _ = queue.dequeue(h);
                    ops += 2;
                }
                total_ops.fetch_add(ops, Relaxed);
            });
        }
        let start = Instant::now();
        std::thread::sleep(config.duration);
        stop.store(true, Relaxed);
        *elapsed.lock().unwrap() = start.elapsed();
    });

    let secs = elapsed.into_inner().unwrap().as_secs_f64();
    total_ops.into_inner() as f64 / secs / 1e6
}

/// Parameters of one E15 read-mix measurement: each worker draws from a
/// per-thread PRNG and either peeks the front of the queue (probability
/// `read_fraction`) or runs one enqueue/dequeue pair (keeping the queue
/// length stationary around the prefill).
#[derive(Clone, Debug)]
pub struct ReadMixConfig {
    /// Number of worker threads.
    pub threads: usize,
    /// Wall-clock duration of each run.
    pub duration: Duration,
    /// Number of measured runs to average.
    pub repeats: usize,
    /// Initial queue length (reads of an empty queue measure nothing).
    pub prefill: u64,
    /// Pre-allocated nodes per thread.
    pub nodes_per_thread: u64,
    /// Artificial flush latency in spin iterations.
    pub flush_penalty: u64,
    /// Probability in `[0, 1]` that an iteration is a read (peek).
    pub read_fraction: f64,
    /// Volatile replica count for [`QueueKind::DssReplicated`]; ignored
    /// by every other kind.
    pub replicas: usize,
}

impl Default for ReadMixConfig {
    fn default() -> Self {
        ReadMixConfig {
            threads: 1,
            duration: Duration::from_millis(200),
            repeats: 3,
            prefill: 16,
            nodes_per_thread: 4096,
            flush_penalty: 20,
            read_fraction: 0.9,
            replicas: 2,
        }
    }
}

/// Runs the E15 read-mix workload on `kind` (pmem backend): a read
/// iteration is one `peek` (1 op), a write iteration is one
/// enqueue/dequeue pair (2 ops).
///
/// Only the kinds in [`QueueKind::replication`] support the read probe;
/// see [`crate::adapter::QueueUnderTest::peek`].
pub fn measure_read_mix(kind: QueueKind, config: &ReadMixConfig) -> Throughput {
    let mut samples = Vec::with_capacity(config.repeats);
    for _ in 0..config.repeats {
        samples.push(run_once_read_mix(kind, config));
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var = if samples.len() > 1 {
        samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (samples.len() - 1) as f64
    } else {
        0.0
    };
    Throughput { mops_mean: mean, mops_stddev: var.sqrt() }
}

fn run_once_read_mix(kind: QueueKind, config: &ReadMixConfig) -> f64 {
    assert!((0.0..=1.0).contains(&config.read_fraction), "read_fraction must be a probability");
    let queue = kind.build_with_replicas(config.threads, config.nodes_per_thread, config.replicas);
    queue.set_flush_penalty(config.flush_penalty);
    let hs: Vec<_> = (0..config.threads).map(|_| queue.register_thread()).collect();
    for i in 0..config.prefill {
        queue.enqueue(hs[0], i + 1);
    }
    // Draw from a 32-bit threshold so the comparison is one integer op.
    let read_threshold = (config.read_fraction * (1u64 << 32) as f64) as u64;
    let stop = AtomicBool::new(false);
    let total_ops = AtomicU64::new(0);
    let elapsed = std::sync::Mutex::new(Duration::ZERO);

    std::thread::scope(|scope| {
        let queue = &queue;
        let stop = &stop;
        let total_ops = &total_ops;
        for (tid, &h) in hs.iter().enumerate() {
            scope.spawn(move || {
                // SplitMix64, seeded per thread: deterministic mixes.
                let mut state = 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(tid as u64 + 1);
                let mut next = move || {
                    state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                    z ^ (z >> 31)
                };
                let mut ops = 0u64;
                let mut i = 0u64;
                while !stop.load(Relaxed) {
                    if next() & 0xffff_ffff < read_threshold {
                        std::hint::black_box(queue.peek(h));
                        ops += 1;
                    } else {
                        i += 1;
                        queue.enqueue(h, (tid as u64) << 32 | i);
                        let _ = queue.dequeue(h);
                        ops += 2;
                    }
                }
                total_ops.fetch_add(ops, Relaxed);
            });
        }
        let start = Instant::now();
        std::thread::sleep(config.duration);
        stop.store(true, Relaxed);
        *elapsed.lock().unwrap() = start.elapsed();
    });

    let secs = elapsed.into_inner().unwrap().as_secs_f64();
    total_ops.into_inner() as f64 / secs / 1e6
}

/// Parameters of one E16 YCSB-style key-value measurement on the
/// detectable hash map: each worker draws a key from a Zipfian (or
/// uniform) distribution over `keyspace` pre-loaded keys and either reads
/// it (probability `read_fraction`, a plain get) or updates it (a
/// detectable prep/exec put pair — one logical KV operation).
///
/// The shape follows YCSB's core workloads: workload B is
/// `read_fraction = 0.95`, workload A is `0.5`, both over the standard
/// `zipf_theta = 0.99` request skew; `zipf_theta = 0.0` degenerates to
/// uniform.
#[derive(Clone, Debug)]
pub struct KvMixConfig {
    /// Number of worker threads.
    pub threads: usize,
    /// Wall-clock duration of each run.
    pub duration: Duration,
    /// Number of measured runs to average.
    pub repeats: usize,
    /// Number of keys pre-loaded before the timed phase.
    pub keyspace: u64,
    /// Initial bucket count of the map (a power of two).
    pub buckets: u64,
    /// Pre-allocated value nodes per thread (updates recycle superseded
    /// nodes through the epoch reclaimer, so this bounds in-flight
    /// garbage, not total updates).
    pub nodes_per_thread: u64,
    /// Artificial flush latency in spin iterations.
    pub flush_penalty: u64,
    /// Probability in `[0, 1]` that an iteration is a read.
    pub read_fraction: f64,
    /// Zipfian skew parameter θ of the key-choice distribution
    /// (YCSB's default is 0.99; 0 = uniform).
    pub zipf_theta: f64,
    /// Flush coalescing on the pool (E9's axis).
    pub coalesce: bool,
    /// Per-address dependency drains (E10's axis).
    pub per_address: bool,
}

impl Default for KvMixConfig {
    fn default() -> Self {
        KvMixConfig {
            threads: 1,
            duration: Duration::from_millis(200),
            repeats: 3,
            keyspace: 1024,
            buckets: 256,
            nodes_per_thread: 4096,
            flush_penalty: 20,
            read_fraction: 0.95,
            zipf_theta: 0.99,
            coalesce: false,
            per_address: false,
        }
    }
}

/// The precomputed CDF of a Zipfian distribution over ranks
/// `0..keyspace`: weight of rank `r` is `1 / (r + 1)^theta`, sampled by
/// binary search on one uniform draw. Precomputing the table keeps the
/// hot loop at one multiply and a `partition_point` — no `pow` per op.
struct ZipfCdf(Vec<f64>);

impl ZipfCdf {
    fn new(keyspace: u64, theta: f64) -> ZipfCdf {
        assert!(keyspace > 0, "empty keyspace");
        assert!(theta >= 0.0, "negative Zipf skew");
        let mut cdf = Vec::with_capacity(keyspace as usize);
        let mut acc = 0.0;
        for rank in 0..keyspace {
            acc += 1.0 / ((rank + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for p in &mut cdf {
            *p /= total;
        }
        ZipfCdf(cdf)
    }

    /// Maps one uniform draw in `[0, 1)` to a rank.
    fn sample(&self, u: f64) -> u64 {
        self.0.partition_point(|&p| p <= u) as u64
    }
}

/// Runs the E16 YCSB-style read/update mix on a [`DetectableMap`]
/// (pmem backend): pre-loads `keyspace` keys, then times Zipf-skewed
/// plain gets and detectable puts. Every iteration is one operation.
pub fn measure_kv_mix(config: &KvMixConfig) -> Throughput {
    let mut samples = Vec::with_capacity(config.repeats);
    for _ in 0..config.repeats {
        samples.push(run_once_kv_mix(config));
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var = if samples.len() > 1 {
        samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (samples.len() - 1) as f64
    } else {
        0.0
    };
    Throughput { mops_mean: mean, mops_stddev: var.sqrt() }
}

fn run_once_kv_mix(config: &KvMixConfig) -> f64 {
    assert!((0.0..=1.0).contains(&config.read_fraction), "read_fraction must be a probability");
    let m: DetectableMap = DetectableMap::new_in(
        config.threads,
        config.nodes_per_thread,
        config.buckets,
        dss_pmem::FlushGranularity::Line,
    );
    m.pool().set_flush_penalty(config.flush_penalty);
    m.pool().set_coalescing(config.coalesce);
    m.pool().set_per_address_drains(config.per_address);
    let hs: Vec<_> = (0..config.threads).map(|_| m.register_thread().unwrap()).collect();
    // Load phase (untimed): bind every key so reads always hit. Keys are
    // hashed into buckets, so sequential loading is not a best case.
    for key in 0..config.keyspace {
        m.put(hs[0], key, key + 1);
    }
    let zipf = ZipfCdf::new(config.keyspace, config.zipf_theta);
    let read_threshold = (config.read_fraction * (1u64 << 32) as f64) as u64;
    let stop = AtomicBool::new(false);
    let total_ops = AtomicU64::new(0);
    let elapsed = std::sync::Mutex::new(Duration::ZERO);

    std::thread::scope(|scope| {
        let m = &m;
        let zipf = &zipf;
        let stop = &stop;
        let total_ops = &total_ops;
        for (tid, &h) in hs.iter().enumerate() {
            scope.spawn(move || {
                // SplitMix64, seeded per thread: deterministic mixes.
                let mut state = 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(tid as u64 + 1);
                let mut next = move || {
                    state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                    z ^ (z >> 31)
                };
                let mut ops = 0u64;
                let mut seq = 0u64;
                while !stop.load(Relaxed) {
                    let r = next();
                    let key = zipf.sample((r >> 32) as f64 / (1u64 << 32) as f64);
                    if r & 0xffff_ffff < read_threshold {
                        std::hint::black_box(m.get(h, key));
                    } else {
                        seq += 1;
                        m.prep_put(h, key, (tid as u64) << 32 | seq, seq);
                        std::hint::black_box(m.exec_put(h));
                    }
                    ops += 1;
                }
                total_ops.fetch_add(ops, Relaxed);
            });
        }
        let start = Instant::now();
        std::thread::sleep(config.duration);
        stop.store(true, Relaxed);
        *elapsed.lock().unwrap() = start.elapsed();
    });

    let secs = elapsed.into_inner().unwrap().as_secs_f64();
    total_ops.into_inner() as f64 / secs / 1e6
}

/// Prints one figure series (threads on the x-axis, Mops/s per queue) as
/// an aligned text table, in the paper's layout.
pub fn print_series(
    title: &str,
    kinds: &[QueueKind],
    thread_counts: &[usize],
    base: &ThroughputConfig,
) {
    println!("# {title}");
    println!(
        "# duration={:?} repeats={} prefill={} flush_penalty={} backend={} coalesce={} \
         per_address={} backoff={}",
        base.duration,
        base.repeats,
        base.prefill,
        base.flush_penalty,
        base.backend.label(),
        base.coalesce,
        base.per_address,
        base.backoff
    );
    print!("{:>8}", "threads");
    for kind in kinds {
        print!("  {:>28}", kind.label());
    }
    println!();
    for &threads in thread_counts {
        print!("{threads:>8}");
        for kind in kinds {
            let config = ThroughputConfig { threads, ..base.clone() };
            let t = measure(*kind, &config);
            print!("  {:>20.3} ±{:>5.3}", t.mops_mean, t.mops_stddev);
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ThroughputConfig {
        ThroughputConfig {
            threads: 2,
            duration: Duration::from_millis(30),
            repeats: 2,
            nodes_per_thread: 512,
            flush_penalty: 0,
            ..Default::default()
        }
    }

    #[test]
    fn every_kind_measures_nonzero_throughput() {
        for kind in QueueKind::all() {
            let t = measure(kind, &quick());
            assert!(t.mops_mean > 0.0, "{}: no progress", kind.label());
        }
    }

    #[test]
    fn contention_list_adds_leased_layers_and_they_measure_on_both_backends() {
        // `all()` deliberately excludes the leased execution layers (it
        // feeds the historical tables); the contention list is where they
        // live.
        assert_eq!(QueueKind::contention().len(), QueueKind::all().len() + 2);
        assert!(QueueKind::contention().contains(&QueueKind::DssCombining));
        assert!(QueueKind::contention().contains(&QueueKind::DssReplicated));
        for kind in [QueueKind::DssCombining, QueueKind::DssReplicated] {
            for backend in [Backend::Pmem, Backend::Dram] {
                let t = measure(kind, &ThroughputConfig { backend, ..quick() });
                assert!(t.mops_mean > 0.0, "{} on {}: no progress", kind.label(), backend.label());
            }
        }
    }

    #[test]
    fn coalesce_and_backoff_axes_still_make_progress() {
        let config = ThroughputConfig { coalesce: true, backoff: true, ..quick() };
        for kind in QueueKind::all() {
            let t = measure(kind, &config);
            assert!(t.mops_mean > 0.0, "{}: no progress", kind.label());
        }
    }

    #[test]
    fn per_address_drain_axis_still_makes_progress() {
        let config = ThroughputConfig { coalesce: true, per_address: true, ..quick() };
        for kind in QueueKind::all() {
            let t = measure(kind, &config);
            assert!(t.mops_mean > 0.0, "{}: no progress", kind.label());
        }
    }

    #[test]
    fn read_mix_measures_both_replication_kinds_at_every_fraction() {
        for kind in QueueKind::replication() {
            for read_fraction in [0.0, 0.5, 0.99, 1.0] {
                let config = ReadMixConfig {
                    threads: 2,
                    duration: Duration::from_millis(20),
                    repeats: 1,
                    nodes_per_thread: 512,
                    flush_penalty: 0,
                    read_fraction,
                    replicas: 2,
                    ..Default::default()
                };
                let t = measure_read_mix(kind, &config);
                assert!(
                    t.mops_mean > 0.0,
                    "{} at read fraction {read_fraction}: no progress",
                    kind.label()
                );
            }
        }
    }

    #[test]
    fn zipf_cdf_is_skewed_normalized_and_uniform_at_zero_theta() {
        let z = ZipfCdf::new(100, 0.99);
        assert_eq!(z.0.len(), 100);
        assert!((z.0[99] - 1.0).abs() < 1e-12, "CDF ends at 1");
        assert!(z.0[0] > 0.1, "rank 0 dominates under YCSB skew");
        assert_eq!(z.sample(0.0), 0);
        assert_eq!(z.sample(0.999_999_9), 99);
        let u = ZipfCdf::new(4, 0.0);
        for (i, p) in u.0.iter().enumerate() {
            assert!((p - (i + 1) as f64 / 4.0).abs() < 1e-12, "theta 0 is uniform");
        }
    }

    #[test]
    fn kv_mix_measures_every_workload_shape() {
        for (read_fraction, zipf_theta) in [(0.95, 0.99), (0.5, 0.99), (1.0, 0.0), (0.0, 0.0)] {
            let config = KvMixConfig {
                threads: 2,
                duration: Duration::from_millis(20),
                repeats: 1,
                keyspace: 64,
                buckets: 16,
                nodes_per_thread: 512,
                flush_penalty: 0,
                read_fraction,
                zipf_theta,
                ..Default::default()
            };
            let t = measure_kv_mix(&config);
            assert!(t.mops_mean > 0.0, "kv mix r={read_fraction} theta={zipf_theta}: no progress");
        }
    }

    #[test]
    fn flush_penalty_slows_persistent_queues() {
        let fast = measure(QueueKind::DssDetectable, &quick());
        let slow =
            measure(QueueKind::DssDetectable, &ThroughputConfig { flush_penalty: 3000, ..quick() });
        assert!(
            slow.mops_mean < fast.mops_mean,
            "a costly flush must reduce throughput ({} vs {})",
            slow.mops_mean,
            fast.mops_mean
        );
    }
}
