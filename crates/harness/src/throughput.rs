//! The paper's throughput workload (§4).
//!
//! "In each experiment, the queue is initialized with 16 queue nodes, and
//! each thread executes alternating pairs of enqueue and dequeue
//! operations for 30 seconds. Each point plotted in the graphs is the mean
//! throughput value (millions of operations per second) computed over a
//! sample of ten runs."
//!
//! Durations and repeat counts are parameters here (the defaults in the
//! experiment binaries are scaled down for a 1-vCPU host), but the
//! workload shape is identical.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::time::{Duration, Instant};

use crate::adapter::{Backend, QueueKind};

/// Parameters of one throughput measurement.
#[derive(Clone, Debug)]
pub struct ThroughputConfig {
    /// Number of worker threads (each with its own queue thread ID).
    pub threads: usize,
    /// Wall-clock duration of each run.
    pub duration: Duration,
    /// Number of measured runs to average (the paper uses 10).
    pub repeats: usize,
    /// Initial queue length (the paper uses 16).
    pub prefill: u64,
    /// Pre-allocated nodes per thread.
    pub nodes_per_thread: u64,
    /// Artificial flush latency in spin iterations (models the
    /// CLWB+SFENCE cost on Optane; 0 = flushes cost the same as stores).
    pub flush_penalty: u64,
    /// Memory backend the queue runs on (E8's ablation axis).
    pub backend: Backend,
    /// Flush coalescing on the backend (E9's first axis).
    pub coalesce: bool,
    /// Per-address dependency drains at ordering points instead of
    /// whole-set drains (E10's axis; meaningful only under coalescing).
    pub per_address: bool,
    /// Bounded exponential backoff in the queue's retry loops (E9's
    /// second axis).
    pub backoff: bool,
}

impl Default for ThroughputConfig {
    fn default() -> Self {
        ThroughputConfig {
            threads: 1,
            duration: Duration::from_millis(200),
            repeats: 3,
            prefill: 16,
            nodes_per_thread: 4096,
            flush_penalty: 20,
            backend: Backend::Pmem,
            coalesce: false,
            per_address: false,
            backoff: false,
        }
    }
}

/// The result of one measurement: mean and standard deviation of Mops/s
/// over the configured repeats.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Throughput {
    /// Mean millions of operations per second.
    pub mops_mean: f64,
    /// Sample standard deviation of Mops/s.
    pub mops_stddev: f64,
}

/// Runs the paper's alternating enqueue/dequeue workload on `kind`.
///
/// Each repeat builds a fresh queue, pre-fills it, then launches
/// `config.threads` workers; every worker alternates `enqueue(v)` /
/// `dequeue()` pairs until the stop flag flips. Throughput counts both
/// operations of a pair.
pub fn measure(kind: QueueKind, config: &ThroughputConfig) -> Throughput {
    let mut samples = Vec::with_capacity(config.repeats);
    for _ in 0..config.repeats {
        samples.push(run_once(kind, config));
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var = if samples.len() > 1 {
        samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (samples.len() - 1) as f64
    } else {
        0.0
    };
    Throughput { mops_mean: mean, mops_stddev: var.sqrt() }
}

fn run_once(kind: QueueKind, config: &ThroughputConfig) -> f64 {
    let queue = kind.build_on(config.backend, config.threads, config.nodes_per_thread);
    queue.set_flush_penalty(config.flush_penalty);
    queue.set_coalescing(config.coalesce);
    queue.set_per_address_drains(config.per_address);
    queue.set_backoff(config.backoff);
    // Claim every worker's registry slot up front, on the main thread.
    let hs: Vec<_> = (0..config.threads).map(|_| queue.register_thread()).collect();
    for i in 0..config.prefill {
        queue.enqueue(hs[0], i + 1);
    }
    let stop = AtomicBool::new(false);
    let total_ops = AtomicU64::new(0);
    let elapsed = std::sync::Mutex::new(Duration::ZERO);

    std::thread::scope(|scope| {
        let queue = &queue;
        let stop = &stop;
        let total_ops = &total_ops;
        for (tid, &h) in hs.iter().enumerate() {
            scope.spawn(move || {
                let mut ops = 0u64;
                let mut i = 0u64;
                while !stop.load(Relaxed) {
                    i += 1;
                    queue.enqueue(h, (tid as u64) << 32 | i);
                    let _ = queue.dequeue(h);
                    ops += 2;
                }
                total_ops.fetch_add(ops, Relaxed);
            });
        }
        let start = Instant::now();
        std::thread::sleep(config.duration);
        stop.store(true, Relaxed);
        *elapsed.lock().unwrap() = start.elapsed();
    });

    let secs = elapsed.into_inner().unwrap().as_secs_f64();
    total_ops.into_inner() as f64 / secs / 1e6
}

/// Parameters of one E15 read-mix measurement: each worker draws from a
/// per-thread PRNG and either peeks the front of the queue (probability
/// `read_fraction`) or runs one enqueue/dequeue pair (keeping the queue
/// length stationary around the prefill).
#[derive(Clone, Debug)]
pub struct ReadMixConfig {
    /// Number of worker threads.
    pub threads: usize,
    /// Wall-clock duration of each run.
    pub duration: Duration,
    /// Number of measured runs to average.
    pub repeats: usize,
    /// Initial queue length (reads of an empty queue measure nothing).
    pub prefill: u64,
    /// Pre-allocated nodes per thread.
    pub nodes_per_thread: u64,
    /// Artificial flush latency in spin iterations.
    pub flush_penalty: u64,
    /// Probability in `[0, 1]` that an iteration is a read (peek).
    pub read_fraction: f64,
    /// Volatile replica count for [`QueueKind::DssReplicated`]; ignored
    /// by every other kind.
    pub replicas: usize,
}

impl Default for ReadMixConfig {
    fn default() -> Self {
        ReadMixConfig {
            threads: 1,
            duration: Duration::from_millis(200),
            repeats: 3,
            prefill: 16,
            nodes_per_thread: 4096,
            flush_penalty: 20,
            read_fraction: 0.9,
            replicas: 2,
        }
    }
}

/// Runs the E15 read-mix workload on `kind` (pmem backend): a read
/// iteration is one `peek` (1 op), a write iteration is one
/// enqueue/dequeue pair (2 ops).
///
/// Only the kinds in [`QueueKind::replication`] support the read probe;
/// see [`crate::adapter::QueueUnderTest::peek`].
pub fn measure_read_mix(kind: QueueKind, config: &ReadMixConfig) -> Throughput {
    let mut samples = Vec::with_capacity(config.repeats);
    for _ in 0..config.repeats {
        samples.push(run_once_read_mix(kind, config));
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var = if samples.len() > 1 {
        samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (samples.len() - 1) as f64
    } else {
        0.0
    };
    Throughput { mops_mean: mean, mops_stddev: var.sqrt() }
}

fn run_once_read_mix(kind: QueueKind, config: &ReadMixConfig) -> f64 {
    assert!((0.0..=1.0).contains(&config.read_fraction), "read_fraction must be a probability");
    let queue = kind.build_with_replicas(config.threads, config.nodes_per_thread, config.replicas);
    queue.set_flush_penalty(config.flush_penalty);
    let hs: Vec<_> = (0..config.threads).map(|_| queue.register_thread()).collect();
    for i in 0..config.prefill {
        queue.enqueue(hs[0], i + 1);
    }
    // Draw from a 32-bit threshold so the comparison is one integer op.
    let read_threshold = (config.read_fraction * (1u64 << 32) as f64) as u64;
    let stop = AtomicBool::new(false);
    let total_ops = AtomicU64::new(0);
    let elapsed = std::sync::Mutex::new(Duration::ZERO);

    std::thread::scope(|scope| {
        let queue = &queue;
        let stop = &stop;
        let total_ops = &total_ops;
        for (tid, &h) in hs.iter().enumerate() {
            scope.spawn(move || {
                // SplitMix64, seeded per thread: deterministic mixes.
                let mut state = 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(tid as u64 + 1);
                let mut next = move || {
                    state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                    z ^ (z >> 31)
                };
                let mut ops = 0u64;
                let mut i = 0u64;
                while !stop.load(Relaxed) {
                    if next() & 0xffff_ffff < read_threshold {
                        std::hint::black_box(queue.peek(h));
                        ops += 1;
                    } else {
                        i += 1;
                        queue.enqueue(h, (tid as u64) << 32 | i);
                        let _ = queue.dequeue(h);
                        ops += 2;
                    }
                }
                total_ops.fetch_add(ops, Relaxed);
            });
        }
        let start = Instant::now();
        std::thread::sleep(config.duration);
        stop.store(true, Relaxed);
        *elapsed.lock().unwrap() = start.elapsed();
    });

    let secs = elapsed.into_inner().unwrap().as_secs_f64();
    total_ops.into_inner() as f64 / secs / 1e6
}

/// Prints one figure series (threads on the x-axis, Mops/s per queue) as
/// an aligned text table, in the paper's layout.
pub fn print_series(
    title: &str,
    kinds: &[QueueKind],
    thread_counts: &[usize],
    base: &ThroughputConfig,
) {
    println!("# {title}");
    println!(
        "# duration={:?} repeats={} prefill={} flush_penalty={} backend={} coalesce={} \
         per_address={} backoff={}",
        base.duration,
        base.repeats,
        base.prefill,
        base.flush_penalty,
        base.backend.label(),
        base.coalesce,
        base.per_address,
        base.backoff
    );
    print!("{:>8}", "threads");
    for kind in kinds {
        print!("  {:>28}", kind.label());
    }
    println!();
    for &threads in thread_counts {
        print!("{threads:>8}");
        for kind in kinds {
            let config = ThroughputConfig { threads, ..base.clone() };
            let t = measure(*kind, &config);
            print!("  {:>20.3} ±{:>5.3}", t.mops_mean, t.mops_stddev);
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ThroughputConfig {
        ThroughputConfig {
            threads: 2,
            duration: Duration::from_millis(30),
            repeats: 2,
            nodes_per_thread: 512,
            flush_penalty: 0,
            ..Default::default()
        }
    }

    #[test]
    fn every_kind_measures_nonzero_throughput() {
        for kind in QueueKind::all() {
            let t = measure(kind, &quick());
            assert!(t.mops_mean > 0.0, "{}: no progress", kind.label());
        }
    }

    #[test]
    fn contention_list_adds_leased_layers_and_they_measure_on_both_backends() {
        // `all()` deliberately excludes the leased execution layers (it
        // feeds the historical tables); the contention list is where they
        // live.
        assert_eq!(QueueKind::contention().len(), QueueKind::all().len() + 2);
        assert!(QueueKind::contention().contains(&QueueKind::DssCombining));
        assert!(QueueKind::contention().contains(&QueueKind::DssReplicated));
        for kind in [QueueKind::DssCombining, QueueKind::DssReplicated] {
            for backend in [Backend::Pmem, Backend::Dram] {
                let t = measure(kind, &ThroughputConfig { backend, ..quick() });
                assert!(t.mops_mean > 0.0, "{} on {}: no progress", kind.label(), backend.label());
            }
        }
    }

    #[test]
    fn coalesce_and_backoff_axes_still_make_progress() {
        let config = ThroughputConfig { coalesce: true, backoff: true, ..quick() };
        for kind in QueueKind::all() {
            let t = measure(kind, &config);
            assert!(t.mops_mean > 0.0, "{}: no progress", kind.label());
        }
    }

    #[test]
    fn per_address_drain_axis_still_makes_progress() {
        let config = ThroughputConfig { coalesce: true, per_address: true, ..quick() };
        for kind in QueueKind::all() {
            let t = measure(kind, &config);
            assert!(t.mops_mean > 0.0, "{}: no progress", kind.label());
        }
    }

    #[test]
    fn read_mix_measures_both_replication_kinds_at_every_fraction() {
        for kind in QueueKind::replication() {
            for read_fraction in [0.0, 0.5, 0.99, 1.0] {
                let config = ReadMixConfig {
                    threads: 2,
                    duration: Duration::from_millis(20),
                    repeats: 1,
                    nodes_per_thread: 512,
                    flush_penalty: 0,
                    read_fraction,
                    replicas: 2,
                    ..Default::default()
                };
                let t = measure_read_mix(kind, &config);
                assert!(
                    t.mops_mean > 0.0,
                    "{} at read fraction {read_fraction}: no progress",
                    kind.label()
                );
            }
        }
    }

    #[test]
    fn flush_penalty_slows_persistent_queues() {
        let fast = measure(QueueKind::DssDetectable, &quick());
        let slow =
            measure(QueueKind::DssDetectable, &ThroughputConfig { flush_penalty: 3000, ..quick() });
        assert!(
            slow.mops_mean < fast.mops_mean,
            "a costly flush must reduce throughput ({} vs {})",
            slow.mops_mean,
            fast.mops_mean
        );
    }
}
