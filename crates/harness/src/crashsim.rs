//! Crash-point sweeps: experiment E4 (and E7's granularity/adversary
//! ablation).
//!
//! For every pmem-operation index `k` of a detectable operation, a fresh
//! DSS queue runs the operation with a crash armed at `k`, the pool
//! crashes under a configurable writeback adversary, recovery runs
//! (centralized Figure 6 or independent §3.3), and `resolve`'s answer is
//! validated against what `D⟨queue⟩` permits given the persisted queue
//! state — the executable version of the paper's Figure 2.
//!
//! Every driver here is generic over the queue's *execution layer*: the
//! CAS-racing [`DssQueue`] and the flat-combining [`CombiningQueue`]
//! (`SweepConfig::combining` / the `*_combining` run variants) are swept
//! identically, so combiner death mid-batch and waiters killed while
//! parked go through the same Figure-2 validation as every other crash.
//!
//! [`partial_recovery_crash_run`] additionally exercises the §3.3 story
//! end to end: after a multi-threaded crash only a *subset* of threads
//! restarts; each survivor re-adopts its own registry slot and repairs its
//! own detectability word, and one adopter reclaims every remaining
//! orphaned slot (inheriting its EBR state) and resolves its pending op.

//!
//! [`multi_process_sweep`] is the same Figure-2 validation with a *real*
//! process boundary: a child process creates a **file-backed** pool, runs
//! the victim, and is SIGKILLed mid-operation; the parent then rebuilds
//! the queue from the pool file alone with [`DssQueue::attach`] — no
//! in-process state survives, by construction — and runs the Figure-6
//! adopt-then-resolve recovery.

use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::Arc;

use dss_core::{
    CombiningQueue, DetectableMap, DssQueue, QueueFull, ReplicatedQueue, Resolved, ResolvedMap,
    ResolvedOp,
};
use dss_pmem::{
    CrashSignal, FlushGranularity, PmemPool, SlotError, ThreadHandle, WritebackAdversary,
};
use dss_spec::types::{KvOp, KvResp, QueueResp};

/// Which operation the sweep interrupts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VictimOp {
    /// `prep-enqueue(42)` + `exec-enqueue` on an empty queue.
    Enqueue,
    /// `prep-dequeue` + `exec-dequeue` on a queue holding one value.
    Dequeue,
    /// `prep-dequeue` + `exec-dequeue` on an empty queue.
    EmptyDequeue,
}

impl VictimOp {
    /// All sweep targets.
    pub fn all() -> [VictimOp; 3] {
        [VictimOp::Enqueue, VictimOp::Dequeue, VictimOp::EmptyDequeue]
    }
}

impl VictimOp {
    /// Inverse of [`fmt::Display`] (the multi-process driver passes the
    /// victim op to the child through argv).
    pub fn parse(s: &str) -> VictimOp {
        match s {
            "enqueue" => VictimOp::Enqueue,
            "dequeue" => VictimOp::Dequeue,
            "empty-dequeue" => VictimOp::EmptyDequeue,
            other => panic!("unknown victim op {other:?}"),
        }
    }
}

impl fmt::Display for VictimOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VictimOp::Enqueue => "enqueue",
            VictimOp::Dequeue => "dequeue",
            VictimOp::EmptyDequeue => "empty-dequeue",
        };
        f.write_str(s)
    }
}

/// Outcome distribution of one sweep.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct SweepOutcome {
    /// Crash points swept (the operation's total pmem-op count).
    pub crash_points: u64,
    /// `resolve` returned `(⊥, ⊥)` — the prep never persisted
    /// (Figure 2d).
    pub not_prepared: u64,
    /// `resolve` returned `(op, ⊥)` — prepared, no effect (Figure 2c, or
    /// the left outcome of 2b).
    pub no_effect: u64,
    /// `resolve` returned `(op, r)` — prepared and took effect
    /// (Figure 2a, or the right outcome of 2b).
    pub effect: u64,
    /// Outcomes inconsistent with the persisted queue state (must be 0;
    /// anything else is an algorithm bug).
    pub violations: u64,
}

/// Configuration of a sweep.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Spontaneous-writeback adversary applied at the crash.
    pub adversary: WritebackAdversary,
    /// Flush granularity of the pool (E7 ablation).
    pub granularity: FlushGranularity,
    /// Use the independent per-thread recovery (§3.3) instead of the
    /// centralized Figure 6 procedure.
    pub independent_recovery: bool,
    /// Run the victim with write-behind flush coalescing armed (E9); the
    /// crash then also drops whatever the pending sets still hold.
    pub coalesce: bool,
    /// Narrow the ordering drains to per-address dependency drains (E10);
    /// only meaningful together with `coalesce` — fence points then write
    /// back just the lines they order against, so the crash drops a wider
    /// pending set.
    pub per_address: bool,
    /// Run the victim on the flat-combining execution layer (E14): the
    /// armed crash then lands inside the combiner's batch (or a waiter's
    /// park loop), exercising lease recovery and half-applied batches.
    pub combining: bool,
    /// Run the victim on the replicated execution layer (E15): the armed
    /// crash lands inside the leased appender's log batch — between the
    /// announce's two ordering points, before the batch's `persist_batch`,
    /// between it and the committed-seq publish, or inside a checkpoint —
    /// and recovery must rebuild the volatile replicas by replaying the
    /// committed log prefix. Takes precedence over `combining`.
    pub replicated: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            adversary: WritebackAdversary::None,
            granularity: FlushGranularity::Line,
            independent_recovery: false,
            coalesce: false,
            per_address: false,
            combining: false,
            replicated: false,
        }
    }
}

/// The queue surface the crash and recording drivers need, implemented by
/// both execution layers so one driver body covers CAS racing and
/// combining (also used by [`crate::record`]).
pub(crate) trait CrashTarget: Sync {
    /// Whether this layer's `enqueue`/`dequeue` conveniences are really
    /// detectable prep/exec pairs. The CAS layer has a true plain path
    /// that leaves detection state alone (Axiom 4); the combining layer
    /// has none — every operation announces and goes through a combiner,
    /// so a later resolve reports it. Recorders must ask, or the recorded
    /// `D⟨queue⟩` history misrepresents the semantics.
    fn plain_is_detectable(&self) -> bool;
    fn pool(&self) -> &Arc<PmemPool>;
    fn register_thread(&self) -> Result<ThreadHandle, SlotError>;
    fn enqueue(&self, h: ThreadHandle, val: u64) -> Result<(), QueueFull>;
    fn dequeue(&self, h: ThreadHandle) -> QueueResp;
    fn prep_enqueue(&self, h: ThreadHandle, val: u64) -> Result<(), QueueFull>;
    fn exec_enqueue(&self, h: ThreadHandle);
    fn prep_dequeue(&self, h: ThreadHandle);
    fn exec_dequeue(&self, h: ThreadHandle) -> QueueResp;
    fn resolve(&self, h: ThreadHandle) -> Resolved;
    fn snapshot_values(&self) -> Vec<u64>;
    fn begin_recovery(&self);
    fn adopt(&self, slot: usize) -> Result<ThreadHandle, SlotError>;
    fn adopt_orphans(&self) -> Vec<ThreadHandle>;
    fn recover(&self) -> Vec<ThreadHandle>;
    fn recover_one(&self, h: ThreadHandle);
    fn rebuild_allocator(&self);
}

macro_rules! impl_crash_target {
    ($ty:ty) => {
        impl_crash_target!($ty, plain_is_detectable = false);
    };
    ($ty:ty, plain_is_detectable = $plain_det:literal) => {
        impl CrashTarget for $ty {
            fn plain_is_detectable(&self) -> bool {
                $plain_det
            }
            fn pool(&self) -> &Arc<PmemPool> {
                <$ty>::pool(self)
            }
            fn register_thread(&self) -> Result<ThreadHandle, SlotError> {
                <$ty>::register_thread(self)
            }
            fn enqueue(&self, h: ThreadHandle, val: u64) -> Result<(), QueueFull> {
                <$ty>::enqueue(self, h, val)
            }
            fn dequeue(&self, h: ThreadHandle) -> QueueResp {
                <$ty>::dequeue(self, h)
            }
            fn prep_enqueue(&self, h: ThreadHandle, val: u64) -> Result<(), QueueFull> {
                <$ty>::prep_enqueue(self, h, val)
            }
            fn exec_enqueue(&self, h: ThreadHandle) {
                <$ty>::exec_enqueue(self, h)
            }
            fn prep_dequeue(&self, h: ThreadHandle) {
                <$ty>::prep_dequeue(self, h)
            }
            fn exec_dequeue(&self, h: ThreadHandle) -> QueueResp {
                <$ty>::exec_dequeue(self, h)
            }
            fn resolve(&self, h: ThreadHandle) -> Resolved {
                <$ty>::resolve(self, h)
            }
            fn snapshot_values(&self) -> Vec<u64> {
                <$ty>::snapshot_values(self)
            }
            fn begin_recovery(&self) {
                <$ty>::begin_recovery(self)
            }
            fn adopt(&self, slot: usize) -> Result<ThreadHandle, SlotError> {
                <$ty>::adopt(self, slot)
            }
            fn adopt_orphans(&self) -> Vec<ThreadHandle> {
                <$ty>::adopt_orphans(self)
            }
            fn recover(&self) -> Vec<ThreadHandle> {
                <$ty>::recover(self)
            }
            fn recover_one(&self, h: ThreadHandle) {
                <$ty>::recover_one(self, h)
            }
            fn rebuild_allocator(&self) {
                <$ty>::rebuild_allocator(self)
            }
        }
    };
}

impl_crash_target!(DssQueue);
impl_crash_target!(CombiningQueue, plain_is_detectable = true);
impl_crash_target!(ReplicatedQueue, plain_is_detectable = true);

fn run_victim<Q: CrashTarget>(q: &Q, h: ThreadHandle, op: VictimOp) {
    match op {
        VictimOp::Enqueue => {
            q.prep_enqueue(h, 42).unwrap();
            q.exec_enqueue(h);
        }
        VictimOp::Dequeue | VictimOp::EmptyDequeue => {
            q.prep_dequeue(h);
            let _ = q.exec_dequeue(h);
        }
    }
}

/// Sweeps every crash point of `op` under `config`, classifying each
/// resolution and checking it against the persisted state.
pub fn sweep(op: VictimOp, config: &SweepConfig) -> SweepOutcome {
    let mut out = SweepOutcome::default();
    for k in 1.. {
        let crashed = if config.replicated {
            let q = ReplicatedQueue::with_granularity(1, 8, config.granularity);
            sweep_point(&q, op, config, k, &mut out)
        } else if config.combining {
            let q = CombiningQueue::with_granularity(1, 8, config.granularity);
            sweep_point(&q, op, config, k, &mut out)
        } else {
            let q = DssQueue::with_granularity(1, 8, config.granularity);
            sweep_point(&q, op, config, k, &mut out)
        };
        if !crashed {
            break; // the operation completed before reaching k
        }
    }
    out
}

/// One crash point of a sweep on a fresh queue; returns whether the armed
/// crash fired (false ends the sweep).
fn sweep_point<Q: CrashTarget>(
    q: &Q,
    op: VictimOp,
    config: &SweepConfig,
    k: u64,
    out: &mut SweepOutcome,
) -> bool {
    let h0 = q.register_thread().unwrap();
    q.pool().set_coalescing(config.coalesce);
    q.pool().set_per_address_drains(config.per_address);
    if op == VictimOp::Dequeue {
        q.enqueue(h0, 7).unwrap();
    }
    q.pool().arm_crash_after(k);
    let r = catch_unwind(AssertUnwindSafe(|| run_victim(q, h0, op)));
    q.pool().disarm_crash();
    let crashed = match r {
        Ok(()) => false,
        Err(p) if p.downcast_ref::<CrashSignal>().is_some() => true,
        Err(p) => resume_unwind(p),
    };
    if !crashed {
        return false;
    }
    out.crash_points += 1;
    q.pool().crash(&config.adversary);
    if config.independent_recovery {
        // §3.3: the surviving thread repairs only its own slot — no
        // registry transition, no centralized phase. (On the leased
        // layers, the boundary must still be marked so a dead
        // combiner's/appender's lease becomes provably stale.)
        if config.combining || config.replicated {
            q.begin_recovery();
        }
        q.recover_one(h0);
    } else {
        q.recover();
    }
    q.rebuild_allocator();
    classify(q, op, q.resolve(h0), out);
    true
}

fn classify<Q: CrashTarget>(q: &Q, op: VictimOp, resolved: Resolved, out: &mut SweepOutcome) {
    let snapshot = q.snapshot_values();
    let consistent = match (op, resolved) {
        (_, Resolved { op: None, resp: None }) => {
            out.not_prepared += 1;
            // No prepared op: the victim op must not have taken effect.
            match op {
                VictimOp::Enqueue => snapshot.is_empty(),
                VictimOp::Dequeue => snapshot == [7],
                VictimOp::EmptyDequeue => snapshot.is_empty(),
            }
        }
        (VictimOp::Enqueue, Resolved { op: Some(ResolvedOp::Enqueue(42)), resp }) => match resp {
            Some(QueueResp::Ok) => {
                out.effect += 1;
                snapshot == [42]
            }
            None => {
                out.no_effect += 1;
                snapshot.is_empty()
            }
            _ => false,
        },
        (
            VictimOp::Dequeue,
            Resolved { op: Some(ResolvedOp::Enqueue(7)), resp: Some(QueueResp::Ok) },
        ) => {
            // The dequeue announce never persisted, so resolve correctly
            // reports the *prefill* enqueue. Only reachable on the
            // combining layer, whose prefill is necessarily detectable
            // (no non-detectable path exists); the CAS-racing sweeps
            // prefill non-detectably and land in the (None, None) arm.
            out.not_prepared += 1;
            snapshot == [7]
        }
        (VictimOp::Dequeue, Resolved { op: Some(ResolvedOp::Dequeue), resp }) => match resp {
            Some(QueueResp::Value(7)) => {
                out.effect += 1;
                snapshot.is_empty()
            }
            None => {
                out.no_effect += 1;
                snapshot == [7]
            }
            _ => false,
        },
        (VictimOp::EmptyDequeue, Resolved { op: Some(ResolvedOp::Dequeue), resp }) => match resp {
            Some(QueueResp::Empty) => {
                out.effect += 1;
                snapshot.is_empty()
            }
            None => {
                out.no_effect += 1;
                snapshot.is_empty()
            }
            _ => false,
        },
        _ => false,
    };
    if !consistent {
        out.violations += 1;
    }
}

/// One worker's surviving bookkeeping from a [`concurrent_crash_run`]:
/// values it enqueued, values it dequeued, and the operation in flight
/// when its crash hit (`(is_enqueue, value)`).
type ThreadJournal = (Vec<u64>, Vec<u64>, Option<(bool, u64)>);

/// A multi-threaded crash test: `threads` workers run detectable
/// enqueue/dequeue pairs; each is armed to crash after a
/// pseudo-randomly chosen number of pmem operations; after all have
/// crashed, the pool crashes, recovery and resolution run, and the value
/// conservation invariant is checked:
/// every effective enqueue's value is dequeued at most once and is
/// otherwise still queued.
///
/// Returns the number of values still in the queue on success.
///
/// # Errors
///
/// Returns a description of the violated invariant.
pub fn concurrent_crash_run(threads: usize, seed: u64) -> Result<usize, String> {
    concurrent_crash_run_on(&DssQueue::new(threads, 256), threads, seed)
}

/// [`concurrent_crash_run`] on the flat-combining execution layer: the
/// same workers, crash, Figure-6 recovery and conservation check, but the
/// armed crashes now land inside combiner batches and waiter park loops
/// (waiters step their countdowns through the instrumented lease probe,
/// so every worker still crashes).
pub fn concurrent_crash_run_combining(threads: usize, seed: u64) -> Result<usize, String> {
    concurrent_crash_run_on(&CombiningQueue::new(threads, 256), threads, seed)
}

/// [`concurrent_crash_run`] on the replicated execution layer: the armed
/// crashes land inside the leased appender's log batches and checkpoint
/// writes, and recovery rebuilds every volatile replica by replaying the
/// committed log prefix before the conservation check reads through them.
pub fn concurrent_crash_run_replicated(threads: usize, seed: u64) -> Result<usize, String> {
    concurrent_crash_run_on(&ReplicatedQueue::new(threads, 256), threads, seed)
}

fn concurrent_crash_run_on<Q: CrashTarget>(
    q: &Q,
    threads: usize,
    seed: u64,
) -> Result<usize, String> {
    let hs: Vec<ThreadHandle> = (0..threads).map(|_| q.register_thread().unwrap()).collect();
    let results = run_workers_until_crash(q, &hs, seed);

    // System-wide crash, then full-restart recovery (adopts every slot).
    q.pool().crash(&WritebackAdversary::Random { seed, prob: 0.5 });
    q.recover();
    q.rebuild_allocator();

    check_conservation(q, &hs, &results)
}

/// Like [`concurrent_crash_run`], but only `survivors` of the `threads`
/// workers restart after the crash (§3.3 / the partial-recovery crash
/// mode):
///
/// 1. Each survivor marks the crash boundary (idempotent), re-adopts its
///    *own* registry slot, and repairs its own detectability word via
///    [`DssQueue::recover_one`] — no centralized phase.
/// 2. Survivor 0 then plays adopter: [`DssQueue::adopt_orphans`] reclaims
///    every dead thread's slot (inheriting its EBR state) and
///    `recover_one` resolves each slot's pending operation.
///
/// The value-conservation invariant is then checked over **all** threads'
/// bookkeeping, dead ones included — their announced ops are read through
/// the adopted slots.
///
/// # Errors
///
/// Returns a description of the violated invariant.
///
/// # Panics
///
/// Panics if `survivors` is zero or exceeds `threads`.
pub fn partial_recovery_crash_run(
    threads: usize,
    survivors: usize,
    seed: u64,
) -> Result<usize, String> {
    partial_recovery_crash_run_on(&DssQueue::new(threads, 256), threads, survivors, seed)
}

/// [`partial_recovery_crash_run`] on the flat-combining execution layer —
/// in particular, a combiner killed mid-batch whose slot is *never*
/// re-adopted by its own thread leaves a lease that only the staleness
/// steal (or the next centralized recovery) can reclaim.
pub fn partial_recovery_crash_run_combining(
    threads: usize,
    survivors: usize,
    seed: u64,
) -> Result<usize, String> {
    partial_recovery_crash_run_on(&CombiningQueue::new(threads, 256), threads, survivors, seed)
}

/// [`partial_recovery_crash_run`] on the replicated execution layer — a
/// dead appender's lease is reclaimed by the survivors' staleness steal,
/// and each `recover_one` reseeds only the replica serving its slot.
pub fn partial_recovery_crash_run_replicated(
    threads: usize,
    survivors: usize,
    seed: u64,
) -> Result<usize, String> {
    partial_recovery_crash_run_on(&ReplicatedQueue::new(threads, 256), threads, survivors, seed)
}

fn partial_recovery_crash_run_on<Q: CrashTarget>(
    q: &Q,
    threads: usize,
    survivors: usize,
    seed: u64,
) -> Result<usize, String> {
    assert!(survivors >= 1 && survivors <= threads, "need 1..=threads survivors");
    let hs: Vec<ThreadHandle> = (0..threads).map(|_| q.register_thread().unwrap()).collect();
    let results = run_workers_until_crash(q, &hs, seed);

    q.pool().crash(&WritebackAdversary::Random { seed, prob: 0.5 });

    // Surviving threads come back one by one and recover independently.
    for h in hs.iter().take(survivors) {
        q.begin_recovery();
        let mine = q.adopt(h.slot()).map_err(|e| format!("re-adopting own slot: {e}"))?;
        q.recover_one(mine);
    }
    // One survivor adopts everything nobody came back for.
    let adopted = q.adopt_orphans();
    if adopted.len() != threads - survivors {
        return Err(format!("expected {} orphans, adopted {}", threads - survivors, adopted.len()));
    }
    for h in &adopted {
        q.recover_one(*h);
    }
    q.rebuild_allocator();

    check_conservation(q, &hs, &results)
}

/// Runs one detectable enqueue/dequeue worker per handle until each hits
/// its pseudo-randomly armed crash point.
fn run_workers_until_crash<Q: CrashTarget>(
    q: &Q,
    hs: &[ThreadHandle],
    seed: u64,
) -> Vec<ThreadJournal> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = hs
            .iter()
            .enumerate()
            .map(|(tid, &h)| {
                scope.spawn(move || {
                    // Deterministic per-thread crash point derived from the seed.
                    let crash_after =
                        20 + (seed.wrapping_mul(2654435761).wrapping_add(tid as u64 * 97)) % 400;
                    q.pool().arm_crash_after(crash_after);
                    let enqueued = std::cell::RefCell::new(Vec::new());
                    let dequeued = std::cell::RefCell::new(Vec::new());
                    let in_flight = std::cell::RefCell::new(None);
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        for i in 1..u64::MAX {
                            let v = ((tid as u64) << 32) | i;
                            *in_flight.borrow_mut() = Some((true, v));
                            q.prep_enqueue(h, v).unwrap();
                            q.exec_enqueue(h);
                            enqueued.borrow_mut().push(v);
                            *in_flight.borrow_mut() = Some((false, 0));
                            q.prep_dequeue(h);
                            if let QueueResp::Value(x) = q.exec_dequeue(h) {
                                dequeued.borrow_mut().push(x);
                            }
                            *in_flight.borrow_mut() = None;
                        }
                    }));
                    q.pool().disarm_crash();
                    match r {
                        Err(p) if p.downcast_ref::<CrashSignal>().is_some() => {}
                        Err(p) => resume_unwind(p),
                        Ok(()) => unreachable!("loop only ends by crashing"),
                    }
                    (enqueued.into_inner(), dequeued.into_inner(), in_flight.into_inner())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// Checks the value-conservation invariant after recovery: every effective
/// enqueue's value is dequeued at most once and is otherwise still queued.
/// Returns the number of values still in the queue on success.
fn check_conservation<Q: CrashTarget>(
    q: &Q,
    hs: &[ThreadHandle],
    results: &[ThreadJournal],
) -> Result<usize, String> {
    use std::collections::HashSet;

    // Resolution: complete each thread's bookkeeping using resolve. A
    // pre-crash handle still names its slot even after adoption, so dead
    // threads' announcements are readable here too.
    let mut effective_enqueues: HashSet<u64> = HashSet::new();
    let mut effective_dequeues: HashSet<u64> = HashSet::new();
    for (&h, (enqueued, dequeued, _in_flight)) in hs.iter().zip(results.iter()) {
        effective_enqueues.extend(enqueued.iter().copied());
        effective_dequeues.extend(dequeued.iter().copied());
        match q.resolve(h) {
            Resolved { op: Some(ResolvedOp::Enqueue(v)), resp: Some(QueueResp::Ok) } => {
                effective_enqueues.insert(v);
            }
            Resolved { op: Some(ResolvedOp::Dequeue), resp: Some(QueueResp::Value(v)) } => {
                effective_dequeues.insert(v);
            }
            _ => {}
        }
    }

    let remaining: HashSet<u64> = q.snapshot_values().into_iter().collect();
    for v in &effective_dequeues {
        if !effective_enqueues.contains(v) {
            return Err(format!("dequeued value {v:#x} was never effectively enqueued"));
        }
        if remaining.contains(v) {
            return Err(format!("value {v:#x} both dequeued and still queued"));
        }
    }
    for v in &remaining {
        if !effective_enqueues.contains(v) {
            return Err(format!("queued value {v:#x} was never effectively enqueued"));
        }
    }
    for v in &effective_enqueues {
        if !remaining.contains(v) && !effective_dequeues.contains(v) {
            return Err(format!("effective enqueue {v:#x} vanished"));
        }
    }
    Ok(remaining.len())
}

/// The argv sentinel that dispatches a binary into the child role of a
/// multi-process crash run. Binaries that call [`multi_process_sweep`]
/// with their own path must check for it **before** ordinary flag parsing
/// and hand the remaining arguments to [`multi_process_child`].
pub const MP_CHILD_FLAG: &str = "--mp-child";

/// The child (victim) side of a multi-process crash run: creates a
/// file-backed queue at the given path, runs the victim operation with a
/// crash armed after `k` pmem operations, and then *parks* so the parent
/// can SIGKILL it. Nothing is drained or handed over on the way out —
/// whatever the operation had not yet written back dies with the process,
/// which is the whole point.
///
/// `args` is the argv tail after [`MP_CHILD_FLAG`]:
/// `<pool-path> <op> <k> <granularity> <coalesce> <per-address>
/// <layer>` where `<layer>` is `cas`, `combining`, `replicated`, or
/// `map` (whose `<op>` is a [`MapVictimOp`] name).
///
/// Never returns: exits 0 after printing `DONE` when the operation
/// completes before reaching `k`, parks forever after printing `READY`
/// when the armed crash fired.
///
/// # Panics
///
/// Panics on malformed arguments or an I/O failure creating the pool.
pub fn multi_process_child(args: &[String]) -> ! {
    let [path, op, k, granularity, coalesce, per_address, layer] = args else {
        panic!(
            "{MP_CHILD_FLAG} <pool-path> <op> <k> <granularity> <coalesce> <per-address> <layer>"
        );
    };
    let k: u64 = k.parse().expect("crash index must be a u64");
    let granularity = match granularity.as_str() {
        "line" => FlushGranularity::Line,
        "word" => FlushGranularity::Word,
        g => panic!("unknown granularity {g}"),
    };
    if layer == "map" {
        let m = DetectableMap::create_with(path, 1, 8, 8, granularity).expect("creating the pool");
        multi_process_map_victim(
            &m,
            MapVictimOp::parse(op),
            k,
            coalesce == "on",
            per_address == "on",
        )
    }
    let op = VictimOp::parse(op);
    match layer.as_str() {
        "replicated" => {
            let q =
                ReplicatedQueue::create_with(path, 1, 8, granularity).expect("creating the pool");
            multi_process_victim(&q, op, k, coalesce == "on", per_address == "on")
        }
        "combining" => {
            let q =
                CombiningQueue::create_with(path, 1, 8, granularity).expect("creating the pool");
            multi_process_victim(&q, op, k, coalesce == "on", per_address == "on")
        }
        "cas" => {
            let q = DssQueue::create_with(path, 1, 8, granularity).expect("creating the pool");
            multi_process_victim(&q, op, k, coalesce == "on", per_address == "on")
        }
        other => panic!("unknown execution layer {other:?}"),
    }
}

fn multi_process_victim<Q: CrashTarget>(
    q: &Q,
    op: VictimOp,
    k: u64,
    coalesce: bool,
    per_address: bool,
) -> ! {
    q.pool().set_coalescing(coalesce);
    q.pool().set_per_address_drains(per_address);
    let h0 = q.register_thread().unwrap();
    if op == VictimOp::Dequeue {
        q.enqueue(h0, 7).unwrap();
    }
    q.pool().arm_crash_after(k);
    // The CrashSignal unwind is this process's expected exit path; keep
    // its panic report off the parent's terminal.
    std::panic::set_hook(Box::new(|_| {}));
    let r = catch_unwind(AssertUnwindSafe(|| run_victim(q, h0, op)));
    match r {
        Ok(()) => {
            println!("DONE");
            std::io::stdout().flush().unwrap();
            std::process::exit(0);
        }
        Err(p) if p.downcast_ref::<CrashSignal>().is_some() => {
            println!("READY");
            std::io::stdout().flush().unwrap();
            // Park until the parent SIGKILLs us. The un-written-back tail
            // of the victim operation is still only in this process's
            // DRAM; the kill, not a simulated crash(), destroys it.
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        Err(p) => resume_unwind(p),
    }
}

/// Removes the pool file on scope exit, kill paths included.
struct PoolFileGuard(PathBuf);

impl Drop for PoolFileGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Sweeps every crash point of `op` with a **real process boundary**: for
/// each `k`, `exe` (a binary handling [`MP_CHILD_FLAG`], normally
/// `std::env::current_exe()`) is spawned as a child that creates a
/// file-backed queue and runs the victim with a crash armed at `k`; once
/// the child reports the crash fired, the parent SIGKILLs it, attaches
/// the pool file from scratch, runs the Figure-6 adopt-then-resolve
/// recovery, and validates `resolve`'s answer against the persisted state.
///
/// `config.granularity`, `config.coalesce`, `config.per_address` and the
/// execution layer (`config.combining` / `config.replicated`) are
/// forwarded to the child (a leased layer's pool is attached with its own
/// `attach`, which also clears the dead combiner's or appender's lease);
/// `config.adversary` and
/// `config.independent_recovery` are ignored — SIGKILL *is* the
/// adversary (nothing pending survives it, like
/// [`WritebackAdversary::None`]), and recovery is always the centralized
/// attach-then-adopt path a fresh process must take.
///
/// # Panics
///
/// Panics if a child cannot be spawned, exits abnormally, or leaves a
/// pool file the parent cannot attach; and on the first detectability
/// violation (`SweepOutcome::violations` is always 0 on return).
pub fn multi_process_sweep(op: VictimOp, config: &SweepConfig, exe: &Path) -> SweepOutcome {
    let mut out = SweepOutcome::default();
    for k in 1.. {
        let path =
            std::env::temp_dir().join(format!("dss-mp-{}-{op}-{k}.pool", std::process::id()));
        let _guard = PoolFileGuard(path.clone());
        let granularity = match config.granularity {
            FlushGranularity::Line => "line",
            FlushGranularity::Word => "word",
        };
        let onoff = |b| if b { "on" } else { "off" };
        let layer = if config.replicated {
            "replicated"
        } else if config.combining {
            "combining"
        } else {
            "cas"
        };
        let mut child = Command::new(exe)
            .arg(MP_CHILD_FLAG)
            .arg(&path)
            .arg(op.to_string())
            .arg(k.to_string())
            .arg(granularity)
            .arg(onoff(config.coalesce))
            .arg(onoff(config.per_address))
            .arg(layer)
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawning the victim child process");
        let mut line = String::new();
        BufReader::new(child.stdout.take().expect("child stdout is piped"))
            .read_line(&mut line)
            .expect("reading the child's handshake line");
        match line.trim() {
            "READY" => {
                // The armed crash fired; the child is parked. Kill it for
                // real — on Unix this is SIGKILL, no drop glue runs.
                child.kill().expect("killing the parked child");
                let _ = child.wait();
            }
            "DONE" => {
                // The operation completed before reaching k: past the last
                // crash point, the sweep is over.
                let _ = child.wait();
                break;
            }
            other => panic!("unexpected child handshake {other:?} (crashed early?)"),
        }
        out.crash_points += 1;
        // A fresh "process": nothing carried over but the file's path.
        if config.replicated {
            let q = ReplicatedQueue::attach(&path).expect("attaching the dead process's pool");
            let adopted = q.recover();
            assert_eq!(adopted.len(), 1, "the dead process's slot must be orphaned");
            q.rebuild_allocator();
            classify(&q, op, q.resolve(adopted[0]), &mut out);
        } else if config.combining {
            let q = CombiningQueue::attach(&path).expect("attaching the dead process's pool");
            let adopted = q.recover();
            assert_eq!(adopted.len(), 1, "the dead process's slot must be orphaned");
            q.rebuild_allocator();
            classify(&q, op, q.resolve(adopted[0]), &mut out);
        } else {
            let q = DssQueue::attach(&path).expect("attaching the dead process's pool file");
            let adopted = q.recover();
            assert_eq!(adopted.len(), 1, "the dead process's slot must be orphaned");
            q.rebuild_allocator();
            classify(&q, op, q.resolve(adopted[0]), &mut out);
        }
        assert_eq!(out.violations, 0, "multi-process {op} crash at k={k} resolved inconsistently");
    }
    out
}

// ---------------------------------------------------------------------------
// Detectable-map crash drivers: the same Figure-2 sweeps, conservation
// runs, partial-recovery runs, and SIGKILL multi-process sweeps, driven
// over `D⟨map⟩`. The map recovers *independently* (§3.3): there is no
// recovery phase to run, so the "centralized" arm of a sweep is just the
// registry's begin-recovery + adopt-orphans restart protocol and the
// "independent" arm is nothing at all — `resolve` answers from persisted
// state alone either way, and both arms must classify identically.
// ---------------------------------------------------------------------------

/// The key every single-victim map sweep operates on.
const MAP_KEY: u64 = 7;
/// The prefill value bound to [`MAP_KEY`] before update/remove victims.
const MAP_OLD: u64 = 7;
/// The value the insert/update victims write.
const MAP_NEW: u64 = 42;
/// The §2.1 sequence tag the victim's prep carries.
const MAP_SEQ: u64 = 1;

/// Which map operation the sweep interrupts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MapVictimOp {
    /// `prep-put(7, 42)` + `exec-put` on an empty map (fresh key: the
    /// install allocates an entry node *and* a value node).
    Insert,
    /// `prep-put(7, 42)` + `exec-put` with `7 ↦ 7` prefilled (the install
    /// marks the incumbent superseded before swinging the entry's vptr).
    Update,
    /// `prep-remove(7)` + `exec-remove` with `7 ↦ 7` prefilled (the
    /// install swings the vptr to a tombstone value node).
    Remove,
    /// `prep-remove(7)` + `exec-remove` on an empty map (the trivial
    /// effect: removing an absent key is already done).
    RemoveAbsent,
}

impl MapVictimOp {
    /// All sweep targets.
    pub fn all() -> [MapVictimOp; 4] {
        [MapVictimOp::Insert, MapVictimOp::Update, MapVictimOp::Remove, MapVictimOp::RemoveAbsent]
    }

    /// Inverse of [`fmt::Display`] (the multi-process driver passes the
    /// victim op to the child through argv).
    pub fn parse(s: &str) -> MapVictimOp {
        match s {
            "insert" => MapVictimOp::Insert,
            "update" => MapVictimOp::Update,
            "remove" => MapVictimOp::Remove,
            "remove-absent" => MapVictimOp::RemoveAbsent,
            other => panic!("unknown map victim op {other:?}"),
        }
    }
}

impl fmt::Display for MapVictimOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MapVictimOp::Insert => "insert",
            MapVictimOp::Update => "update",
            MapVictimOp::Remove => "remove",
            MapVictimOp::RemoveAbsent => "remove-absent",
        };
        f.write_str(s)
    }
}

fn run_map_victim(m: &DetectableMap, h: ThreadHandle, op: MapVictimOp) {
    match op {
        MapVictimOp::Insert | MapVictimOp::Update => {
            m.prep_put(h, MAP_KEY, MAP_NEW, MAP_SEQ);
            let _ = m.exec_put(h);
        }
        MapVictimOp::Remove | MapVictimOp::RemoveAbsent => {
            m.prep_remove(h, MAP_KEY, MAP_SEQ);
            let _ = m.exec_remove(h);
        }
    }
}

/// [`sweep`] for the detectable map: every crash point of `op` on a fresh
/// map, classified against `D⟨map⟩`'s Figure-2 outcomes and validated
/// against the persisted bindings. `config.combining` / `replicated` are
/// ignored (the map has one execution layer).
pub fn map_sweep(op: MapVictimOp, config: &SweepConfig) -> SweepOutcome {
    let mut out = SweepOutcome::default();
    for k in 1.. {
        let m: DetectableMap = DetectableMap::new_in(1, 8, 8, config.granularity);
        if !map_sweep_point(&m, op, config, k, &mut out) {
            break; // the operation completed before reaching k
        }
    }
    out
}

fn map_sweep_point(
    m: &DetectableMap,
    op: MapVictimOp,
    config: &SweepConfig,
    k: u64,
    out: &mut SweepOutcome,
) -> bool {
    let h0 = m.register_thread().unwrap();
    m.pool().set_coalescing(config.coalesce);
    m.pool().set_per_address_drains(config.per_address);
    if matches!(op, MapVictimOp::Update | MapVictimOp::Remove) {
        let _ = m.put(h0, MAP_KEY, MAP_OLD); // plain: leaves X alone (Axiom 4)
    }
    m.pool().arm_crash_after(k);
    let r = catch_unwind(AssertUnwindSafe(|| run_map_victim(m, h0, op)));
    m.pool().disarm_crash();
    let crashed = match r {
        Ok(()) => false,
        Err(p) if p.downcast_ref::<CrashSignal>().is_some() => true,
        Err(p) => resume_unwind(p),
    };
    if !crashed {
        return false;
    }
    out.crash_points += 1;
    m.pool().crash(&config.adversary);
    if !config.independent_recovery {
        // The full-restart protocol: mark the boundary, adopt the
        // orphaned slot. No repair happens — the map has none.
        m.begin_recovery();
        let _ = m.adopt_orphans();
    }
    m.rebuild_allocator();
    classify_map(m, op, m.resolve(h0), out);
    true
}

fn classify_map(m: &DetectableMap, op: MapVictimOp, resolved: ResolvedMap, out: &mut SweepOutcome) {
    let bound = m.snapshot().get(&MAP_KEY).copied();
    // The binding a no-effect (or not-prepared) outcome must leave.
    let old = match op {
        MapVictimOp::Update | MapVictimOp::Remove => Some(MAP_OLD),
        MapVictimOp::Insert | MapVictimOp::RemoveAbsent => None,
    };
    let expected_op = match op {
        MapVictimOp::Insert | MapVictimOp::Update => KvOp::Put(MAP_NEW),
        MapVictimOp::Remove | MapVictimOp::RemoveAbsent => KvOp::Remove,
    };
    let consistent = match resolved {
        ResolvedMap { op: None, resp: None } => {
            out.not_prepared += 1;
            bound == old
        }
        ResolvedMap { op: Some((MAP_KEY, vop, MAP_SEQ)), resp } if vop == expected_op => match resp
        {
            Some(KvResp::Ok) => {
                out.effect += 1;
                match op {
                    MapVictimOp::Insert | MapVictimOp::Update => bound == Some(MAP_NEW),
                    MapVictimOp::Remove | MapVictimOp::RemoveAbsent => bound.is_none(),
                }
            }
            None => {
                out.no_effect += 1;
                bound == old
            }
            Some(_) => false,
        },
        _ => false,
    };
    if !consistent {
        out.violations += 1;
    }
}

/// One map worker's surviving bookkeeping: confirmed ops in order as
/// `(key, binding-after)` (`None` = removed), and the op in flight at the
/// crash as `(seq, key, binding-after)`.
type MapJournal = (Vec<(u64, Option<u64>)>, Option<(u64, u64, Option<u64>)>);

/// Number of keys each map worker cycles through (disjoint per thread, so
/// the post-crash bindings are exactly determined).
const MAP_KEYS_PER_THREAD: u64 = 8;

/// A multi-threaded map crash test: `threads` workers run detectable puts
/// and removes over *disjoint* per-thread key ranges; each is armed to
/// crash after a pseudo-randomly chosen number of pmem operations; after
/// all have crashed, the pool crashes, the restart protocol and
/// resolution run, and the surviving bindings are checked to be *exactly*
/// the journals' expectation — every key's final value is the last
/// confirmed write, amended by the in-flight op iff `resolve` reports it
/// took effect.
///
/// Returns the number of live bindings on success.
///
/// # Errors
///
/// Returns a description of the violated invariant.
pub fn concurrent_map_crash_run(threads: usize, seed: u64) -> Result<usize, String> {
    let m: DetectableMap = DetectableMap::new_in(threads, 256, 16, FlushGranularity::Line);
    let hs: Vec<ThreadHandle> = (0..threads).map(|_| m.register_thread().unwrap()).collect();
    let results = run_map_workers_until_crash(&m, &hs, seed);

    m.pool().crash(&WritebackAdversary::Random { seed, prob: 0.5 });
    m.begin_recovery();
    let _ = m.adopt_orphans();
    m.rebuild_allocator();

    check_map_conservation(&m, &hs, &results)
}

/// [`concurrent_map_crash_run`] with only `survivors` of the `threads`
/// workers restarting (§3.3): each survivor re-adopts its own registry
/// slot (no repair exists to run), survivor 0 adopts every slot nobody
/// came back for, and the journals' expectation is checked over **all**
/// threads — dead ones' in-flight ops are read through the adopted slots.
///
/// # Errors
///
/// Returns a description of the violated invariant.
///
/// # Panics
///
/// Panics if `survivors` is zero or exceeds `threads`.
pub fn partial_recovery_map_crash_run(
    threads: usize,
    survivors: usize,
    seed: u64,
) -> Result<usize, String> {
    assert!(survivors >= 1 && survivors <= threads, "need 1..=threads survivors");
    let m: DetectableMap = DetectableMap::new_in(threads, 256, 16, FlushGranularity::Line);
    let hs: Vec<ThreadHandle> = (0..threads).map(|_| m.register_thread().unwrap()).collect();
    let results = run_map_workers_until_crash(&m, &hs, seed);

    m.pool().crash(&WritebackAdversary::Random { seed, prob: 0.5 });

    for h in hs.iter().take(survivors) {
        m.begin_recovery();
        m.adopt(h.slot()).map_err(|e| format!("re-adopting own slot: {e}"))?;
    }
    let adopted = m.adopt_orphans();
    if adopted.len() != threads - survivors {
        return Err(format!("expected {} orphans, adopted {}", threads - survivors, adopted.len()));
    }
    m.rebuild_allocator();

    check_map_conservation(&m, &hs, &results)
}

fn run_map_workers_until_crash(
    m: &DetectableMap,
    hs: &[ThreadHandle],
    seed: u64,
) -> Vec<MapJournal> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = hs
            .iter()
            .enumerate()
            .map(|(tid, &h)| {
                scope.spawn(move || {
                    let crash_after =
                        20 + (seed.wrapping_mul(2654435761).wrapping_add(tid as u64 * 97)) % 400;
                    m.pool().arm_crash_after(crash_after);
                    let confirmed = std::cell::RefCell::new(Vec::new());
                    let in_flight = std::cell::RefCell::new(None);
                    let mut state =
                        seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(tid as u64 + 1);
                    let mut next = move || {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        state
                    };
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        for i in 1..u64::MAX {
                            let key = ((tid as u64) << 32) | (next() % MAP_KEYS_PER_THREAD);
                            if next() % 4 == 0 {
                                *in_flight.borrow_mut() = Some((i, key, None));
                                m.prep_remove(h, key, i);
                                let _ = m.exec_remove(h);
                                confirmed.borrow_mut().push((key, None));
                            } else {
                                let v = ((tid as u64) << 32) | i;
                                *in_flight.borrow_mut() = Some((i, key, Some(v)));
                                m.prep_put(h, key, v, i);
                                let _ = m.exec_put(h);
                                confirmed.borrow_mut().push((key, Some(v)));
                            }
                            *in_flight.borrow_mut() = None;
                        }
                    }));
                    m.pool().disarm_crash();
                    match r {
                        Err(p) if p.downcast_ref::<CrashSignal>().is_some() => {}
                        Err(p) => resume_unwind(p),
                        Ok(()) => unreachable!("loop only ends by crashing"),
                    }
                    (confirmed.into_inner(), in_flight.into_inner())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// Checks the post-crash bindings are exactly the journals' expectation.
/// Per-thread key ranges are disjoint and each thread's ops are
/// sequential, so the final binding of every key is fully determined by
/// the confirmed journal plus `resolve`'s verdict on the in-flight op.
fn check_map_conservation(
    m: &DetectableMap,
    hs: &[ThreadHandle],
    results: &[MapJournal],
) -> Result<usize, String> {
    use std::collections::BTreeMap;

    let mut expected: BTreeMap<u64, u64> = BTreeMap::new();
    for (&h, (confirmed, in_flight)) in hs.iter().zip(results.iter()) {
        let mut local: BTreeMap<u64, Option<u64>> = BTreeMap::new();
        for &(key, after) in confirmed {
            local.insert(key, after);
        }
        if let Some((seq, key, after)) = in_flight {
            // resolve reports the slot's last *persisted* prep; if that is
            // the in-flight op (matched by its unique seq tag), its resp
            // decides the key's fate. Otherwise the in-flight announce
            // never persisted, so the op cannot have taken effect.
            let r = m.resolve(h);
            match r.op {
                Some((k2, _, s2)) if s2 == *seq && k2 == *key && r.resp.is_some() => {
                    local.insert(*key, *after);
                }
                _ => {}
            }
        }
        for (key, after) in local {
            if let Some(v) = after {
                expected.insert(key, v);
            } else {
                expected.remove(&key);
            }
        }
    }

    let snapshot = m.snapshot();
    if snapshot != expected {
        for (k, v) in &snapshot {
            match expected.get(k) {
                Some(e) if e == v => {}
                Some(e) => return Err(format!("key {k:#x}: bound to {v:#x}, expected {e:#x}")),
                None => return Err(format!("key {k:#x}: bound to {v:#x}, expected absent")),
            }
        }
        for (k, e) in &expected {
            if !snapshot.contains_key(k) {
                return Err(format!("key {k:#x}: absent, expected {e:#x}"));
            }
        }
        return Err("snapshot != expected (key sets differ)".into());
    }
    Ok(snapshot.len())
}

fn multi_process_map_victim(
    m: &DetectableMap,
    op: MapVictimOp,
    k: u64,
    coalesce: bool,
    per_address: bool,
) -> ! {
    m.pool().set_coalescing(coalesce);
    m.pool().set_per_address_drains(per_address);
    let h0 = m.register_thread().unwrap();
    if matches!(op, MapVictimOp::Update | MapVictimOp::Remove) {
        let _ = m.put(h0, MAP_KEY, MAP_OLD);
    }
    m.pool().arm_crash_after(k);
    std::panic::set_hook(Box::new(|_| {}));
    let r = catch_unwind(AssertUnwindSafe(|| run_map_victim(m, h0, op)));
    match r {
        Ok(()) => {
            println!("DONE");
            std::io::stdout().flush().unwrap();
            std::process::exit(0);
        }
        Err(p) if p.downcast_ref::<CrashSignal>().is_some() => {
            println!("READY");
            std::io::stdout().flush().unwrap();
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        Err(p) => resume_unwind(p),
    }
}

/// [`multi_process_sweep`] for the detectable map: the victim child
/// creates a file-backed map, is SIGKILLed mid-operation, and the parent
/// attaches the pool file with no in-process state, runs the restart
/// protocol, and validates `resolve` through the adopted slot.
///
/// # Panics
///
/// As [`multi_process_sweep`].
pub fn multi_process_map_sweep(op: MapVictimOp, config: &SweepConfig, exe: &Path) -> SweepOutcome {
    let mut out = SweepOutcome::default();
    for k in 1.. {
        let path =
            std::env::temp_dir().join(format!("dss-mp-map-{}-{op}-{k}.pool", std::process::id()));
        let _guard = PoolFileGuard(path.clone());
        let granularity = match config.granularity {
            FlushGranularity::Line => "line",
            FlushGranularity::Word => "word",
        };
        let onoff = |b| if b { "on" } else { "off" };
        let mut child = Command::new(exe)
            .arg(MP_CHILD_FLAG)
            .arg(&path)
            .arg(op.to_string())
            .arg(k.to_string())
            .arg(granularity)
            .arg(onoff(config.coalesce))
            .arg(onoff(config.per_address))
            .arg("map")
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawning the victim child process");
        let mut line = String::new();
        BufReader::new(child.stdout.take().expect("child stdout is piped"))
            .read_line(&mut line)
            .expect("reading the child's handshake line");
        match line.trim() {
            "READY" => {
                child.kill().expect("killing the parked child");
                let _ = child.wait();
            }
            "DONE" => {
                let _ = child.wait();
                break;
            }
            other => panic!("unexpected child handshake {other:?} (crashed early?)"),
        }
        out.crash_points += 1;
        let m = DetectableMap::attach(&path).expect("attaching the dead process's pool file");
        m.begin_recovery();
        let adopted = m.adopt_orphans();
        assert_eq!(adopted.len(), 1, "the dead process's slot must be orphaned");
        classify_map(&m, op, m.resolve(adopted[0]), &mut out);
        assert_eq!(
            out.violations, 0,
            "multi-process map {op} crash at k={k} resolved inconsistently"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_sweeps_have_no_violations_under_default_config() {
        for op in MapVictimOp::all() {
            let out = map_sweep(op, &SweepConfig::default());
            assert!(out.crash_points > 0, "{op}: no crash points?");
            assert_eq!(out.violations, 0, "{op}: {out:?}");
        }
    }

    #[test]
    fn map_sweeps_have_no_violations_under_adversaries_and_granularities() {
        for adversary in
            [WritebackAdversary::All, WritebackAdversary::Random { seed: 9, prob: 0.3 }]
        {
            for granularity in [FlushGranularity::Line, FlushGranularity::Word] {
                for independent in [false, true] {
                    for coalesce in [false, true] {
                        for per_address in [false, true] {
                            if per_address && !coalesce {
                                continue;
                            }
                            let config = SweepConfig {
                                adversary: adversary.clone(),
                                granularity,
                                independent_recovery: independent,
                                coalesce,
                                per_address,
                                combining: false,
                                replicated: false,
                            };
                            for op in MapVictimOp::all() {
                                let out = map_sweep(op, &config);
                                assert_eq!(out.violations, 0, "{op} under {config:?}: {out:?}");
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn map_sweep_observes_all_three_outcome_classes_for_insert() {
        let out = map_sweep(
            MapVictimOp::Insert,
            &SweepConfig { adversary: WritebackAdversary::All, ..Default::default() },
        );
        assert!(out.not_prepared > 0, "{out:?}");
        assert!(out.no_effect > 0, "{out:?}");
        assert!(out.effect > 0, "{out:?}");
    }

    #[test]
    fn concurrent_map_crash_runs_leave_exactly_the_expected_bindings() {
        for seed in 0..8 {
            concurrent_map_crash_run(3, seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn partial_recovery_map_runs_leave_exactly_the_expected_bindings() {
        for seed in 0..4 {
            for survivors in [1, 2] {
                partial_recovery_map_crash_run(3, survivors, seed)
                    .unwrap_or_else(|e| panic!("seed {seed} survivors {survivors}: {e}"));
            }
        }
    }

    #[test]
    fn sweeps_have_no_violations_under_default_config() {
        for op in VictimOp::all() {
            let out = sweep(op, &SweepConfig::default());
            assert!(out.crash_points > 0, "{op}: no crash points?");
            assert_eq!(out.violations, 0, "{op}: {out:?}");
        }
    }

    #[test]
    fn sweeps_have_no_violations_under_adversaries_and_granularities() {
        for adversary in
            [WritebackAdversary::All, WritebackAdversary::Random { seed: 5, prob: 0.3 }]
        {
            for granularity in [FlushGranularity::Line, FlushGranularity::Word] {
                for independent in [false, true] {
                    for coalesce in [false, true] {
                        for per_address in [false, true] {
                            if per_address && !coalesce {
                                continue; // per-address drains are a no-op without coalescing
                            }
                            let config = SweepConfig {
                                adversary: adversary.clone(),
                                granularity,
                                independent_recovery: independent,
                                coalesce,
                                per_address,
                                combining: false,
                                replicated: false,
                            };
                            for op in VictimOp::all() {
                                let out = sweep(op, &config);
                                assert_eq!(out.violations, 0, "{op} under {config:?}: {out:?}");
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn combining_sweeps_have_no_violations_across_flush_modes() {
        // Every crash point of a combining exec — combiner death before,
        // between and after the three persist phases included — across
        // all coalesce×per-address combos and both recovery styles.
        for granularity in [FlushGranularity::Line, FlushGranularity::Word] {
            for independent in [false, true] {
                for coalesce in [false, true] {
                    for per_address in [false, true] {
                        if per_address && !coalesce {
                            continue;
                        }
                        let config = SweepConfig {
                            adversary: WritebackAdversary::Random { seed: 11, prob: 0.4 },
                            granularity,
                            independent_recovery: independent,
                            coalesce,
                            per_address,
                            combining: true,
                            replicated: false,
                        };
                        for op in VictimOp::all() {
                            let out = sweep(op, &config);
                            assert!(out.crash_points > 0, "{op}: no crash points?");
                            assert_eq!(out.violations, 0, "{op} under {config:?}: {out:?}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn replicated_sweeps_have_no_violations_across_flush_modes() {
        // Every crash point of a replicated exec — appender death between
        // the announce's ordering points, before and after the batch
        // persist, and around the committed-seq publish — across flush
        // modes and both recovery styles.
        for granularity in [FlushGranularity::Line, FlushGranularity::Word] {
            for independent in [false, true] {
                for coalesce in [false, true] {
                    for per_address in [false, true] {
                        if per_address && !coalesce {
                            continue;
                        }
                        let config = SweepConfig {
                            adversary: WritebackAdversary::Random { seed: 13, prob: 0.4 },
                            granularity,
                            independent_recovery: independent,
                            coalesce,
                            per_address,
                            combining: false,
                            replicated: true,
                        };
                        for op in VictimOp::all() {
                            let out = sweep(op, &config);
                            assert!(out.crash_points > 0, "{op}: no crash points?");
                            assert_eq!(out.violations, 0, "{op} under {config:?}: {out:?}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn replicated_sweep_observes_all_three_outcome_classes_for_enqueue() {
        let out = sweep(
            VictimOp::Enqueue,
            &SweepConfig {
                adversary: WritebackAdversary::All,
                replicated: true,
                ..Default::default()
            },
        );
        assert!(out.not_prepared > 0, "{out:?}");
        assert!(out.effect > 0, "{out:?}");
    }

    #[test]
    fn combining_sweep_observes_all_three_outcome_classes_for_enqueue() {
        let out = sweep(
            VictimOp::Enqueue,
            &SweepConfig {
                adversary: WritebackAdversary::All,
                combining: true,
                ..Default::default()
            },
        );
        assert!(out.not_prepared > 0, "{out:?}");
        assert!(out.effect > 0, "{out:?}");
    }

    #[test]
    fn sweep_observes_all_three_outcome_classes_for_enqueue() {
        // Across all crash points of an enqueue with a permissive
        // adversary, every Figure 2 class should occur at least once.
        let out = sweep(
            VictimOp::Enqueue,
            &SweepConfig { adversary: WritebackAdversary::All, ..Default::default() },
        );
        assert!(out.not_prepared > 0, "{out:?}");
        assert!(out.effect > 0, "{out:?}");
    }

    #[test]
    fn concurrent_crash_runs_conserve_values() {
        for seed in 0..8 {
            concurrent_crash_run(3, seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn combining_concurrent_crash_runs_conserve_values() {
        for seed in 0..8 {
            concurrent_crash_run_combining(3, seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn partial_recovery_runs_conserve_values() {
        for seed in 0..4 {
            for survivors in [1, 2] {
                partial_recovery_crash_run(3, survivors, seed)
                    .unwrap_or_else(|e| panic!("seed {seed} survivors {survivors}: {e}"));
            }
        }
    }

    #[test]
    fn combining_partial_recovery_runs_conserve_values() {
        for seed in 0..4 {
            for survivors in [1, 2] {
                partial_recovery_crash_run_combining(3, survivors, seed)
                    .unwrap_or_else(|e| panic!("seed {seed} survivors {survivors}: {e}"));
            }
        }
    }

    #[test]
    fn replicated_concurrent_crash_runs_conserve_values() {
        for seed in 0..8 {
            concurrent_crash_run_replicated(3, seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn replicated_partial_recovery_runs_conserve_values() {
        for seed in 0..4 {
            for survivors in [1, 2] {
                partial_recovery_crash_run_replicated(3, survivors, seed)
                    .unwrap_or_else(|e| panic!("seed {seed} survivors {survivors}: {e}"));
            }
        }
    }
}
