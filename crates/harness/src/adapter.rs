//! A single interface over every queue in the evaluation.
//!
//! Two axes select an implementation under test:
//!
//! * [`QueueKind`] — *which algorithm* (the queues of Figures 5a/5b);
//! * [`Backend`] — *which memory* ([`PmemPool`] simulator or
//!   [`DramPool`] plain atomics, experiment E8's ablation axis).
//!
//! [`QueueKind::build`] keeps the historical pmem-only behaviour;
//! [`QueueKind::build_on`] picks the backend explicitly.

use std::fmt::Debug;

use dss_baselines::{DurableQueue, LogQueue, MsQueue};
use dss_core::{CombiningQueue, DssQueue, ReplicatedQueue};
use dss_pmem::{
    DramPool, FlushGranularity, Memory, PlacementPolicy, PmemPool, StatsSnapshot, ThreadHandle,
};
use dss_pmwcas::CasWithEffectQueue;
use dss_spec::types::QueueResp;

/// The queue implementations of the paper's Figures 5a and 5b.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum QueueKind {
    /// Michael–Scott queue (volatile; Figure 5a).
    Ms,
    /// DSS queue, operations applied non-detectably (Figure 5a).
    DssNonDetectable,
    /// DSS queue, operations applied detectably via prep/exec (both
    /// figures).
    DssDetectable,
    /// DSS queue under the flat-combining execution layer (E14): the same
    /// detectable prep/exec surface, but `exec` is served by a
    /// lease-holding combiner that batch-applies announced operations
    /// with one persist per batch phase.
    DssCombining,
    /// DSS queue under the replicated execution layer (E15): writes go
    /// through a leased appender into a durable op log; reads are served
    /// replica-locally from volatile log-fed replicas
    /// ([`QueueUnderTest::peek`]), with no flushes and no shared-line
    /// writes on the read path.
    DssReplicated,
    /// Friedman et al.'s durable queue (recoverable, not detectable).
    Durable,
    /// Friedman et al.'s log queue (detectable; Figure 5b).
    Log,
    /// General CASWithEffect queue over PMwCAS (Figure 5b).
    CweGeneral,
    /// Fast CASWithEffect queue over PMwCAS (Figure 5b).
    CweFast,
}

/// The memory backend a queue under test runs on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Backend {
    /// The crash-testable persistent-memory simulator ([`PmemPool`]).
    #[default]
    Pmem,
    /// Plain DRAM atomics ([`DramPool`]): no shadow state, no stats, and
    /// flush/fence are no-ops.
    Dram,
}

impl Backend {
    /// The label used in tables and flags (`pmem`/`dram`).
    pub fn label(self) -> &'static str {
        match self {
            Backend::Pmem => "pmem",
            Backend::Dram => "dram",
        }
    }

    /// Parses a `--backend` flag value.
    ///
    /// # Panics
    ///
    /// Panics with a usage hint on anything but `pmem`/`dram`.
    pub fn parse(s: &str) -> Backend {
        match s {
            "pmem" => Backend::Pmem,
            "dram" => Backend::Dram,
            b => panic!("unknown backend {b} (pmem|dram)"),
        }
    }

    /// Both backends, in flag order.
    pub fn all() -> [Backend; 2] {
        [Backend::Pmem, Backend::Dram]
    }
}

impl QueueKind {
    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            QueueKind::Ms => "MS queue",
            QueueKind::DssNonDetectable => "DSS queue non-detectable",
            QueueKind::DssDetectable => "DSS queue detectable",
            QueueKind::DssCombining => "DSS queue combining",
            QueueKind::DssReplicated => "DSS queue replicated",
            QueueKind::Durable => "Durable queue",
            QueueKind::Log => "Log queue",
            QueueKind::CweGeneral => "General CASWithEffect queue",
            QueueKind::CweFast => "Fast CASWithEffect queue",
        }
    }

    /// Builds the queue for `nthreads` threads with `nodes_per_thread`
    /// pre-allocated nodes each, on the default [`Backend::Pmem`].
    pub fn build(self, nthreads: usize, nodes_per_thread: u64) -> Box<dyn QueueUnderTest> {
        self.build_on(Backend::Pmem, nthreads, nodes_per_thread)
    }

    /// Builds the queue on an explicit [`Backend`].
    pub fn build_on(
        self,
        backend: Backend,
        nthreads: usize,
        nodes_per_thread: u64,
    ) -> Box<dyn QueueUnderTest> {
        match backend {
            Backend::Pmem => self.build_in::<PmemPool>(nthreads, nodes_per_thread),
            Backend::Dram => self.build_in::<DramPool>(nthreads, nodes_per_thread),
        }
    }

    /// Builds the queue on a backend chosen at the type level.
    pub fn build_in<M: Memory>(
        self,
        nthreads: usize,
        nodes_per_thread: u64,
    ) -> Box<dyn QueueUnderTest> {
        match self {
            QueueKind::Ms => Box::new(MsQueue::<M>::new_in(nthreads, nodes_per_thread)),
            QueueKind::DssNonDetectable => Box::new(DssPlain(DssQueue::<M>::new_in(
                nthreads,
                nodes_per_thread,
                FlushGranularity::Line,
            ))),
            QueueKind::DssDetectable => Box::new(DssDet(DssQueue::<M>::new_in(
                nthreads,
                nodes_per_thread,
                FlushGranularity::Line,
            ))),
            QueueKind::DssCombining => Box::new(DssComb(CombiningQueue::<M>::new_in(
                nthreads,
                nodes_per_thread,
                FlushGranularity::Line,
            ))),
            QueueKind::DssReplicated => Box::new(DssRepl(ReplicatedQueue::<M>::new_in(
                nthreads,
                nodes_per_thread,
                FlushGranularity::Line,
            ))),
            QueueKind::Durable => Box::new(DurableQueue::<M>::new_in(nthreads, nodes_per_thread)),
            QueueKind::Log => Box::new(LogQueue::<M>::new_in(nthreads, nodes_per_thread)),
            QueueKind::CweGeneral => {
                Box::new(Cwe(CasWithEffectQueue::<M>::new_general_in(nthreads, nodes_per_thread)))
            }
            QueueKind::CweFast => {
                Box::new(Cwe(CasWithEffectQueue::<M>::new_fast_in(nthreads, nodes_per_thread)))
            }
        }
    }

    /// The queues of Figure 5a, in the paper's legend order.
    pub fn figure_5a() -> [QueueKind; 3] {
        [QueueKind::Ms, QueueKind::DssNonDetectable, QueueKind::DssDetectable]
    }

    /// The queues of Figure 5b, in the paper's legend order.
    pub fn figure_5b() -> [QueueKind; 4] {
        [QueueKind::DssDetectable, QueueKind::Log, QueueKind::CweFast, QueueKind::CweGeneral]
    }

    /// Every kind of the historical sweeps (E3/E9/E10 and the recorded
    /// tables keyed to them). [`DssCombining`](Self::DssCombining) is
    /// deliberately *not* here — it rides the contention benchmark
    /// ([`contention`](Self::contention)) so the older tables keep their
    /// row sets.
    pub fn all() -> [QueueKind; 7] {
        [
            QueueKind::Ms,
            QueueKind::DssNonDetectable,
            QueueKind::DssDetectable,
            QueueKind::Durable,
            QueueKind::Log,
            QueueKind::CweGeneral,
            QueueKind::CweFast,
        ]
    }

    /// The kinds of the contention benchmark (E14): every historical kind
    /// plus the leased execution layers, placed right after the
    /// CAS-racing detectable queue they are the alternatives to.
    pub fn contention() -> [QueueKind; 9] {
        [
            QueueKind::Ms,
            QueueKind::DssNonDetectable,
            QueueKind::DssDetectable,
            QueueKind::DssCombining,
            QueueKind::DssReplicated,
            QueueKind::Durable,
            QueueKind::Log,
            QueueKind::CweGeneral,
            QueueKind::CweFast,
        ]
    }

    /// The kinds of the replication read-scaling benchmark (E15): the
    /// replicated layer against the CAS-racing detectable single instance
    /// whose reads walk the shared structure.
    pub fn replication() -> [QueueKind; 2] {
        [QueueKind::DssDetectable, QueueKind::DssReplicated]
    }

    /// Builds the queue with an explicit volatile replica count — the
    /// E15 `--replicas` axis. Only
    /// [`DssReplicated`](Self::DssReplicated) has replicas (built sharded,
    /// on pmem); every other kind ignores the count and builds as
    /// [`build`](Self::build) would.
    pub fn build_with_replicas(
        self,
        nthreads: usize,
        nodes_per_thread: u64,
        nreplicas: usize,
    ) -> Box<dyn QueueUnderTest> {
        match self {
            QueueKind::DssReplicated => {
                Box::new(DssRepl(ReplicatedQueue::<PmemPool>::new_configured(
                    nthreads,
                    nodes_per_thread,
                    nreplicas.min(nthreads),
                    PlacementPolicy::Sharded,
                    FlushGranularity::Line,
                )))
            }
            kind => kind.build(nthreads, nodes_per_thread),
        }
    }
}

/// A queue as the workload driver sees it: registration plus enqueue and
/// dequeue by [`ThreadHandle`], plus the backend knobs the experiments use
/// (flush penalty and operation statistics), exposed backend-agnostically
/// so a driver never needs the concrete pool type.
///
/// Detectable implementations run their full prep/exec protocol inside
/// `enqueue`/`dequeue`, exactly as the paper's "detectable" series do.
pub trait QueueUnderTest: Send + Sync + Debug {
    /// Claims a thread slot from the queue's registry.
    ///
    /// # Panics
    ///
    /// Panics if all slots are taken (drivers size queues to their worker
    /// count and register each worker exactly once).
    fn register_thread(&self) -> ThreadHandle;

    /// Enqueues `val` on behalf of the handle's thread.
    ///
    /// # Panics
    ///
    /// Panics if the node pool is exhausted (size the pools for the
    /// workload; the driver keeps queues short).
    fn enqueue(&self, h: ThreadHandle, val: u64);

    /// Dequeues on behalf of the handle's thread.
    fn dequeue(&self, h: ThreadHandle) -> QueueResp;

    /// Reads the front value without removing it — the E15 read probe.
    ///
    /// Only the kinds in [`QueueKind::replication`] implement it: the
    /// replicated layer answers from the caller's volatile replica after
    /// catching up to the committed log prefix, and the CAS-racing
    /// detectable queue walks the shared persistent structure (the
    /// baseline a replica-local read is measured against).
    ///
    /// # Panics
    ///
    /// Panics for every other kind (the read-mix driver only runs the
    /// replication set).
    fn peek(&self, _h: ThreadHandle) -> Option<u64> {
        panic!("this queue kind has no read probe (peek)")
    }

    /// Sets the backend's artificial flush latency (no-op on backends
    /// without a persistence domain).
    fn set_flush_penalty(&self, spins: u64);

    /// Enables or disables flush coalescing on the backend (no-op on
    /// backends without a persistence domain). The `--coalesce` axis.
    fn set_coalescing(&self, on: bool);

    /// Selects per-address dependency drains over whole-set drains at the
    /// backend's ordering points (no-op on backends without a persistence
    /// domain; meaningful only under coalescing). The `--per-address`
    /// axis.
    fn set_per_address_drains(&self, on: bool);

    /// Enables or disables bounded exponential backoff in the queue's
    /// retry loops. The `--backoff` axis.
    fn set_backoff(&self, on: bool);

    /// The backend's operation counters (all-zero on uninstrumented
    /// backends).
    fn stats(&self) -> StatsSnapshot;

    /// Resets the backend's operation counters, if any.
    fn reset_stats(&self);
}

impl<M: Memory> QueueUnderTest for MsQueue<M> {
    fn register_thread(&self) -> ThreadHandle {
        MsQueue::register_thread(self).expect("thread slots exhausted")
    }
    fn enqueue(&self, h: ThreadHandle, val: u64) {
        MsQueue::enqueue(self, h, val).expect("node pool exhausted");
    }
    fn dequeue(&self, h: ThreadHandle) -> QueueResp {
        MsQueue::dequeue(self, h)
    }
    fn set_flush_penalty(&self, spins: u64) {
        self.pool().set_flush_penalty(spins);
    }
    fn set_coalescing(&self, on: bool) {
        self.pool().set_coalescing(on);
    }
    fn set_per_address_drains(&self, on: bool) {
        self.pool().set_per_address_drains(on);
    }
    fn set_backoff(&self, on: bool) {
        MsQueue::set_backoff(self, on);
    }
    fn stats(&self) -> StatsSnapshot {
        self.pool().stats()
    }
    fn reset_stats(&self) {
        self.pool().reset_stats();
    }
}

impl<M: Memory> QueueUnderTest for DurableQueue<M> {
    fn register_thread(&self) -> ThreadHandle {
        DurableQueue::register_thread(self).expect("thread slots exhausted")
    }
    fn enqueue(&self, h: ThreadHandle, val: u64) {
        DurableQueue::enqueue(self, h, val).expect("node pool exhausted");
    }
    fn dequeue(&self, h: ThreadHandle) -> QueueResp {
        DurableQueue::dequeue(self, h)
    }
    fn set_flush_penalty(&self, spins: u64) {
        self.pool().set_flush_penalty(spins);
    }
    fn set_coalescing(&self, on: bool) {
        self.pool().set_coalescing(on);
    }
    fn set_per_address_drains(&self, on: bool) {
        self.pool().set_per_address_drains(on);
    }
    fn set_backoff(&self, on: bool) {
        DurableQueue::set_backoff(self, on);
    }
    fn stats(&self) -> StatsSnapshot {
        self.pool().stats()
    }
    fn reset_stats(&self) {
        self.pool().reset_stats();
    }
}

impl<M: Memory> QueueUnderTest for LogQueue<M> {
    fn register_thread(&self) -> ThreadHandle {
        LogQueue::register_thread(self).expect("thread slots exhausted")
    }
    fn enqueue(&self, h: ThreadHandle, val: u64) {
        LogQueue::enqueue(self, h, val).expect("node pool exhausted");
    }
    fn dequeue(&self, h: ThreadHandle) -> QueueResp {
        LogQueue::dequeue(self, h).expect("log pool exhausted")
    }
    fn set_flush_penalty(&self, spins: u64) {
        self.pool().set_flush_penalty(spins);
    }
    fn set_coalescing(&self, on: bool) {
        self.pool().set_coalescing(on);
    }
    fn set_per_address_drains(&self, on: bool) {
        self.pool().set_per_address_drains(on);
    }
    fn set_backoff(&self, on: bool) {
        LogQueue::set_backoff(self, on);
    }
    fn stats(&self) -> StatsSnapshot {
        self.pool().stats()
    }
    fn reset_stats(&self) {
        self.pool().reset_stats();
    }
}

/// DSS queue through the non-detectable fast path.
#[derive(Debug)]
struct DssPlain<M: Memory>(DssQueue<M>);

impl<M: Memory> QueueUnderTest for DssPlain<M> {
    fn register_thread(&self) -> ThreadHandle {
        self.0.register_thread().expect("thread slots exhausted")
    }
    fn enqueue(&self, h: ThreadHandle, val: u64) {
        self.0.enqueue(h, val).expect("node pool exhausted");
    }
    fn dequeue(&self, h: ThreadHandle) -> QueueResp {
        self.0.dequeue(h)
    }
    fn set_flush_penalty(&self, spins: u64) {
        self.0.pool().set_flush_penalty(spins);
    }
    fn set_coalescing(&self, on: bool) {
        self.0.pool().set_coalescing(on);
    }
    fn set_per_address_drains(&self, on: bool) {
        self.0.pool().set_per_address_drains(on);
    }
    fn set_backoff(&self, on: bool) {
        self.0.set_backoff(on);
    }
    fn stats(&self) -> StatsSnapshot {
        self.0.pool().stats()
    }
    fn reset_stats(&self) {
        self.0.pool().reset_stats();
    }
}

/// DSS queue through the detectable prep/exec protocol.
#[derive(Debug)]
struct DssDet<M: Memory>(DssQueue<M>);

impl<M: Memory> QueueUnderTest for DssDet<M> {
    fn register_thread(&self) -> ThreadHandle {
        self.0.register_thread().expect("thread slots exhausted")
    }
    fn enqueue(&self, h: ThreadHandle, val: u64) {
        self.0.prep_enqueue(h, val).expect("node pool exhausted");
        self.0.exec_enqueue(h);
    }
    fn dequeue(&self, h: ThreadHandle) -> QueueResp {
        self.0.prep_dequeue(h);
        self.0.exec_dequeue(h)
    }
    fn peek(&self, h: ThreadHandle) -> Option<u64> {
        self.0.peek_front(h)
    }
    fn set_flush_penalty(&self, spins: u64) {
        self.0.pool().set_flush_penalty(spins);
    }
    fn set_coalescing(&self, on: bool) {
        self.0.pool().set_coalescing(on);
    }
    fn set_per_address_drains(&self, on: bool) {
        self.0.pool().set_per_address_drains(on);
    }
    fn set_backoff(&self, on: bool) {
        self.0.set_backoff(on);
    }
    fn stats(&self) -> StatsSnapshot {
        self.0.pool().stats()
    }
    fn reset_stats(&self) {
        self.0.pool().reset_stats();
    }
}

/// DSS queue under the flat-combining execution layer (always
/// detectable: combining has no non-detectable path — every operation
/// goes through the publication array).
#[derive(Debug)]
struct DssComb<M: Memory>(CombiningQueue<M>);

impl<M: Memory> QueueUnderTest for DssComb<M> {
    fn register_thread(&self) -> ThreadHandle {
        self.0.register_thread().expect("thread slots exhausted")
    }
    fn enqueue(&self, h: ThreadHandle, val: u64) {
        self.0.prep_enqueue(h, val).expect("node pool exhausted");
        self.0.exec_enqueue(h);
    }
    fn dequeue(&self, h: ThreadHandle) -> QueueResp {
        self.0.prep_dequeue(h);
        self.0.exec_dequeue(h)
    }
    fn set_flush_penalty(&self, spins: u64) {
        self.0.pool().set_flush_penalty(spins);
    }
    fn set_coalescing(&self, on: bool) {
        self.0.pool().set_coalescing(on);
    }
    fn set_per_address_drains(&self, on: bool) {
        self.0.pool().set_per_address_drains(on);
    }
    fn set_backoff(&self, on: bool) {
        self.0.set_backoff(on);
    }
    fn stats(&self) -> StatsSnapshot {
        self.0.pool().stats()
    }
    fn reset_stats(&self) {
        self.0.pool().reset_stats();
    }
}

/// DSS queue under the log-fed replicated execution layer (always
/// detectable: every write is announced, appended to the durable op log
/// by the leased appender, and replayed into the volatile replicas).
#[derive(Debug)]
struct DssRepl<M: Memory>(ReplicatedQueue<M>);

impl<M: Memory> QueueUnderTest for DssRepl<M> {
    fn register_thread(&self) -> ThreadHandle {
        self.0.register_thread().expect("thread slots exhausted")
    }
    fn enqueue(&self, h: ThreadHandle, val: u64) {
        self.0.prep_enqueue(h, val).expect("admission gate refused the enqueue");
        self.0.exec_enqueue(h);
    }
    fn dequeue(&self, h: ThreadHandle) -> QueueResp {
        self.0.prep_dequeue(h);
        self.0.exec_dequeue(h)
    }
    fn peek(&self, h: ThreadHandle) -> Option<u64> {
        self.0.peek_front(h)
    }
    fn set_flush_penalty(&self, spins: u64) {
        self.0.pool().set_flush_penalty(spins);
    }
    fn set_coalescing(&self, on: bool) {
        self.0.pool().set_coalescing(on);
    }
    fn set_per_address_drains(&self, on: bool) {
        self.0.pool().set_per_address_drains(on);
    }
    fn set_backoff(&self, on: bool) {
        self.0.set_backoff(on);
    }
    fn stats(&self) -> StatsSnapshot {
        self.0.pool().stats()
    }
    fn reset_stats(&self) {
        self.0.pool().reset_stats();
    }
}

/// Either CASWithEffect variant (always detectable).
#[derive(Debug)]
struct Cwe<M: Memory>(CasWithEffectQueue<M>);

impl<M: Memory> QueueUnderTest for Cwe<M> {
    fn register_thread(&self) -> ThreadHandle {
        self.0.register_thread().expect("thread slots exhausted")
    }
    fn enqueue(&self, h: ThreadHandle, val: u64) {
        self.0.prep_enqueue(h, val).expect("node pool exhausted");
        self.0.exec_enqueue(h);
    }
    fn dequeue(&self, h: ThreadHandle) -> QueueResp {
        self.0.prep_dequeue(h);
        self.0.exec_dequeue(h)
    }
    fn set_flush_penalty(&self, spins: u64) {
        self.0.pool().set_flush_penalty(spins);
    }
    fn set_coalescing(&self, on: bool) {
        self.0.pool().set_coalescing(on);
    }
    fn set_per_address_drains(&self, on: bool) {
        self.0.pool().set_per_address_drains(on);
    }
    fn set_backoff(&self, on: bool) {
        self.0.set_backoff(on);
    }
    fn stats(&self) -> StatsSnapshot {
        self.0.pool().stats()
    }
    fn reset_stats(&self) {
        self.0.pool().reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_round_trips() {
        for kind in QueueKind::all() {
            let q = kind.build(2, 32);
            let h0 = q.register_thread();
            let h1 = q.register_thread();
            q.enqueue(h0, 5);
            q.enqueue(h1, 6);
            assert_eq!(q.dequeue(h0), QueueResp::Value(5), "{}", kind.label());
            assert_eq!(q.dequeue(h1), QueueResp::Value(6), "{}", kind.label());
            assert_eq!(q.dequeue(h0), QueueResp::Empty, "{}", kind.label());
        }
    }

    #[test]
    fn every_kind_round_trips_on_dram() {
        for kind in QueueKind::all() {
            let q = kind.build_on(Backend::Dram, 2, 32);
            let h0 = q.register_thread();
            let h1 = q.register_thread();
            q.enqueue(h0, 5);
            q.enqueue(h1, 6);
            assert_eq!(q.dequeue(h0), QueueResp::Value(5), "{}", kind.label());
            assert_eq!(q.dequeue(h1), QueueResp::Value(6), "{}", kind.label());
            assert_eq!(q.dequeue(h0), QueueResp::Empty, "{}", kind.label());
            assert_eq!(q.stats().total(), 0, "dram counts nothing: {}", kind.label());
        }
    }

    #[test]
    fn coalesce_and_backoff_axes_apply_to_every_kind() {
        for kind in QueueKind::all() {
            for backend in Backend::all() {
                let q = kind.build_on(backend, 2, 32);
                let h0 = q.register_thread();
                let h1 = q.register_thread();
                q.set_coalescing(true);
                q.set_backoff(true);
                q.enqueue(h0, 5);
                assert_eq!(q.dequeue(h1), QueueResp::Value(5), "{}", kind.label());
                q.set_coalescing(false);
                q.set_backoff(false);
            }
        }
    }

    #[test]
    fn coalescing_absorbs_flushes_where_durability_permits() {
        let measure = |kind: QueueKind, coalesce: bool, per_address: bool| {
            let q = kind.build(1, 32);
            let h0 = q.register_thread();
            q.set_coalescing(coalesce);
            q.set_per_address_drains(per_address);
            q.reset_stats();
            for i in 0..32 {
                q.enqueue(h0, i);
                q.dequeue(h0);
            }
            let s = q.stats();
            (s.flushes, s.flushes_coalesced)
        };
        // The durable queue's claim-word flush legitimately survives to
        // the next dequeue of the same line, so per-address coalescing
        // must absorb writebacks on this workload.
        let (flushes_off, coalesced_off) = measure(QueueKind::Durable, false, false);
        let (flushes_on, coalesced_on) = measure(QueueKind::Durable, true, true);
        assert_eq!(coalesced_off, 0);
        assert_eq!(flushes_on, flushes_off, "issued flushes are workload-determined");
        assert!(coalesced_on > 0, "some flushes must coalesce");
        // The DSS queue, by contrast, must coalesce *nothing* here: its
        // only same-line re-flush window was the X[tid] announce between
        // prep and exec, and detectability requires that announce to be
        // durable before prep returns (a crash that forgets a completed
        // prep makes resolve report the previous operation).
        let (_, dss_coalesced) = measure(QueueKind::DssDetectable, true, false);
        assert_eq!(dss_coalesced, 0, "a completed prep's announce may not stay pending");
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            QueueKind::all().iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), QueueKind::all().len());
    }

    #[test]
    fn figure_sets_are_subsets_of_all() {
        for k in QueueKind::figure_5a().iter().chain(QueueKind::figure_5b().iter()) {
            assert!(QueueKind::all().contains(k));
        }
    }

    #[test]
    fn backend_labels_parse_back() {
        for b in Backend::all() {
            assert_eq!(Backend::parse(b.label()), b);
        }
    }
}
