//! A single interface over every queue in the evaluation.

use std::fmt::Debug;
use std::sync::Arc;

use dss_baselines::{DurableQueue, LogQueue, MsQueue};
use dss_core::DssQueue;
use dss_pmem::PmemPool;
use dss_pmwcas::CasWithEffectQueue;
use dss_spec::types::QueueResp;

/// The queue implementations of the paper's Figures 5a and 5b.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum QueueKind {
    /// Michael–Scott queue (volatile; Figure 5a).
    Ms,
    /// DSS queue, operations applied non-detectably (Figure 5a).
    DssNonDetectable,
    /// DSS queue, operations applied detectably via prep/exec (both
    /// figures).
    DssDetectable,
    /// Friedman et al.'s durable queue (recoverable, not detectable).
    Durable,
    /// Friedman et al.'s log queue (detectable; Figure 5b).
    Log,
    /// General CASWithEffect queue over PMwCAS (Figure 5b).
    CweGeneral,
    /// Fast CASWithEffect queue over PMwCAS (Figure 5b).
    CweFast,
}

impl QueueKind {
    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            QueueKind::Ms => "MS queue",
            QueueKind::DssNonDetectable => "DSS queue non-detectable",
            QueueKind::DssDetectable => "DSS queue detectable",
            QueueKind::Durable => "Durable queue",
            QueueKind::Log => "Log queue",
            QueueKind::CweGeneral => "General CASWithEffect queue",
            QueueKind::CweFast => "Fast CASWithEffect queue",
        }
    }

    /// Builds the queue for `nthreads` threads with `nodes_per_thread`
    /// pre-allocated nodes each.
    pub fn build(self, nthreads: usize, nodes_per_thread: u64) -> Box<dyn QueueUnderTest> {
        match self {
            QueueKind::Ms => Box::new(MsQueue::new(nthreads, nodes_per_thread)),
            QueueKind::DssNonDetectable => {
                Box::new(DssPlain(DssQueue::new(nthreads, nodes_per_thread)))
            }
            QueueKind::DssDetectable => {
                Box::new(DssDet(DssQueue::new(nthreads, nodes_per_thread)))
            }
            QueueKind::Durable => Box::new(DurableQueue::new(nthreads, nodes_per_thread)),
            QueueKind::Log => Box::new(LogQueue::new(nthreads, nodes_per_thread)),
            QueueKind::CweGeneral => {
                Box::new(Cwe(CasWithEffectQueue::new_general(nthreads, nodes_per_thread)))
            }
            QueueKind::CweFast => {
                Box::new(Cwe(CasWithEffectQueue::new_fast(nthreads, nodes_per_thread)))
            }
        }
    }

    /// The queues of Figure 5a, in the paper's legend order.
    pub fn figure_5a() -> [QueueKind; 3] {
        [QueueKind::Ms, QueueKind::DssNonDetectable, QueueKind::DssDetectable]
    }

    /// The queues of Figure 5b, in the paper's legend order.
    pub fn figure_5b() -> [QueueKind; 4] {
        [QueueKind::DssDetectable, QueueKind::Log, QueueKind::CweFast, QueueKind::CweGeneral]
    }

    /// Every kind (for sweeps like E3).
    pub fn all() -> [QueueKind; 7] {
        [
            QueueKind::Ms,
            QueueKind::DssNonDetectable,
            QueueKind::DssDetectable,
            QueueKind::Durable,
            QueueKind::Log,
            QueueKind::CweGeneral,
            QueueKind::CweFast,
        ]
    }
}

/// A queue as the workload driver sees it: enqueue and dequeue by thread
/// ID, plus access to the underlying pool for stats and flush penalties.
///
/// Detectable implementations run their full prep/exec protocol inside
/// `enqueue`/`dequeue`, exactly as the paper's "detectable" series do.
pub trait QueueUnderTest: Send + Sync + Debug {
    /// Enqueues `val` on behalf of `tid`.
    ///
    /// # Panics
    ///
    /// Panics if the node pool is exhausted (size the pools for the
    /// workload; the driver keeps queues short).
    fn enqueue(&self, tid: usize, val: u64);

    /// Dequeues on behalf of `tid`.
    fn dequeue(&self, tid: usize) -> QueueResp;

    /// The underlying persistent-memory pool.
    fn pool(&self) -> &Arc<PmemPool>;
}

impl QueueUnderTest for MsQueue {
    fn enqueue(&self, tid: usize, val: u64) {
        MsQueue::enqueue(self, tid, val).expect("node pool exhausted");
    }
    fn dequeue(&self, tid: usize) -> QueueResp {
        MsQueue::dequeue(self, tid)
    }
    fn pool(&self) -> &Arc<PmemPool> {
        MsQueue::pool(self)
    }
}

impl QueueUnderTest for DurableQueue {
    fn enqueue(&self, tid: usize, val: u64) {
        DurableQueue::enqueue(self, tid, val).expect("node pool exhausted");
    }
    fn dequeue(&self, tid: usize) -> QueueResp {
        DurableQueue::dequeue(self, tid)
    }
    fn pool(&self) -> &Arc<PmemPool> {
        DurableQueue::pool(self)
    }
}

impl QueueUnderTest for LogQueue {
    fn enqueue(&self, tid: usize, val: u64) {
        LogQueue::enqueue(self, tid, val).expect("node pool exhausted");
    }
    fn dequeue(&self, tid: usize) -> QueueResp {
        LogQueue::dequeue(self, tid).expect("log pool exhausted")
    }
    fn pool(&self) -> &Arc<PmemPool> {
        LogQueue::pool(self)
    }
}

/// DSS queue through the non-detectable fast path.
#[derive(Debug)]
struct DssPlain(DssQueue);

impl QueueUnderTest for DssPlain {
    fn enqueue(&self, tid: usize, val: u64) {
        self.0.enqueue(tid, val).expect("node pool exhausted");
    }
    fn dequeue(&self, tid: usize) -> QueueResp {
        self.0.dequeue(tid)
    }
    fn pool(&self) -> &Arc<PmemPool> {
        self.0.pool()
    }
}

/// DSS queue through the detectable prep/exec protocol.
#[derive(Debug)]
struct DssDet(DssQueue);

impl QueueUnderTest for DssDet {
    fn enqueue(&self, tid: usize, val: u64) {
        self.0.prep_enqueue(tid, val).expect("node pool exhausted");
        self.0.exec_enqueue(tid);
    }
    fn dequeue(&self, tid: usize) -> QueueResp {
        self.0.prep_dequeue(tid);
        self.0.exec_dequeue(tid)
    }
    fn pool(&self) -> &Arc<PmemPool> {
        self.0.pool()
    }
}

/// Either CASWithEffect variant (always detectable).
#[derive(Debug)]
struct Cwe(CasWithEffectQueue);

impl QueueUnderTest for Cwe {
    fn enqueue(&self, tid: usize, val: u64) {
        self.0.prep_enqueue(tid, val).expect("node pool exhausted");
        self.0.exec_enqueue(tid);
    }
    fn dequeue(&self, tid: usize) -> QueueResp {
        self.0.prep_dequeue(tid);
        self.0.exec_dequeue(tid)
    }
    fn pool(&self) -> &Arc<PmemPool> {
        self.0.pool()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_round_trips() {
        for kind in QueueKind::all() {
            let q = kind.build(2, 32);
            q.enqueue(0, 5);
            q.enqueue(1, 6);
            assert_eq!(q.dequeue(0), QueueResp::Value(5), "{}", kind.label());
            assert_eq!(q.dequeue(1), QueueResp::Value(6), "{}", kind.label());
            assert_eq!(q.dequeue(0), QueueResp::Empty, "{}", kind.label());
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            QueueKind::all().iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), QueueKind::all().len());
    }

    #[test]
    fn figure_sets_are_subsets_of_all() {
        for k in QueueKind::figure_5a().iter().chain(QueueKind::figure_5b().iter()) {
            assert!(QueueKind::all().contains(k));
        }
    }
}
