//! A single interface over every queue in the evaluation.
//!
//! Two axes select an implementation under test:
//!
//! * [`QueueKind`] — *which algorithm* (the queues of Figures 5a/5b);
//! * [`Backend`] — *which memory* ([`PmemPool`] simulator or
//!   [`DramPool`] plain atomics, experiment E8's ablation axis).
//!
//! [`QueueKind::build`] keeps the historical pmem-only behaviour;
//! [`QueueKind::build_on`] picks the backend explicitly.

use std::fmt::Debug;

use dss_baselines::{DurableQueue, LogQueue, MsQueue};
use dss_core::DssQueue;
use dss_pmem::{DramPool, FlushGranularity, Memory, PmemPool, StatsSnapshot};
use dss_pmwcas::CasWithEffectQueue;
use dss_spec::types::QueueResp;

/// The queue implementations of the paper's Figures 5a and 5b.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum QueueKind {
    /// Michael–Scott queue (volatile; Figure 5a).
    Ms,
    /// DSS queue, operations applied non-detectably (Figure 5a).
    DssNonDetectable,
    /// DSS queue, operations applied detectably via prep/exec (both
    /// figures).
    DssDetectable,
    /// Friedman et al.'s durable queue (recoverable, not detectable).
    Durable,
    /// Friedman et al.'s log queue (detectable; Figure 5b).
    Log,
    /// General CASWithEffect queue over PMwCAS (Figure 5b).
    CweGeneral,
    /// Fast CASWithEffect queue over PMwCAS (Figure 5b).
    CweFast,
}

/// The memory backend a queue under test runs on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Backend {
    /// The crash-testable persistent-memory simulator ([`PmemPool`]).
    #[default]
    Pmem,
    /// Plain DRAM atomics ([`DramPool`]): no shadow state, no stats, and
    /// flush/fence are no-ops.
    Dram,
}

impl Backend {
    /// The label used in tables and flags (`pmem`/`dram`).
    pub fn label(self) -> &'static str {
        match self {
            Backend::Pmem => "pmem",
            Backend::Dram => "dram",
        }
    }

    /// Parses a `--backend` flag value.
    ///
    /// # Panics
    ///
    /// Panics with a usage hint on anything but `pmem`/`dram`.
    pub fn parse(s: &str) -> Backend {
        match s {
            "pmem" => Backend::Pmem,
            "dram" => Backend::Dram,
            b => panic!("unknown backend {b} (pmem|dram)"),
        }
    }

    /// Both backends, in flag order.
    pub fn all() -> [Backend; 2] {
        [Backend::Pmem, Backend::Dram]
    }
}

impl QueueKind {
    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            QueueKind::Ms => "MS queue",
            QueueKind::DssNonDetectable => "DSS queue non-detectable",
            QueueKind::DssDetectable => "DSS queue detectable",
            QueueKind::Durable => "Durable queue",
            QueueKind::Log => "Log queue",
            QueueKind::CweGeneral => "General CASWithEffect queue",
            QueueKind::CweFast => "Fast CASWithEffect queue",
        }
    }

    /// Builds the queue for `nthreads` threads with `nodes_per_thread`
    /// pre-allocated nodes each, on the default [`Backend::Pmem`].
    pub fn build(self, nthreads: usize, nodes_per_thread: u64) -> Box<dyn QueueUnderTest> {
        self.build_on(Backend::Pmem, nthreads, nodes_per_thread)
    }

    /// Builds the queue on an explicit [`Backend`].
    pub fn build_on(
        self,
        backend: Backend,
        nthreads: usize,
        nodes_per_thread: u64,
    ) -> Box<dyn QueueUnderTest> {
        match backend {
            Backend::Pmem => self.build_in::<PmemPool>(nthreads, nodes_per_thread),
            Backend::Dram => self.build_in::<DramPool>(nthreads, nodes_per_thread),
        }
    }

    /// Builds the queue on a backend chosen at the type level.
    pub fn build_in<M: Memory>(
        self,
        nthreads: usize,
        nodes_per_thread: u64,
    ) -> Box<dyn QueueUnderTest> {
        match self {
            QueueKind::Ms => Box::new(MsQueue::<M>::new_in(nthreads, nodes_per_thread)),
            QueueKind::DssNonDetectable => Box::new(DssPlain(DssQueue::<M>::new_in(
                nthreads,
                nodes_per_thread,
                FlushGranularity::Line,
            ))),
            QueueKind::DssDetectable => Box::new(DssDet(DssQueue::<M>::new_in(
                nthreads,
                nodes_per_thread,
                FlushGranularity::Line,
            ))),
            QueueKind::Durable => Box::new(DurableQueue::<M>::new_in(nthreads, nodes_per_thread)),
            QueueKind::Log => Box::new(LogQueue::<M>::new_in(nthreads, nodes_per_thread)),
            QueueKind::CweGeneral => {
                Box::new(Cwe(CasWithEffectQueue::<M>::new_general_in(nthreads, nodes_per_thread)))
            }
            QueueKind::CweFast => {
                Box::new(Cwe(CasWithEffectQueue::<M>::new_fast_in(nthreads, nodes_per_thread)))
            }
        }
    }

    /// The queues of Figure 5a, in the paper's legend order.
    pub fn figure_5a() -> [QueueKind; 3] {
        [QueueKind::Ms, QueueKind::DssNonDetectable, QueueKind::DssDetectable]
    }

    /// The queues of Figure 5b, in the paper's legend order.
    pub fn figure_5b() -> [QueueKind; 4] {
        [QueueKind::DssDetectable, QueueKind::Log, QueueKind::CweFast, QueueKind::CweGeneral]
    }

    /// Every kind (for sweeps like E3).
    pub fn all() -> [QueueKind; 7] {
        [
            QueueKind::Ms,
            QueueKind::DssNonDetectable,
            QueueKind::DssDetectable,
            QueueKind::Durable,
            QueueKind::Log,
            QueueKind::CweGeneral,
            QueueKind::CweFast,
        ]
    }
}

/// A queue as the workload driver sees it: enqueue and dequeue by thread
/// ID, plus the backend knobs the experiments use (flush penalty and
/// operation statistics), exposed backend-agnostically so a driver never
/// needs the concrete pool type.
///
/// Detectable implementations run their full prep/exec protocol inside
/// `enqueue`/`dequeue`, exactly as the paper's "detectable" series do.
pub trait QueueUnderTest: Send + Sync + Debug {
    /// Enqueues `val` on behalf of `tid`.
    ///
    /// # Panics
    ///
    /// Panics if the node pool is exhausted (size the pools for the
    /// workload; the driver keeps queues short).
    fn enqueue(&self, tid: usize, val: u64);

    /// Dequeues on behalf of `tid`.
    fn dequeue(&self, tid: usize) -> QueueResp;

    /// Sets the backend's artificial flush latency (no-op on backends
    /// without a persistence domain).
    fn set_flush_penalty(&self, spins: u64);

    /// Enables or disables flush coalescing on the backend (no-op on
    /// backends without a persistence domain). The `--coalesce` axis.
    fn set_coalescing(&self, on: bool);

    /// Selects per-address dependency drains over whole-set drains at the
    /// backend's ordering points (no-op on backends without a persistence
    /// domain; meaningful only under coalescing). The `--per-address`
    /// axis.
    fn set_per_address_drains(&self, on: bool);

    /// Enables or disables bounded exponential backoff in the queue's
    /// retry loops. The `--backoff` axis.
    fn set_backoff(&self, on: bool);

    /// The backend's operation counters (all-zero on uninstrumented
    /// backends).
    fn stats(&self) -> StatsSnapshot;

    /// Resets the backend's operation counters, if any.
    fn reset_stats(&self);
}

impl<M: Memory> QueueUnderTest for MsQueue<M> {
    fn enqueue(&self, tid: usize, val: u64) {
        MsQueue::enqueue(self, tid, val).expect("node pool exhausted");
    }
    fn dequeue(&self, tid: usize) -> QueueResp {
        MsQueue::dequeue(self, tid)
    }
    fn set_flush_penalty(&self, spins: u64) {
        self.pool().set_flush_penalty(spins);
    }
    fn set_coalescing(&self, on: bool) {
        self.pool().set_coalescing(on);
    }
    fn set_per_address_drains(&self, on: bool) {
        self.pool().set_per_address_drains(on);
    }
    fn set_backoff(&self, on: bool) {
        MsQueue::set_backoff(self, on);
    }
    fn stats(&self) -> StatsSnapshot {
        self.pool().stats()
    }
    fn reset_stats(&self) {
        self.pool().reset_stats();
    }
}

impl<M: Memory> QueueUnderTest for DurableQueue<M> {
    fn enqueue(&self, tid: usize, val: u64) {
        DurableQueue::enqueue(self, tid, val).expect("node pool exhausted");
    }
    fn dequeue(&self, tid: usize) -> QueueResp {
        DurableQueue::dequeue(self, tid)
    }
    fn set_flush_penalty(&self, spins: u64) {
        self.pool().set_flush_penalty(spins);
    }
    fn set_coalescing(&self, on: bool) {
        self.pool().set_coalescing(on);
    }
    fn set_per_address_drains(&self, on: bool) {
        self.pool().set_per_address_drains(on);
    }
    fn set_backoff(&self, on: bool) {
        DurableQueue::set_backoff(self, on);
    }
    fn stats(&self) -> StatsSnapshot {
        self.pool().stats()
    }
    fn reset_stats(&self) {
        self.pool().reset_stats();
    }
}

impl<M: Memory> QueueUnderTest for LogQueue<M> {
    fn enqueue(&self, tid: usize, val: u64) {
        LogQueue::enqueue(self, tid, val).expect("node pool exhausted");
    }
    fn dequeue(&self, tid: usize) -> QueueResp {
        LogQueue::dequeue(self, tid).expect("log pool exhausted")
    }
    fn set_flush_penalty(&self, spins: u64) {
        self.pool().set_flush_penalty(spins);
    }
    fn set_coalescing(&self, on: bool) {
        self.pool().set_coalescing(on);
    }
    fn set_per_address_drains(&self, on: bool) {
        self.pool().set_per_address_drains(on);
    }
    fn set_backoff(&self, on: bool) {
        LogQueue::set_backoff(self, on);
    }
    fn stats(&self) -> StatsSnapshot {
        self.pool().stats()
    }
    fn reset_stats(&self) {
        self.pool().reset_stats();
    }
}

/// DSS queue through the non-detectable fast path.
#[derive(Debug)]
struct DssPlain<M: Memory>(DssQueue<M>);

impl<M: Memory> QueueUnderTest for DssPlain<M> {
    fn enqueue(&self, tid: usize, val: u64) {
        self.0.enqueue(tid, val).expect("node pool exhausted");
    }
    fn dequeue(&self, tid: usize) -> QueueResp {
        self.0.dequeue(tid)
    }
    fn set_flush_penalty(&self, spins: u64) {
        self.0.pool().set_flush_penalty(spins);
    }
    fn set_coalescing(&self, on: bool) {
        self.0.pool().set_coalescing(on);
    }
    fn set_per_address_drains(&self, on: bool) {
        self.0.pool().set_per_address_drains(on);
    }
    fn set_backoff(&self, on: bool) {
        self.0.set_backoff(on);
    }
    fn stats(&self) -> StatsSnapshot {
        self.0.pool().stats()
    }
    fn reset_stats(&self) {
        self.0.pool().reset_stats();
    }
}

/// DSS queue through the detectable prep/exec protocol.
#[derive(Debug)]
struct DssDet<M: Memory>(DssQueue<M>);

impl<M: Memory> QueueUnderTest for DssDet<M> {
    fn enqueue(&self, tid: usize, val: u64) {
        self.0.prep_enqueue(tid, val).expect("node pool exhausted");
        self.0.exec_enqueue(tid);
    }
    fn dequeue(&self, tid: usize) -> QueueResp {
        self.0.prep_dequeue(tid);
        self.0.exec_dequeue(tid)
    }
    fn set_flush_penalty(&self, spins: u64) {
        self.0.pool().set_flush_penalty(spins);
    }
    fn set_coalescing(&self, on: bool) {
        self.0.pool().set_coalescing(on);
    }
    fn set_per_address_drains(&self, on: bool) {
        self.0.pool().set_per_address_drains(on);
    }
    fn set_backoff(&self, on: bool) {
        self.0.set_backoff(on);
    }
    fn stats(&self) -> StatsSnapshot {
        self.0.pool().stats()
    }
    fn reset_stats(&self) {
        self.0.pool().reset_stats();
    }
}

/// Either CASWithEffect variant (always detectable).
#[derive(Debug)]
struct Cwe<M: Memory>(CasWithEffectQueue<M>);

impl<M: Memory> QueueUnderTest for Cwe<M> {
    fn enqueue(&self, tid: usize, val: u64) {
        self.0.prep_enqueue(tid, val).expect("node pool exhausted");
        self.0.exec_enqueue(tid);
    }
    fn dequeue(&self, tid: usize) -> QueueResp {
        self.0.prep_dequeue(tid);
        self.0.exec_dequeue(tid)
    }
    fn set_flush_penalty(&self, spins: u64) {
        self.0.pool().set_flush_penalty(spins);
    }
    fn set_coalescing(&self, on: bool) {
        self.0.pool().set_coalescing(on);
    }
    fn set_per_address_drains(&self, on: bool) {
        self.0.pool().set_per_address_drains(on);
    }
    fn set_backoff(&self, on: bool) {
        self.0.set_backoff(on);
    }
    fn stats(&self) -> StatsSnapshot {
        self.0.pool().stats()
    }
    fn reset_stats(&self) {
        self.0.pool().reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_round_trips() {
        for kind in QueueKind::all() {
            let q = kind.build(2, 32);
            q.enqueue(0, 5);
            q.enqueue(1, 6);
            assert_eq!(q.dequeue(0), QueueResp::Value(5), "{}", kind.label());
            assert_eq!(q.dequeue(1), QueueResp::Value(6), "{}", kind.label());
            assert_eq!(q.dequeue(0), QueueResp::Empty, "{}", kind.label());
        }
    }

    #[test]
    fn every_kind_round_trips_on_dram() {
        for kind in QueueKind::all() {
            let q = kind.build_on(Backend::Dram, 2, 32);
            q.enqueue(0, 5);
            q.enqueue(1, 6);
            assert_eq!(q.dequeue(0), QueueResp::Value(5), "{}", kind.label());
            assert_eq!(q.dequeue(1), QueueResp::Value(6), "{}", kind.label());
            assert_eq!(q.dequeue(0), QueueResp::Empty, "{}", kind.label());
            assert_eq!(q.stats().total(), 0, "dram counts nothing: {}", kind.label());
        }
    }

    #[test]
    fn coalesce_and_backoff_axes_apply_to_every_kind() {
        for kind in QueueKind::all() {
            for backend in Backend::all() {
                let q = kind.build_on(backend, 2, 32);
                q.set_coalescing(true);
                q.set_backoff(true);
                q.enqueue(0, 5);
                assert_eq!(q.dequeue(1), QueueResp::Value(5), "{}", kind.label());
                q.set_coalescing(false);
                q.set_backoff(false);
            }
        }
    }

    #[test]
    fn coalescing_reduces_flushes_on_dss_queue() {
        let measure = |coalesce: bool| {
            let q = QueueKind::DssDetectable.build(1, 32);
            q.set_coalescing(coalesce);
            q.reset_stats();
            for i in 0..32 {
                q.enqueue(0, i);
                q.dequeue(0);
            }
            let s = q.stats();
            (s.flushes, s.flushes_coalesced)
        };
        let (flushes_off, coalesced_off) = measure(false);
        let (flushes_on, coalesced_on) = measure(true);
        assert_eq!(coalesced_off, 0);
        assert_eq!(flushes_on, flushes_off, "issued flushes are workload-determined");
        assert!(coalesced_on > 0, "some flushes must coalesce");
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            QueueKind::all().iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), QueueKind::all().len());
    }

    #[test]
    fn figure_sets_are_subsets_of_all() {
        for k in QueueKind::figure_5a().iter().chain(QueueKind::figure_5b().iter()) {
            assert!(QueueKind::all().contains(k));
        }
    }

    #[test]
    fn backend_labels_parse_back() {
        for b in Backend::all() {
            assert_eq!(Backend::parse(b.label()), b);
        }
    }
}
