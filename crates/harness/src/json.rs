//! The shared machine-readable results envelope.
//!
//! Every `BENCH_*.json` file the experiment binaries and bench targets
//! emit goes through [`Envelope`], so the files share one schema:
//!
//! ```json
//! {
//!   "experiment": "...",
//!   "unit": "...",
//!   "host": { "cpus": 4, "os": "linux", "arch": "x86_64" },
//!   <meta keys...>,
//!   "series": { <name>: <points>, ... }
//! }
//! ```
//!
//! `meta` keys are experiment context (flush penalty, thread axis, a
//! crossover summary); `series` holds the measured data. [`Value`] is a
//! minimal JSON tree — the workspace stays dependency-free, so there is
//! no serde here, just deterministic rendering with stable key order
//! (insertion order, never a hash map).

use std::fmt::Write as _;

/// A JSON value (the subset the result files need).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// An integer, rendered without a decimal point.
    Int(i64),
    /// A float, rendered via Rust's shortest-roundtrip `Display`.
    Num(f64),
    /// A string, escaped on render.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// A float rounded to `decimals` places (keeps the files readable
    /// and diff-stable instead of 17-digit shortest-roundtrip noise).
    pub fn rounded(v: f64, decimals: u32) -> Value {
        let scale = 10f64.powi(decimals as i32);
        Value::Num((v * scale).round() / scale)
    }

    /// An object from `(key, value)` pairs, in order.
    pub fn object(pairs: impl IntoIterator<Item = (impl Into<String>, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An array from values, in order.
    pub fn array(items: impl IntoIterator<Item = Value>) -> Value {
        Value::Array(items.into_iter().collect())
    }

    fn render(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    // JSON has no NaN/Inf; null is the honest stand-in.
                    out.push_str("null");
                }
            }
            Value::Str(s) => render_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Arrays of scalars stay on one line (the thread axis,
                // per-point series); arrays of containers break.
                let scalar = items.iter().all(|v| !matches!(v, Value::Array(_) | Value::Object(_)));
                let flat =
                    scalar || items.iter().all(|v| matches!(v, Value::Object(o) if o.len() <= 3));
                if flat {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        item.render_flat(out);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (i, item) in items.iter().enumerate() {
                        pad(out, indent + 1);
                        item.render(out, indent + 1);
                        out.push_str(if i + 1 == items.len() { "\n" } else { ",\n" });
                    }
                    pad(out, indent);
                    out.push(']');
                }
            }
            Value::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    pad(out, indent + 1);
                    render_string(out, k);
                    out.push_str(": ");
                    v.render(out, indent + 1);
                    out.push_str(if i + 1 == pairs.len() { "\n" } else { ",\n" });
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }

    /// Single-line rendering for scalar-ish values inside flat arrays.
    fn render_flat(&self, out: &mut String) {
        match self {
            Value::Object(pairs) => {
                out.push_str("{ ");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    render_string(out, k);
                    out.push_str(": ");
                    v.render_flat(out);
                }
                out.push_str(" }");
            }
            other => other.render(out, 0),
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The host's CPU count, as stamped into every envelope's `host` block.
///
/// The CPU-tiered CI gates (E15's read-scaling assert, E16's YCSB
/// assert) key off the same probe, so a result file's `cpus` field always
/// names the tier its run was gated at. Returns 1 when the parallelism
/// query fails — a gate should degrade to its weakest tier, not crash.
pub fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The shared `BENCH_*.json` envelope: experiment identity, measurement
/// unit, the recording host, experiment-specific meta keys, and the
/// named data series.
#[derive(Clone, Debug)]
pub struct Envelope {
    experiment: String,
    unit: String,
    meta: Vec<(String, Value)>,
    series: Vec<(String, Value)>,
}

impl Envelope {
    /// Starts an envelope for `experiment` measuring in `unit`.
    pub fn new(experiment: impl Into<String>, unit: impl Into<String>) -> Self {
        Envelope {
            experiment: experiment.into(),
            unit: unit.into(),
            meta: Vec::new(),
            series: Vec::new(),
        }
    }

    /// Adds an experiment-context key (emitted between `host` and
    /// `series`, in insertion order).
    pub fn meta(mut self, key: impl Into<String>, value: Value) -> Self {
        self.meta.push((key.into(), value));
        self
    }

    /// Adds one named data series.
    pub fn series(mut self, name: impl Into<String>, points: Value) -> Self {
        self.series.push((name.into(), points));
        self
    }

    /// The host descriptor stamped into every file.
    fn host() -> Value {
        Value::object([
            ("cpus", Value::Int(host_cpus() as i64)),
            ("os", Value::str(std::env::consts::OS)),
            ("arch", Value::str(std::env::consts::ARCH)),
        ])
    }

    /// Renders the whole envelope as pretty JSON (trailing newline).
    pub fn to_json(&self) -> String {
        let mut pairs = vec![
            ("experiment".to_string(), Value::str(&self.experiment)),
            ("unit".to_string(), Value::str(&self.unit)),
            ("host".to_string(), Self::host()),
        ];
        pairs.extend(self.meta.iter().cloned());
        pairs.push(("series".to_string(), Value::Object(self.series.clone())));
        let mut out = String::new();
        Value::Object(pairs).render(&mut out, 0);
        out.push('\n');
        out
    }

    /// Writes the envelope to `path` and prints a `# wrote` marker.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written (result files are the point
    /// of the run).
    pub fn write(&self, path: &str) {
        std::fs::write(path, self.to_json()).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("# wrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_renders_the_shared_schema_in_order() {
        let json = Envelope::new("e_test", "mops_per_sec")
            .meta("flush_penalty", Value::Int(20))
            .meta("threads", Value::array([Value::Int(1), Value::Int(2)]))
            .series(
                "cas_racing",
                Value::array([Value::object([
                    ("mean", Value::rounded(0.123456, 4)),
                    ("stddev", Value::rounded(0.00021, 4)),
                ])]),
            )
            .to_json();
        // Key order is fixed: experiment, unit, host, meta..., series.
        let order: Vec<_> = ["experiment", "unit", "host", "flush_penalty", "threads", "series"]
            .iter()
            .map(|k| json.find(&format!("\"{k}\"")).unwrap_or_else(|| panic!("missing {k}")))
            .collect();
        assert!(order.windows(2).all(|w| w[0] < w[1]), "schema keys out of order: {json}");
        assert!(json.contains("\"mean\": 0.1235"), "rounded to 4 places: {json}");
        assert!(json.contains("\"cpus\": "), "host block present: {json}");
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn scalar_arrays_stay_flat_and_strings_escape() {
        let mut out = String::new();
        Value::array([Value::Int(1), Value::Int(2), Value::Int(3)]).render(&mut out, 0);
        assert_eq!(out, "[1, 2, 3]");
        let mut out = String::new();
        Value::str("a\"b\\c\nd").render(&mut out, 0);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut out = String::new();
        Value::Num(f64::NAN).render(&mut out, 0);
        assert_eq!(out, "null");
    }
}
