//! Experiment E3 — memory-operation counts per queue operation.
//!
//! The paper attributes the throughput gaps of Figures 5a/5b to specific
//! extra memory operations (flushes on the detectability word, double
//! allocation in the log queue, descriptor traffic in PMwCAS). This
//! experiment measures those costs directly: it runs one enqueue/dequeue
//! pair per implementation on an otherwise idle queue and prints the
//! per-pair primitive counts.
//!
//! ```text
//! cargo run -p dss-harness --release --bin flush_counts
//! ```
//!
//! `--backend pmem --backend dram` repeats the table per memory backend;
//! the dram table is all zeros by construction (no instrumentation), which
//! is exactly the point of experiment E8. The default pmem-only invocation
//! prints the historical output unchanged.

use dss_harness::adapter::{Backend, QueueKind};

fn main() {
    let args = dss_harness::cli::parse();
    let backends = args.parsed_backends();
    let annotate = backends.len() > 1 || backends != [Backend::Pmem];
    for backend in backends {
        if annotate {
            println!("# backend = {}", backend.label());
        }
        run(backend);
    }
}

fn run(backend: Backend) {
    println!("# E3: pmem primitives per enqueue+dequeue pair (single thread, uncontended)");
    println!(
        "{:<30} {:>7} {:>7} {:>7} {:>9} {:>8} {:>7}",
        "queue", "loads", "stores", "cas", "cas-fail", "flushes", "fences"
    );
    for kind in QueueKind::all() {
        let q = kind.build_on(backend, 1, 64);
        let h = q.register_thread();
        // Warm up (first ops touch the sentinel path differently).
        q.enqueue(h, 1);
        let _ = q.dequeue(h);
        q.reset_stats();
        const PAIRS: u64 = 100;
        for i in 0..PAIRS {
            q.enqueue(h, i + 2);
            let _ = q.dequeue(h);
        }
        let s = q.stats();
        println!(
            "{:<30} {:>7.1} {:>7.1} {:>7.1} {:>9.1} {:>8.1} {:>7.1}",
            kind.label(),
            s.loads as f64 / PAIRS as f64,
            s.stores as f64 / PAIRS as f64,
            s.cas_ok as f64 / PAIRS as f64,
            s.cas_fail as f64 / PAIRS as f64,
            s.flushes as f64 / PAIRS as f64,
            s.fences as f64 / PAIRS as f64,
        );
    }
    println!();
    println!("# The detectability cost of the DSS queue is the store+flush pairs on X");
    println!("# (paper lines 3-4, 13-14, 32-33, 47-48): compare row 2 against row 3.");
}
