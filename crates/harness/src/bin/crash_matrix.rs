//! Experiment E4 (and E7) — the crash matrix: Figure 2 semantics,
//! exhaustively.
//!
//! Sweeps a crash over every pmem-operation index of each detectable
//! operation, recovers, resolves, and validates the answer against the
//! persisted state. `violations` must be zero.
//!
//! With `--partial-recovery on` it additionally runs the §3.3 partial
//! restart mode: multi-threaded crash runs in which only a subset of
//! threads comes back, each survivor recovers its own registry slot
//! independently, and one adopter reclaims every orphaned slot and
//! resolves its pending operation. The value-conservation invariant must
//! hold in every run.
//!
//! With `--multi-process on` the crash is a *real* process death: for
//! every crash point, this binary re-spawns itself as a victim child that
//! creates a file-backed pool and is SIGKILLed mid-operation; the parent
//! attaches the pool file with no in-process state and must recover and
//! resolve correctly. Swept across the coalesce × per-address flush
//! regimes (the knobs that widen what a kill can destroy).
//!
//! The matrix runs on any of the queue's three execution layers —
//! CAS-racing (default), flat-combining, or log-fed replicated — or on
//! the detectable hash map, selected with `--layer
//! cas|combining|replicated|map` (the old `--combining on` /
//! `--replicated on` spellings still work as deprecated aliases). The map
//! sweeps interrupt insert / update / remove / remove-absent victims and
//! validate `resolve` against the persisted bindings; its checked
//! histories are verified per key through `check_partitioned`.
//!
//! ```text
//! cargo run -p dss-harness --release --bin crash_matrix -- \
//!     [--granularity word] [--adversary random --seed 7] \
//!     [--partial-recovery on] [--multi-process on] \
//!     [--layer cas|combining|replicated|map]
//! ```

use dss_harness::cli::{self, Layer};
use dss_harness::crashsim::{
    map_sweep, multi_process_child, multi_process_map_sweep, multi_process_sweep,
    partial_recovery_crash_run, partial_recovery_crash_run_combining,
    partial_recovery_crash_run_replicated, partial_recovery_map_crash_run, sweep, MapVictimOp,
    SweepConfig, SweepOutcome, VictimOp, MP_CHILD_FLAG,
};

fn main() {
    // The child role must dispatch before ordinary flag parsing (which
    // panics on flags it does not know).
    let argv: Vec<String> = std::env::args().collect();
    if argv.get(1).map(String::as_str) == Some(MP_CHILD_FLAG) {
        multi_process_child(&argv[2..]);
    }
    let args = cli::parse();
    for independent in [false, true] {
        let config = SweepConfig {
            adversary: args.writeback_adversary(),
            granularity: args.flush_granularity(),
            independent_recovery: independent,
            coalesce: args.coalesce,
            per_address: args.per_address,
            combining: args.layer == Layer::Combining,
            replicated: args.layer == Layer::Replicated,
        };
        println!(
            "# E4 crash matrix: adversary={:?} granularity={:?} recovery={}{}{}{}",
            config.adversary,
            config.granularity,
            if independent { "independent (§3.3)" } else { "centralized (Fig. 6)" },
            // Annotate only when armed so the default output stays
            // byte-identical to the recorded results/crash_matrix_*.txt.
            if config.coalesce { " coalesce=on" } else { "" },
            if config.per_address { " per-address=on" } else { "" },
            match args.layer {
                Layer::Combining => " combining=on",
                Layer::Replicated => " replicated=on",
                Layer::Map => " map=on",
                Layer::Cas => "",
            },
        );
        println!(
            "{:<15} {:>12} {:>13} {:>10} {:>8} {:>11}",
            "operation", "crash-points", "not-prepared", "no-effect", "effect", "violations"
        );
        let mut total_violations = 0;
        let print_row = |op: String, out: &SweepOutcome| {
            println!(
                "{:<15} {:>12} {:>13} {:>10} {:>8} {:>11}",
                op, out.crash_points, out.not_prepared, out.no_effect, out.effect, out.violations
            );
        };
        if args.layer == Layer::Map {
            for op in MapVictimOp::all() {
                let out = map_sweep(op, &config);
                print_row(op.to_string(), &out);
                total_violations += out.violations;
            }
        } else {
            for op in VictimOp::all() {
                let out = sweep(op, &config);
                print_row(op.to_string(), &out);
                total_violations += out.violations;
            }
        }
        println!();
        assert_eq!(total_violations, 0, "detectability violations found!");
    }
    if args.partial_recovery {
        const THREADS: usize = 4;
        println!("# E11 partial recovery: {THREADS} threads crash, `survivors` restart;");
        println!("# survivors recover independently, survivor 0 adopts the rest (§3.3)");
        println!("{:<10} {:>6} {:>6} {:>10}", "survivors", "seeds", "ok", "queued-avg");
        for survivors in 1..=THREADS {
            const SEEDS: u64 = 8;
            let mut queued = 0usize;
            for seed in 0..SEEDS {
                let run = match args.layer {
                    Layer::Replicated => {
                        partial_recovery_crash_run_replicated(THREADS, survivors, args.seed + seed)
                    }
                    Layer::Combining => {
                        partial_recovery_crash_run_combining(THREADS, survivors, args.seed + seed)
                    }
                    Layer::Map => {
                        partial_recovery_map_crash_run(THREADS, survivors, args.seed + seed)
                    }
                    Layer::Cas => partial_recovery_crash_run(THREADS, survivors, args.seed + seed),
                };
                match run {
                    Ok(n) => queued += n,
                    Err(e) => panic!("survivors={survivors} seed={seed}: {e}"),
                }
            }
            println!(
                "{:<10} {:>6} {:>6} {:>10.1}",
                survivors,
                SEEDS,
                SEEDS,
                queued as f64 / SEEDS as f64
            );
        }
        println!();
    }
    if args.multi_process {
        let exe = std::env::current_exe().expect("locating this binary for self-spawn");
        println!("# E12 multi-process: victim child SIGKILLed mid-op; parent attaches the");
        println!("# pool file with no in-process state and runs the adopt-then-resolve restart");
        println!(
            "{:<15} {:>9} {:>12} {:>12} {:>13} {:>10} {:>8} {:>11}",
            "operation",
            "coalesce",
            "per-address",
            "crash-points",
            "not-prepared",
            "no-effect",
            "effect",
            "violations"
        );
        let mut total_violations = 0;
        for (coalesce, per_address) in [(false, false), (true, false), (true, true)] {
            let config = SweepConfig {
                granularity: args.flush_granularity(),
                coalesce,
                per_address,
                combining: args.layer == Layer::Combining,
                replicated: args.layer == Layer::Replicated,
                ..Default::default()
            };
            let mut print_row = |op: String, out: &SweepOutcome| {
                println!(
                    "{:<15} {:>9} {:>12} {:>12} {:>13} {:>10} {:>8} {:>11}",
                    op,
                    if coalesce { "on" } else { "off" },
                    if per_address { "on" } else { "off" },
                    out.crash_points,
                    out.not_prepared,
                    out.no_effect,
                    out.effect,
                    out.violations
                );
                total_violations += out.violations;
            };
            if args.layer == Layer::Map {
                for op in MapVictimOp::all() {
                    let out = multi_process_map_sweep(op, &config, &exe);
                    print_row(op.to_string(), &out);
                }
            } else {
                for op in VictimOp::all() {
                    let out = multi_process_sweep(op, &config, &exe);
                    print_row(op.to_string(), &out);
                }
            }
        }
        println!();
        assert_eq!(total_violations, 0, "multi-process detectability violations found!");
    }
    checked_histories_epilogue(&args);
    match args.layer {
        Layer::Map => println!("ok: every crash point resolved consistently with D<map>"),
        _ => println!("ok: every crash point resolved consistently with D<queue>"),
    }
}

/// E13 rider: the matrix above validates each crash point's *resolve*
/// against the persisted state; this epilogue additionally records whole
/// crashing executions and verifies the full history — every operation,
/// no sampling — through the segmented pipeline under strict
/// linearizability. Queue layers check the `D⟨queue⟩` history directly;
/// the map layer splits its `Keyed<KvSpec>` history per key
/// (`check_partitioned`) and certifies each partition in full.
fn checked_histories_epilogue(args: &cli::Args) {
    use dss_checker::{CheckOptions, Condition};
    use dss_harness::record::{
        check_map_history, check_plain, check_recorded_full, record_combining_crash_execution,
        record_combining_partial_recovery_execution, record_crash_execution,
        record_map_crash_execution, record_map_execution, record_map_partial_recovery_execution,
        record_partial_recovery_execution, record_plain_combining_execution,
        record_plain_replicated_execution, record_replicated_crash_execution,
        record_replicated_partial_recovery_execution,
    };

    const SEEDS: u64 = 6;
    let options = CheckOptions::default();
    println!("# checked histories: full-length verification of recorded crash runs");
    println!(
        "{:<22} {:>6} {:>8} {:>9} {:>12}",
        "workload", "seeds", "ops", "windows", "max-window"
    );
    if args.layer == Layer::Map {
        let (mut ops, mut windows, mut max_window) = (0usize, 0usize, 0usize);
        for seed in 0..SEEDS {
            let h = record_map_crash_execution(3, 30, args.seed + seed);
            let stats = check_map_history(&h, Condition::StrictLinearizability, &options)
                .unwrap_or_else(|e| panic!("map crash run seed {seed}: {e}"));
            ops += stats.ops;
            windows += stats.windows;
            max_window = max_window.max(stats.max_window);
        }
        println!(
            "{:<22} {:>6} {:>8} {:>9} {:>12}",
            "map-system-crash", SEEDS, ops, windows, max_window
        );
        // A long crash-free run, split per key and certified in full —
        // the P-compositionality counterpart of the queue's plain check.
        let h = record_map_execution(3, 400, args.seed);
        let stats = check_map_history(&h, Condition::Linearizability, &options)
            .unwrap_or_else(|e| panic!("plain map run: {e}"));
        println!(
            "{:<22} {:>6} {:>8} {:>9} {:>12}",
            "map-plain", 1, stats.ops, stats.windows, stats.max_window
        );
        if args.partial_recovery {
            for survivors in 1..=3usize {
                let (mut ops, mut windows, mut max_window) = (0usize, 0usize, 0usize);
                for seed in 0..SEEDS {
                    let h = record_map_partial_recovery_execution(
                        3,
                        survivors,
                        20,
                        args.seed + seed,
                        args.coalesce,
                        args.per_address,
                    );
                    let stats = check_map_history(&h, Condition::StrictLinearizability, &options)
                        .unwrap_or_else(|e| {
                            panic!("map partial recovery survivors={survivors} seed={seed}: {e}")
                        });
                    ops += stats.ops;
                    windows += stats.windows;
                    max_window = max_window.max(stats.max_window);
                }
                println!(
                    "{:<22} {:>6} {:>8} {:>9} {:>12}",
                    format!("map-partial s={survivors}"),
                    SEEDS,
                    ops,
                    windows,
                    max_window
                );
            }
        }
        println!();
        return;
    }
    let (mut ops, mut windows, mut max_window) = (0usize, 0usize, 0usize);
    for seed in 0..SEEDS {
        let h = match args.layer {
            Layer::Replicated => record_replicated_crash_execution(3, 30, args.seed + seed),
            Layer::Combining => record_combining_crash_execution(3, 30, args.seed + seed),
            _ => record_crash_execution(3, 30, args.seed + seed),
        };
        let stats = check_recorded_full(&h, Condition::StrictLinearizability, &options)
            .unwrap_or_else(|e| panic!("crash run seed {seed}: {e}"));
        ops += stats.ops;
        windows += stats.windows;
        max_window = max_window.max(stats.max_window);
    }
    println!("{:<22} {:>6} {:>8} {:>9} {:>12}", "system-crash", SEEDS, ops, windows, max_window);
    if args.layer == Layer::Replicated {
        // Appended batches serialize many operations per lease tenure;
        // verify a long crash-free log-fed history in full — every
        // operation, no sampling — against the sequential FIFO spec.
        let h = record_plain_replicated_execution(3, 400, 4, args.seed);
        let stats = check_plain(&h, Condition::Linearizability, &options)
            .unwrap_or_else(|e| panic!("plain replicated run: {e}"));
        println!(
            "{:<22} {:>6} {:>8} {:>9} {:>12}",
            "replicated-plain", 1, stats.ops, stats.windows, stats.max_window
        );
    } else if args.layer == Layer::Combining {
        // Combined batches serialize many operations per lease tenure;
        // verify a long crash-free combined history in full — every
        // operation, no sampling — against the sequential FIFO spec.
        let h = record_plain_combining_execution(3, 400, 4, args.seed);
        let stats = check_plain(&h, Condition::Linearizability, &options)
            .unwrap_or_else(|e| panic!("plain combining run: {e}"));
        println!(
            "{:<22} {:>6} {:>8} {:>9} {:>12}",
            "combining-plain", 1, stats.ops, stats.windows, stats.max_window
        );
    }
    if args.partial_recovery {
        for survivors in 1..=3usize {
            let (mut ops, mut windows, mut max_window) = (0usize, 0usize, 0usize);
            for seed in 0..SEEDS {
                let h = match args.layer {
                    Layer::Replicated => record_replicated_partial_recovery_execution(
                        3,
                        survivors,
                        20,
                        args.seed + seed,
                        args.coalesce,
                        args.per_address,
                    ),
                    Layer::Combining => record_combining_partial_recovery_execution(
                        3,
                        survivors,
                        20,
                        args.seed + seed,
                        args.coalesce,
                        args.per_address,
                    ),
                    _ => record_partial_recovery_execution(
                        3,
                        survivors,
                        20,
                        args.seed + seed,
                        args.coalesce,
                        args.per_address,
                    ),
                };
                let stats = check_recorded_full(&h, Condition::StrictLinearizability, &options)
                    .unwrap_or_else(|e| {
                        panic!("partial recovery survivors={survivors} seed={seed}: {e}")
                    });
                ops += stats.ops;
                windows += stats.windows;
                max_window = max_window.max(stats.max_window);
            }
            println!(
                "{:<22} {:>6} {:>8} {:>9} {:>12}",
                format!("partial-recovery s={survivors}"),
                SEEDS,
                ops,
                windows,
                max_window
            );
        }
    }
    println!();
}
