//! Experiment E4 (and E7) — the crash matrix: Figure 2 semantics,
//! exhaustively.
//!
//! Sweeps a crash over every pmem-operation index of each detectable
//! operation, recovers, resolves, and validates the answer against the
//! persisted queue state. `violations` must be zero.
//!
//! ```text
//! cargo run -p dss-harness --release --bin crash_matrix -- \
//!     [--granularity word] [--adversary random --seed 7]
//! ```

use dss_harness::cli;
use dss_harness::crashsim::{sweep, SweepConfig, VictimOp};

fn main() {
    let args = cli::parse();
    for independent in [false, true] {
        let config = SweepConfig {
            adversary: args.writeback_adversary(),
            granularity: args.flush_granularity(),
            independent_recovery: independent,
            coalesce: args.coalesce,
            per_address: args.per_address,
        };
        println!(
            "# E4 crash matrix: adversary={:?} granularity={:?} recovery={}{}{}",
            config.adversary,
            config.granularity,
            if independent { "independent (§3.3)" } else { "centralized (Fig. 6)" },
            // Annotate only when armed so the default output stays
            // byte-identical to the recorded results/crash_matrix_*.txt.
            if config.coalesce { " coalesce=on" } else { "" },
            if config.per_address { " per-address=on" } else { "" },
        );
        println!(
            "{:<15} {:>12} {:>13} {:>10} {:>8} {:>11}",
            "operation", "crash-points", "not-prepared", "no-effect", "effect", "violations"
        );
        let mut total_violations = 0;
        for op in VictimOp::all() {
            let out = sweep(op, &config);
            println!(
                "{:<15} {:>12} {:>13} {:>10} {:>8} {:>11}",
                op.to_string(),
                out.crash_points,
                out.not_prepared,
                out.no_effect,
                out.effect,
                out.violations
            );
            total_violations += out.violations;
        }
        println!();
        assert_eq!(total_violations, 0, "detectability violations found!");
    }
    println!("ok: every crash point resolved consistently with D<queue>");
}
