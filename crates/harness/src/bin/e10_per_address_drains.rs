//! Experiment E10 — per-address dependency drains vs whole-set drains.
//!
//! PR 2's coalescing layer drains the *entire* pending set at every
//! ordering point, so a flush rarely finds its unit still pending and
//! almost nothing coalesces on the detectable hot paths. Per-address
//! drains write back only the lines a fence point orders against, leaving
//! the rest pending across operation boundaries — the coalescing window
//! the flushes of the *next* operation can fall into.
//!
//! Two measurements:
//!
//! 1. **Absorbed writebacks** (pmem only): for every queue kind, 100
//!    single-threaded enqueue+dequeue pairs under coalescing, with
//!    whole-set vs per-address drains. Issued flushes are
//!    workload-determined and identical; the `coalesced` columns count
//!    how many of them each drain policy absorbed.
//! 2. **Throughput** under contention: the paper's alternating-pair
//!    workload over the whole-set vs per-address axis (both under
//!    coalescing), per backend.
//!
//! ```text
//! cargo run -p dss-harness --release --bin e10_per_address_drains -- \
//!     --threads 4 --ms 200 --repeats 3 [--backend pmem --backend dram]
//! ```

use std::time::Duration;

use dss_harness::adapter::{Backend, QueueKind};
use dss_harness::throughput::{measure, ThroughputConfig};

fn main() {
    let args = dss_harness::cli::parse();

    println!(
        "# E10.1: coalesced writebacks per enqueue+dequeue pair \
         (single thread, pmem, coalescing on)"
    );
    println!(
        "{:<30} {:>12} {:>14} {:>14} {:>9}",
        "queue", "issued/pair", "whole-set", "per-address", "saved"
    );
    for kind in QueueKind::all() {
        let per_pair = |per_address: bool| {
            let q = kind.build_on(Backend::Pmem, 1, 64);
            q.set_coalescing(true);
            q.set_per_address_drains(per_address);
            let h = q.register_thread();
            q.enqueue(h, 1); // warm up the sentinel path
            let _ = q.dequeue(h);
            q.reset_stats();
            const PAIRS: u64 = 100;
            for i in 0..PAIRS {
                q.enqueue(h, i + 2);
                let _ = q.dequeue(h);
            }
            let s = q.stats();
            (s.flushes as f64 / PAIRS as f64, s.flushes_coalesced as f64 / PAIRS as f64)
        };
        let (issued_ws, coalesced_ws) = per_pair(false);
        let (issued_pa, coalesced_pa) = per_pair(true);
        assert_eq!(
            issued_ws,
            issued_pa,
            "{}: issued flushes are workload-determined",
            kind.label()
        );
        assert!(
            coalesced_pa >= coalesced_ws,
            "{}: per-address drains must never absorb less than whole-set \
             ({coalesced_pa} vs {coalesced_ws})",
            kind.label()
        );
        let saved = if issued_pa > 0.0 { 100.0 * coalesced_pa / issued_pa } else { 0.0 };
        println!(
            "{:<30} {:>12.1} {:>14.1} {:>14.1} {:>8.0}%",
            kind.label(),
            issued_pa,
            coalesced_ws,
            coalesced_pa,
            saved
        );
    }
    println!();

    for backend in args.parsed_backends() {
        println!(
            "# E10.2: throughput, {} threads on one queue, backend = {}, coalescing on \
             (Mops/s, alternating enqueue/dequeue pairs)",
            args.threads,
            backend.label()
        );
        println!("{:<30} {:>14} {:>14}", "queue", "whole-set", "per-address");
        for kind in QueueKind::all() {
            print!("{:<30}", kind.label());
            for per_address in [false, true] {
                let config = ThroughputConfig {
                    threads: args.threads,
                    duration: Duration::from_millis(args.ms),
                    repeats: args.repeats,
                    flush_penalty: args.penalty,
                    backend,
                    coalesce: true,
                    per_address,
                    backoff: args.backoff,
                    ..Default::default()
                };
                let t = measure(kind, &config);
                print!(" {:>7.3} ±{:>5.3}", t.mops_mean, t.mops_stddev);
            }
            println!();
        }
        println!();
    }
}
