//! Experiment E13 — checker throughput: monolithic vs partitioned
//! pipelines.
//!
//! PR 6 replaced "sample 63 operations of a soak run" with full-length
//! verification: cut-point segmentation with frontier threading, the
//! near-linear FIFO fast path, P-compositional partitioning, and a
//! streaming checker that verifies windows as they seal. This experiment
//! measures what each pipeline checks per second, on real recorded
//! DSS-queue executions wherever the pipeline accepts them:
//!
//! * **monolithic** — the classic bounded Wing–Gong search on many small
//!   recorded histories (its only regime; ground-truth oracle);
//! * **segmented** — full-length phased `D⟨queue⟩` executions;
//! * **fifo fast path** — a ≥100k-op plain-operation execution of the
//!   real DSS queue, checked in full;
//! * **streaming** — a million-op single-threaded DSS-queue execution
//!   verified window-by-window while it is recorded;
//! * **partitioned** — a 100k-op multi-key register history split by
//!   P-compositionality.
//!
//! Writes the machine-readable summary to `BENCH_checker.json` (checked
//! ops/sec per pipeline) in the current directory.
//!
//! ```text
//! cargo run -p dss-harness --release --bin e13_partitioned_checking
//! ```

use std::time::Instant;

use dss_checker::{
    check_partitioned, records_for, CheckOptions, Condition, History, StreamingRecorder,
};
use dss_core::DssQueue;
use dss_harness::json;
use dss_harness::record::{
    check_plain, check_recorded, check_recorded_full, record_execution, record_phased_execution,
    record_plain_execution,
};
use dss_spec::types::{QueueOp, QueueResp, QueueSpec, RegisterOp, RegisterResp, RegisterSpec};
use dss_spec::Keyed;

struct Row {
    pipeline: &'static str,
    ops: usize,
    secs: f64,
    note: String,
}

fn row(pipeline: &'static str, ops: usize, secs: f64, note: String) -> Row {
    Row { pipeline, ops, secs, note }
}

fn main() {
    let args = dss_harness::cli::parse();
    let options = CheckOptions::default();
    let mut rows: Vec<Row> = Vec::new();

    // Monolithic oracle: many small histories (3 threads x 5 steps each).
    {
        let histories: Vec<_> = (0..60).map(|s| record_execution(3, 5, args.seed + s)).collect();
        let ops: usize = histories.iter().map(|h| h.events().len() / 2).sum();
        let t = Instant::now();
        for h in &histories {
            check_recorded(h, Condition::Linearizability).expect("oracle verdict");
        }
        rows.push(row("monolithic", ops, t.elapsed().as_secs_f64(), "60 small histories".into()));
    }

    // Segmented pipeline: one full-length phased D⟨queue⟩ execution.
    {
        let h = record_phased_execution(3, 600, 5, args.seed);
        let t = Instant::now();
        let stats = check_recorded_full(&h, Condition::Linearizability, &options)
            .unwrap_or_else(|e| panic!("segmented: {e}"));
        rows.push(row(
            "segmented",
            stats.ops,
            t.elapsed().as_secs_f64(),
            format!(
                "{} windows, max {}, frontier peak {}",
                stats.windows, stats.max_window, stats.frontier_peak
            ),
        ));
    }

    // FIFO fast path: a >=100k-op plain execution of the real queue.
    {
        let h = record_plain_execution(4, 15_000, 8, args.seed);
        let t = Instant::now();
        let stats = check_plain(&h, Condition::Linearizability, &options)
            .unwrap_or_else(|e| panic!("fifo fast path: {e}"));
        rows.push(row(
            "fifo_fast_path",
            stats.ops,
            t.elapsed().as_secs_f64(),
            format!("fast_path={}", stats.fast_path),
        ));
    }

    // Streaming: verify a million-op real execution while recording it.
    {
        let q = DssQueue::new(1, 64);
        let h = q.register_thread().unwrap();
        let rec = StreamingRecorder::new(QueueSpec, Condition::Linearizability, options.clone());
        let t = Instant::now();
        for i in 0..500_000u64 {
            let id = rec.invoke(0, QueueOp::Enqueue(i + 1));
            q.enqueue(h, i + 1).unwrap();
            rec.ret(id, QueueResp::Ok);
            let id = rec.invoke(0, QueueOp::Dequeue);
            let resp = q.dequeue(h);
            rec.ret(id, resp);
        }
        let stats = rec.finish().unwrap_or_else(|e| panic!("streaming: {e}"));
        rows.push(row(
            "streaming",
            stats.ops,
            t.elapsed().as_secs_f64(),
            format!("{} windows sealed in flight", stats.windows),
        ));
    }

    // Partitioned: 100k ops over 16 independent register cells.
    {
        let spec = Keyed::new(RegisterSpec);
        let mut h: History<(u64, RegisterOp), RegisterResp> = History::new();
        let mut last = [0u64; 16];
        for i in 0..50_000u64 {
            let key = i % 16;
            let pid = (i % 8) as usize;
            if i % 3 == 0 {
                let id = h.invoke(pid, (key, RegisterOp::Read));
                h.ret(id, RegisterResp::Value(last[key as usize]));
            } else {
                let id = h.invoke(pid, (key, RegisterOp::Write(i)));
                h.ret(id, RegisterResp::Ok);
                last[key as usize] = i;
            }
        }
        let records = records_for(&h, Condition::Linearizability).unwrap();
        let t = Instant::now();
        let stats = check_partitioned(&spec, &records, &options)
            .unwrap_or_else(|e| panic!("partitioned: {e}"));
        rows.push(row(
            "partitioned",
            stats.ops,
            t.elapsed().as_secs_f64(),
            format!("{} partitions", stats.partitions),
        ));
    }

    println!("# E13: checker throughput, monolithic vs partitioned pipelines");
    println!("{:<16} {:>10} {:>10} {:>12}  note", "pipeline", "ops", "secs", "ops/sec");
    for r in &rows {
        println!(
            "{:<16} {:>10} {:>10.3} {:>12.0}  {}",
            r.pipeline,
            r.ops,
            r.secs,
            r.ops as f64 / r.secs,
            r.note
        );
    }

    // Machine-readable summary through the shared envelope.
    let mut envelope = json::Envelope::new("e13_partitioned_checking", "checked_ops_per_sec");
    for r in &rows {
        envelope = envelope.series(
            r.pipeline,
            json::Value::object([
                ("ops", json::Value::Int(r.ops as i64)),
                ("secs", json::Value::rounded(r.secs, 6)),
                ("ops_per_sec", json::Value::rounded(r.ops as f64 / r.secs, 0)),
            ]),
        );
    }
    envelope.write("BENCH_checker.json");
}
