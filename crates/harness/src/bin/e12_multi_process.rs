//! Experiment E12 — the cost of the pool file: attach latency and
//! write-through overhead.
//!
//! PR 5's file-backed pools buy true multi-process recovery (a SIGKILLed
//! process's pool attached by a fresh one — correctness is swept by
//! `crash_matrix --multi-process on`). This binary measures what that
//! durability costs:
//!
//! 1. **Attach time vs pool size**: a file-backed queue is filled to a
//!    given length, dropped, and re-attached from the path alone. Attach
//!    re-reads every committed segment, bumps the crash generation, and
//!    the Figure-6 recovery walks the list — all linear in the pool, so
//!    attach latency should scale linearly with file size.
//! 2. **Throughput, file vs anonymous**: the same single-threaded
//!    enqueue+dequeue pair workload on an anonymous pool (write-backs hit
//!    a `Vec` shadow) and on a pool file (write-backs also hit the file
//!    through a positioned write). The gap is the price of every fenced
//!    write-back becoming a syscall.
//!
//! ```text
//! cargo run -p dss-harness --release --bin e12_multi_process -- \
//!     [--ms 200] [--repeats 3]
//! ```

use std::time::{Duration, Instant};

use dss_core::DssQueue;

/// A collision-free scratch path in the system temp directory; the file
/// is removed by [`Drop`].
struct TmpPool(std::path::PathBuf);

impl TmpPool {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!("dss-e12-{}-{tag}.pool", std::process::id()));
        let _ = std::fs::remove_file(&path);
        TmpPool(path)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TmpPool {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = dss_harness::cli::parse();

    println!("# E12.1: attach time vs pool size (mean of {} attaches)", args.repeats.max(1));
    println!("{:>10} {:>12} {:>12} {:>14}", "length", "file-KiB", "attach-us", "us-per-KiB");
    for exp in 6..=13 {
        let len = 1u64 << exp;
        let tmp = TmpPool::new(&format!("attach-{len}"));
        {
            let q = DssQueue::create(tmp.path(), 4, len + 64)?;
            let h = q.register_thread()?;
            for i in 0..len {
                q.enqueue(h, i + 1)?;
            }
            q.pool().drain();
        }
        let kib = std::fs::metadata(tmp.path())?.len() as f64 / 1024.0;
        let reps = args.repeats.max(1);
        let mut us = 0.0;
        for _ in 0..reps {
            let t = Instant::now();
            let q = DssQueue::attach(tmp.path())?;
            q.recover();
            q.rebuild_allocator();
            us += t.elapsed().as_secs_f64() * 1e6;
        }
        let mean = us / reps as f64;
        println!("{:>10} {:>12.0} {:>12.1} {:>14.3}", len, kib, mean, mean / kib);
    }
    println!();

    println!(
        "# E12.2: single-thread throughput, anonymous vs file-backed pool \
         (Mops/s, enqueue+dequeue pairs, {} ms x {} repeats)",
        args.ms, args.repeats
    );
    println!("{:>12} {:>12} {:>10}", "anonymous", "file", "file/anon");
    let run = |q: &DssQueue| -> Result<f64, Box<dyn std::error::Error>> {
        let h = q.register_thread()?;
        let deadline = Instant::now() + Duration::from_millis(args.ms);
        let mut ops = 0u64;
        while Instant::now() < deadline {
            for i in 0..64 {
                q.enqueue(h, i + 1)?;
                let _ = q.dequeue(h);
                ops += 2;
            }
        }
        Ok(ops as f64 / Duration::from_millis(args.ms).as_secs_f64() / 1e6)
    };
    let mut anon_best = 0.0f64;
    let mut file_best = 0.0f64;
    for rep in 0..args.repeats.max(1) {
        let anon = DssQueue::new(1, 256);
        anon_best = anon_best.max(run(&anon)?);
        let tmp = TmpPool::new(&format!("tput-{rep}"));
        let file = DssQueue::create(tmp.path(), 1, 256)?;
        file_best = file_best.max(run(&file)?);
    }
    println!("{:>12.3} {:>12.3} {:>9.1}%", anon_best, file_best, 100.0 * file_best / anon_best);
    println!();
    println!("# Correctness under real process death is swept separately:");
    println!("#   cargo run -p dss-harness --release --bin crash_matrix -- --multi-process on");
    Ok(())
}
