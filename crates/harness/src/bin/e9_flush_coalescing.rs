//! Experiment E9 — write-behind flush coalescing × contention backoff.
//!
//! Two measurements:
//!
//! 1. **Flush traffic** (pmem only — the dram backend counts nothing by
//!    construction): for every queue kind, 100 single-threaded
//!    enqueue+dequeue pairs with coalescing off vs on. The issued flush
//!    count is workload-determined and identical in both modes; the
//!    `coalesced` column is how many of those flushes the write-behind
//!    layer absorbed (already-pending or clean units) instead of writing
//!    back — the saved writebacks per pair.
//! 2. **Throughput** under contention: the paper's alternating-pair
//!    workload on every backend at the configured thread count, over the
//!    full `--coalesce` × `--backoff` grid.
//!
//! ```text
//! cargo run -p dss-harness --release --bin e9_flush_coalescing -- \
//!     --threads 4 --ms 200 --repeats 3 [--backend pmem --backend dram]
//! ```

use std::time::Duration;

use dss_harness::adapter::{Backend, QueueKind};
use dss_harness::throughput::{measure, ThroughputConfig};

fn main() {
    let args = dss_harness::cli::parse();

    println!("# E9.1: flushes per enqueue+dequeue pair (single thread, pmem)");
    println!(
        "{:<30} {:>12} {:>12} {:>12} {:>9}",
        "queue", "issued/pair", "coalesced", "writebacks", "saved"
    );
    for kind in QueueKind::all() {
        let per_pair = |coalesce: bool| {
            let q = kind.build_on(Backend::Pmem, 1, 64);
            q.set_coalescing(coalesce);
            let h = q.register_thread();
            q.enqueue(h, 1); // warm up the sentinel path
            let _ = q.dequeue(h);
            q.reset_stats();
            const PAIRS: u64 = 100;
            for i in 0..PAIRS {
                q.enqueue(h, i + 2);
                let _ = q.dequeue(h);
            }
            let s = q.stats();
            (s.flushes as f64 / PAIRS as f64, s.flushes_coalesced as f64 / PAIRS as f64)
        };
        let (issued_off, coalesced_off) = per_pair(false);
        let (issued_on, coalesced_on) = per_pair(true);
        assert_eq!(coalesced_off, 0.0, "{}: coalescing off must not coalesce", kind.label());
        assert_eq!(
            issued_off,
            issued_on,
            "{}: issued flushes are workload-determined",
            kind.label()
        );
        let saved = if issued_on > 0.0 { 100.0 * coalesced_on / issued_on } else { 0.0 };
        println!(
            "{:<30} {:>12.1} {:>12.1} {:>12.1} {:>8.0}%",
            kind.label(),
            issued_on,
            coalesced_on,
            issued_on - coalesced_on,
            saved
        );
    }
    println!();

    for backend in args.parsed_backends() {
        println!(
            "# E9.2: throughput grid, {} threads on one queue, backend = {} \
             (Mops/s, alternating enqueue/dequeue pairs)",
            args.threads,
            backend.label()
        );
        println!(
            "{:<30} {:>14} {:>14} {:>14} {:>14}",
            "queue", "off/off", "coalesce", "backoff", "both"
        );
        for kind in QueueKind::all() {
            print!("{:<30}", kind.label());
            for (coalesce, backoff) in [(false, false), (true, false), (false, true), (true, true)]
            {
                let config = ThroughputConfig {
                    threads: args.threads,
                    duration: Duration::from_millis(args.ms),
                    repeats: args.repeats,
                    flush_penalty: args.penalty,
                    backend,
                    coalesce,
                    backoff,
                    ..Default::default()
                };
                let t = measure(kind, &config);
                print!(" {:>7.3} ±{:>5.3}", t.mops_mean, t.mops_stddev);
            }
            println!();
        }
        println!();
    }
}
