//! Experiment E5 — recovery latency vs queue length: centralized
//! (Figure 6) vs independent per-thread (§3.3) recovery.
//!
//! ```text
//! cargo run -p dss-harness --release --bin recovery_time
//! ```

use std::time::Instant;

use dss_core::DssQueue;
use dss_pmem::WritebackAdversary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("# E5: recovery latency vs queue length (microseconds, mean of 5)");
    println!("{:>10} {:>18} {:>18}", "length", "centralized-us", "independent-us");
    for exp in 4..=14 {
        let len = 1u64 << exp;
        let mut central = 0.0;
        let mut indep = 0.0;
        const REPS: u32 = 5;
        for _ in 0..REPS {
            let q = DssQueue::new(4, len + 64);
            let hs = (0..4).map(|_| q.register_thread()).collect::<Result<Vec<_>, _>>()?;
            for i in 0..len {
                q.enqueue(hs[0], i + 1)?;
            }
            q.pool().crash(&WritebackAdversary::All);
            let t = Instant::now();
            q.recover();
            central += t.elapsed().as_secs_f64() * 1e6;

            let q = DssQueue::new(4, len + 64);
            let hs = (0..4).map(|_| q.register_thread()).collect::<Result<Vec<_>, _>>()?;
            for i in 0..len {
                q.enqueue(hs[0], i + 1)?;
            }
            q.pool().crash(&WritebackAdversary::All);
            let t = Instant::now();
            for &h in &hs {
                q.recover_one(h);
            }
            indep += t.elapsed().as_secs_f64() * 1e6;
        }
        println!("{:>10} {:>18.1} {:>18.1}", len, central / REPS as f64, indep / REPS as f64);
    }
    println!();
    println!("# Centralized recovery walks the list once and repairs head/tail;");
    println!("# independent recovery is run per thread (4x here) and repairs only X.");
    Ok(())
}
