//! Experiment E6 — machine-checked Theorem 1: record real concurrent
//! executions of the DSS queue (with and without crashes) and verify
//! strict linearizability w.r.t. `D⟨queue⟩`.
//!
//! ```text
//! cargo run -p dss-harness --release --bin check_histories -- --seed 1
//! ```
//!
//! The default `--mode partitioned` checks every recorded history **in
//! full** — plain-operation runs through the near-linear FIFO fast path,
//! `D⟨queue⟩` runs through the segmented frontier-threading pipeline —
//! so executions run thousands of operations instead of being sized to
//! the classic checker's 63-op cap. `--mode monolithic` keeps the
//! original small-history ground-truth oracle. `--max-ops <n>` overrides
//! the per-window bound of the segmented search. Exits non-zero on the
//! first violation.

use dss_checker::{CheckOptions, Condition, Violation};
use dss_harness::cli::{self, CheckMode};
use dss_harness::record::{
    check_plain, check_recorded, check_recorded_full, record_crash_execution, record_execution,
    record_phased_execution, record_plain_execution,
};

fn bail(what: &str, e: &Violation) -> ! {
    eprintln!("VIOLATION in {what}: {e}");
    std::process::exit(1);
}

fn main() {
    let args = cli::parse();
    let options = CheckOptions {
        max_window_ops: args.max_ops.unwrap_or(CheckOptions::default().max_window_ops),
    };
    let runs = 40;
    println!("# E6: strict linearizability of recorded DSS queue executions");
    let mut checked = 0usize;
    let mut ops = 0usize;
    match args.mode {
        CheckMode::Monolithic => {
            println!("# mode: monolithic (ground-truth oracle, histories sized to its cap)");
            for seed in args.seed..args.seed + runs {
                let h = record_execution(3, 5, seed);
                ops += h.events().len() / 2;
                check_recorded(&h, Condition::Linearizability)
                    .unwrap_or_else(|e| bail(&format!("crash-free seed {seed}"), &e));
                checked += 1;

                let h = record_crash_execution(2, 8, seed);
                ops += h.events().len() / 2;
                check_recorded(&h, Condition::StrictLinearizability)
                    .unwrap_or_else(|e| bail(&format!("crash seed {seed}"), &e));
                check_recorded(&h, Condition::PersistentAtomicity)
                    .unwrap_or_else(|e| bail(&format!("crash seed {seed} (PA)"), &e));
                checked += 1;
            }
        }
        CheckMode::Partitioned => {
            println!("# mode: partitioned (full-length histories, no sampling)");
            for seed in args.seed..args.seed + runs {
                // Phased D⟨queue⟩ run: barriers bound the windows, the
                // segmented pipeline checks all of it.
                let h = record_phased_execution(3, 40, 5, seed);
                let stats = check_recorded_full(&h, Condition::Linearizability, &options)
                    .unwrap_or_else(|e| bail(&format!("phased seed {seed}"), &e));
                ops += stats.ops;
                checked += 1;

                // Crash run, checked in full under both conditions.
                let h = record_crash_execution(2, 8, seed);
                let stats = check_recorded_full(&h, Condition::StrictLinearizability, &options)
                    .unwrap_or_else(|e| bail(&format!("crash seed {seed}"), &e));
                check_recorded_full(&h, Condition::PersistentAtomicity, &options)
                    .unwrap_or_else(|e| bail(&format!("crash seed {seed} (PA)"), &e));
                ops += stats.ops;
                checked += 1;
            }
            // One large plain-operation run through the FIFO fast path —
            // the regime the monolithic checker could only sample.
            let h = record_plain_execution(4, 2500, 8, args.seed);
            let stats = check_plain(&h, Condition::Linearizability, &options)
                .unwrap_or_else(|e| bail("plain 20k-op run", &e));
            println!(
                "# plain run: {} ops, fast_path={}, windows={}",
                stats.ops, stats.fast_path, stats.windows
            );
            ops += stats.ops;
            checked += 1;
        }
    }
    println!("ok: {checked} histories checked ({ops} operations), 0 violations");
}
