//! Experiment E6 — machine-checked Theorem 1: record real concurrent
//! executions of the DSS queue (with and without crashes) and verify
//! strict linearizability w.r.t. `D⟨queue⟩`.
//!
//! ```text
//! cargo run -p dss-harness --release --bin check_histories -- --seed 1
//! ```

use dss_checker::Condition;
use dss_harness::cli;
use dss_harness::record::{check_recorded, record_crash_execution, record_execution};

fn main() {
    let args = cli::parse();
    let runs = 40;
    println!("# E6: strict linearizability of recorded DSS queue executions");
    let mut checked = 0;
    for seed in args.seed..args.seed + runs {
        let h = record_execution(3, 5, seed);
        check_recorded(&h, Condition::Linearizability)
            .unwrap_or_else(|e| panic!("crash-free seed {seed}: {e}"));
        checked += 1;

        let h = record_crash_execution(2, 8, seed);
        check_recorded(&h, Condition::StrictLinearizability)
            .unwrap_or_else(|e| panic!("crash seed {seed}: {e}"));
        check_recorded(&h, Condition::PersistentAtomicity)
            .unwrap_or_else(|e| panic!("crash seed {seed} (PA): {e}"));
        checked += 1;
    }
    println!("ok: {checked} histories checked, 0 violations");
}
