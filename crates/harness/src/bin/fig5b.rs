//! Experiment E2 — reproduces **Figure 5b**: detectable queue
//! implementations compared.
//!
//! DSS queue vs log queue vs Fast/General CASWithEffect queues, same
//! workload as Figure 5a.
//!
//! ```text
//! cargo run -p dss-harness --release --bin fig5b -- \
//!     --threads 8 --ms 200 --repeats 3 --penalty 20
//! ```
//!
//! `--backend pmem --backend dram` repeats the sweep per memory backend
//! (experiment E8's axis); the default is the pmem simulator only.
//! `--coalesce on` / `--backoff on` arm the E9 performance axes.

use std::time::Duration;

use dss_harness::adapter::QueueKind;
use dss_harness::cli;
use dss_harness::throughput::{print_series, ThroughputConfig};

fn main() {
    let args = cli::parse();
    let threads: Vec<usize> = (1..=args.threads).collect();
    for backend in args.parsed_backends() {
        let base = ThroughputConfig {
            duration: Duration::from_millis(args.ms),
            repeats: args.repeats,
            flush_penalty: args.penalty,
            backend,
            coalesce: args.coalesce,
            backoff: args.backoff,
            ..Default::default()
        };
        print_series(
            "Figure 5b: different detectable queue implementations (Mops/s)",
            &QueueKind::figure_5b(),
            &threads,
            &base,
        );
    }
}
