//! Experiment E2 — reproduces **Figure 5b**: detectable queue
//! implementations compared.
//!
//! DSS queue vs log queue vs Fast/General CASWithEffect queues, same
//! workload as Figure 5a.
//!
//! ```text
//! cargo run -p dss-harness --release --bin fig5b -- \
//!     --threads 8 --ms 200 --repeats 3 --penalty 20
//! ```

use std::time::Duration;

use dss_harness::adapter::QueueKind;
use dss_harness::cli;
use dss_harness::throughput::{print_series, ThroughputConfig};

fn main() {
    let args = cli::parse();
    let base = ThroughputConfig {
        duration: Duration::from_millis(args.ms),
        repeats: args.repeats,
        flush_penalty: args.penalty,
        ..Default::default()
    };
    let threads: Vec<usize> = (1..=args.threads).collect();
    print_series(
        "Figure 5b: different detectable queue implementations (Mops/s)",
        &QueueKind::figure_5b(),
        &threads,
        &base,
    );
}
