//! Experiment E1 — reproduces **Figure 5a**: the cost of detectability.
//!
//! Compares the MS queue, the non-detectable DSS queue, and the
//! detectable DSS queue on the paper's alternating enqueue/dequeue
//! workload across thread counts.
//!
//! ```text
//! cargo run -p dss-harness --release --bin fig5a -- \
//!     --threads 8 --ms 200 --repeats 3 --penalty 20
//! ```

use std::time::Duration;

use dss_harness::adapter::QueueKind;
use dss_harness::cli;
use dss_harness::throughput::{print_series, ThroughputConfig};

fn main() {
    let args = cli::parse();
    let base = ThroughputConfig {
        duration: Duration::from_millis(args.ms),
        repeats: args.repeats,
        flush_penalty: args.penalty,
        ..Default::default()
    };
    let threads: Vec<usize> = (1..=args.threads).collect();
    print_series(
        "Figure 5a: different levels of detectability and persistence (Mops/s)",
        &QueueKind::figure_5a(),
        &threads,
        &base,
    );
}
