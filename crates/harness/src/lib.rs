//! Workloads, measurement, crash sweeps, and experiment plumbing.
//!
//! This crate turns the queue implementations into the paper's evaluation
//! (§4) and the extended experiments listed in `DESIGN.md`:
//!
//! * [`adapter`] — one [`QueueUnderTest`](adapter::QueueUnderTest) trait
//!   over every queue (MS, DSS detectable/non-detectable, durable, log,
//!   General/Fast CASWithEffect), selected by
//!   [`QueueKind`](adapter::QueueKind).
//! * [`throughput`] — the paper's workload: the queue starts with 16
//!   nodes, every thread runs alternating enqueue/dequeue pairs for a
//!   fixed duration, and the metric is Mops/s averaged over repeats.
//! * [`crashsim`] — the crash matrix (experiment E4): inject a crash at
//!   *every* pmem-operation index of a detectable operation, under several
//!   writeback adversaries, recover, resolve, and validate the outcome
//!   against what `D⟨queue⟩` permits.
//! * [`json`] — the shared envelope ([`json::Envelope`]) every
//!   machine-readable `BENCH_*.json` result file is written through
//!   (re-exported as `dss_bench::json` for the bench targets).
//! * [`record`] — record real concurrent executions of the DSS queue as
//!   `D⟨queue⟩` histories and machine-check them against the correctness
//!   conditions of `dss-checker` (experiment E6, Theorem 1).
//!
//! The `src/bin` executables print the tables/series for Figures 5a and
//! 5b and the extended experiments; see `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod adapter;
pub mod cli;
pub mod crashsim;
pub mod json;
pub mod record;
pub mod throughput;
