//! Recording real DSS-queue executions as `D⟨queue⟩` histories and
//! machine-checking them (experiment E6 — empirical evidence for
//! Theorem 1: "the DSS queue is lock-free and strictly linearizable with
//! respect to D⟨queue⟩").
//!
//! Worker threads drive a [`DssQueue`] through its detectable and plain
//! operations while a [`Recorder`] captures the invocations and responses
//! as operations of the *specification* `D⟨queue⟩` (`Prep`, `Exec`,
//! `Resolve`, `Plain`). The resulting history is checked against
//! [`Detectable<QueueSpec>`](dss_spec::Detectable) under strict
//! linearizability — with and without injected crashes.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use dss_checker::{check_history, Condition, History, Recorder, Violation};
use dss_core::{DssQueue, Resolved, ResolvedOp};
use dss_pmem::{CrashSignal, ThreadHandle, WritebackAdversary};
use dss_spec::types::{QueueOp, QueueResp, QueueSpec};
use dss_spec::{DetOp, DetResp, Detectable};

/// The specification ops/responses a recorded history is made of.
pub type RecordedHistory = History<DetOp<QueueOp>, DetResp<QueueOp, QueueResp>>;

fn resolved_to_resp(r: Resolved) -> DetResp<QueueOp, QueueResp> {
    let op = r.op.map(|o| match o {
        ResolvedOp::Enqueue(v) => (QueueOp::Enqueue(v), 0),
        ResolvedOp::Dequeue => (QueueOp::Dequeue, 0),
    });
    DetResp::Resolved(op, r.resp)
}

/// One pseudo-random step plan for a worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Step {
    DetEnqueue(u64),
    DetDequeue,
    PlainEnqueue(u64),
    PlainDequeue,
    Resolve,
}

fn plan(tid: usize, ops: usize, seed: u64) -> Vec<Step> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(tid as u64 + 1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..ops)
        .map(|i| {
            let v = ((tid as u64) << 32) | (i as u64 + 1);
            match next() % 5 {
                0 => Step::DetEnqueue(v),
                1 => Step::DetDequeue,
                2 => Step::PlainEnqueue(v),
                3 => Step::PlainDequeue,
                _ => Step::Resolve,
            }
        })
        .collect()
}

fn run_step(
    q: &DssQueue,
    rec: &Recorder<DetOp<QueueOp>, DetResp<QueueOp, QueueResp>>,
    h: ThreadHandle,
    step: Step,
) {
    // Registration happens in slot order on the main thread, so the slot
    // doubles as the recorder's process id.
    let tid = h.slot();
    match step {
        Step::DetEnqueue(v) => {
            let id = rec.invoke(tid, DetOp::Prep { op: QueueOp::Enqueue(v), seq: 0 });
            q.prep_enqueue(h, v).unwrap();
            rec.ret(id, DetResp::Ack);
            let id = rec.invoke(tid, DetOp::Exec);
            q.exec_enqueue(h);
            rec.ret(id, DetResp::Ret(QueueResp::Ok));
        }
        Step::DetDequeue => {
            let id = rec.invoke(tid, DetOp::Prep { op: QueueOp::Dequeue, seq: 0 });
            q.prep_dequeue(h);
            rec.ret(id, DetResp::Ack);
            let id = rec.invoke(tid, DetOp::Exec);
            let resp = q.exec_dequeue(h);
            rec.ret(id, DetResp::Ret(resp));
        }
        Step::PlainEnqueue(v) => {
            let id = rec.invoke(tid, DetOp::Plain(QueueOp::Enqueue(v)));
            q.enqueue(h, v).unwrap();
            rec.ret(id, DetResp::Ret(QueueResp::Ok));
        }
        Step::PlainDequeue => {
            let id = rec.invoke(tid, DetOp::Plain(QueueOp::Dequeue));
            let resp = q.dequeue(h);
            rec.ret(id, DetResp::Ret(resp));
        }
        Step::Resolve => {
            let id = rec.invoke(tid, DetOp::Resolve);
            let resp = resolved_to_resp(q.resolve(h));
            rec.ret(id, resp);
        }
    }
}

/// Records a crash-free concurrent execution.
pub fn record_execution(threads: usize, ops_per_thread: usize, seed: u64) -> RecordedHistory {
    let q = DssQueue::new(threads, 64);
    let hs: Vec<ThreadHandle> = (0..threads).map(|_| q.register_thread().unwrap()).collect();
    let rec = Recorder::new();
    std::thread::scope(|scope| {
        for (tid, &h) in hs.iter().enumerate() {
            let q = &q;
            let rec = &rec;
            scope.spawn(move || {
                for step in plan(tid, ops_per_thread, seed) {
                    run_step(q, rec, h, step);
                }
            });
        }
    });
    rec.into_history()
}

/// Records an execution in which every thread is interrupted by a
/// system-wide crash mid-run; after recovery, each thread resolves.
pub fn record_crash_execution(threads: usize, ops_per_thread: usize, seed: u64) -> RecordedHistory {
    let q = DssQueue::new(threads, 64);
    let hs: Vec<ThreadHandle> = (0..threads).map(|_| q.register_thread().unwrap()).collect();
    let rec = Recorder::new();
    run_crashing_workers(&q, &hs, &rec, ops_per_thread, seed);
    // System-wide crash: volatile state reverts, recovery runs, and every
    // thread resolves its interrupted operation.
    rec.crash();
    q.pool().crash(&WritebackAdversary::Random { seed, prob: 0.5 });
    q.recover();
    q.rebuild_allocator();
    for (tid, &h) in hs.iter().enumerate() {
        let id = rec.invoke(tid, DetOp::Resolve);
        let resp = resolved_to_resp(q.resolve(h));
        rec.ret(id, resp);
    }
    rec.into_history()
}

/// Records an execution in which every thread crashes mid-run but only
/// `survivors` of them restart: each survivor recovers its own slot
/// independently ([`DssQueue::recover_one`], §3.3), then survivor 0 adopts
/// every remaining orphaned slot and resolves the dead threads' pending
/// operations on their behalf. The resolves for adopted slots are recorded
/// under the *original* process ids, matching the spec's view that the
/// adopter completes the dead thread's `D⟨queue⟩` session.
///
/// # Panics
///
/// Panics if `survivors` is zero or exceeds `threads`.
pub fn record_partial_recovery_execution(
    threads: usize,
    survivors: usize,
    ops_per_thread: usize,
    seed: u64,
    coalesce: bool,
    per_address: bool,
) -> RecordedHistory {
    assert!(survivors >= 1 && survivors <= threads, "need 1..=threads survivors");
    let q = DssQueue::new(threads, 64);
    q.pool().set_coalescing(coalesce);
    q.pool().set_per_address_drains(per_address);
    let hs: Vec<ThreadHandle> = (0..threads).map(|_| q.register_thread().unwrap()).collect();
    let rec = Recorder::new();
    run_crashing_workers(&q, &hs, &rec, ops_per_thread, seed);
    rec.crash();
    q.pool().crash(&WritebackAdversary::Random { seed, prob: 0.5 });
    // Survivors restart one by one and recover independently.
    for h in hs.iter().take(survivors) {
        q.begin_recovery();
        let mine = q.adopt(h.slot()).expect("own slot is orphaned after begin_recovery");
        q.recover_one(mine);
    }
    // Survivor 0 adopts the slots nobody came back for.
    let adopted = q.adopt_orphans();
    for h in &adopted {
        q.recover_one(*h);
    }
    q.rebuild_allocator();
    for (tid, &h) in hs.iter().enumerate() {
        let id = rec.invoke(tid, DetOp::Resolve);
        let resp = resolved_to_resp(q.resolve(h));
        rec.ret(id, resp);
    }
    rec.into_history()
}

/// Spawns one recorded worker per handle; each crashes at a seed-derived
/// point and the [`CrashSignal`] is swallowed.
fn run_crashing_workers(
    q: &DssQueue,
    hs: &[ThreadHandle],
    rec: &Recorder<DetOp<QueueOp>, DetResp<QueueOp, QueueResp>>,
    ops_per_thread: usize,
    seed: u64,
) {
    std::thread::scope(|scope| {
        for (tid, &h) in hs.iter().enumerate() {
            scope.spawn(move || {
                let crash_after = 5 + (seed.wrapping_add(tid as u64 * 31)) % 60;
                q.pool().arm_crash_after(crash_after);
                let r = catch_unwind(AssertUnwindSafe(|| {
                    for step in plan(tid, ops_per_thread, seed) {
                        run_step(q, rec, h, step);
                    }
                }));
                q.pool().disarm_crash();
                if let Err(p) = r {
                    if p.downcast_ref::<CrashSignal>().is_none() {
                        resume_unwind(p);
                    }
                }
            });
        }
    });
}

/// Checks a recorded history under `condition`.
///
/// # Errors
///
/// Propagates the checker's [`Violation`] — a real failure here means the
/// queue implementation (or the recording) violates Theorem 1.
pub fn check_recorded(history: &RecordedHistory, condition: Condition) -> Result<(), Violation> {
    // The checker needs the number of processes; derive it generously.
    let spec = Detectable::new(QueueSpec, 8);
    check_history(&spec, history, condition)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_free_executions_are_linearizable() {
        for seed in 0..10 {
            let h = record_execution(2, 5, seed);
            assert!(h.validate().is_ok());
            check_recorded(&h, Condition::Linearizability)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn crash_executions_are_strictly_linearizable() {
        for seed in 0..10 {
            let h = record_crash_execution(2, 8, seed);
            assert!(h.validate().is_ok());
            check_recorded(&h, Condition::StrictLinearizability)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn partial_recovery_executions_are_strictly_linearizable() {
        for seed in 0..6 {
            for survivors in [1, 2] {
                let h = record_partial_recovery_execution(2, survivors, 8, seed, false, false);
                assert!(h.validate().is_ok());
                check_recorded(&h, Condition::StrictLinearizability)
                    .unwrap_or_else(|e| panic!("seed {seed} survivors {survivors}: {e}"));
            }
        }
    }

    #[test]
    fn strict_implies_weaker_conditions_hold_too() {
        let h = record_crash_execution(2, 6, 3);
        assert!(check_recorded(&h, Condition::PersistentAtomicity).is_ok());
        assert!(check_recorded(&h, Condition::RecoverableLinearizability).is_ok());
    }

    #[test]
    fn a_corrupted_response_is_rejected() {
        // Sanity-check that the checker has teeth: tamper with a recorded
        // response and expect a violation.
        use dss_checker::Event;
        let h = record_execution(2, 5, 1);
        let mut events: Vec<_> = h.events().to_vec();
        let tampered = events.iter_mut().rev().find_map(|e| match e {
            Event::Return { resp: DetResp::Ret(QueueResp::Value(v)), .. } => {
                *v = v.wrapping_add(1);
                Some(())
            }
            _ => None,
        });
        if tampered.is_none() {
            return; // this seed dequeued nothing; other tests cover it
        }
        let mut h2 = RecordedHistory::new();
        for e in events {
            match e {
                Event::Invoke { pid, op } => {
                    h2.invoke(pid, op);
                }
                Event::Return { of, resp } => h2.ret(of, resp),
                Event::Crash => h2.crash(),
            }
        }
        assert!(check_recorded(&h2, Condition::Linearizability).is_err());
    }
}
