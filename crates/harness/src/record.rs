//! Recording real DSS-queue executions as `D⟨queue⟩` histories and
//! machine-checking them (experiment E6 — empirical evidence for
//! Theorem 1: "the DSS queue is lock-free and strictly linearizable with
//! respect to D⟨queue⟩").
//!
//! Worker threads drive a [`DssQueue`] through its detectable and plain
//! operations while a [`Recorder`] captures the invocations and responses
//! as operations of the *specification* `D⟨queue⟩` (`Prep`, `Exec`,
//! `Resolve`, `Plain`). The resulting history is checked against
//! [`Detectable<QueueSpec>`](dss_spec::Detectable) under strict
//! linearizability — with and without injected crashes.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use dss_checker::{
    check_fifo, check_history, check_partitioned, check_records, records_for, CheckOptions,
    CheckStats, Condition, History, Recorder, Violation,
};
use dss_core::{CombiningQueue, DetectableMap, DssQueue, ReplicatedQueue, Resolved, ResolvedOp};
use dss_pmem::{CrashSignal, FlushGranularity, ThreadHandle, WritebackAdversary};
use dss_spec::types::{KvOp, KvResp, KvSpec, QueueOp, QueueResp, QueueSpec};
use dss_spec::{DetOp, DetResp, Detectable, Keyed};

use crate::crashsim::CrashTarget;

/// The specification ops/responses a recorded history is made of.
pub type RecordedHistory = History<DetOp<QueueOp>, DetResp<QueueOp, QueueResp>>;

fn resolved_to_resp(r: Resolved) -> DetResp<QueueOp, QueueResp> {
    let op = r.op.map(|o| match o {
        ResolvedOp::Enqueue(v) => (QueueOp::Enqueue(v), 0),
        ResolvedOp::Dequeue => (QueueOp::Dequeue, 0),
    });
    DetResp::Resolved(op, r.resp)
}

/// One pseudo-random step plan for a worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Step {
    DetEnqueue(u64),
    DetDequeue,
    PlainEnqueue(u64),
    PlainDequeue,
    Resolve,
}

fn plan(tid: usize, ops: usize, seed: u64) -> Vec<Step> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(tid as u64 + 1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..ops)
        .map(|i| {
            let v = ((tid as u64) << 32) | (i as u64 + 1);
            match next() % 5 {
                0 => Step::DetEnqueue(v),
                1 => Step::DetDequeue,
                2 => Step::PlainEnqueue(v),
                3 => Step::PlainDequeue,
                _ => Step::Resolve,
            }
        })
        .collect()
}

fn run_step<Q: CrashTarget>(
    q: &Q,
    rec: &Recorder<DetOp<QueueOp>, DetResp<QueueOp, QueueResp>>,
    h: ThreadHandle,
    step: Step,
) {
    // Registration happens in slot order on the main thread, so the slot
    // doubles as the recorder's process id.
    let tid = h.slot();
    match step {
        Step::DetEnqueue(v) => {
            let id = rec.invoke(tid, DetOp::Prep { op: QueueOp::Enqueue(v), seq: 0 });
            q.prep_enqueue(h, v).unwrap();
            rec.ret(id, DetResp::Ack);
            let id = rec.invoke(tid, DetOp::Exec);
            q.exec_enqueue(h);
            rec.ret(id, DetResp::Ret(QueueResp::Ok));
        }
        Step::DetDequeue => {
            let id = rec.invoke(tid, DetOp::Prep { op: QueueOp::Dequeue, seq: 0 });
            q.prep_dequeue(h);
            rec.ret(id, DetResp::Ack);
            let id = rec.invoke(tid, DetOp::Exec);
            let resp = q.exec_dequeue(h);
            rec.ret(id, DetResp::Ret(resp));
        }
        // On a layer without a true plain path (combining: every op
        // announces and a later resolve reports it), the plan's plain
        // steps are honestly recorded as the prep/exec pairs they are —
        // recording them as `Plain` would claim Axiom 4 isolation the
        // layer does not provide, and the checker would rightly reject
        // the history at the next resolve.
        Step::PlainEnqueue(v) if q.plain_is_detectable() => {
            run_step(q, rec, h, Step::DetEnqueue(v));
        }
        Step::PlainDequeue if q.plain_is_detectable() => {
            run_step(q, rec, h, Step::DetDequeue);
        }
        Step::PlainEnqueue(v) => {
            let id = rec.invoke(tid, DetOp::Plain(QueueOp::Enqueue(v)));
            q.enqueue(h, v).unwrap();
            rec.ret(id, DetResp::Ret(QueueResp::Ok));
        }
        Step::PlainDequeue => {
            let id = rec.invoke(tid, DetOp::Plain(QueueOp::Dequeue));
            let resp = q.dequeue(h);
            rec.ret(id, DetResp::Ret(resp));
        }
        Step::Resolve => {
            let id = rec.invoke(tid, DetOp::Resolve);
            let resp = resolved_to_resp(q.resolve(h));
            rec.ret(id, resp);
        }
    }
}

/// Records a crash-free concurrent execution.
pub fn record_execution(threads: usize, ops_per_thread: usize, seed: u64) -> RecordedHistory {
    record_execution_on(&DssQueue::new(threads, 64), threads, ops_per_thread, seed)
}

/// [`record_execution`] on the flat-combining execution layer — same step
/// plans, same `D⟨queue⟩` recording, so a checker run over both histories
/// validates that combining preserves the specification, not just the
/// queue's internal invariants.
pub fn record_combining_execution(
    threads: usize,
    ops_per_thread: usize,
    seed: u64,
) -> RecordedHistory {
    record_execution_on(&CombiningQueue::new(threads, 64), threads, ops_per_thread, seed)
}

/// [`record_execution`] on the replicated execution layer: every
/// operation flows through the durable op log and the leased appender,
/// and the checker validates that log-fed replication preserves
/// `D⟨queue⟩` — not just the queue's internal invariants.
pub fn record_replicated_execution(
    threads: usize,
    ops_per_thread: usize,
    seed: u64,
) -> RecordedHistory {
    record_execution_on(&ReplicatedQueue::new(threads, 64), threads, ops_per_thread, seed)
}

fn record_execution_on<Q: CrashTarget>(
    q: &Q,
    threads: usize,
    ops_per_thread: usize,
    seed: u64,
) -> RecordedHistory {
    let hs: Vec<ThreadHandle> = (0..threads).map(|_| q.register_thread().unwrap()).collect();
    let rec = Recorder::new();
    std::thread::scope(|scope| {
        for (tid, &h) in hs.iter().enumerate() {
            let rec = &rec;
            scope.spawn(move || {
                for step in plan(tid, ops_per_thread, seed) {
                    run_step(q, rec, h, step);
                }
            });
        }
    });
    rec.into_history()
}

/// Records an execution in which every thread is interrupted by a
/// system-wide crash mid-run; after recovery, each thread resolves.
pub fn record_crash_execution(threads: usize, ops_per_thread: usize, seed: u64) -> RecordedHistory {
    record_crash_execution_on(&DssQueue::new(threads, 64), threads, ops_per_thread, seed)
}

/// [`record_crash_execution`] on the flat-combining execution layer: the
/// seed-derived crashes now land inside combiner batches and waiter park
/// loops, and the recorded resolves read results a dead combiner wrote
/// into the crashed threads' detectability words.
pub fn record_combining_crash_execution(
    threads: usize,
    ops_per_thread: usize,
    seed: u64,
) -> RecordedHistory {
    record_crash_execution_on(&CombiningQueue::new(threads, 64), threads, ops_per_thread, seed)
}

/// [`record_crash_execution`] on the replicated execution layer: the
/// seed-derived crashes land inside appender batches, and the recorded
/// post-recovery resolves answer from the committed log alone — the
/// volatile replicas were discarded and rebuilt by replay.
pub fn record_replicated_crash_execution(
    threads: usize,
    ops_per_thread: usize,
    seed: u64,
) -> RecordedHistory {
    record_crash_execution_on(&ReplicatedQueue::new(threads, 64), threads, ops_per_thread, seed)
}

fn record_crash_execution_on<Q: CrashTarget>(
    q: &Q,
    threads: usize,
    ops_per_thread: usize,
    seed: u64,
) -> RecordedHistory {
    let hs: Vec<ThreadHandle> = (0..threads).map(|_| q.register_thread().unwrap()).collect();
    let rec = Recorder::new();
    run_crashing_workers(q, &hs, &rec, ops_per_thread, seed);
    // System-wide crash: volatile state reverts, recovery runs, and every
    // thread resolves its interrupted operation.
    rec.crash();
    q.pool().crash(&WritebackAdversary::Random { seed, prob: 0.5 });
    q.recover();
    q.rebuild_allocator();
    for (tid, &h) in hs.iter().enumerate() {
        let id = rec.invoke(tid, DetOp::Resolve);
        let resp = resolved_to_resp(q.resolve(h));
        rec.ret(id, resp);
    }
    rec.into_history()
}

/// Records an execution in which every thread crashes mid-run but only
/// `survivors` of them restart: each survivor recovers its own slot
/// independently ([`DssQueue::recover_one`], §3.3), then survivor 0 adopts
/// every remaining orphaned slot and resolves the dead threads' pending
/// operations on their behalf. The resolves for adopted slots are recorded
/// under the *original* process ids, matching the spec's view that the
/// adopter completes the dead thread's `D⟨queue⟩` session.
///
/// # Panics
///
/// Panics if `survivors` is zero or exceeds `threads`.
pub fn record_partial_recovery_execution(
    threads: usize,
    survivors: usize,
    ops_per_thread: usize,
    seed: u64,
    coalesce: bool,
    per_address: bool,
) -> RecordedHistory {
    record_partial_recovery_execution_on(
        &DssQueue::new(threads, 64),
        threads,
        survivors,
        ops_per_thread,
        seed,
        coalesce,
        per_address,
    )
}

/// [`record_partial_recovery_execution`] on the flat-combining execution
/// layer (a dead combiner's slot may be adopted and resolved by survivor
/// 0 rather than its own thread).
///
/// # Panics
///
/// Panics if `survivors` is zero or exceeds `threads`.
pub fn record_combining_partial_recovery_execution(
    threads: usize,
    survivors: usize,
    ops_per_thread: usize,
    seed: u64,
    coalesce: bool,
    per_address: bool,
) -> RecordedHistory {
    record_partial_recovery_execution_on(
        &CombiningQueue::new(threads, 64),
        threads,
        survivors,
        ops_per_thread,
        seed,
        coalesce,
        per_address,
    )
}

/// [`record_partial_recovery_execution`] on the replicated execution
/// layer (a dead appender's slot may be adopted and resolved by survivor
/// 0; the resolve reads the committed log, never the dead thread's
/// replica).
///
/// # Panics
///
/// Panics if `survivors` is zero or exceeds `threads`.
pub fn record_replicated_partial_recovery_execution(
    threads: usize,
    survivors: usize,
    ops_per_thread: usize,
    seed: u64,
    coalesce: bool,
    per_address: bool,
) -> RecordedHistory {
    record_partial_recovery_execution_on(
        &ReplicatedQueue::new(threads, 64),
        threads,
        survivors,
        ops_per_thread,
        seed,
        coalesce,
        per_address,
    )
}

fn record_partial_recovery_execution_on<Q: CrashTarget>(
    q: &Q,
    threads: usize,
    survivors: usize,
    ops_per_thread: usize,
    seed: u64,
    coalesce: bool,
    per_address: bool,
) -> RecordedHistory {
    assert!(survivors >= 1 && survivors <= threads, "need 1..=threads survivors");
    q.pool().set_coalescing(coalesce);
    q.pool().set_per_address_drains(per_address);
    let hs: Vec<ThreadHandle> = (0..threads).map(|_| q.register_thread().unwrap()).collect();
    let rec = Recorder::new();
    run_crashing_workers(q, &hs, &rec, ops_per_thread, seed);
    rec.crash();
    q.pool().crash(&WritebackAdversary::Random { seed, prob: 0.5 });
    // Survivors restart one by one and recover independently.
    for h in hs.iter().take(survivors) {
        q.begin_recovery();
        let mine = q.adopt(h.slot()).expect("own slot is orphaned after begin_recovery");
        q.recover_one(mine);
    }
    // Survivor 0 adopts the slots nobody came back for.
    let adopted = q.adopt_orphans();
    for h in &adopted {
        q.recover_one(*h);
    }
    q.rebuild_allocator();
    for (tid, &h) in hs.iter().enumerate() {
        let id = rec.invoke(tid, DetOp::Resolve);
        let resp = resolved_to_resp(q.resolve(h));
        rec.ret(id, resp);
    }
    rec.into_history()
}

/// Spawns one recorded worker per handle; each crashes at a seed-derived
/// point and the [`CrashSignal`] is swallowed.
fn run_crashing_workers<Q: CrashTarget>(
    q: &Q,
    hs: &[ThreadHandle],
    rec: &Recorder<DetOp<QueueOp>, DetResp<QueueOp, QueueResp>>,
    ops_per_thread: usize,
    seed: u64,
) {
    std::thread::scope(|scope| {
        for (tid, &h) in hs.iter().enumerate() {
            scope.spawn(move || {
                let crash_after = 5 + (seed.wrapping_add(tid as u64 * 31)) % 60;
                q.pool().arm_crash_after(crash_after);
                let r = catch_unwind(AssertUnwindSafe(|| {
                    for step in plan(tid, ops_per_thread, seed) {
                        run_step(q, rec, h, step);
                    }
                }));
                q.pool().disarm_crash();
                if let Err(p) = r {
                    if p.downcast_ref::<CrashSignal>().is_none() {
                        resume_unwind(p);
                    }
                }
            });
        }
    });
}

/// Checks a recorded history under `condition`.
///
/// # Errors
///
/// Propagates the checker's [`Violation`] — a real failure here means the
/// queue implementation (or the recording) violates Theorem 1.
pub fn check_recorded(history: &RecordedHistory, condition: Condition) -> Result<(), Violation> {
    // The checker needs the number of processes; derive it generously.
    let spec = Detectable::new(QueueSpec, 8);
    check_history(&spec, history, condition)
}

/// Checks a recorded history of any length under `condition` via the
/// segmented pipeline — no sampling, no truncation. Only a single window
/// (a run of transitively overlapping operations) is bounded, by
/// `options.max_window_ops`; phased workloads
/// ([`record_phased_execution`]) keep windows small by construction.
///
/// # Errors
///
/// The checker's [`Violation`], as [`check_recorded`].
pub fn check_recorded_full(
    history: &RecordedHistory,
    condition: Condition,
    options: &CheckOptions,
) -> Result<CheckStats, Violation> {
    let spec = Detectable::new(QueueSpec, 8);
    let records = records_for(history, condition)?;
    check_records(&spec, &records, options)
}

/// A recorded history of the queue's *plain* operations only — the shape
/// the near-linear FIFO fast path understands.
pub type PlainHistory = History<QueueOp, QueueResp>;

/// Checks a plain queue history of any length: the FIFO fast path first
/// (near-linear, immune to overlapping-run length), falling back to the
/// segmented search when it cannot decide.
///
/// # Errors
///
/// The checker's [`Violation`] from whichever path produced the verdict.
pub fn check_plain(
    history: &PlainHistory,
    condition: Condition,
    options: &CheckOptions,
) -> Result<CheckStats, Violation> {
    let records = records_for(history, condition)?;
    check_fifo(&QueueSpec, &records).unwrap_or_else(|| check_records(&QueueSpec, &records, options))
}

/// Records a crash-free execution of the queue's plain operations at any
/// scale. Each thread alternates enqueue/dequeue so with `prefill`
/// initial values the queue never empties (every dequeue observes a
/// value), and values are globally unique — exactly the regime the FIFO
/// fast path verifies in near-linear time.
pub fn record_plain_execution(
    threads: usize,
    pairs_per_thread: usize,
    prefill: usize,
    seed: u64,
) -> PlainHistory {
    record_plain_execution_on(
        &DssQueue::new(threads + 1, 64),
        threads,
        pairs_per_thread,
        prefill,
        seed,
    )
}

/// [`record_plain_execution`] on the flat-combining execution layer: the
/// same distinct-value no-empty regime, but every operation goes through
/// the combiner's batches — the history the FIFO fast path (and, for
/// small runs, the Wing–Gong oracle) certifies to show combining
/// preserves `queue`'s sequential specification at full length.
pub fn record_plain_combining_execution(
    threads: usize,
    pairs_per_thread: usize,
    prefill: usize,
    seed: u64,
) -> PlainHistory {
    record_plain_execution_on(
        &CombiningQueue::new(threads + 1, 64),
        threads,
        pairs_per_thread,
        prefill,
        seed,
    )
}

/// [`record_plain_execution`] on the replicated execution layer: the same
/// distinct-value no-empty regime through the log-fed path, certifying at
/// full length that batched log append preserves `queue`'s sequential
/// specification.
pub fn record_plain_replicated_execution(
    threads: usize,
    pairs_per_thread: usize,
    prefill: usize,
    seed: u64,
) -> PlainHistory {
    record_plain_execution_on(
        &ReplicatedQueue::new(threads + 1, 64),
        threads,
        pairs_per_thread,
        prefill,
        seed,
    )
}

fn record_plain_execution_on<Q: CrashTarget>(
    q: &Q,
    threads: usize,
    pairs_per_thread: usize,
    prefill: usize,
    seed: u64,
) -> PlainHistory {
    let hs: Vec<ThreadHandle> = (0..=threads).map(|_| q.register_thread().unwrap()).collect();
    let rec = Recorder::new();
    for i in 0..prefill {
        let v = u64::MAX - i as u64; // distinct from worker values
        let id = rec.invoke(threads, QueueOp::Enqueue(v));
        q.enqueue(hs[threads], v).unwrap();
        rec.ret(id, QueueResp::Ok);
    }
    std::thread::scope(|scope| {
        for (tid, &h) in hs.iter().take(threads).enumerate() {
            let rec = &rec;
            scope.spawn(move || {
                for i in 0..pairs_per_thread {
                    let v = ((tid as u64) << 32) | (i as u64 + 1) | (seed << 56);
                    let id = rec.invoke(tid, QueueOp::Enqueue(v));
                    q.enqueue(h, v).unwrap();
                    rec.ret(id, QueueResp::Ok);
                    let id = rec.invoke(tid, QueueOp::Dequeue);
                    let resp = q.dequeue(h);
                    rec.ret(id, resp);
                }
            });
        }
    });
    rec.into_history()
}

/// Records a crash-free concurrent execution in *phases*: all threads
/// rendezvous at a barrier every `phase_len` steps. The quiescent instant
/// between phases is a guaranteed cut point, so the segmented checker's
/// windows stay bounded by `threads * phase_len` however long the run —
/// the recording discipline that makes full-length verification of
/// `D⟨queue⟩` histories tractable.
pub fn record_phased_execution(
    threads: usize,
    ops_per_thread: usize,
    phase_len: usize,
    seed: u64,
) -> RecordedHistory {
    assert!(phase_len > 0, "phase_len must be positive");
    let q = DssQueue::new(threads, 64);
    let hs: Vec<ThreadHandle> = (0..threads).map(|_| q.register_thread().unwrap()).collect();
    let rec = Recorder::new();
    let barrier = std::sync::Barrier::new(threads);
    std::thread::scope(|scope| {
        for (tid, &h) in hs.iter().enumerate() {
            let q = &q;
            let rec = &rec;
            let barrier = &barrier;
            scope.spawn(move || {
                for (i, step) in plan(tid, ops_per_thread, seed).into_iter().enumerate() {
                    run_step(q, rec, h, step);
                    if (i + 1) % phase_len == 0 {
                        barrier.wait();
                    }
                }
            });
        }
    });
    rec.into_history()
}

// ---------------------------------------------------------------------------
// Map histories: recorded executions of the detectable hash map, checked
// per key by P-compositionality. A map operation is recorded as the
// `Keyed<KvSpec>` op `(key, op)` spanning the whole detectable pair (the
// invocation brackets prep, the return follows exec), so a crash mid-pair
// leaves a pending operation the strict checker must place before the
// crash or drop — exactly `D⟨map⟩`'s Figure-2 alternatives.
// ---------------------------------------------------------------------------

/// A recorded history of map operations, in the [`Keyed`]`<`[`KvSpec`]`>`
/// shape the per-key partitioned checker splits and verifies in full.
pub type MapHistory = History<(u64, KvOp), KvResp>;

/// Keys every recorded map execution draws from — deliberately few and
/// *shared* across threads, so per-key histories carry real cross-thread
/// interleavings.
const MAP_HISTORY_KEYS: u64 = 8;

/// Checks a map history of any length by P-compositionality
/// ([`check_partitioned`]): split per key, project onto [`KvSpec`], and
/// run the segmented full-length check per partition — no sampling, no
/// truncation.
///
/// # Errors
///
/// The first failing partition's [`Violation`] (carrying the partition
/// key).
pub fn check_map_history(
    history: &MapHistory,
    condition: Condition,
    options: &CheckOptions,
) -> Result<CheckStats, Violation> {
    let records = records_for(history, condition)?;
    check_partitioned(&Keyed::new(KvSpec), &records, options)
}

/// One pseudo-random step plan for a map worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MapStep {
    DetPut(u64, u64),
    DetRemove(u64),
    Get(u64),
}

fn map_plan(tid: usize, ops: usize, seed: u64) -> Vec<MapStep> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(tid as u64 + 1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..ops)
        .map(|i| {
            let key = next() % MAP_HISTORY_KEYS;
            let v = ((tid as u64) << 32) | (i as u64 + 1);
            match next() % 4 {
                0 | 1 => MapStep::DetPut(key, v),
                2 => MapStep::DetRemove(key),
                _ => MapStep::Get(key),
            }
        })
        .collect()
}

fn run_map_step(
    m: &DetectableMap,
    rec: &Recorder<(u64, KvOp), KvResp>,
    h: ThreadHandle,
    step: MapStep,
    seq: u64,
) {
    let tid = h.slot();
    match step {
        MapStep::DetPut(key, v) => {
            let id = rec.invoke(tid, (key, KvOp::Put(v)));
            m.prep_put(h, key, v, seq);
            let resp = m.exec_put(h);
            rec.ret(id, resp);
        }
        MapStep::DetRemove(key) => {
            let id = rec.invoke(tid, (key, KvOp::Remove));
            m.prep_remove(h, key, seq);
            let resp = m.exec_remove(h);
            rec.ret(id, resp);
        }
        MapStep::Get(key) => {
            let id = rec.invoke(tid, (key, KvOp::Get));
            let resp = m.get(h, key);
            rec.ret(id, resp);
        }
    }
}

/// Records a crash-free concurrent map execution: detectable puts and
/// removes plus plain gets over a small shared key set.
pub fn record_map_execution(threads: usize, ops_per_thread: usize, seed: u64) -> MapHistory {
    let m: DetectableMap = DetectableMap::new_in(threads, 64, 8, FlushGranularity::Line);
    let hs: Vec<ThreadHandle> = (0..threads).map(|_| m.register_thread().unwrap()).collect();
    let rec = Recorder::new();
    std::thread::scope(|scope| {
        for (tid, &h) in hs.iter().enumerate() {
            let m = &m;
            let rec = &rec;
            scope.spawn(move || {
                for (i, step) in map_plan(tid, ops_per_thread, seed).into_iter().enumerate() {
                    run_map_step(m, rec, h, step, i as u64 + 1);
                }
            });
        }
    });
    rec.into_history()
}

/// Records a map execution in which every thread is interrupted by a
/// system-wide crash mid-run; after the restart protocol, an observer
/// reads every key, pinning the recovered bindings into the history the
/// strict checker must certify.
pub fn record_map_crash_execution(threads: usize, ops_per_thread: usize, seed: u64) -> MapHistory {
    record_map_crash_execution_on(threads, threads, ops_per_thread, seed, false, false)
}

/// [`record_map_crash_execution`] with only `survivors` of the `threads`
/// workers restarting (§3.3): each survivor re-adopts its own registry
/// slot, then the first adopts every slot nobody came back for, and the
/// observer audit reads through the recovered state.
///
/// # Panics
///
/// Panics if `survivors` is zero or exceeds `threads`.
pub fn record_map_partial_recovery_execution(
    threads: usize,
    survivors: usize,
    ops_per_thread: usize,
    seed: u64,
    coalesce: bool,
    per_address: bool,
) -> MapHistory {
    assert!(survivors >= 1 && survivors <= threads, "need 1..=threads survivors");
    record_map_crash_execution_on(threads, survivors, ops_per_thread, seed, coalesce, per_address)
}

fn record_map_crash_execution_on(
    threads: usize,
    survivors: usize,
    ops_per_thread: usize,
    seed: u64,
    coalesce: bool,
    per_address: bool,
) -> MapHistory {
    let m: DetectableMap = DetectableMap::new_in(threads + 1, 64, 8, FlushGranularity::Line);
    m.pool().set_coalescing(coalesce);
    m.pool().set_per_address_drains(per_address);
    let hs: Vec<ThreadHandle> = (0..threads).map(|_| m.register_thread().unwrap()).collect();
    let observer = m.register_thread().unwrap();
    let rec = Recorder::new();
    std::thread::scope(|scope| {
        for (tid, &h) in hs.iter().enumerate() {
            let m = &m;
            let rec = &rec;
            scope.spawn(move || {
                let crash_after = 5 + (seed.wrapping_add(tid as u64 * 31)) % 60;
                m.pool().arm_crash_after(crash_after);
                let r = catch_unwind(AssertUnwindSafe(|| {
                    for (i, step) in map_plan(tid, ops_per_thread, seed).into_iter().enumerate() {
                        run_map_step(m, rec, h, step, i as u64 + 1);
                    }
                }));
                m.pool().disarm_crash();
                if let Err(p) = r {
                    if p.downcast_ref::<CrashSignal>().is_none() {
                        resume_unwind(p);
                    }
                }
            });
        }
    });
    rec.crash();
    m.pool().crash(&WritebackAdversary::Random { seed, prob: 0.5 });
    // Survivors restart one by one; the restart protocol then adopts the
    // rest (the observer's slot included). No repair phase exists.
    for h in hs.iter().take(survivors) {
        m.begin_recovery();
        let _ = m.adopt(h.slot()).expect("own slot is orphaned after begin_recovery");
    }
    m.begin_recovery();
    let _ = m.adopt_orphans();
    m.rebuild_allocator();
    // Post-crash audit: read every key under the observer's id, so the
    // checker must find a linearization whose surviving effects are
    // exactly these bindings.
    for key in 0..MAP_HISTORY_KEYS {
        let id = rec.invoke(threads, (key, KvOp::Get));
        rec.ret(id, m.get(observer, key));
    }
    rec.into_history()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_free_executions_are_linearizable() {
        for seed in 0..10 {
            let h = record_execution(2, 5, seed);
            assert!(h.validate().is_ok());
            check_recorded(&h, Condition::Linearizability)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn crash_executions_are_strictly_linearizable() {
        for seed in 0..10 {
            let h = record_crash_execution(2, 8, seed);
            assert!(h.validate().is_ok());
            check_recorded(&h, Condition::StrictLinearizability)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn partial_recovery_executions_are_strictly_linearizable() {
        for seed in 0..6 {
            for survivors in [1, 2] {
                let h = record_partial_recovery_execution(2, survivors, 8, seed, false, false);
                assert!(h.validate().is_ok());
                check_recorded(&h, Condition::StrictLinearizability)
                    .unwrap_or_else(|e| panic!("seed {seed} survivors {survivors}: {e}"));
            }
        }
    }

    #[test]
    fn plain_executions_check_fully_at_scale() {
        // 2 threads * 2000 pairs = 8000 ops: far beyond the monolithic cap,
        // checked in full (no sampling) via the FIFO fast path.
        let h = record_plain_execution(2, 2000, 4, 7);
        assert!(h.validate().is_ok());
        let stats = check_plain(&h, Condition::Linearizability, &CheckOptions::default())
            .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(stats.ops, 2 * 2 * 2000 + 4);
        assert!(stats.fast_path, "distinct-value no-empty runs take the fast path");
    }

    #[test]
    fn phased_executions_check_fully_at_scale() {
        let h = record_phased_execution(3, 60, 5, 11);
        assert!(h.validate().is_ok());
        let stats = check_recorded_full(&h, Condition::Linearizability, &CheckOptions::default())
            .unwrap_or_else(|e| panic!("{e}"));
        assert!(stats.ops > dss_checker::MAX_OPS, "beyond the monolithic cap");
        assert!(stats.max_window <= 512);
    }

    #[test]
    fn full_check_agrees_with_monolithic_on_small_histories() {
        for seed in 0..10 {
            let h = record_execution(2, 5, seed);
            let mono = check_recorded(&h, Condition::Linearizability).is_ok();
            let seg = check_recorded_full(&h, Condition::Linearizability, &CheckOptions::default())
                .is_ok();
            assert_eq!(mono, seg, "seed {seed}");
        }
    }

    #[test]
    fn strict_implies_weaker_conditions_hold_too() {
        let h = record_crash_execution(2, 6, 3);
        assert!(check_recorded(&h, Condition::PersistentAtomicity).is_ok());
        assert!(check_recorded(&h, Condition::RecoverableLinearizability).is_ok());
    }

    #[test]
    fn a_corrupted_response_is_rejected() {
        // Sanity-check that the checker has teeth: tamper with a recorded
        // response and expect a violation.
        use dss_checker::Event;
        let h = record_execution(2, 5, 1);
        let mut events: Vec<_> = h.events().to_vec();
        let tampered = events.iter_mut().rev().find_map(|e| match e {
            Event::Return { resp: DetResp::Ret(QueueResp::Value(v)), .. } => {
                *v = v.wrapping_add(1);
                Some(())
            }
            _ => None,
        });
        if tampered.is_none() {
            return; // this seed dequeued nothing; other tests cover it
        }
        let mut h2 = RecordedHistory::new();
        for e in events {
            match e {
                Event::Invoke { pid, op } => {
                    h2.invoke(pid, op);
                }
                Event::Return { of, resp } => h2.ret(of, resp),
                Event::Crash => h2.crash(),
            }
        }
        assert!(check_recorded(&h2, Condition::Linearizability).is_err());
    }

    #[test]
    fn crash_free_map_executions_are_linearizable_per_key() {
        for seed in 0..6 {
            let h = record_map_execution(3, 40, seed);
            assert!(h.validate().is_ok());
            let stats = check_map_history(&h, Condition::Linearizability, &CheckOptions::default())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(stats.ops, 3 * 40, "every operation checked, no sampling");
            assert!(stats.partitions >= 2, "the shared key set splits into partitions");
        }
    }

    #[test]
    fn map_crash_executions_are_strictly_linearizable_per_key() {
        for seed in 0..6 {
            let h = record_map_crash_execution(3, 30, seed);
            assert!(h.validate().is_ok());
            check_map_history(&h, Condition::StrictLinearizability, &CheckOptions::default())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn map_partial_recovery_executions_are_strictly_linearizable_per_key() {
        for seed in 0..4 {
            for survivors in [1, 2] {
                let h = record_map_partial_recovery_execution(3, survivors, 20, seed, false, false);
                assert!(h.validate().is_ok());
                check_map_history(&h, Condition::StrictLinearizability, &CheckOptions::default())
                    .unwrap_or_else(|e| panic!("seed {seed} survivors {survivors}: {e}"));
            }
        }
    }

    #[test]
    fn a_corrupted_map_response_is_pinned_to_its_partition() {
        // Tamper with one key's recorded response; the per-key split must
        // reject it *and* name that key's partition, leaving the other
        // keys' histories out of the blast radius.
        use dss_checker::Event;
        let h = record_map_execution(2, 60, 9);
        let mut events: Vec<_> = h.events().to_vec();
        let mut bad_key = None;
        for e in events.iter_mut().rev() {
            if let Event::Return { of, resp: KvResp::Value(v) } = e {
                // Only a Get is safe to poison unconditionally: a put's
                // previous-value response can alias another legal history.
                let key = match &h.events()[of.0] {
                    Event::Invoke { op: (k, KvOp::Get), .. } => *k,
                    _ => continue,
                };
                *v = v.wrapping_add(0xdead);
                bad_key = Some(key);
                break;
            }
        }
        let Some(bad_key) = bad_key else {
            return; // this seed read only absent keys; other tests cover it
        };
        let mut h2 = MapHistory::new();
        for e in events {
            match e {
                Event::Invoke { pid, op } => {
                    h2.invoke(pid, op);
                }
                Event::Return { of, resp } => h2.ret(of, resp),
                Event::Crash => h2.crash(),
            }
        }
        let err = check_map_history(&h2, Condition::Linearizability, &CheckOptions::default())
            .expect_err("a poisoned read must not check");
        match err {
            Violation::WindowNoLinearization { partition, .. } => {
                assert_eq!(partition.as_deref(), Some(format!("{bad_key}").as_str()));
            }
            other => panic!("expected a window violation, got {other}"),
        }
    }
}
