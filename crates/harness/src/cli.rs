//! Minimal flag parsing shared by the experiment binaries (keeps the
//! workspace inside the sanctioned dependency set — no clap).

/// Common knobs of the experiment binaries.
#[derive(Clone, Debug)]
pub struct Args {
    /// Maximum thread count of a sweep (x-axis of the figures).
    pub threads: usize,
    /// Per-point measurement duration in milliseconds.
    pub ms: u64,
    /// Runs averaged per point.
    pub repeats: usize,
    /// Flush penalty in spin iterations (see
    /// [`PmemPool::set_flush_penalty`](dss_pmem::PmemPool::set_flush_penalty)).
    pub penalty: u64,
    /// Flush granularity: `"line"` or `"word"` (experiment E7).
    pub granularity: String,
    /// Writeback adversary: `"none"`, `"all"`, or `"random"` (E4/E7).
    pub adversary: String,
    /// Random seed where applicable.
    pub seed: u64,
    /// Memory backends to run (`--backend pmem --backend dram`; empty
    /// means the default pmem-only run, keeping historical output stable).
    pub backends: Vec<String>,
    /// Flush coalescing (`--coalesce on|off`, experiment E9). Default off.
    pub coalesce: bool,
    /// Per-address dependency drains (`--per-address on|off`, experiment
    /// E10; meaningful only with `--coalesce on`). Default off.
    pub per_address: bool,
    /// Bounded exponential backoff on contended retry loops
    /// (`--backoff on|off`, experiment E9). Default off.
    pub backoff: bool,
    /// Partial-recovery crash runs (`--partial-recovery on|off`,
    /// `crash_matrix` only): after a multi-threaded crash, only a subset
    /// of threads restarts and an adopter reclaims the orphaned registry
    /// slots (§3.3). Default off.
    pub partial_recovery: bool,
    /// Multi-process crash runs (`--multi-process on|off`, `crash_matrix`
    /// only): a child process creates a file-backed pool, is SIGKILLed
    /// mid-operation, and a fresh attach from the parent must recover and
    /// resolve every pre-crash operation. Default off.
    pub multi_process: bool,
    /// Execution layer / object family under test (`--layer
    /// cas|combining|replicated|map`, `crash_matrix` only). The legacy
    /// boolean spellings `--combining on|off` and `--replicated on|off`
    /// are still accepted as deprecated aliases (with `--replicated`
    /// taking precedence, as before). Default [`Layer::Cas`].
    pub layer: Layer,
    /// Volatile replica count for the replicated layer
    /// (`--replicas <n>`, experiment E15). Default 2.
    pub replicas: usize,
    /// Checker pipeline (`--mode monolithic|partitioned`,
    /// `check_histories` only): `monolithic` is the classic bounded
    /// Wing–Gong search (the ground-truth oracle, histories capped at
    /// `MAX_OPS`); `partitioned` is the segmented/fast-path pipeline that
    /// checks full-length histories. Default partitioned.
    pub mode: CheckMode,
    /// Override of the per-window operation bound (`--max-ops <n>`,
    /// `check_histories` only); `None` keeps the checker's default.
    pub max_ops: Option<usize>,
}

/// Which execution layer (or object family) `crash_matrix` sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Layer {
    /// The CAS-racing queue (the paper's baseline).
    Cas,
    /// The flat-combining queue (experiment E14).
    Combining,
    /// The log-fed replicated queue (experiment E15).
    Replicated,
    /// The detectable hash map (experiment E16's structure).
    Map,
}

impl Layer {
    fn parse(s: &str) -> Layer {
        match s {
            "cas" => Layer::Cas,
            "combining" => Layer::Combining,
            "replicated" => Layer::Replicated,
            "map" => Layer::Map,
            l => panic!("--layer {l}: expected cas|combining|replicated|map"),
        }
    }
}

/// Which checking pipeline `check_histories` runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckMode {
    /// The classic bounded search ([`dss_checker::check`]).
    Monolithic,
    /// The segmented + fast-path pipeline
    /// ([`dss_checker::check_records`]), full-length histories.
    Partitioned,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            threads: 8,
            ms: 200,
            repeats: 3,
            penalty: 20,
            granularity: "line".into(),
            adversary: "none".into(),
            seed: 1,
            backends: Vec::new(),
            coalesce: false,
            per_address: false,
            backoff: false,
            partial_recovery: false,
            multi_process: false,
            layer: Layer::Cas,
            replicas: 2,
            mode: CheckMode::Partitioned,
            max_ops: None,
        }
    }
}

fn parse_switch(flag: &str, val: &str) -> bool {
    match val {
        "on" => true,
        "off" => false,
        v => panic!("{flag} {v}: expected on|off"),
    }
}

/// Parses `std::env::args`.
///
/// # Panics
///
/// Panics with a usage hint on unknown flags or malformed values.
pub fn parse() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--threads" => args.threads = val().parse().expect("--threads <usize>"),
            "--ms" => args.ms = val().parse().expect("--ms <u64>"),
            "--repeats" => args.repeats = val().parse().expect("--repeats <usize>"),
            "--penalty" => args.penalty = val().parse().expect("--penalty <u64>"),
            "--granularity" => args.granularity = val(),
            "--adversary" => args.adversary = val(),
            "--seed" => args.seed = val().parse().expect("--seed <u64>"),
            "--backend" => args.backends.push(val()),
            "--coalesce" => args.coalesce = parse_switch("--coalesce", &val()),
            "--per-address" => args.per_address = parse_switch("--per-address", &val()),
            "--backoff" => args.backoff = parse_switch("--backoff", &val()),
            "--partial-recovery" => {
                args.partial_recovery = parse_switch("--partial-recovery", &val());
            }
            "--multi-process" => args.multi_process = parse_switch("--multi-process", &val()),
            "--layer" => args.layer = Layer::parse(&val()),
            // Deprecated boolean aliases, kept so recorded invocations
            // keep working; `--replicated on` beats `--combining on`
            // whatever the flag order, matching the old precedence.
            "--combining" => {
                if parse_switch("--combining", &val()) {
                    if args.layer != Layer::Replicated {
                        args.layer = Layer::Combining;
                    }
                } else if args.layer == Layer::Combining {
                    args.layer = Layer::Cas;
                }
            }
            "--replicated" => {
                if parse_switch("--replicated", &val()) {
                    args.layer = Layer::Replicated;
                } else if args.layer == Layer::Replicated {
                    args.layer = Layer::Cas;
                }
            }
            "--replicas" => args.replicas = val().parse().expect("--replicas <usize>"),
            "--mode" => {
                args.mode = match val().as_str() {
                    "monolithic" => CheckMode::Monolithic,
                    "partitioned" => CheckMode::Partitioned,
                    m => panic!("--mode {m}: expected monolithic|partitioned"),
                }
            }
            "--max-ops" => args.max_ops = Some(val().parse().expect("--max-ops <usize>")),
            other => panic!(
                "unknown flag {other}; known: --threads --ms --repeats --penalty \
                 --granularity --adversary --seed --backend --coalesce --per-address --backoff \
                 --partial-recovery --multi-process --layer --replicas \
                 --mode --max-ops (deprecated: --combining --replicated)"
            ),
        }
    }
    args
}

impl Args {
    /// The configured flush granularity.
    pub fn flush_granularity(&self) -> dss_pmem::FlushGranularity {
        match self.granularity.as_str() {
            "line" => dss_pmem::FlushGranularity::Line,
            "word" => dss_pmem::FlushGranularity::Word,
            g => panic!("unknown granularity {g} (line|word)"),
        }
    }

    /// The configured memory backends, in flag order; defaults to
    /// pmem-only when no `--backend` flag was given.
    pub fn parsed_backends(&self) -> Vec<crate::adapter::Backend> {
        if self.backends.is_empty() {
            vec![crate::adapter::Backend::Pmem]
        } else {
            self.backends.iter().map(|b| crate::adapter::Backend::parse(b)).collect()
        }
    }

    /// The configured writeback adversary.
    pub fn writeback_adversary(&self) -> dss_pmem::WritebackAdversary {
        match self.adversary.as_str() {
            "none" => dss_pmem::WritebackAdversary::None,
            "all" => dss_pmem::WritebackAdversary::All,
            "random" => dss_pmem::WritebackAdversary::Random { seed: self.seed, prob: 0.5 },
            a => panic!("unknown adversary {a} (none|all|random)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let a = Args::default();
        assert_eq!(a.flush_granularity(), dss_pmem::FlushGranularity::Line);
        assert_eq!(a.writeback_adversary(), dss_pmem::WritebackAdversary::None);
        assert!(!a.coalesce && !a.per_address && !a.backoff, "perf features default off");
        assert!(!a.partial_recovery, "partial-recovery mode defaults off");
        assert!(!a.multi_process, "multi-process mode defaults off");
        assert_eq!(a.layer, Layer::Cas, "the CAS-racing layer is the default");
        assert_eq!(a.replicas, 2, "replica count defaults to 2");
        assert_eq!(a.mode, CheckMode::Partitioned, "full-length checking is the default");
        assert_eq!(a.max_ops, None);
    }

    #[test]
    fn switch_values_parse() {
        assert!(parse_switch("--coalesce", "on"));
        assert!(!parse_switch("--backoff", "off"));
    }

    #[test]
    fn layer_names_parse() {
        assert_eq!(Layer::parse("cas"), Layer::Cas);
        assert_eq!(Layer::parse("combining"), Layer::Combining);
        assert_eq!(Layer::parse("replicated"), Layer::Replicated);
        assert_eq!(Layer::parse("map"), Layer::Map);
    }

    #[test]
    #[should_panic(expected = "expected cas|combining|replicated|map")]
    fn bad_layer_panics() {
        Layer::parse("quantum");
    }

    #[test]
    #[should_panic(expected = "expected on|off")]
    fn bad_switch_panics() {
        parse_switch("--coalesce", "maybe");
    }

    #[test]
    #[should_panic(expected = "unknown granularity")]
    fn bad_granularity_panics() {
        let a = Args { granularity: "nibble".into(), ..Default::default() };
        let _ = a.flush_granularity();
    }
}
