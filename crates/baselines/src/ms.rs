//! The Michael & Scott lock-free queue — the volatile baseline.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;

use dss_pmem::{
    tag, AppKind, AttachError, Backoff, BackoffTuner, Ebr, FlushGranularity, Memory, NodePool,
    PAddr, PmemPool, Registry, SlotError, ThreadHandle, WORDS_PER_LINE,
};
use dss_spec::types::QueueResp;

const F_VALUE: u64 = 0;
const F_NEXT: u64 = 1;
const NODE_WORDS: u64 = 4;

// Head and tail each on their own cache line (no false sharing).
const A_HEAD: u64 = WORDS_PER_LINE;
const A_TAIL: u64 = 2 * WORDS_PER_LINE;

/// Structure-kind word a file-backed MS queue records in its pool
/// superblock.
pub const KIND_MS_QUEUE: u64 = AppKind::MsQueue.word();

/// The MS queue's pool layout, derived from `(nthreads, nodes_per_thread)`
/// alone.
struct MsLayout {
    sentinel: u64,
    region: u64,
    reg_base: u64,
    words: u64,
}

impl MsLayout {
    fn new(nthreads: usize, nodes_per_thread: u64) -> Self {
        assert!(nthreads > 0 && nodes_per_thread > 0);
        let sentinel = (A_TAIL + WORDS_PER_LINE).next_multiple_of(NODE_WORDS);
        let region = sentinel + NODE_WORDS;
        let node_end = region + nodes_per_thread * nthreads as u64 * NODE_WORDS;
        let reg_base = node_end.next_multiple_of(WORDS_PER_LINE);
        let words = reg_base + Registry::<PmemPool>::region_words(nthreads);
        MsLayout { sentinel, region, reg_base, words }
    }
}

/// The classic MS queue (Michael & Scott, PODC 1996), with **no** flush
/// instructions: its state does not survive a crash, which is exactly the
/// point of comparing against it (paper Figure 5a's upper bound).
///
/// Structurally it is the non-detectable DSS queue with the flushes
/// removed, as the paper describes; it runs on the same simulated pool so
/// throughput comparisons isolate the cost of persistence.
///
/// # Examples
///
/// ```
/// use dss_baselines::MsQueue;
/// use dss_spec::types::QueueResp;
///
/// let q = MsQueue::new(1, 16);
/// let h0 = q.register_thread().unwrap();
/// q.enqueue(h0, 9).unwrap();
/// assert_eq!(q.dequeue(h0), QueueResp::Value(9));
/// assert_eq!(q.dequeue(h0), QueueResp::Empty);
/// ```
pub struct MsQueue<M: Memory = PmemPool> {
    pool: Arc<M>,
    nodes: NodePool,
    ebr: Ebr,
    nthreads: usize,
    backoff: AtomicBool,
    tuner: BackoffTuner,
    registry: Registry<M>,
}

use crate::QueueFull;

impl MsQueue {
    /// Creates a queue for `nthreads` threads with `nodes_per_thread`
    /// pre-allocated nodes each, on a fresh line-granular [`PmemPool`].
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero.
    pub fn new(nthreads: usize, nodes_per_thread: u64) -> Self {
        Self::new_in(nthreads, nodes_per_thread)
    }

    /// Creates a queue on a **file-backed** pool at `path`, recording
    /// [`KIND_MS_QUEUE`] and the construction parameters in the
    /// superblock.
    ///
    /// # Errors
    ///
    /// [`AttachError::Io`] if the pool file cannot be created.
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero.
    pub fn create<P: AsRef<std::path::Path>>(
        path: P,
        nthreads: usize,
        nodes_per_thread: u64,
    ) -> Result<Self, AttachError> {
        let layout = MsLayout::new(nthreads, nodes_per_thread);
        let pool =
            Arc::new(PmemPool::create(path, layout.words as usize, FlushGranularity::default())?);
        pool.set_app_config(KIND_MS_QUEUE, &[nthreads as u64, nodes_per_thread]);
        let registry = Registry::create(Arc::clone(&pool), layout.reg_base, nthreads);
        let q = Self::assemble(pool, registry, &layout, nthreads, nodes_per_thread);
        q.format(layout.sentinel);
        Ok(q)
    }

    /// Re-opens an MS queue's pool file. The queue itself is volatile —
    /// its operations never flush, so its contents do **not** survive the
    /// previous process; attach re-formats the queue region to empty.
    /// Only the registry (which does persist) is re-bound, so slot
    /// occupancy and orphan adoption still work across processes — the
    /// contrast with the recoverable queues is exactly the point of this
    /// baseline.
    ///
    /// # Errors
    ///
    /// Any [`AttachError`], including [`AttachError::AppMismatch`] if the
    /// file holds a different structure.
    pub fn attach<P: AsRef<std::path::Path>>(path: P) -> Result<Self, AttachError> {
        let pool = Arc::new(PmemPool::attach(path)?);
        let found = pool.app_kind();
        if found != KIND_MS_QUEUE {
            return Err(AttachError::AppMismatch { expected: KIND_MS_QUEUE, found });
        }
        let [nthreads, nodes_per_thread, ..] = pool.app_config();
        if nthreads == 0 || nodes_per_thread == 0 {
            return Err(AttachError::Corrupt("MS queue parameter words are zero"));
        }
        let nthreads = nthreads as usize;
        let layout = MsLayout::new(nthreads, nodes_per_thread);
        if (pool.capacity() as u64) < layout.words {
            return Err(AttachError::Corrupt("pool smaller than the MS queue layout requires"));
        }
        let registry = Registry::attach(Arc::clone(&pool), layout.reg_base)?;
        let q = Self::assemble(pool, registry, &layout, nthreads, nodes_per_thread);
        // Volatile contents were lost with the previous process: start
        // from an empty queue again.
        q.format(layout.sentinel);
        Ok(q)
    }
}

impl<M: Memory> MsQueue<M> {
    /// Creates a queue on a freshly created backend of type `M`
    /// ([`Memory::create`]) — the backend-generic constructor behind
    /// [`new`](MsQueue::new).
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero.
    pub fn new_in(nthreads: usize, nodes_per_thread: u64) -> Self {
        let layout = MsLayout::new(nthreads, nodes_per_thread);
        let pool = Arc::new(M::create(layout.words as usize, FlushGranularity::default()));
        let registry = Registry::create(Arc::clone(&pool), layout.reg_base, nthreads);
        let q = Self::assemble(pool, registry, &layout, nthreads, nodes_per_thread);
        q.format(layout.sentinel);
        q
    }

    /// The shared constructor tail: in-DRAM side tables over an existing
    /// pool + registry.
    fn assemble(
        pool: Arc<M>,
        registry: Registry<M>,
        layout: &MsLayout,
        nthreads: usize,
        nodes_per_thread: u64,
    ) -> Self {
        let nodes =
            NodePool::new(PAddr::from_index(layout.region), NODE_WORDS, nodes_per_thread, nthreads);
        MsQueue {
            pool,
            nodes,
            ebr: Ebr::new(nthreads),
            nthreads,
            backoff: AtomicBool::new(false),
            tuner: BackoffTuner::new(),
            registry,
        }
    }

    /// Writes the initial queue state. Deliberately unflushed: the MS
    /// queue is the volatile baseline.
    fn format(&self, sentinel: u64) {
        let s = PAddr::from_index(sentinel);
        self.pool.store(s.offset(F_VALUE), 0);
        self.pool.store(s.offset(F_NEXT), 0);
        self.pool.store(PAddr::from_index(A_HEAD), s.to_word());
        self.pool.store(PAddr::from_index(A_TAIL), s.to_word());
    }

    /// The queue's pool (for op counting in experiments).
    pub fn pool(&self) -> &Arc<M> {
        &self.pool
    }

    /// Number of threads the queue was built for.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// The persistent slot registry governing thread identity. The MS
    /// queue itself is volatile — only registration flushes; the enqueue
    /// and dequeue paths stay flush-free.
    pub fn registry(&self) -> &Registry<M> {
        &self.registry
    }

    /// Claims a free slot and returns the [`ThreadHandle`] every operation
    /// requires. Fails with [`SlotError::Exhausted`] once all `nthreads`
    /// slots are taken.
    pub fn register_thread(&self) -> Result<ThreadHandle, SlotError> {
        let h = self.registry.acquire()?;
        self.ebr.adopt_slot(h.slot());
        Ok(h)
    }

    /// Returns a handle's slot to the free pool for reuse.
    pub fn release_thread(&self, h: ThreadHandle) -> Result<(), SlotError> {
        self.registry.release(h)
    }

    /// Enables or disables bounded exponential backoff after failed CAS.
    /// Default off.
    pub fn set_backoff(&self, on: bool) {
        self.backoff.store(on, Relaxed);
    }

    fn new_backoff(&self) -> Backoff<'_> {
        Backoff::attached(self.backoff.load(Relaxed), &self.tuner)
    }

    fn head(&self) -> PAddr {
        PAddr::from_index(A_HEAD)
    }

    fn tail(&self) -> PAddr {
        PAddr::from_index(A_TAIL)
    }

    fn alloc(&self, tid: usize) -> Result<PAddr, QueueFull> {
        self.nodes.alloc_with_reclaim(tid, &self.ebr).ok_or(QueueFull)
    }

    /// Appends `val` at the tail.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when the node pool is exhausted.
    pub fn enqueue(&self, h: ThreadHandle, val: u64) -> Result<(), QueueFull> {
        let tid = h.slot();
        let node = self.alloc(tid)?;
        self.pool.store(node.offset(F_VALUE), val);
        self.pool.store(node.offset(F_NEXT), 0);
        let _g = self.ebr.pin(tid);
        let mut bo = self.new_backoff();
        loop {
            let last_w = self.pool.load(self.tail());
            let last = tag::addr_of(last_w);
            let next_w = self.pool.load(last.offset(F_NEXT));
            if self.pool.load(self.tail()) == last_w {
                if tag::addr_of(next_w).is_null() {
                    if self.pool.cas(last.offset(F_NEXT), 0, node.to_word()).is_ok() {
                        let _ = self.pool.cas(self.tail(), last_w, node.to_word());
                        return Ok(());
                    }
                } else {
                    let _ = self.pool.cas(self.tail(), last_w, next_w);
                }
            }
            bo.spin();
        }
    }

    /// Removes and returns the value at the head, or
    /// [`QueueResp::Empty`].
    pub fn dequeue(&self, h: ThreadHandle) -> QueueResp {
        let tid = h.slot();
        let _g = self.ebr.pin(tid);
        let mut bo = self.new_backoff();
        loop {
            let first_w = self.pool.load(self.head());
            let last_w = self.pool.load(self.tail());
            let first = tag::addr_of(first_w);
            let next_w = self.pool.load(first.offset(F_NEXT));
            let next = tag::addr_of(next_w);
            if self.pool.load(self.head()) != first_w {
                bo.spin();
                continue;
            }
            if first_w == last_w {
                if next.is_null() {
                    return QueueResp::Empty;
                }
                let _ = self.pool.cas(self.tail(), last_w, next_w);
            } else {
                // Read the value *before* swinging head (the classic MS
                // subtlety: after the CAS another thread may free `next`).
                let val = self.pool.load(next.offset(F_VALUE));
                if self.pool.cas(self.head(), first_w, next_w).is_ok() {
                    if self.nodes.contains(first) {
                        self.ebr.retire(tid, first);
                    }
                    return QueueResp::Value(val);
                }
                bo.spin();
            }
        }
    }

    /// Volatile snapshot of queued values (test helper).
    pub fn snapshot_values(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cur = tag::addr_of(self.pool.peek(self.head()));
        loop {
            let next = tag::addr_of(self.pool.peek(cur.offset(F_NEXT)));
            if next.is_null() {
                return out;
            }
            out.push(self.pool.peek(next.offset(F_VALUE)));
            cur = next;
        }
    }
}

impl<M: Memory> fmt::Debug for MsQueue<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MsQueue").field("nthreads", &self.nthreads).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_pmem::WritebackAdversary;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = MsQueue::new(1, 8);
        let h0 = q.register_thread().unwrap();
        for v in [1, 2, 3] {
            q.enqueue(h0, v).unwrap();
        }
        assert_eq!(q.dequeue(h0), QueueResp::Value(1));
        assert_eq!(q.dequeue(h0), QueueResp::Value(2));
        assert_eq!(q.dequeue(h0), QueueResp::Value(3));
        assert_eq!(q.dequeue(h0), QueueResp::Empty);
    }

    #[test]
    fn no_flushes_issued() {
        let q = MsQueue::new(1, 8);
        // Registration flushes registry metadata; the op paths must not.
        let h0 = q.register_thread().unwrap();
        q.pool().reset_stats();
        q.enqueue(h0, 1).unwrap();
        q.dequeue(h0);
        assert_eq!(q.pool().stats().flushes, 0, "the MS queue never flushes");
    }

    #[test]
    fn state_does_not_survive_crash() {
        let q = MsQueue::new(1, 8);
        let h0 = q.register_thread().unwrap();
        q.enqueue(h0, 1).unwrap();
        q.pool().crash(&WritebackAdversary::None);
        // Everything, including head/tail, reverted to zero: the queue is
        // simply gone. (This is why the durable/DSS queues exist.)
        assert_eq!(q.pool().peek(PAddr::from_index(A_HEAD)), 0);
    }

    #[test]
    fn concurrent_stress() {
        let q = Arc::new(MsQueue::new(4, 64));
        let hs: Vec<_> = (0..4).map(|_| q.register_thread().unwrap()).collect();
        let handles: Vec<_> = (0..4)
            .map(|tid| {
                let q = Arc::clone(&q);
                let h = hs[tid];
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    for i in 0..500u64 {
                        q.enqueue(h, (tid as u64) << 32 | i).unwrap();
                        if let QueueResp::Value(v) = q.dequeue(h) {
                            got.push(v);
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.extend(q.snapshot_values());
        all.sort_unstable();
        let mut expected: Vec<u64> =
            (0..4u64).flat_map(|t| (0..500).map(move |i| t << 32 | i)).collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }

    #[test]
    fn recycles_through_small_pool() {
        let q = MsQueue::new(1, 4);
        let h0 = q.register_thread().unwrap();
        for i in 0..200 {
            q.enqueue(h0, i).unwrap();
            assert_eq!(q.dequeue(h0), QueueResp::Value(i));
        }
    }
}
