//! Friedman et al.'s durable queue (PPoPP 2018) — recoverable but not
//! detectable.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;

use dss_pmem::{
    tag, AppKind, AttachError, Backoff, BackoffTuner, Ebr, FlushGranularity, Memory, NodePool,
    PAddr, PmemPool, Registry, SlotError, ThreadHandle, WORDS_PER_LINE,
};
use dss_spec::types::QueueResp;

use crate::QueueFull;

const F_VALUE: u64 = 0;
const F_NEXT: u64 = 1;
const F_DEQ_TID: u64 = 2;
const NODE_WORDS: u64 = 4;

const NO_DEQUEUER: u64 = u64::MAX;

/// `returnedValues[tid]` sentinel: a dequeue is in progress.
pub const RV_PENDING: u64 = u64::MAX;
/// `returnedValues[tid]` sentinel: the last dequeue found the queue empty.
pub const RV_EMPTY: u64 = u64::MAX - 1;

// Head, tail and each returnedValues slot on their own cache line.
const A_HEAD: u64 = WORDS_PER_LINE;
const A_TAIL: u64 = 2 * WORDS_PER_LINE;
const A_RV_BASE: u64 = 3 * WORDS_PER_LINE;

/// Structure-kind word a file-backed durable queue records in its pool
/// superblock.
pub const KIND_DURABLE_QUEUE: u64 = AppKind::DurableQueue.word();

/// The durable queue's pool layout, derived from `(nthreads,
/// nodes_per_thread)` alone (cf. dss-core's layout structs).
struct DurableLayout {
    sentinel: u64,
    region: u64,
    reg_base: u64,
    words: u64,
}

impl DurableLayout {
    fn new(nthreads: usize, nodes_per_thread: u64) -> Self {
        assert!(nthreads > 0 && nodes_per_thread > 0);
        let rv_end = A_RV_BASE + nthreads as u64 * WORDS_PER_LINE;
        let sentinel = rv_end.next_multiple_of(NODE_WORDS);
        let region = sentinel + NODE_WORDS;
        let node_end = region + nodes_per_thread * nthreads as u64 * NODE_WORDS;
        let reg_base = node_end.next_multiple_of(WORDS_PER_LINE);
        let words = reg_base + Registry::<PmemPool>::region_words(nthreads);
        DurableLayout { sentinel, region, reg_base, words }
    }
}

/// The durable queue of Friedman, Herlihy, Marathe & Petrank: the DSS
/// queue's direct ancestor (paper §3: "the durable queue adds the
/// necessary flush instructions … and also augments the queue node
/// structure by adding a `deqThreadID` field").
///
/// Unlike the DSS queue it reports dequeued values through a shared
/// `returnedValues` array that a **centralized recovery procedure** fills
/// in after a crash — there is no notion of *preparing* an operation, so a
/// thread cannot distinguish "my dequeue never ran" from "it ran and I
/// crashed before reading the result slot". That gap is precisely what
/// detectability (and the DSS) adds.
///
/// Values must be below [`RV_EMPTY`] (the top two values are sentinels).
///
/// # Examples
///
/// ```
/// use dss_baselines::DurableQueue;
/// use dss_spec::types::QueueResp;
///
/// let q = DurableQueue::new(1, 16);
/// let h0 = q.register_thread().unwrap();
/// q.enqueue(h0, 7).unwrap();
/// assert_eq!(q.dequeue(h0), QueueResp::Value(7));
/// assert_eq!(q.last_returned(h0), Some(QueueResp::Value(7)));
/// ```
pub struct DurableQueue<M: Memory = PmemPool> {
    pool: Arc<M>,
    nodes: NodePool,
    ebr: Ebr,
    nthreads: usize,
    backoff: AtomicBool,
    tuner: BackoffTuner,
    registry: Registry<M>,
}

impl DurableQueue {
    /// Creates a queue for `nthreads` threads with `nodes_per_thread`
    /// pre-allocated nodes each, on a fresh line-granular [`PmemPool`].
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero.
    pub fn new(nthreads: usize, nodes_per_thread: u64) -> Self {
        Self::new_in(nthreads, nodes_per_thread)
    }

    /// Creates a queue on a **file-backed** pool at `path`, recording
    /// [`KIND_DURABLE_QUEUE`] and the construction parameters in the
    /// superblock so [`attach`](Self::attach) needs only the path.
    ///
    /// # Errors
    ///
    /// [`AttachError::Io`] if the pool file cannot be created.
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero.
    pub fn create<P: AsRef<std::path::Path>>(
        path: P,
        nthreads: usize,
        nodes_per_thread: u64,
    ) -> Result<Self, AttachError> {
        let layout = DurableLayout::new(nthreads, nodes_per_thread);
        let pool =
            Arc::new(PmemPool::create(path, layout.words as usize, FlushGranularity::default())?);
        pool.set_app_config(KIND_DURABLE_QUEUE, &[nthreads as u64, nodes_per_thread]);
        let registry = Registry::create(Arc::clone(&pool), layout.reg_base, nthreads);
        let q = Self::assemble(pool, registry, &layout, nthreads, nodes_per_thread);
        q.format(layout.sentinel);
        Ok(q)
    }

    /// Rebuilds a queue from a pool file with no in-process state; follow
    /// with the centralized [`recover`](Self::recover) (the durable queue
    /// has no per-thread recovery story).
    ///
    /// # Errors
    ///
    /// Any [`AttachError`], including [`AttachError::AppMismatch`] if the
    /// file holds a different structure.
    pub fn attach<P: AsRef<std::path::Path>>(path: P) -> Result<Self, AttachError> {
        let pool = Arc::new(PmemPool::attach(path)?);
        let found = pool.app_kind();
        if found != KIND_DURABLE_QUEUE {
            return Err(AttachError::AppMismatch { expected: KIND_DURABLE_QUEUE, found });
        }
        let [nthreads, nodes_per_thread, ..] = pool.app_config();
        if nthreads == 0 || nodes_per_thread == 0 {
            return Err(AttachError::Corrupt("durable queue parameter words are zero"));
        }
        let nthreads = nthreads as usize;
        let layout = DurableLayout::new(nthreads, nodes_per_thread);
        if (pool.capacity() as u64) < layout.words {
            return Err(AttachError::Corrupt(
                "pool smaller than the durable queue layout requires",
            ));
        }
        let registry = Registry::attach(Arc::clone(&pool), layout.reg_base)?;
        let q = Self::assemble(pool, registry, &layout, nthreads, nodes_per_thread);
        q.rebuild_allocator();
        Ok(q)
    }
}

impl<M: Memory> DurableQueue<M> {
    /// Creates a queue on a freshly created backend of type `M`
    /// ([`Memory::create`]) — the backend-generic constructor behind
    /// [`new`](DurableQueue::new).
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero.
    pub fn new_in(nthreads: usize, nodes_per_thread: u64) -> Self {
        let layout = DurableLayout::new(nthreads, nodes_per_thread);
        let pool = Arc::new(M::create(layout.words as usize, FlushGranularity::default()));
        let registry = Registry::create(Arc::clone(&pool), layout.reg_base, nthreads);
        let q = Self::assemble(pool, registry, &layout, nthreads, nodes_per_thread);
        q.format(layout.sentinel);
        q
    }

    /// The shared constructor tail: in-DRAM side tables over an existing
    /// pool + registry — everything `attach` must rebuild rather than map.
    fn assemble(
        pool: Arc<M>,
        registry: Registry<M>,
        layout: &DurableLayout,
        nthreads: usize,
        nodes_per_thread: u64,
    ) -> Self {
        let nodes =
            NodePool::new(PAddr::from_index(layout.region), NODE_WORDS, nodes_per_thread, nthreads);
        DurableQueue {
            pool,
            nodes,
            ebr: Ebr::new(nthreads),
            nthreads,
            backoff: AtomicBool::new(false),
            tuner: BackoffTuner::new(),
            registry,
        }
    }

    /// Writes and persists the initial queue state (fresh pools only —
    /// never run on attach).
    fn format(&self, sentinel: u64) {
        let s = PAddr::from_index(sentinel);
        self.pool.store(s.offset(F_VALUE), 0);
        self.pool.store(s.offset(F_NEXT), 0);
        self.pool.store(s.offset(F_DEQ_TID), NO_DEQUEUER);
        self.pool.flush(s);
        self.pool.store(self.head(), s.to_word());
        self.pool.flush(self.head());
        self.pool.store(self.tail(), s.to_word());
        self.pool.flush(self.tail());
        for i in 0..self.nthreads {
            self.pool.store(self.rv(i), 0);
            self.pool.flush(self.rv(i));
        }
        self.pool.drain();
    }

    /// Enables or disables bounded exponential backoff after failed CAS.
    /// Default off.
    pub fn set_backoff(&self, on: bool) {
        self.backoff.store(on, Relaxed);
    }

    fn new_backoff(&self) -> Backoff<'_> {
        Backoff::attached(self.backoff.load(Relaxed), &self.tuner)
    }

    fn head(&self) -> PAddr {
        PAddr::from_index(A_HEAD)
    }

    fn tail(&self) -> PAddr {
        PAddr::from_index(A_TAIL)
    }

    // Handles are valid by construction (the registry hands out only
    // in-range slots), so the index needs no range check.
    fn rv(&self, tid: usize) -> PAddr {
        PAddr::from_index(A_RV_BASE + tid as u64 * WORDS_PER_LINE)
    }

    /// The queue's pool.
    pub fn pool(&self) -> &Arc<M> {
        &self.pool
    }

    /// Number of threads the queue was built for.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// The persistent slot registry governing thread identity.
    pub fn registry(&self) -> &Registry<M> {
        &self.registry
    }

    /// Claims a free slot and returns the [`ThreadHandle`] every operation
    /// requires. Fails with [`SlotError::Exhausted`] once all `nthreads`
    /// slots are taken.
    pub fn register_thread(&self) -> Result<ThreadHandle, SlotError> {
        let h = self.registry.acquire()?;
        self.ebr.adopt_slot(h.slot());
        Ok(h)
    }

    /// Returns a handle's slot to the free pool for reuse.
    pub fn release_thread(&self, h: ThreadHandle) -> Result<(), SlotError> {
        self.registry.release(h)
    }

    /// Marks the crash boundary in the registry: every slot LIVE at the
    /// crash becomes ORPHANED. The durable queue's [`recover`](Self::recover)
    /// is deliberately kept centralized (it predates detectability and has
    /// no per-thread recovery story), so this exists to let harnesses
    /// reclaim dead threads' slots via [`adopt`](Self::adopt) /
    /// [`adopt_orphans`](Self::adopt_orphans).
    pub fn begin_recovery(&self) {
        self.registry.begin_recovery();
    }

    /// Adopts one orphaned slot, inheriting its EBR state.
    pub fn adopt(&self, slot: usize) -> Result<ThreadHandle, SlotError> {
        let h = self.registry.adopt(slot)?;
        self.ebr.adopt_slot(slot);
        Ok(h)
    }

    /// Adopts every orphaned slot in ascending order.
    pub fn adopt_orphans(&self) -> Vec<ThreadHandle> {
        let hs = self.registry.adopt_orphans();
        for h in &hs {
            self.ebr.adopt_slot(h.slot());
        }
        hs
    }

    fn alloc(&self, tid: usize) -> Result<PAddr, QueueFull> {
        self.nodes.alloc_with_reclaim(tid, &self.ebr).ok_or(QueueFull)
    }

    /// Appends `val` at the tail (flushing the node and the link, as the
    /// durable queue prescribes).
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when the node pool is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `val` is one of the reserved sentinels.
    pub fn enqueue(&self, h: ThreadHandle, val: u64) -> Result<(), QueueFull> {
        let tid = h.slot();
        assert!(val < RV_EMPTY, "values {RV_EMPTY} and above are reserved");
        let node = self.alloc(tid)?;
        self.pool.store(node.offset(F_VALUE), val);
        self.pool.store(node.offset(F_NEXT), 0);
        self.pool.store(node.offset(F_DEQ_TID), NO_DEQUEUER);
        self.pool.flush(node);
        let _g = self.ebr.pin(tid);
        let mut bo = self.new_backoff();
        loop {
            let last_w = self.pool.load(self.tail());
            let last = tag::addr_of(last_w);
            let next_w = self.pool.load(last.offset(F_NEXT));
            if self.pool.load(self.tail()) == last_w {
                if tag::addr_of(next_w).is_null() {
                    // The node must be persistent before it can be linked
                    // (recovery walks persisted links from head).
                    self.pool.drain_lines(&[
                        node.offset(F_VALUE),
                        node.offset(F_NEXT),
                        node.offset(F_DEQ_TID),
                    ]);
                    if self.pool.cas(last.offset(F_NEXT), 0, node.to_word()).is_ok() {
                        self.pool.flush(last.offset(F_NEXT));
                        let _ = self.pool.cas(self.tail(), last_w, node.to_word());
                        self.pool.drain();
                        return Ok(());
                    }
                } else {
                    self.pool.flush(last.offset(F_NEXT));
                    let _ = self.pool.cas(self.tail(), last_w, next_w);
                }
            }
            bo.spin();
        }
    }

    /// Dequeues, publishing the result through `returnedValues[tid]`
    /// (persisted before the head advances, so recovery can re-deliver it).
    pub fn dequeue(&self, h: ThreadHandle) -> QueueResp {
        let tid = h.slot();
        let _g = self.ebr.pin(tid);
        // Announce a pending dequeue in the returnedValues slot.
        self.pool.store(self.rv(tid), RV_PENDING);
        self.pool.flush(self.rv(tid));
        let mut bo = self.new_backoff();
        loop {
            let first_w = self.pool.load(self.head());
            let last_w = self.pool.load(self.tail());
            let first = tag::addr_of(first_w);
            let next_w = self.pool.load(first.offset(F_NEXT));
            let next = tag::addr_of(next_w);
            if self.pool.load(self.head()) != first_w {
                bo.spin();
                continue;
            }
            if first_w == last_w {
                if next.is_null() {
                    self.pool.store(self.rv(tid), RV_EMPTY);
                    self.pool.flush(self.rv(tid));
                    self.pool.drain();
                    return QueueResp::Empty;
                }
                self.pool.flush(first.offset(F_NEXT));
                let _ = self.pool.cas(self.tail(), last_w, next_w);
            } else if self.pool.cas(next.offset(F_DEQ_TID), NO_DEQUEUER, tid as u64).is_ok() {
                self.pool.flush(next.offset(F_DEQ_TID));
                // Ordering point: the published result must not persist
                // ahead of the claim it reports (a surviving result over a
                // lost claim would let the value be delivered twice).
                self.pool.drain_line(next.offset(F_DEQ_TID));
                let val = self.pool.load(next.offset(F_VALUE));
                self.pool.store(self.rv(tid), val);
                self.pool.flush(self.rv(tid));
                // The result must be persistent before head advances past
                // the node: recovery re-publishes only the claimed prefix
                // still behind the persisted head.
                self.pool.drain_line(self.rv(tid));
                if self.pool.cas(self.head(), first_w, next_w).is_ok() && self.nodes.contains(first)
                {
                    self.ebr.retire(tid, first);
                }
                self.pool.drain();
                return QueueResp::Value(val);
            } else if self.pool.load(self.head()) == first_w {
                // Helping: persist the claim, publish the claimer's result,
                // then advance head — one flush more than the DSS queue's
                // helper, as §3.2 notes.
                self.pool.flush(next.offset(F_DEQ_TID));
                // Ordering point: see the claiming branch above.
                self.pool.drain_line(next.offset(F_DEQ_TID));
                let claimer = self.pool.load(next.offset(F_DEQ_TID)) as usize;
                if claimer < self.nthreads {
                    let val = self.pool.load(next.offset(F_VALUE));
                    self.pool.store(self.rv(claimer), val);
                    self.pool.flush(self.rv(claimer));
                    self.pool.drain_line(self.rv(claimer));
                }
                if self.pool.cas(self.head(), first_w, next_w).is_ok() && self.nodes.contains(first)
                {
                    self.ebr.retire(tid, first);
                }
                bo.spin();
            }
        }
    }

    /// The last value published for `tid` through `returnedValues`:
    /// `None` — no dequeue recorded (or one is pending and unrecovered);
    /// `Some(Empty)` / `Some(Value(v))` otherwise.
    pub fn last_returned(&self, h: ThreadHandle) -> Option<QueueResp> {
        match self.pool.load(self.rv(h.slot())) {
            0 | RV_PENDING => None,
            RV_EMPTY => Some(QueueResp::Empty),
            v => Some(QueueResp::Value(v)),
        }
    }

    /// Centralized recovery: repairs tail and head and publishes the
    /// results of claimed-but-unfinished dequeues into `returnedValues`.
    pub fn recover(&self) {
        let old_head = tag::addr_of(self.pool.load(self.head()));
        // Repair tail.
        let mut last = old_head;
        loop {
            let next = tag::addr_of(self.pool.load(last.offset(F_NEXT)));
            if next.is_null() {
                break;
            }
            last = next;
        }
        self.pool.store(self.tail(), last.to_word());
        self.pool.flush(self.tail());
        // Publish results of marked nodes and advance head past them.
        let mut new_head = old_head;
        let mut cur = old_head;
        loop {
            let next = tag::addr_of(self.pool.load(cur.offset(F_NEXT)));
            if next.is_null() {
                break;
            }
            let claimer = self.pool.load(next.offset(F_DEQ_TID));
            if claimer == NO_DEQUEUER {
                break; // unmarked: the dequeued prefix has ended
            }
            let val = self.pool.load(next.offset(F_VALUE));
            if (claimer as usize) < self.nthreads {
                self.pool.store(self.rv(claimer as usize), val);
                self.pool.flush(self.rv(claimer as usize));
            }
            new_head = next;
            cur = next;
        }
        self.pool.store(self.head(), new_head.to_word());
        self.pool.flush(self.head());
        self.pool.drain();
    }

    /// Rebuilds the volatile allocator after a crash.
    pub fn rebuild_allocator(&self) {
        let mut live = Vec::new();
        let mut cur = tag::addr_of(self.pool.load(self.head()));
        loop {
            live.push(cur);
            let next = tag::addr_of(self.pool.load(cur.offset(F_NEXT)));
            if next.is_null() {
                break;
            }
            cur = next;
        }
        self.nodes.rebuild(live);
        self.ebr.reset();
    }

    /// Volatile snapshot of queued (unmarked) values (test helper).
    pub fn snapshot_values(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cur = tag::addr_of(self.pool.peek(self.head()));
        loop {
            let next = tag::addr_of(self.pool.peek(cur.offset(F_NEXT)));
            if next.is_null() {
                return out;
            }
            if self.pool.peek(next.offset(F_DEQ_TID)) == NO_DEQUEUER {
                out.push(self.pool.peek(next.offset(F_VALUE)));
            }
            cur = next;
        }
    }
}

impl<M: Memory> fmt::Debug for DurableQueue<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurableQueue").field("nthreads", &self.nthreads).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_pmem::{CrashSignal, WritebackAdversary};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    #[test]
    fn fifo_and_empty() {
        let q = DurableQueue::new(1, 8);
        let h0 = q.register_thread().unwrap();
        q.enqueue(h0, 1).unwrap();
        q.enqueue(h0, 2).unwrap();
        assert_eq!(q.dequeue(h0), QueueResp::Value(1));
        assert_eq!(q.dequeue(h0), QueueResp::Value(2));
        assert_eq!(q.dequeue(h0), QueueResp::Empty);
        assert_eq!(q.last_returned(h0), Some(QueueResp::Empty));
    }

    #[test]
    fn contents_survive_crash() {
        let q = DurableQueue::new(2, 16);
        let h0 = q.register_thread().unwrap();
        let h1 = q.register_thread().unwrap();
        for v in [1, 2, 3] {
            q.enqueue(h0, v).unwrap();
        }
        assert_eq!(q.dequeue(h1), QueueResp::Value(1));
        q.pool().crash(&WritebackAdversary::None);
        q.recover();
        q.rebuild_allocator();
        assert_eq!(q.snapshot_values(), vec![2, 3]);
        assert_eq!(q.dequeue(h0), QueueResp::Value(2));
    }

    #[test]
    fn recovery_publishes_claimed_dequeue() {
        let q = DurableQueue::new(1, 8);
        let h0 = q.register_thread().unwrap();
        q.enqueue(h0, 42).unwrap();
        // Crash right after the claim CAS + its flush, before the RV store:
        // dequeue ops: RV store, RV flush, head, tail, next, head, CAS
        // claim (7), flush claim (8) — crash on op 9 (the RV store).
        q.pool().arm_crash_after(9);
        let r = catch_unwind(AssertUnwindSafe(|| q.dequeue(h0)));
        q.pool().disarm_crash();
        assert!(r.unwrap_err().downcast_ref::<CrashSignal>().is_some());
        q.pool().crash(&WritebackAdversary::None);
        q.recover();
        // The claim persisted, so recovery must deliver the value.
        assert_eq!(q.last_returned(h0), Some(QueueResp::Value(42)));
        assert!(q.snapshot_values().is_empty());
    }

    #[test]
    fn pending_rv_without_claim_stays_unresolved() {
        let q = DurableQueue::new(1, 8);
        let h0 = q.register_thread().unwrap();
        q.enqueue(h0, 42).unwrap();
        // Crash right after the RV_PENDING announcement (op 3 = head load).
        q.pool().arm_crash_after(3);
        let r = catch_unwind(AssertUnwindSafe(|| q.dequeue(h0)));
        q.pool().disarm_crash();
        assert!(r.is_err());
        q.pool().crash(&WritebackAdversary::None);
        q.recover();
        // No claim persisted: the slot still reads as unresolved and the
        // value is still queued. (The *application* cannot tell whether the
        // op ran — the durable queue is recoverable, not detectable.)
        assert_eq!(q.last_returned(h0), None);
        assert_eq!(q.snapshot_values(), vec![42]);
    }

    #[test]
    fn concurrent_stress_conserves_values() {
        let q = Arc::new(DurableQueue::new(4, 64));
        let hs: Vec<_> = (0..4).map(|_| q.register_thread().unwrap()).collect();
        let handles: Vec<_> = (0..4)
            .map(|tid| {
                let q = Arc::clone(&q);
                let h = hs[tid];
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    for i in 0..300u64 {
                        q.enqueue(h, (tid as u64) << 32 | (i + 1)).unwrap();
                        if let QueueResp::Value(v) = q.dequeue(h) {
                            got.push(v);
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.extend(q.snapshot_values());
        all.sort_unstable();
        let mut expected: Vec<u64> =
            (0..4u64).flat_map(|t| (1..=300).map(move |i| t << 32 | i)).collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn sentinel_values_rejected() {
        let q = DurableQueue::new(1, 4);
        let h0 = q.register_thread().unwrap();
        let _ = q.enqueue(h0, RV_EMPTY);
    }
}
