//! Baseline queue implementations for the paper's evaluation (§4).
//!
//! Three queues the DSS queue is measured against:
//!
//! * [`MsQueue`] — the classic Michael & Scott lock-free queue (PODC
//!   1996), entirely volatile: no flushes at all. The paper obtains it
//!   from the non-detectable DSS queue "by removing flushes in enqueue and
//!   dequeue"; this crate implements it the same way. Upper bound in
//!   Figure 5a.
//! * [`DurableQueue`] — Friedman, Herlihy, Marathe & Petrank's durable
//!   queue (PPoPP 2018): recoverable (flushes in the right places, a
//!   `deqThreadID` mark per node, a `returnedValues` array filled by a
//!   centralized recovery procedure) but **not** detectable in the DSS
//!   sense — a thread cannot ask about an operation it merely *intended*
//!   to run.
//! * [`LogQueue`] — our own implementation of Friedman et al.'s
//!   *detectable* log queue: every operation allocates a log entry; a
//!   dequeuer claims a node by CAS-ing a pointer to its log entry into the
//!   node, and any helper can then complete the transfer of the dequeued
//!   value into that log entry. The extra allocation and the shared log
//!   objects are exactly the overheads the paper credits for the DSS
//!   queue's ≤1.7× win in Figure 5b.
//!
//! All three share the `dss-pmem` substrate, 4-word line-aligned nodes,
//! per-thread node pools and epoch-based reclamation, so measured
//! differences come from the algorithms, not the plumbing.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod durable;
mod log_queue;
mod ms;

pub use durable::{DurableQueue, KIND_DURABLE_QUEUE};
pub use durable::{RV_EMPTY, RV_PENDING};
pub use log_queue::{LogQueue, LogResolved, KIND_LOG_QUEUE};
pub use ms::{MsQueue, KIND_MS_QUEUE};

/// The pre-allocated node pool of a baseline queue is exhausted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct QueueFull;

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("queue node pool exhausted")
    }
}

impl std::error::Error for QueueFull {}
