//! Friedman et al.'s detectable **log queue** — per-operation log entries.
//!
//! The paper (§4) describes it as follows: "our own implementation of
//! Friedman et al.'s detectable log queue algorithm, which uses per-thread
//! logs. Operation arguments and return values are stored directly in the
//! logs, and are accessed by other threads via helping mechanisms." And the
//! two structural costs the evaluation attributes its deficit to: "the log
//! queue dynamically allocates log objects in addition to queue nodes, and
//! these objects are shared during concurrent execution of dequeue."
//!
//! Both properties are reproduced here: every operation allocates a fresh
//! log entry (double allocation), a dequeuer claims a queue node by CAS-ing
//! a pointer to *its log entry* into the node, and any helper completes the
//! dequeue by writing the value and the done flag into that (shared) log
//! entry before advancing the head.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;

use dss_pmem::{
    tag, AppKind, AttachError, Backoff, BackoffTuner, Ebr, FlushGranularity, Memory, NodePool,
    PAddr, PmemPool, Registry, SlotError, ThreadHandle, WORDS_PER_LINE,
};
use dss_spec::types::QueueResp;

use crate::QueueFull;

// Queue node: {value, next, deqLog, enqLog}.
const N_VALUE: u64 = 0;
const N_NEXT: u64 = 1;
const N_DEQ_LOG: u64 = 2;
const N_ENQ_LOG: u64 = 3;
const NODE_WORDS: u64 = 4;

// Log entry: {kind, payload, node, status}.
const L_KIND: u64 = 0;
const L_PAYLOAD: u64 = 1; // enqueue: the argument; dequeue: the result
const L_NODE: u64 = 2;
const L_STATUS: u64 = 3;
const LOG_WORDS: u64 = 4;

const KIND_ENQ: u64 = 1;
const KIND_DEQ: u64 = 2;

const STATUS_PENDING: u64 = 0;
const STATUS_DONE: u64 = 1;

/// Payload sentinel for a dequeue that observed an empty queue.
const PAYLOAD_EMPTY: u64 = u64::MAX;

// Head, tail and each logPtr slot on their own cache line.
const A_HEAD: u64 = WORDS_PER_LINE;
const A_TAIL: u64 = 2 * WORDS_PER_LINE;
const A_LOG_BASE: u64 = 3 * WORDS_PER_LINE; // logPtr[tid]: the thread's current log entry

/// Structure-kind word a file-backed log queue records in its pool
/// superblock.
pub const KIND_LOG_QUEUE: u64 = AppKind::LogQueue.word();

/// The log queue's pool layout, derived from `(nthreads,
/// nodes_per_thread)` alone. Two node regions: queue nodes, then log
/// entries.
struct LogLayout {
    sentinel: u64,
    node_region: u64,
    log_region: u64,
    reg_base: u64,
    words: u64,
}

impl LogLayout {
    fn new(nthreads: usize, nodes_per_thread: u64) -> Self {
        assert!(nthreads > 0 && nodes_per_thread > 0);
        let lp_end = A_LOG_BASE + nthreads as u64 * WORDS_PER_LINE;
        let sentinel = lp_end.next_multiple_of(NODE_WORDS);
        let node_region = sentinel + NODE_WORDS;
        let node_words = nodes_per_thread * nthreads as u64 * NODE_WORDS;
        let log_region = node_region + node_words;
        let log_words = nodes_per_thread * nthreads as u64 * LOG_WORDS;
        let log_end = log_region + log_words;
        let reg_base = log_end.next_multiple_of(WORDS_PER_LINE);
        let words = reg_base + Registry::<PmemPool>::region_words(nthreads);
        LogLayout { sentinel, node_region, log_region, reg_base, words }
    }
}

/// What [`LogQueue::resolve`] reports about a thread's last announced
/// operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LogResolved {
    /// `Some(Some(v))` — an enqueue of `v`; `Some(None)` — a dequeue;
    /// `None` — no operation announced.
    pub op: Option<Option<u64>>,
    /// The operation's response, if it completed (directly or via
    /// recovery).
    pub resp: Option<QueueResp>,
}

/// Friedman et al.'s detectable log queue.
///
/// # Examples
///
/// ```
/// use dss_baselines::LogQueue;
/// use dss_spec::types::QueueResp;
///
/// let q = LogQueue::new(1, 16);
/// let h0 = q.register_thread().unwrap();
/// q.enqueue(h0, 5).unwrap();
/// assert_eq!(q.dequeue(h0).unwrap(), QueueResp::Value(5));
/// let r = q.resolve(h0);
/// assert_eq!(r.resp, Some(QueueResp::Value(5)));
/// ```
pub struct LogQueue<M: Memory = PmemPool> {
    pool: Arc<M>,
    nodes: NodePool,
    logs: NodePool,
    ebr: Ebr,      // queue nodes
    ebr_logs: Ebr, // log entries
    nthreads: usize,
    backoff: AtomicBool,
    tuner: BackoffTuner,
    registry: Registry<M>,
}

impl LogQueue {
    /// Creates a queue for `nthreads` threads, with `nodes_per_thread`
    /// queue nodes *and* as many log entries pre-allocated per thread, on
    /// a fresh line-granular [`PmemPool`].
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero.
    pub fn new(nthreads: usize, nodes_per_thread: u64) -> Self {
        Self::new_in(nthreads, nodes_per_thread)
    }

    /// Creates a queue on a **file-backed** pool at `path`, recording
    /// [`KIND_LOG_QUEUE`] and the construction parameters in the
    /// superblock so [`attach`](Self::attach) needs only the path.
    ///
    /// # Errors
    ///
    /// [`AttachError::Io`] if the pool file cannot be created.
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero.
    pub fn create<P: AsRef<std::path::Path>>(
        path: P,
        nthreads: usize,
        nodes_per_thread: u64,
    ) -> Result<Self, AttachError> {
        let layout = LogLayout::new(nthreads, nodes_per_thread);
        let pool =
            Arc::new(PmemPool::create(path, layout.words as usize, FlushGranularity::default())?);
        pool.set_app_config(KIND_LOG_QUEUE, &[nthreads as u64, nodes_per_thread]);
        let registry = Registry::create(Arc::clone(&pool), layout.reg_base, nthreads);
        let q = Self::assemble(pool, registry, &layout, nthreads, nodes_per_thread);
        q.format(layout.sentinel);
        Ok(q)
    }

    /// The number of **committed** enqueue entries currently observable
    /// from the persisted head — the upper bound [`iter_from`]
    /// (Self::iter_from) enumerates up to.
    ///
    /// An entry is committed once both its link into the chain *and* its
    /// log entry's `STATUS_DONE` word have persisted; a linked node whose
    /// done-mark is still pending in a write-back queue is durably
    /// *recoverable* (recovery re-derives the mark from the persisted
    /// link) but deliberately not yet *observable* — a tailer must never
    /// act on an operation the structure has not finished certifying.
    ///
    /// Positions are relative to the current persisted head, not a
    /// lifetime counter: they renumber when dequeues advance the head.
    /// Tailers that need stability snapshot between recoveries, when the
    /// head is quiescent.
    pub fn committed_seq(&self) -> u64 {
        self.iter_from(0).count() as u64
    }

    /// A cursor over the committed entries of the durable chain, starting
    /// `seq` entries past the persisted head and yielding
    /// `(position, value)` pairs in FIFO order.
    ///
    /// The cursor reads **only the persisted image** of the pool
    /// ([`PmemPool::persisted_value`]): volatile stores, un-flushed
    /// writes, and flushes still sitting in a coalescing write-back queue
    /// are all invisible. It stops at the first entry whose `STATUS_DONE`
    /// has not persisted (see [`committed_seq`](Self::committed_seq)),
    /// so a tailer can replay the returned prefix knowing a crash cannot
    /// revoke any of it.
    pub fn iter_from(&self, seq: u64) -> LogCursor<'_> {
        let head = tag::addr_of(self.pool.persisted_value(self.head()));
        let mut cursor = LogCursor { queue: self, cur: head, seq: 0 };
        // Skipping via the iterator keeps one committed-prefix rule.
        for _ in 0..seq {
            if cursor.next().is_none() {
                break;
            }
        }
        cursor
    }
}

/// The committed-prefix cursor of [`LogQueue::iter_from`].
#[derive(Debug)]
pub struct LogCursor<'a> {
    queue: &'a LogQueue,
    cur: PAddr,
    seq: u64,
}

impl Iterator for LogCursor<'_> {
    /// `(position past the persisted head, enqueued value)`.
    type Item = (u64, u64);

    fn next(&mut self) -> Option<(u64, u64)> {
        let pool = self.queue.pool();
        let next = tag::addr_of(pool.persisted_value(self.cur.offset(N_NEXT)));
        if next.is_null() {
            return None;
        }
        // Committed = the enqueue's own log entry carries a persisted
        // DONE. The link alone is not enough: its done-mark may still be
        // pending write-back, and this cursor only reports what a crash
        // can no longer revoke AND the structure has certified.
        let log = tag::addr_of(pool.persisted_value(next.offset(N_ENQ_LOG)));
        if log.is_null() || pool.persisted_value(log.offset(L_STATUS)) != STATUS_DONE {
            return None;
        }
        let item = (self.seq, pool.persisted_value(next.offset(N_VALUE)));
        self.seq += 1;
        self.cur = next;
        Some(item)
    }
}

impl LogQueue {
    /// Rebuilds a queue from a pool file with no in-process state; follow
    /// with the centralized [`recover`](Self::recover), then
    /// [`resolve`](Self::resolve) per adopted handle.
    ///
    /// # Errors
    ///
    /// Any [`AttachError`], including [`AttachError::AppMismatch`] if the
    /// file holds a different structure.
    pub fn attach<P: AsRef<std::path::Path>>(path: P) -> Result<Self, AttachError> {
        let pool = Arc::new(PmemPool::attach(path)?);
        let found = pool.app_kind();
        if found != KIND_LOG_QUEUE {
            return Err(AttachError::AppMismatch { expected: KIND_LOG_QUEUE, found });
        }
        let [nthreads, nodes_per_thread, ..] = pool.app_config();
        if nthreads == 0 || nodes_per_thread == 0 {
            return Err(AttachError::Corrupt("log queue parameter words are zero"));
        }
        let nthreads = nthreads as usize;
        let layout = LogLayout::new(nthreads, nodes_per_thread);
        if (pool.capacity() as u64) < layout.words {
            return Err(AttachError::Corrupt("pool smaller than the log queue layout requires"));
        }
        let registry = Registry::attach(Arc::clone(&pool), layout.reg_base)?;
        let q = Self::assemble(pool, registry, &layout, nthreads, nodes_per_thread);
        q.rebuild_allocator();
        Ok(q)
    }
}

impl<M: Memory> LogQueue<M> {
    /// Creates a queue on a freshly created backend of type `M`
    /// ([`Memory::create`]) — the backend-generic constructor behind
    /// [`new`](LogQueue::new).
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero.
    pub fn new_in(nthreads: usize, nodes_per_thread: u64) -> Self {
        let layout = LogLayout::new(nthreads, nodes_per_thread);
        let pool = Arc::new(M::create(layout.words as usize, FlushGranularity::default()));
        let registry = Registry::create(Arc::clone(&pool), layout.reg_base, nthreads);
        let q = Self::assemble(pool, registry, &layout, nthreads, nodes_per_thread);
        q.format(layout.sentinel);
        q
    }

    /// The shared constructor tail: in-DRAM side tables (both node pools,
    /// both EBR domains) over an existing pool + registry — everything
    /// `attach` must rebuild rather than map.
    fn assemble(
        pool: Arc<M>,
        registry: Registry<M>,
        layout: &LogLayout,
        nthreads: usize,
        nodes_per_thread: u64,
    ) -> Self {
        let nodes = NodePool::new(
            PAddr::from_index(layout.node_region),
            NODE_WORDS,
            nodes_per_thread,
            nthreads,
        );
        let logs = NodePool::new(
            PAddr::from_index(layout.log_region),
            LOG_WORDS,
            nodes_per_thread,
            nthreads,
        );
        LogQueue {
            pool,
            nodes,
            logs,
            ebr: Ebr::new(nthreads),
            ebr_logs: Ebr::new(nthreads),
            nthreads,
            backoff: AtomicBool::new(false),
            tuner: BackoffTuner::new(),
            registry,
        }
    }

    /// Writes and persists the initial queue state (fresh pools only —
    /// never run on attach).
    fn format(&self, sentinel: u64) {
        let s = PAddr::from_index(sentinel);
        self.pool.store(s.offset(N_VALUE), 0);
        self.pool.store(s.offset(N_NEXT), 0);
        self.pool.store(s.offset(N_DEQ_LOG), 0);
        self.pool.store(s.offset(N_ENQ_LOG), 0);
        self.pool.flush(s);
        self.pool.store(self.head(), s.to_word());
        self.pool.flush(self.head());
        self.pool.store(self.tail(), s.to_word());
        self.pool.flush(self.tail());
        for i in 0..self.nthreads {
            self.pool.store(self.log_ptr(i), 0);
            self.pool.flush(self.log_ptr(i));
        }
        self.pool.drain();
    }

    /// Enables or disables bounded exponential backoff after failed CAS.
    /// Default off.
    pub fn set_backoff(&self, on: bool) {
        self.backoff.store(on, Relaxed);
    }

    fn new_backoff(&self) -> Backoff<'_> {
        Backoff::attached(self.backoff.load(Relaxed), &self.tuner)
    }

    fn head(&self) -> PAddr {
        PAddr::from_index(A_HEAD)
    }

    fn tail(&self) -> PAddr {
        PAddr::from_index(A_TAIL)
    }

    // Handles are valid by construction (the registry hands out only
    // in-range slots), so the index needs no range check.
    fn log_ptr(&self, tid: usize) -> PAddr {
        PAddr::from_index(A_LOG_BASE + tid as u64 * WORDS_PER_LINE)
    }

    /// The queue's pool.
    pub fn pool(&self) -> &Arc<M> {
        &self.pool
    }

    /// Number of threads the queue was built for.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// The persistent slot registry governing thread identity.
    pub fn registry(&self) -> &Registry<M> {
        &self.registry
    }

    /// Claims a free slot and returns the [`ThreadHandle`] every operation
    /// requires. Fails with [`SlotError::Exhausted`] once all `nthreads`
    /// slots are taken.
    pub fn register_thread(&self) -> Result<ThreadHandle, SlotError> {
        let h = self.registry.acquire()?;
        self.ebr.adopt_slot(h.slot());
        self.ebr_logs.adopt_slot(h.slot());
        Ok(h)
    }

    /// Returns a handle's slot to the free pool for reuse.
    pub fn release_thread(&self, h: ThreadHandle) -> Result<(), SlotError> {
        self.registry.release(h)
    }

    /// Marks the crash boundary in the registry: every slot LIVE at the
    /// crash becomes ORPHANED. The log queue's [`recover`](Self::recover)
    /// is deliberately kept centralized (it is the baseline the paper
    /// compares against), so this exists to let harnesses reclaim dead
    /// threads' slots via [`adopt`](Self::adopt) /
    /// [`adopt_orphans`](Self::adopt_orphans).
    pub fn begin_recovery(&self) {
        self.registry.begin_recovery();
    }

    /// Adopts one orphaned slot, inheriting its EBR state in both
    /// reclamation domains (nodes and log entries).
    pub fn adopt(&self, slot: usize) -> Result<ThreadHandle, SlotError> {
        let h = self.registry.adopt(slot)?;
        self.ebr.adopt_slot(slot);
        self.ebr_logs.adopt_slot(slot);
        Ok(h)
    }

    /// Adopts every orphaned slot in ascending order.
    pub fn adopt_orphans(&self) -> Vec<ThreadHandle> {
        let hs = self.registry.adopt_orphans();
        for h in &hs {
            self.ebr.adopt_slot(h.slot());
            self.ebr_logs.adopt_slot(h.slot());
        }
        hs
    }

    fn alloc_node(&self, tid: usize) -> Result<PAddr, QueueFull> {
        self.nodes.alloc_with_reclaim(tid, &self.ebr).ok_or(QueueFull)
    }

    fn alloc_log(&self, tid: usize) -> Result<PAddr, QueueFull> {
        self.logs.alloc_with_reclaim(tid, &self.ebr_logs).ok_or(QueueFull)
    }

    /// Writes and announces a fresh log entry; retires the previous one.
    fn publish_log(
        &self,
        tid: usize,
        kind: u64,
        payload: u64,
        node: PAddr,
    ) -> Result<PAddr, QueueFull> {
        let old = tag::addr_of(self.pool.load(self.log_ptr(tid)));
        let log = self.alloc_log(tid)?;
        self.pool.store(log.offset(L_KIND), kind);
        self.pool.store(log.offset(L_PAYLOAD), payload);
        self.pool.store(log.offset(L_NODE), node.to_word());
        self.pool.store(log.offset(L_STATUS), STATUS_PENDING);
        self.pool.flush(log);
        // Ordering point: the per-thread log pointer must not persist
        // ahead of the entry it names (the pointer word is dirty from the
        // store below, so the entry must already be persistent).
        self.pool.drain_line(log);
        self.pool.store(self.log_ptr(tid), log.to_word());
        self.pool.flush(self.log_ptr(tid));
        if !old.is_null() {
            self.ebr_logs.retire(tid, old);
        }
        Ok(log)
    }

    /// Detectable enqueue: log entry, node, link, completion flag.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when a node or log pool is exhausted.
    pub fn enqueue(&self, h: ThreadHandle, val: u64) -> Result<(), QueueFull> {
        let tid = h.slot();
        let node = self.alloc_node(tid)?;
        let log = self.publish_log(tid, KIND_ENQ, val, node)?;
        self.pool.store(node.offset(N_VALUE), val);
        self.pool.store(node.offset(N_NEXT), 0);
        self.pool.store(node.offset(N_DEQ_LOG), 0);
        self.pool.store(node.offset(N_ENQ_LOG), log.to_word());
        self.pool.flush(node);
        let _g = self.ebr.pin(tid);
        let mut bo = self.new_backoff();
        loop {
            let last_w = self.pool.load(self.tail());
            let last = tag::addr_of(last_w);
            let next_w = self.pool.load(last.offset(N_NEXT));
            if self.pool.load(self.tail()) == last_w {
                if tag::addr_of(next_w).is_null() {
                    // The node and the announced log pointer must be
                    // persistent before the link can take effect: recovery
                    // walks persisted links and resolves through the
                    // pointer.
                    self.pool.drain_lines(&[self.log_ptr(tid), node]);
                    if self.pool.cas(last.offset(N_NEXT), 0, node.to_word()).is_ok() {
                        self.pool.flush(last.offset(N_NEXT));
                        // Ordering point: the DONE mark must not persist
                        // ahead of the link it certifies.
                        self.pool.drain_line(last.offset(N_NEXT));
                        self.pool.store(log.offset(L_STATUS), STATUS_DONE);
                        self.pool.flush(log.offset(L_STATUS));
                        let _ = self.pool.cas(self.tail(), last_w, node.to_word());
                        // The DONE flush may stay pending past the op:
                        // recovery re-derives it from the persisted link.
                        self.pool.drain_lines(&[]);
                        return Ok(());
                    }
                } else {
                    self.pool.flush(last.offset(N_NEXT));
                    let _ = self.pool.cas(self.tail(), last_w, next_w);
                }
            }
            bo.spin();
        }
    }

    /// Completes a claimed dequeue by writing the value and done flag into
    /// the claimer's (shared) log entry.
    fn complete_dequeue(&self, node: PAddr, log: PAddr) {
        let val = self.pool.load(node.offset(N_VALUE));
        self.pool.store(log.offset(L_PAYLOAD), val);
        self.pool.flush(log.offset(L_PAYLOAD));
        // Ordering point: DONE must not persist ahead of the payload it
        // validates — or of the (still-pending) claim that justifies it.
        self.pool.drain_lines(&[log.offset(L_PAYLOAD), node.offset(N_DEQ_LOG)]);
        self.pool.store(log.offset(L_STATUS), STATUS_DONE);
        self.pool.flush(log.offset(L_STATUS));
    }

    /// Detectable dequeue through a fresh log entry.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when the log pool is exhausted.
    pub fn dequeue(&self, h: ThreadHandle) -> Result<QueueResp, QueueFull> {
        let tid = h.slot();
        let log = self.publish_log(tid, KIND_DEQ, 0, PAddr::NULL)?;
        let _g = self.ebr.pin(tid);
        let _gl = self.ebr_logs.pin(tid);
        let mut bo = self.new_backoff();
        loop {
            let first_w = self.pool.load(self.head());
            let last_w = self.pool.load(self.tail());
            let first = tag::addr_of(first_w);
            let next_w = self.pool.load(first.offset(N_NEXT));
            let next = tag::addr_of(next_w);
            if self.pool.load(self.head()) != first_w {
                bo.spin();
                continue;
            }
            if first_w == last_w {
                if next.is_null() {
                    self.pool.store(log.offset(L_PAYLOAD), PAYLOAD_EMPTY);
                    self.pool.flush(log.offset(L_PAYLOAD));
                    // Ordering point: see complete_dequeue.
                    self.pool.drain_line(log.offset(L_PAYLOAD));
                    self.pool.store(log.offset(L_STATUS), STATUS_DONE);
                    self.pool.flush(log.offset(L_STATUS));
                    // No claim exists for recovery to rediscover: the DONE
                    // verdict must be durable before the op returns.
                    self.pool.drain_line(log.offset(L_STATUS));
                    return Ok(QueueResp::Empty);
                }
                self.pool.flush(first.offset(N_NEXT));
                let _ = self.pool.cas(self.tail(), last_w, next_w);
            } else {
                // The announced log pointer must be persistent before a
                // claim naming its entry can be — resolve interprets the
                // claim through it.
                self.pool.drain_line(self.log_ptr(tid));
                if self.pool.cas(next.offset(N_DEQ_LOG), 0, log.to_word()).is_ok() {
                    self.pool.flush(next.offset(N_DEQ_LOG));
                    self.complete_dequeue(next, log);
                    // The DONE verdict must not be lost behind an advanced
                    // head: recovery only completes the claimed prefix
                    // still behind the persisted head.
                    self.pool.drain_line(log.offset(L_STATUS));
                    if self.pool.cas(self.head(), first_w, next_w).is_ok()
                        && self.nodes.contains(first)
                    {
                        self.ebr.retire(tid, first);
                    }
                    let val = self.pool.load(log.offset(L_PAYLOAD));
                    self.pool.drain_lines(&[]);
                    return Ok(QueueResp::Value(val));
                } else if self.pool.load(self.head()) == first_w {
                    // Helping: persist the claim, complete the *claimer's*
                    // log entry, then advance head.
                    self.pool.flush(next.offset(N_DEQ_LOG));
                    let claim_log = tag::addr_of(self.pool.load(next.offset(N_DEQ_LOG)));
                    if !claim_log.is_null() {
                        self.complete_dequeue(next, claim_log);
                        // Ordering point: see the claiming branch above.
                        self.pool.drain_line(claim_log.offset(L_STATUS));
                    }
                    if self.pool.cas(self.head(), first_w, next_w).is_ok()
                        && self.nodes.contains(first)
                    {
                        self.ebr.retire(tid, first);
                    }
                    bo.spin();
                }
            }
        }
    }

    /// Detectability: reports the thread's last announced operation and,
    /// if it completed, its response. Run [`recover`](Self::recover)
    /// first after a crash.
    pub fn resolve(&self, h: ThreadHandle) -> LogResolved {
        let log = tag::addr_of(self.pool.load(self.log_ptr(h.slot())));
        if log.is_null() {
            return LogResolved { op: None, resp: None };
        }
        let kind = self.pool.load(log.offset(L_KIND));
        let status = self.pool.load(log.offset(L_STATUS));
        let payload = self.pool.load(log.offset(L_PAYLOAD));
        match kind {
            KIND_ENQ => LogResolved {
                op: Some(Some(payload)),
                resp: (status == STATUS_DONE).then_some(QueueResp::Ok),
            },
            KIND_DEQ => LogResolved {
                op: Some(None),
                resp: if status == STATUS_DONE {
                    Some(if payload == PAYLOAD_EMPTY {
                        QueueResp::Empty
                    } else {
                        QueueResp::Value(payload)
                    })
                } else {
                    None
                },
            },
            k => unreachable!("corrupt log kind {k}"),
        }
    }

    /// Centralized recovery: repairs tail/head, completes claimed dequeue
    /// logs, and completes enqueue logs whose nodes persisted.
    pub fn recover(&self) {
        let old_head = tag::addr_of(self.pool.load(self.head()));
        // Collect the chain; repair tail.
        let mut chain = vec![old_head];
        loop {
            let next = tag::addr_of(self.pool.load(chain.last().unwrap().offset(N_NEXT)));
            if next.is_null() {
                break;
            }
            chain.push(next);
        }
        let last = *chain.last().unwrap();
        self.pool.store(self.tail(), last.to_word());
        self.pool.flush(self.tail());
        // Complete claimed dequeues in the marked prefix; advance head.
        let mut new_head = old_head;
        for pair in chain.windows(2) {
            let node = pair[1];
            let claim_log = tag::addr_of(self.pool.load(node.offset(N_DEQ_LOG)));
            if claim_log.is_null() {
                break;
            }
            self.complete_dequeue(node, claim_log);
            new_head = node;
        }
        self.pool.store(self.head(), new_head.to_word());
        self.pool.flush(self.head());
        // Complete enqueue logs whose node persisted in (or through) the list.
        let in_chain: std::collections::HashSet<PAddr> = chain.iter().copied().collect();
        for tid in 0..self.nthreads {
            let log = tag::addr_of(self.pool.load(self.log_ptr(tid)));
            if log.is_null() || self.pool.load(log.offset(L_KIND)) != KIND_ENQ {
                continue;
            }
            if self.pool.load(log.offset(L_STATUS)) == STATUS_DONE {
                continue;
            }
            let node = tag::addr_of(self.pool.load(log.offset(L_NODE)));
            let effective = in_chain.contains(&node)
                || !tag::addr_of(self.pool.load(node.offset(N_DEQ_LOG))).is_null();
            if effective {
                self.pool.store(log.offset(L_STATUS), STATUS_DONE);
                self.pool.flush(log.offset(L_STATUS));
            }
        }
        self.pool.drain();
    }

    /// Rebuilds the volatile allocators after a crash.
    pub fn rebuild_allocator(&self) {
        let mut live_nodes = Vec::new();
        let mut live_logs = Vec::new();
        let mut cur = tag::addr_of(self.pool.load(self.head()));
        loop {
            live_nodes.push(cur);
            let el = tag::addr_of(self.pool.load(cur.offset(N_ENQ_LOG)));
            if !el.is_null() {
                live_logs.push(el);
            }
            let dl = tag::addr_of(self.pool.load(cur.offset(N_DEQ_LOG)));
            if !dl.is_null() {
                live_logs.push(dl);
            }
            let next = tag::addr_of(self.pool.load(cur.offset(N_NEXT)));
            if next.is_null() {
                break;
            }
            cur = next;
        }
        for tid in 0..self.nthreads {
            let log = tag::addr_of(self.pool.load(self.log_ptr(tid)));
            if !log.is_null() {
                live_logs.push(log);
                let node = tag::addr_of(self.pool.load(log.offset(L_NODE)));
                if !node.is_null() {
                    live_nodes.push(node);
                }
            }
        }
        self.nodes.rebuild(live_nodes);
        self.logs.rebuild(live_logs);
        self.ebr.reset();
        self.ebr_logs.reset();
    }

    /// Volatile snapshot of queued (unclaimed) values (test helper).
    pub fn snapshot_values(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cur = tag::addr_of(self.pool.peek(self.head()));
        loop {
            let next = tag::addr_of(self.pool.peek(cur.offset(N_NEXT)));
            if next.is_null() {
                return out;
            }
            if tag::addr_of(self.pool.peek(next.offset(N_DEQ_LOG))).is_null() {
                out.push(self.pool.peek(next.offset(N_VALUE)));
            }
            cur = next;
        }
    }
}

impl<M: Memory> fmt::Debug for LogQueue<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LogQueue").field("nthreads", &self.nthreads).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_pmem::{CrashSignal, WritebackAdversary};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    #[test]
    fn fifo_and_empty() {
        let q = LogQueue::new(1, 8);
        let h0 = q.register_thread().unwrap();
        q.enqueue(h0, 1).unwrap();
        q.enqueue(h0, 2).unwrap();
        assert_eq!(q.dequeue(h0).unwrap(), QueueResp::Value(1));
        assert_eq!(q.dequeue(h0).unwrap(), QueueResp::Value(2));
        assert_eq!(q.dequeue(h0).unwrap(), QueueResp::Empty);
    }

    #[test]
    fn resolve_reports_last_op() {
        let q = LogQueue::new(1, 8);
        let h0 = q.register_thread().unwrap();
        q.enqueue(h0, 9).unwrap();
        assert_eq!(q.resolve(h0), LogResolved { op: Some(Some(9)), resp: Some(QueueResp::Ok) });
        q.dequeue(h0).unwrap();
        assert_eq!(q.resolve(h0), LogResolved { op: Some(None), resp: Some(QueueResp::Value(9)) });
    }

    #[test]
    fn crash_sweep_enqueue_detects_consistently() {
        for adv in [WritebackAdversary::None, WritebackAdversary::All] {
            for k in 1..60 {
                let q = LogQueue::new(1, 8);
                let h0 = q.register_thread().unwrap();
                q.pool().arm_crash_after(k);
                let r = catch_unwind(AssertUnwindSafe(|| q.enqueue(h0, 42)));
                q.pool().disarm_crash();
                let crashed = match r {
                    Ok(_) => false,
                    Err(p) if p.downcast_ref::<CrashSignal>().is_some() => true,
                    Err(p) => std::panic::resume_unwind(p),
                };
                if !crashed {
                    break;
                }
                q.pool().crash(&adv);
                q.recover();
                q.rebuild_allocator();
                let in_queue = q.snapshot_values() == vec![42];
                match q.resolve(h0) {
                    LogResolved { op: None, resp: None } => assert!(!in_queue, "k={k}"),
                    LogResolved { op: Some(Some(42)), resp: Some(QueueResp::Ok) } => {
                        assert!(in_queue, "k={k} {adv:?}")
                    }
                    LogResolved { op: Some(Some(42)), resp: None } => {
                        assert!(!in_queue, "k={k} {adv:?}")
                    }
                    other => panic!("k={k} {adv:?}: impossible resolution {other:?}"),
                }
            }
        }
    }

    #[test]
    fn crash_sweep_dequeue_detects_consistently() {
        for adv in [WritebackAdversary::None, WritebackAdversary::All] {
            for k in 1..60 {
                let q = LogQueue::new(1, 8);
                let h0 = q.register_thread().unwrap();
                q.enqueue(h0, 7).unwrap();
                q.pool().arm_crash_after(k);
                let r = catch_unwind(AssertUnwindSafe(|| q.dequeue(h0)));
                q.pool().disarm_crash();
                let crashed = match r {
                    Ok(_) => false,
                    Err(p) if p.downcast_ref::<CrashSignal>().is_some() => true,
                    Err(p) => std::panic::resume_unwind(p),
                };
                if !crashed {
                    break;
                }
                q.pool().crash(&adv);
                q.recover();
                q.rebuild_allocator();
                let still_there = q.snapshot_values() == vec![7];
                match q.resolve(h0) {
                    // The pre-crash enqueue's log may still be announced.
                    LogResolved { op: Some(Some(7)), resp: Some(QueueResp::Ok) } => {
                        assert!(still_there, "k={k} {adv:?}")
                    }
                    LogResolved { op: Some(None), resp: Some(QueueResp::Value(7)) } => {
                        assert!(!still_there, "k={k} {adv:?}")
                    }
                    LogResolved { op: Some(None), resp: None } => {
                        assert!(still_there, "k={k} {adv:?}")
                    }
                    other => panic!("k={k} {adv:?}: impossible resolution {other:?}"),
                }
            }
        }
    }

    #[test]
    fn concurrent_stress_conserves_values() {
        let q = Arc::new(LogQueue::new(4, 64));
        let hs: Vec<_> = (0..4).map(|_| q.register_thread().unwrap()).collect();
        let handles: Vec<_> = (0..4)
            .map(|tid| {
                let q = Arc::clone(&q);
                let h = hs[tid];
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    for i in 0..300u64 {
                        q.enqueue(h, (tid as u64) << 32 | (i + 1)).unwrap();
                        if let QueueResp::Value(v) = q.dequeue(h).unwrap() {
                            got.push(v);
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.extend(q.snapshot_values());
        all.sort_unstable();
        let mut expected: Vec<u64> =
            (0..4u64).flat_map(|t| (1..=300).map(move |i| t << 32 | i)).collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }

    #[test]
    fn cursor_never_observes_an_entry_before_its_done_persist() {
        // Coalescing + per-address drains leave the enqueue's STATUS_DONE
        // flush pending in the write-back queue past the op's return (the
        // final drain_lines(&[]) drains nothing in that regime) — exactly
        // the window in which the entry is linked, volatile-DONE, and yet
        // NOT observable by the persisted-image cursor.
        let q = LogQueue::new(1, 8);
        q.pool().set_coalescing(true);
        q.pool().set_per_address_drains(true);
        let h0 = q.register_thread().unwrap();
        q.enqueue(h0, 41).unwrap();
        q.pool().drain(); // settle entry 0 so the prefix rule is isolated
        q.enqueue(h0, 42).unwrap();
        let log = tag::addr_of(q.pool().load(q.log_ptr(0)));
        assert!(
            q.pool().is_dirty(log.offset(L_STATUS)),
            "precondition: the DONE mark must still be pending write-back"
        );
        // Volatile state says both entries are done; the persisted image
        // certifies only the first.
        assert_eq!(q.resolve(h0).resp, Some(QueueResp::Ok));
        assert_eq!(q.iter_from(0).collect::<Vec<_>>(), vec![(0, 41)]);
        assert_eq!(q.committed_seq(), 1);
        // Draining the write-back queue persists the mark; the cursor
        // extends by exactly the certified entry, and iter_from resumes
        // past the already-replayed prefix.
        q.pool().drain();
        assert_eq!(q.committed_seq(), 2);
        assert_eq!(q.iter_from(1).collect::<Vec<_>>(), vec![(1, 42)]);
    }

    #[test]
    fn cursor_survives_a_crash_with_only_the_committed_prefix() {
        // Sweep a crash across every pmem-op index of an enqueue: after
        // reverting volatile state, the cursor must yield a prefix, and
        // recovery must agree with (or extend) it — never shrink it.
        for k in 1..60 {
            let q = LogQueue::new(1, 8);
            let h0 = q.register_thread().unwrap();
            q.enqueue(h0, 1).unwrap();
            q.pool().drain();
            q.pool().arm_crash_after(k);
            let r = catch_unwind(AssertUnwindSafe(|| q.enqueue(h0, 2)));
            q.pool().disarm_crash();
            let crashed = match r {
                Ok(_) => false,
                Err(p) if p.downcast_ref::<CrashSignal>().is_some() => true,
                Err(p) => std::panic::resume_unwind(p),
            };
            if !crashed {
                break;
            }
            q.pool().crash(&WritebackAdversary::None);
            let before: Vec<_> = q.iter_from(0).collect();
            assert!(before == vec![(0, 1)] || before == vec![(0, 1), (1, 2)], "k={k}: {before:?}");
            q.recover();
            q.rebuild_allocator();
            let after: Vec<_> = q.iter_from(0).collect();
            assert!(
                after.len() >= before.len() && after[..before.len()] == before,
                "k={k}: recovery shrank the committed prefix ({before:?} -> {after:?})"
            );
        }
    }

    #[test]
    fn log_allocation_doubles_per_op_allocations() {
        // The structural cost the paper highlights: one log entry per op.
        let q = LogQueue::new(1, 16);
        let h0 = q.register_thread().unwrap();
        q.enqueue(h0, 1).unwrap();
        assert_eq!(q.logs.total_nodes() - q.logs.free_count(), 1);
        let _ = q.dequeue(h0).unwrap();
        assert_eq!(q.logs.total_nodes() - q.logs.free_count(), 2);
    }
}
