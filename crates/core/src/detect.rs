//! The extracted `D⟨T⟩` detectability core (paper §2–§3).
//!
//! Every detectable structure in this crate — queue, stack, register, CAS,
//! the universal construction, and the hash map — used to hand-roll the
//! same skeleton: a per-thread *detectability word* `X[tid]` holding a
//! tagged node pointer, the durable-announce idiom of the prep phase, the
//! store-and-flush completion mark of the exec phase, registry-backed
//! thread identity with epoch-based reclamation, and the adopt-then-repair
//! recovery drivers (Appendix A Figure 6 centralized, §3.3 independent).
//! [`DetectableCore`] owns exactly that skeleton, so a new object family is
//! the structure-specific state machine plus a layout — not a fork of the
//! whole protocol.
//!
//! The helpers are *instruction-exact*: [`announce`](DetectableCore::announce)
//! is the store/flush/drain-line triple every prep ends with, and
//! [`complete`](DetectableCore::complete) the store/flush pair every exec
//! marks completion with. The crash-sweep suites arm crash points by pool-
//! operation index, so the extraction must be (and is) pure code motion —
//! the rewired structures issue byte-identical pool-operation sequences.

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;

use dss_pmem::{
    Backoff, BackoffTuner, Ebr, EbrGuard, Memory, PAddr, Registry, SlotError, ThreadHandle,
};

/// The shared detectability skeleton a `D⟨T⟩` structure instantiates.
///
/// Owns the memory backend, the persistent thread-slot [`Registry`], the
/// volatile EBR domains, contention management, and the geometry of the
/// per-thread detectability words (`X[tid]` at `x_base + slot * x_stride`).
/// Structure-specific state — node allocators, layout constants, the
/// prep/exec state machines themselves — stays in the instantiating type.
pub struct DetectableCore<M: Memory> {
    pub(crate) pool: Arc<M>,
    pub(crate) registry: Registry<M>,
    pub(crate) ebr: Ebr,
    pub(crate) nthreads: usize,
    /// Contention management: back off after failed CAS in retry loops
    /// (default off, which keeps the instruction sequence identical to the
    /// paper's pseudocode).
    backoff: AtomicBool,
    /// Adapts the backoff cap to the structure's observed CAS-failure rate.
    tuner: BackoffTuner,
    /// First word of the detectability-word region.
    x_base: u64,
    /// Distance between consecutive `X` entries, in words. The pointer
    /// structures give each entry its own cache line
    /// ([`WORDS_PER_LINE`](dss_pmem::WORDS_PER_LINE)) to avoid false
    /// sharing; the universal construction packs them at stride 1.
    x_stride: u64,
}

impl<M: Memory> DetectableCore<M> {
    /// Binds the skeleton over an existing pool + registry. The EBR
    /// domains, backoff state, and tuner are volatile and start fresh —
    /// exactly what `attach` must rebuild rather than map.
    pub(crate) fn new(
        pool: Arc<M>,
        registry: Registry<M>,
        nthreads: usize,
        x_base: u64,
        x_stride: u64,
    ) -> Self {
        DetectableCore {
            pool,
            registry,
            ebr: Ebr::new(nthreads),
            nthreads,
            backoff: AtomicBool::new(false),
            tuner: BackoffTuner::new(),
            x_base,
            x_stride,
        }
    }

    /// The memory backend.
    pub fn pool(&self) -> &Arc<M> {
        &self.pool
    }

    /// The persistent thread-slot registry.
    pub fn registry(&self) -> &Registry<M> {
        &self.registry
    }

    /// Number of thread slots the structure was built for.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// The detectability word of `slot`.
    ///
    /// Handles are valid by construction (only the registry mints them,
    /// and only with in-range slots), so no bounds assertion is needed
    /// here; a bad raw index surfaces as [`SlotError`] at the registry
    /// boundary instead.
    pub(crate) fn x_addr(&self, slot: usize) -> PAddr {
        PAddr::from_index(self.x_base + slot as u64 * self.x_stride)
    }

    /// Formats the detectability words of a fresh pool: `X[i] = 0` for
    /// all `i`, each store flushed. The caller's format routine drains
    /// once after all regions are written.
    pub(crate) fn format_x(&self) {
        for i in 0..self.nthreads {
            self.pool.store(self.x_addr(i), 0);
            self.pool.flush(self.x_addr(i));
        }
    }

    /// The durable-announce idiom ending every prep: publish `word` in
    /// `X[slot]` and make it durable *before prep returns* — a completed
    /// prep the crash can forget would make resolve report the previous
    /// operation, a detectability violation an observer can catch.
    ///
    /// The caller persists the node the word names *first* (writeback is
    /// per-word, so `X` could otherwise survive a crash pointing at an
    /// unwritten node).
    pub(crate) fn announce(&self, slot: usize, word: u64) {
        let xa = self.x_addr(slot);
        self.pool.store(xa, word);
        self.pool.flush(xa);
        self.pool.drain_line(xa);
    }

    /// The completion mark of an exec (or of recovery repairing an
    /// effective operation): store the completed word and flush it. The
    /// caller orders the mark behind the effect it certifies and issues
    /// the trailing drain itself.
    pub(crate) fn complete(&self, slot: usize, word: u64) {
        let xa = self.x_addr(slot);
        self.pool.store(xa, word);
        self.pool.flush(xa);
    }

    /// Enables or disables contention management. Default off: the
    /// instruction sequence then matches the paper's pseudocode exactly.
    pub fn set_backoff(&self, on: bool) {
        self.backoff.store(on, Relaxed);
    }

    /// Whether contention management is enabled.
    pub fn backoff_enabled(&self) -> bool {
        self.backoff.load(Relaxed)
    }

    /// A fresh per-operation backoff, enabled per the structure's setting
    /// and capped by its contention-tuned [`BackoffTuner`].
    pub(crate) fn new_backoff(&self) -> Backoff<'_> {
        Backoff::attached(self.backoff.load(Relaxed), &self.tuner)
    }

    /// The contention tuner (the combining layer builds its own
    /// always-on backoff over it).
    pub(crate) fn tuner(&self) -> &BackoffTuner {
        &self.tuner
    }

    /// Pins `tid`'s EBR domain for the duration of an operation.
    pub(crate) fn pin(&self, tid: usize) -> EbrGuard<'_> {
        self.ebr.pin(tid)
    }

    /// Claims a free registry slot and returns the [`ThreadHandle`] every
    /// operation takes. Any stale EBR pin a previous lease of the slot
    /// left behind is cleared; its un-reclaimed retirees are inherited.
    ///
    /// # Errors
    ///
    /// [`SlotError::Exhausted`] when all `nthreads` slots are taken.
    pub fn register_thread(&self) -> Result<ThreadHandle, SlotError> {
        let h = self.registry.acquire()?;
        self.ebr.adopt_slot(h.slot());
        Ok(h)
    }

    /// Returns a handle's slot to the registry.
    ///
    /// # Errors
    ///
    /// [`SlotError::StaleHandle`] if the slot's lease has moved on (e.g.
    /// it was adopted after a crash), [`SlotError::ForeignHandle`] for a
    /// handle from another structure's registry.
    pub fn release_thread(&self, h: ThreadHandle) -> Result<(), SlotError> {
        self.registry.release(h)
    }

    /// Marks the crash boundary in the registry: every slot that was LIVE
    /// at the crash becomes ORPHANED and adoptable. Idempotent per crash.
    pub fn begin_recovery(&self) {
        self.registry.begin_recovery();
    }

    /// Adopts one orphaned slot on behalf of a thread that never came
    /// back: re-LIVEs the slot under a fresh lease and clears the dead
    /// thread's stale EBR pin (its retirees are inherited, not leaked).
    ///
    /// # Errors
    ///
    /// [`SlotError::OutOfRange`] / [`SlotError::NotOrphaned`] per
    /// [`Registry::adopt`].
    pub fn adopt(&self, slot: usize) -> Result<ThreadHandle, SlotError> {
        let h = self.registry.adopt(slot)?;
        self.ebr.adopt_slot(h.slot());
        Ok(h)
    }

    /// [`adopt`](Self::adopt) over every orphaned slot, ascending.
    pub fn adopt_orphans(&self) -> Vec<ThreadHandle> {
        (0..self.nthreads).filter_map(|slot| self.adopt(slot).ok()).collect()
    }

    /// The centralized recovery driver (Figure 6 restructured through the
    /// registry): marks the crash boundary, runs the structure's shared-
    /// state `repair` (recomputing top/tail/head pointers and the reachable
    /// set), adopts every orphaned slot, repairs each adopted slot's
    /// detectability word with `fix`, and drains once.
    ///
    /// Slots that were FREE at the crash hold no pending announce, so
    /// adopting only the orphans covers exactly the `X` entries Figure 6's
    /// full sweep would repair. Idempotent: a second pass adopts nothing
    /// and repairs nothing.
    pub(crate) fn recover_adopting<R>(
        &self,
        repair: impl FnOnce() -> R,
        mut fix: impl FnMut(usize, &R),
    ) -> Vec<ThreadHandle> {
        self.begin_recovery();
        let ctx = repair();
        let adopted = self.adopt_orphans();
        for h in &adopted {
            fix(h.slot(), &ctx);
        }
        self.pool.drain();
        adopted
    }

    /// The independent per-slot recovery driver (§3.3): the handle's owner
    /// `prepare`s whatever view of the shared state its repair needs (e.g.
    /// the reachable set), repairs only its own `X` entry with `fix`, and
    /// drains. No centralized phase — with it, "the last trace of
    /// auxiliary state" disappears.
    pub(crate) fn recover_one_with<R>(
        &self,
        h: ThreadHandle,
        prepare: impl FnOnce() -> R,
        fix: impl FnOnce(usize, &R),
    ) {
        let ctx = prepare();
        fix(h.slot(), &ctx);
        self.pool.drain();
    }
}

impl<M: Memory> std::fmt::Debug for DetectableCore<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DetectableCore")
            .field("nthreads", &self.nthreads)
            .field("x_base", &self.x_base)
            .field("x_stride", &self.x_stride)
            .finish_non_exhaustive()
    }
}
