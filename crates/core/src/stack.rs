//! A DSS-based detectable recoverable Treiber stack (`D⟨stack⟩`).
//!
//! The paper presents one algorithm (the queue) as proof of concept; this
//! module demonstrates that the DSS recipe transfers to another container
//! with the same ingredients and no new assumptions:
//!
//! * per-thread detectability word `X[tid]` holding a tagged node pointer
//!   (`PUSH_PREP`/`PUSH_COMPL`/`POP_PREP`/`EMPTY` in the high bits);
//! * a per-node claim field (`popper`, the stack's analogue of the
//!   queue's `deqThreadID`) written by CAS and flushed before the top
//!   pointer moves, so pops are detectable and helpers can finish them;
//! * a recovery scan that advances `top` past the claimed prefix and
//!   completes the `PUSH_COMPL` tags of pushes whose linkage persisted —
//!   the stack's Figure 6.
//!
//! Like the queue, the stack is lock-free: a failed CAS always means some
//! other thread's operation completed.

use std::fmt;
use std::sync::Arc;

use dss_pmem::{
    tag, AppKind, AttachError, Backoff, FlushGranularity, Memory, NodePool, PAddr, PmemPool,
    Registry, SlotError, ThreadHandle, WORDS_PER_LINE,
};
use dss_spec::types::StackResp;

use crate::detect::DetectableCore;

// Node layout: {value, next, popper, pad}, line-aligned.
const F_VALUE: u64 = 0;
const F_NEXT: u64 = 1;
const F_POPPER: u64 = 2;
const NODE_WORDS: u64 = 4;

/// `popper` sentinel: nobody has popped this node.
const NO_POPPER: u64 = u64::MAX;

// X tags (same bit positions as the queue's; the objects never share an X
// word).
const PUSH_PREP: u64 = tag::ENQ_PREP;
const PUSH_COMPL: u64 = tag::ENQ_COMPL;
const POP_PREP: u64 = tag::DEQ_PREP;
const EMPTY: u64 = tag::EMPTY;

// Layout: [0:NULL][top line][n X lines][node region] — top and each X
// entry on their own cache line so contending CASes don't false-share.
const A_TOP: u64 = WORDS_PER_LINE;
const A_X_BASE: u64 = 2 * WORDS_PER_LINE;

/// Structure-kind word a file-backed stack records in its pool superblock.
pub const KIND_DSS_STACK: u64 = AppKind::DssStack.word();

/// The stack's pool layout, derived from `(nthreads, nodes_per_thread)`
/// alone (cf. the queue's `QueueLayout`).
struct StackLayout {
    region: u64,
    reg_base: u64,
    words: u64,
}

impl StackLayout {
    fn new(nthreads: usize, nodes_per_thread: u64) -> Self {
        assert!(nthreads > 0 && nodes_per_thread > 0);
        let x_end = A_X_BASE + nthreads as u64 * WORDS_PER_LINE;
        let region = x_end.next_multiple_of(NODE_WORDS);
        let node_end = region + nodes_per_thread * nthreads as u64 * NODE_WORDS;
        let reg_base = node_end.next_multiple_of(WORDS_PER_LINE);
        let words = reg_base + Registry::<PmemPool>::region_words(nthreads);
        StackLayout { region, reg_base, words }
    }
}

/// Push-side error: the pre-allocated node pool is exhausted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StackFull;

impl fmt::Display for StackFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("stack node pool exhausted")
    }
}

impl std::error::Error for StackFull {}

/// The operation reported by [`DssStack::resolve`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StackResolvedOp {
    /// The last prepared operation was `push(value)`.
    Push(u64),
    /// The last prepared operation was `pop()`.
    Pop,
}

/// The `(A[pᵢ], R[pᵢ])` answer of [`DssStack::resolve`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StackResolved {
    /// The most recently prepared operation, if any.
    pub op: Option<StackResolvedOp>,
    /// Its response, if it took effect.
    pub resp: Option<StackResp>,
}

/// A lock-free detectable recoverable LIFO stack on persistent memory.
///
/// # Examples
///
/// ```
/// use dss_core::{DssStack, StackResolved, StackResolvedOp};
/// use dss_spec::types::StackResp;
///
/// let s = DssStack::new(2, 32);
/// let h0 = s.register_thread().unwrap();
/// let h1 = s.register_thread().unwrap();
/// s.prep_push(h0, 7).unwrap();
/// s.exec_push(h0);
/// assert_eq!(
///     s.resolve(h0),
///     StackResolved { op: Some(StackResolvedOp::Push(7)), resp: Some(StackResp::Ok) }
/// );
/// s.prep_pop(h1);
/// assert_eq!(s.exec_pop(h1), StackResp::Value(7));
/// ```
pub struct DssStack<M: Memory = PmemPool> {
    /// The shared detectability skeleton: pool, registry, EBR, backoff,
    /// and the per-thread `X` words (see [`DetectableCore`]).
    core: DetectableCore<M>,
    nodes: NodePool,
}

impl DssStack {
    /// Creates a stack for `nthreads` threads with `nodes_per_thread`
    /// pre-allocated nodes each, on a fresh line-granular [`PmemPool`].
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero.
    pub fn new(nthreads: usize, nodes_per_thread: u64) -> Self {
        Self::new_in(nthreads, nodes_per_thread, FlushGranularity::Line)
    }

    /// Creates a stack on a **file-backed** pool at `path` (line-granular),
    /// recording [`KIND_DSS_STACK`] and the construction parameters in the
    /// superblock so [`attach`](Self::attach) needs only the path.
    ///
    /// # Errors
    ///
    /// [`AttachError::Io`] if the pool file cannot be created.
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero.
    pub fn create<P: AsRef<std::path::Path>>(
        path: P,
        nthreads: usize,
        nodes_per_thread: u64,
    ) -> Result<Self, AttachError> {
        let layout = StackLayout::new(nthreads, nodes_per_thread);
        let pool = Arc::new(PmemPool::create(path, layout.words as usize, FlushGranularity::Line)?);
        pool.set_app_config(KIND_DSS_STACK, &[nthreads as u64, nodes_per_thread]);
        let registry = Registry::create(Arc::clone(&pool), layout.reg_base, nthreads);
        let s = Self::assemble(pool, registry, &layout, nthreads, nodes_per_thread);
        s.format();
        Ok(s)
    }

    /// Rebuilds a stack from a pool file with no in-process state; the
    /// attach is a crash boundary, so follow with
    /// [`recover`](Self::recover) and per-handle
    /// [`resolve`](Self::resolve).
    ///
    /// # Errors
    ///
    /// Any [`AttachError`], including [`AttachError::AppMismatch`] if the
    /// file holds a different structure.
    pub fn attach<P: AsRef<std::path::Path>>(path: P) -> Result<Self, AttachError> {
        let pool = Arc::new(PmemPool::attach(path)?);
        let found = pool.app_kind();
        if found != KIND_DSS_STACK {
            return Err(AttachError::AppMismatch { expected: KIND_DSS_STACK, found });
        }
        let [nthreads, nodes_per_thread, ..] = pool.app_config();
        if nthreads == 0 || nodes_per_thread == 0 {
            return Err(AttachError::Corrupt("stack parameter words are zero"));
        }
        let nthreads = nthreads as usize;
        let layout = StackLayout::new(nthreads, nodes_per_thread);
        if (pool.capacity() as u64) < layout.words {
            return Err(AttachError::Corrupt("pool smaller than the stack layout requires"));
        }
        let registry = Registry::attach(Arc::clone(&pool), layout.reg_base)?;
        let s = Self::assemble(pool, registry, &layout, nthreads, nodes_per_thread);
        // Reachability from the possibly-lagging persisted top is a
        // superset of the true live set, so rebuilding before `recover`
        // repairs `top` is safe (cf. the queue's attach).
        s.rebuild_allocator();
        Ok(s)
    }
}

impl<M: Memory> DssStack<M> {
    /// Creates a stack on a freshly created backend of type `M`
    /// ([`Memory::create`]) — the backend-generic constructor behind
    /// [`new`](DssStack::new).
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero.
    pub fn new_in(nthreads: usize, nodes_per_thread: u64, granularity: FlushGranularity) -> Self {
        let layout = StackLayout::new(nthreads, nodes_per_thread);
        let pool = Arc::new(M::create(layout.words as usize, granularity));
        let registry = Registry::create(Arc::clone(&pool), layout.reg_base, nthreads);
        let s = Self::assemble(pool, registry, &layout, nthreads, nodes_per_thread);
        s.format();
        s
    }

    /// The shared constructor tail: in-DRAM side tables over an existing
    /// pool + registry — everything `attach` must rebuild rather than map.
    fn assemble(
        pool: Arc<M>,
        registry: Registry<M>,
        layout: &StackLayout,
        nthreads: usize,
        nodes_per_thread: u64,
    ) -> Self {
        let nodes =
            NodePool::new(PAddr::from_index(layout.region), NODE_WORDS, nodes_per_thread, nthreads);
        DssStack {
            core: DetectableCore::new(pool, registry, nthreads, A_X_BASE, WORDS_PER_LINE),
            nodes,
        }
    }

    /// Writes and persists the initial stack state (fresh pools only —
    /// never run on attach).
    fn format(&self) {
        self.core.pool.store(self.top_addr(), PAddr::NULL.to_word());
        self.core.pool.flush(self.top_addr());
        self.core.format_x();
        self.core.pool.drain();
    }

    /// Enables or disables contention management (backoff after failed CAS
    /// and elision of redundant announce flushes in `exec-pop`). Default
    /// off.
    pub fn set_backoff(&self, on: bool) {
        self.core.set_backoff(on);
    }

    /// Whether contention management is enabled.
    pub fn backoff_enabled(&self) -> bool {
        self.core.backoff_enabled()
    }

    fn new_backoff(&self) -> Backoff<'_> {
        self.core.new_backoff()
    }

    fn top_addr(&self) -> PAddr {
        PAddr::from_index(A_TOP)
    }

    // Handle validity is the core's concern; see DetectableCore::x_addr.
    fn x_addr(&self, slot: usize) -> PAddr {
        self.core.x_addr(slot)
    }

    /// The stack's persistent-memory pool.
    pub fn pool(&self) -> &Arc<M> {
        self.core.pool()
    }

    /// Number of threads the stack was built for.
    pub fn nthreads(&self) -> usize {
        self.core.nthreads()
    }

    /// The stack's persistent thread-slot registry.
    pub fn registry(&self) -> &Registry<M> {
        self.core.registry()
    }

    /// Claims a free registry slot; see
    /// [`DssQueue::register_thread`](crate::DssQueue::register_thread).
    ///
    /// # Errors
    ///
    /// [`SlotError::Exhausted`] when all slots are taken.
    pub fn register_thread(&self) -> Result<ThreadHandle, SlotError> {
        self.core.register_thread()
    }

    /// Returns a handle's slot to the registry.
    ///
    /// # Errors
    ///
    /// [`SlotError::StaleHandle`] / [`SlotError::ForeignHandle`] per
    /// [`Registry::release`].
    pub fn release_thread(&self, h: ThreadHandle) -> Result<(), SlotError> {
        self.core.release_thread(h)
    }

    /// Marks the crash boundary in the registry (idempotent per crash);
    /// called by [`recover`](Self::recover), or directly when driving
    /// partial recovery by hand.
    pub fn begin_recovery(&self) {
        self.core.begin_recovery();
    }

    /// Adopts one orphaned slot (fresh lease, EBR state inherited).
    ///
    /// # Errors
    ///
    /// [`SlotError::OutOfRange`] / [`SlotError::NotOrphaned`] per
    /// [`Registry::adopt`].
    pub fn adopt(&self, slot: usize) -> Result<ThreadHandle, SlotError> {
        self.core.adopt(slot)
    }

    /// [`adopt`](Self::adopt) over every orphaned slot, ascending.
    pub fn adopt_orphans(&self) -> Vec<ThreadHandle> {
        self.core.adopt_orphans()
    }

    /// The nodes the detectability words still name — a prepared push's
    /// node or a claimed pop's node. `resolve` dereferences them long
    /// after the operation completes, so epoch reclamation must not
    /// recycle them (the crash-free counterpart of
    /// [`rebuild_allocator`](Self::rebuild_allocator)'s liveness rule).
    fn x_referenced_nodes(&self) -> Vec<PAddr> {
        (0..self.nthreads())
            .map(|i| tag::addr_of(self.core.pool.load(self.x_addr(i))))
            .filter(|d| !d.is_null())
            .collect()
    }

    fn alloc(&self, tid: usize) -> Result<PAddr, StackFull> {
        self.nodes
            .alloc_with_reclaim_guarded(tid, &self.core.ebr, || self.x_referenced_nodes())
            .ok_or(StackFull)
    }

    /// The live top: skips the claimed prefix, helping claimed pops along
    /// (persist the claim, advance `top`).
    fn find_top(&self, _tid: usize) -> PAddr {
        loop {
            let top_w = self.core.pool.load(self.top_addr());
            let top = tag::addr_of(top_w);
            if top.is_null() {
                return top;
            }
            if self.core.pool.load(top.offset(F_POPPER)) == NO_POPPER {
                return top;
            }
            // Claimed node at the top: help complete the pop.
            self.core.pool.flush(top.offset(F_POPPER));
            let next = self.core.pool.load(top.offset(F_NEXT));
            // The top must not persist past an unpersisted claim.
            self.core.pool.drain_line(top.offset(F_POPPER));
            let _ = self.core.pool.cas(self.top_addr(), top_w, next);
        }
    }

    /// **prep-push(val)**: allocates and persists a node, announcing it in
    /// `X[tid]`.
    ///
    /// # Errors
    ///
    /// Returns [`StackFull`] when the node pool is exhausted.
    pub fn prep_push(&self, h: ThreadHandle, val: u64) -> Result<(), StackFull> {
        let tid = h.slot();
        let node = self.alloc(tid)?;
        self.core.pool.store(node.offset(F_VALUE), val);
        self.core.pool.store(node.offset(F_NEXT), PAddr::NULL.to_word());
        self.core.pool.store(node.offset(F_POPPER), NO_POPPER);
        self.flush_node(node);
        // Ordering point: the announce must not persist ahead of the node
        // it names — a targeted drain of the node's own lines.
        self.drain_node(node);
        // Announce + the durable-before-return drain (DetectableCore).
        self.core.announce(tid, tag::set(node.to_word(), PUSH_PREP));
        Ok(())
    }

    fn flush_node(&self, node: PAddr) {
        match self.core.pool.granularity() {
            FlushGranularity::Line => self.core.pool.flush(node),
            FlushGranularity::Word => {
                self.core.pool.flush(node.offset(F_VALUE));
                self.core.pool.flush(node.offset(F_NEXT));
                self.core.pool.flush(node.offset(F_POPPER));
            }
        }
    }

    /// Targeted drain of a node's own flush units (cf. the queue's
    /// `drain_node`): everything else stays pended.
    fn drain_node(&self, node: PAddr) {
        self.core.pool.drain_lines(&[
            node.offset(F_VALUE),
            node.offset(F_NEXT),
            node.offset(F_POPPER),
        ]);
    }

    /// **exec-push()**: links the prepared node as the new top and records
    /// completion in `X[tid]`.
    ///
    /// # Panics
    ///
    /// Panics if no push is prepared for `tid`.
    pub fn exec_push(&self, h: ThreadHandle) {
        let tid = h.slot();
        let _g = self.core.pin(tid);
        let xa = self.x_addr(tid);
        let x = self.core.pool.load(xa);
        assert!(tag::has(x, PUSH_PREP), "exec-push without a prepared push");
        let node = tag::addr_of(x);
        let mut bo = self.new_backoff();
        loop {
            let top = self.find_top(tid);
            self.core.pool.store(node.offset(F_NEXT), top.to_word());
            self.core.pool.flush(node.offset(F_NEXT));
            // Ordering point: the announce and the node's linkage must be
            // persistent before the push can take effect.
            self.core.pool.drain_lines(&[xa, node.offset(F_NEXT)]);
            if self.core.pool.cas(self.top_addr(), top.to_word(), node.to_word()).is_ok() {
                self.core.pool.flush(self.top_addr());
                // Ordering point: the completion mark must not persist
                // ahead of the top pointer it certifies.
                self.core.pool.drain_line(self.top_addr());
                self.core.complete(tid, tag::set(x, PUSH_COMPL));
                self.core.pool.drain();
                return;
            }
            bo.spin();
        }
    }

    /// Non-detectable **push(val)** (Axiom 4): `prep` + `exec` with the
    /// `X` accesses omitted.
    ///
    /// # Errors
    ///
    /// Returns [`StackFull`] when the node pool is exhausted.
    pub fn push(&self, h: ThreadHandle, val: u64) -> Result<(), StackFull> {
        let tid = h.slot();
        let node = self.alloc(tid)?;
        self.core.pool.store(node.offset(F_VALUE), val);
        self.core.pool.store(node.offset(F_NEXT), PAddr::NULL.to_word());
        self.core.pool.store(node.offset(F_POPPER), NO_POPPER);
        self.flush_node(node);
        let _g = self.core.pin(tid);
        let mut bo = self.new_backoff();
        loop {
            let top = self.find_top(tid);
            self.core.pool.store(node.offset(F_NEXT), top.to_word());
            self.core.pool.flush(node.offset(F_NEXT));
            // The node must be persistent before its linkage can be.
            self.drain_node(node);
            if self.core.pool.cas(self.top_addr(), top.to_word(), node.to_word()).is_ok() {
                self.core.pool.flush(self.top_addr());
                self.core.pool.drain();
                return Ok(());
            }
            bo.spin();
        }
    }

    /// **prep-pop()**.
    pub fn prep_pop(&self, h: ThreadHandle) {
        // Announce + the durable-before-return drain (DetectableCore).
        self.core.announce(h.slot(), POP_PREP);
    }

    /// **exec-pop()**: claims the top node by CAS-ing the thread ID into
    /// its `popper` field — having first announced the node in `X[tid]`,
    /// which is what makes the pop detectable.
    ///
    /// # Panics
    ///
    /// Panics if no pop is prepared for `tid`.
    pub fn exec_pop(&self, h: ThreadHandle) -> StackResp {
        let tid = h.slot();
        let _g = self.core.pin(tid);
        let xa = self.x_addr(tid);
        let elide = self.backoff_enabled();
        let mut bo = self.new_backoff();
        // Last announce this call wrote to X[tid] (0 = none): a retry that
        // targets the same top again may skip re-persisting it, since only
        // this thread writes X[tid].
        let mut announced = 0u64;
        loop {
            let top = self.find_top(tid);
            if top.is_null() {
                // The EMPTY mark is this path's completion mark.
                self.core.complete(tid, POP_PREP | EMPTY);
                self.core.pool.drain();
                return StackResp::Empty;
            }
            // Announce the node we are about to claim (cf. queue line 47).
            let announce = tag::set(top.to_word(), POP_PREP);
            if !elide || announced != announce {
                self.core.pool.store(xa, announce);
                self.core.pool.flush(xa);
                announced = announce;
            }
            // Ordering point: the announced node must be persistent before
            // a claim on it can be — resolve interprets the claim through it.
            self.core.pool.drain_line(xa);
            if self.core.pool.cas(top.offset(F_POPPER), NO_POPPER, tid as u64).is_ok() {
                self.core.pool.flush(top.offset(F_POPPER));
                let next = self.core.pool.load(top.offset(F_NEXT));
                // The top must not persist past an unpersisted claim.
                self.core.pool.drain_line(top.offset(F_POPPER));
                if self.core.pool.cas(self.top_addr(), top.to_word(), next).is_ok() {
                    self.retire(tid, top);
                }
                let val = self.core.pool.load(top.offset(F_VALUE));
                self.core.pool.drain();
                return StackResp::Value(val);
            }
            // Lost the claim race; find_top will help the winner.
            bo.spin();
        }
    }

    /// Non-detectable **pop()**: the claim combines the thread ID with the
    /// `NONDET_DEQ` tag so detection never mistakes it for a detectable
    /// claim by the same thread (cf. queue §3.2).
    pub fn pop(&self, h: ThreadHandle) -> StackResp {
        let tid = h.slot();
        let _g = self.core.pin(tid);
        let mut bo = self.new_backoff();
        loop {
            let top = self.find_top(tid);
            if top.is_null() {
                self.core.pool.drain();
                return StackResp::Empty;
            }
            if self
                .core
                .pool
                .cas(top.offset(F_POPPER), NO_POPPER, tid as u64 | tag::NONDET_DEQ)
                .is_ok()
            {
                self.core.pool.flush(top.offset(F_POPPER));
                let next = self.core.pool.load(top.offset(F_NEXT));
                self.core.pool.drain_line(top.offset(F_POPPER));
                if self.core.pool.cas(self.top_addr(), top.to_word(), next).is_ok() {
                    self.retire(tid, top);
                }
                let val = self.core.pool.load(top.offset(F_VALUE));
                self.core.pool.drain();
                return StackResp::Value(val);
            }
            bo.spin();
        }
    }

    fn retire(&self, tid: usize, node: PAddr) {
        if self.nodes.contains(node) {
            self.core.ebr.retire(tid, node);
        }
    }

    /// **resolve()**: the `(A[pᵢ], R[pᵢ])` pair for the stack.
    pub fn resolve(&self, h: ThreadHandle) -> StackResolved {
        let tid = h.slot();
        let x = self.core.pool.load(self.x_addr(tid));
        if tag::has(x, PUSH_PREP) {
            let node = tag::addr_of(x);
            let value = self.core.pool.load(node.offset(F_VALUE));
            StackResolved {
                op: Some(StackResolvedOp::Push(value)),
                resp: tag::has(x, PUSH_COMPL).then_some(StackResp::Ok),
            }
        } else if tag::has(x, POP_PREP) {
            let node = tag::addr_of(x);
            let resp = if node.is_null() {
                tag::has(x, EMPTY).then_some(StackResp::Empty)
            } else if self.core.pool.load(node.offset(F_POPPER)) == tid as u64 {
                Some(StackResp::Value(self.core.pool.load(node.offset(F_VALUE))))
            } else {
                None
            };
            StackResolved { op: Some(StackResolvedOp::Pop), resp }
        } else {
            StackResolved { op: None, resp: None }
        }
    }

    /// Advances `top` past the claimed prefix and persists it (the
    /// structural half of the stack's Figure 6).
    fn repair_top(&self) {
        loop {
            let top_w = self.core.pool.load(self.top_addr());
            let top = tag::addr_of(top_w);
            if top.is_null() || self.core.pool.load(top.offset(F_POPPER)) == NO_POPPER {
                break;
            }
            let next = self.core.pool.load(top.offset(F_NEXT));
            self.core.pool.store(self.top_addr(), next);
        }
        self.core.pool.flush(self.top_addr());
    }

    fn reachable_set(&self) -> std::collections::HashSet<PAddr> {
        let mut set = std::collections::HashSet::new();
        let mut cur = tag::addr_of(self.core.pool.load(self.top_addr()));
        while !cur.is_null() {
            set.insert(cur);
            cur = tag::addr_of(self.core.pool.load(cur.offset(F_NEXT)));
        }
        set
    }

    /// Completes slot `i`'s `PUSH_COMPL` tag if its prepared push took
    /// effect (node reachable, or already claimed off the stack).
    fn recover_x_entry(&self, i: usize, reachable: &std::collections::HashSet<PAddr>) {
        let xa = self.x_addr(i);
        let x = self.core.pool.load(xa);
        if !tag::has(x, PUSH_PREP) || tag::has(x, PUSH_COMPL) {
            return;
        }
        let d = tag::addr_of(x);
        if d.is_null() {
            return;
        }
        let effective =
            reachable.contains(&d) || self.core.pool.load(d.offset(F_POPPER)) != NO_POPPER;
        if effective {
            self.core.complete(i, tag::set(x, PUSH_COMPL));
        }
    }

    /// Post-crash recovery (the stack's Figure 6, restructured through
    /// the registry): mark the crash boundary, advance `top` past the
    /// claimed prefix, then adopt every orphaned slot and complete its
    /// `PUSH_COMPL` tag. Returns the adopted handles; pre-crash handles
    /// remain usable (adoption re-LIVEs slots rather than freeing them).
    pub fn recover(&self) -> Vec<ThreadHandle> {
        self.core.recover_adopting(
            || {
                self.repair_top();
                self.reachable_set()
            },
            |slot, reachable| self.recover_x_entry(slot, reachable),
        )
    }

    /// The pre-registry centralized recovery (every `X[i]` by index, no
    /// registry transitions); reference implementation for the parity
    /// test against the registry-driven [`recover`](Self::recover).
    #[doc(hidden)]
    pub fn recover_centralized(&self) {
        self.repair_top();
        let reachable = self.reachable_set();
        for i in 0..self.nthreads() {
            self.recover_x_entry(i, &reachable);
        }
        self.core.pool.drain();
    }

    /// Independent per-slot recovery (§3.3): repairs only this handle's
    /// `X` entry; `top` is repaired lazily by `find_top`'s helping path.
    pub fn recover_one(&self, h: ThreadHandle) {
        self.core.recover_one_with(
            h,
            || self.reachable_set(),
            |slot, reachable| self.recover_x_entry(slot, reachable),
        );
    }

    /// Rebuilds the volatile allocator after a crash (`X`-referenced
    /// nodes stay allocated for `resolve`).
    pub fn rebuild_allocator(&self) {
        let mut live = Vec::new();
        let mut cur = tag::addr_of(self.core.pool.load(self.top_addr()));
        while !cur.is_null() {
            live.push(cur);
            cur = tag::addr_of(self.core.pool.load(cur.offset(F_NEXT)));
        }
        live.extend(self.x_referenced_nodes());
        self.nodes.rebuild(live);
        self.core.ebr.reset();
    }

    /// Volatile snapshot, top first (test helper; skips claimed nodes).
    pub fn snapshot_values(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cur = tag::addr_of(self.core.pool.peek(self.top_addr()));
        while !cur.is_null() {
            if self.core.pool.peek(cur.offset(F_POPPER)) == NO_POPPER {
                out.push(self.core.pool.peek(cur.offset(F_VALUE)));
            }
            cur = tag::addr_of(self.core.pool.peek(cur.offset(F_NEXT)));
        }
        out
    }
}

impl<M: Memory> fmt::Debug for DssStack<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DssStack").field("nthreads", &self.core.nthreads).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_pmem::{CrashSignal, WritebackAdversary};
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    fn run_crash_at<F: FnOnce()>(s: &DssStack, k: u64, f: F) -> bool {
        s.pool().arm_crash_after(k);
        let r = catch_unwind(AssertUnwindSafe(f));
        s.pool().disarm_crash();
        match r {
            Ok(()) => false,
            Err(p) if p.downcast_ref::<CrashSignal>().is_some() => true,
            Err(p) => resume_unwind(p),
        }
    }

    #[test]
    fn lifo_order_detectable_and_plain() {
        let s = DssStack::new(1, 16);
        let h0 = s.register_thread().unwrap();
        s.prep_push(h0, 1).unwrap();
        s.exec_push(h0);
        s.push(h0, 2).unwrap();
        s.prep_pop(h0);
        assert_eq!(s.exec_pop(h0), StackResp::Value(2));
        assert_eq!(s.pop(h0), StackResp::Value(1));
        assert_eq!(s.pop(h0), StackResp::Empty);
        s.prep_pop(h0);
        assert_eq!(s.exec_pop(h0), StackResp::Empty);
    }

    #[test]
    fn resolve_round_trip() {
        let s = DssStack::new(1, 16);
        let h0 = s.register_thread().unwrap();
        assert_eq!(s.resolve(h0), StackResolved { op: None, resp: None });
        s.prep_push(h0, 9).unwrap();
        assert_eq!(s.resolve(h0), StackResolved { op: Some(StackResolvedOp::Push(9)), resp: None });
        s.exec_push(h0);
        assert_eq!(
            s.resolve(h0),
            StackResolved { op: Some(StackResolvedOp::Push(9)), resp: Some(StackResp::Ok) }
        );
        s.prep_pop(h0);
        assert_eq!(s.resolve(h0), StackResolved { op: Some(StackResolvedOp::Pop), resp: None });
        assert_eq!(s.exec_pop(h0), StackResp::Value(9));
        assert_eq!(
            s.resolve(h0),
            StackResolved { op: Some(StackResolvedOp::Pop), resp: Some(StackResp::Value(9)) }
        );
    }

    #[test]
    fn push_crash_sweep_resolves_consistently() {
        for adv in [
            WritebackAdversary::None,
            WritebackAdversary::All,
            WritebackAdversary::Random { seed: 9, prob: 0.5 },
        ] {
            for k in 1..50 {
                let s = DssStack::new(1, 8);
                let h0 = s.register_thread().unwrap();
                let crashed = run_crash_at(&s, k, || {
                    s.prep_push(h0, 42).unwrap();
                    s.exec_push(h0);
                });
                if !crashed {
                    break;
                }
                s.pool().crash(&adv);
                s.recover();
                s.rebuild_allocator();
                let present = s.snapshot_values() == vec![42];
                match s.resolve(h0) {
                    StackResolved { op: None, resp: None } => {
                        assert!(!present, "k={k} {adv:?}")
                    }
                    StackResolved {
                        op: Some(StackResolvedOp::Push(42)),
                        resp: Some(StackResp::Ok),
                    } => assert!(present, "k={k} {adv:?}"),
                    StackResolved { op: Some(StackResolvedOp::Push(42)), resp: None } => {
                        assert!(!present, "k={k} {adv:?}")
                    }
                    other => panic!("k={k} {adv:?}: impossible {other:?}"),
                }
            }
        }
    }

    #[test]
    fn pop_crash_sweep_resolves_consistently() {
        for adv in [WritebackAdversary::None, WritebackAdversary::All] {
            for k in 1..50 {
                let s = DssStack::new(1, 8);
                let h0 = s.register_thread().unwrap();
                s.push(h0, 7).unwrap();
                let crashed = run_crash_at(&s, k, || {
                    s.prep_pop(h0);
                    let _ = s.exec_pop(h0);
                });
                if !crashed {
                    break;
                }
                s.pool().crash(&adv);
                s.recover();
                s.rebuild_allocator();
                let still_there = s.snapshot_values() == vec![7];
                match s.resolve(h0) {
                    StackResolved { op: None, resp: None } => {
                        assert!(still_there, "k={k} {adv:?}")
                    }
                    StackResolved {
                        op: Some(StackResolvedOp::Pop),
                        resp: Some(StackResp::Value(7)),
                    } => assert!(!still_there, "k={k} {adv:?}"),
                    StackResolved { op: Some(StackResolvedOp::Pop), resp: None } => {
                        assert!(still_there, "k={k} {adv:?}")
                    }
                    other => panic!("k={k} {adv:?}: impossible {other:?}"),
                }
            }
        }
    }

    #[test]
    fn concurrent_stress_conserves_values() {
        let s = Arc::new(DssStack::new(4, 64));
        let hs: Vec<_> = (0..4).map(|_| s.register_thread().unwrap()).collect();
        let handles: Vec<_> = (0..4)
            .map(|tid| {
                let s = Arc::clone(&s);
                let h = hs[tid];
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    for i in 0..250u64 {
                        let v = (tid as u64) << 32 | (i + 1);
                        if i % 2 == 0 {
                            s.prep_push(h, v).unwrap();
                            s.exec_push(h);
                        } else {
                            s.push(h, v).unwrap();
                        }
                        s.prep_pop(h);
                        if let StackResp::Value(x) = s.exec_pop(h) {
                            got.push(x);
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.extend(s.snapshot_values());
        all.sort_unstable();
        let mut expected: Vec<u64> =
            (0..4u64).flat_map(|t| (1..=250).map(move |i| t << 32 | i)).collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }

    #[test]
    fn recovery_advances_top_past_claimed_prefix() {
        let s = DssStack::new(2, 16);
        let h0 = s.register_thread().unwrap();
        let h1 = s.register_thread().unwrap();
        s.push(h0, 1).unwrap();
        s.push(h0, 2).unwrap();
        // Claim the top but crash before the top CAS. Op count:
        // prep (store X, flush X) = 2; find_top (load top, load popper)
        // = 4; announce (store X, flush X) = 6; claim CAS = 7 — crash on
        // op 8 (the claim's flush; the All adversary persists the claim).
        let crashed = run_crash_at(&s, 8, || {
            s.prep_pop(h1);
            let _ = s.exec_pop(h1);
        });
        assert!(crashed);
        s.pool().crash(&WritebackAdversary::All);
        s.recover();
        s.rebuild_allocator();
        // The claim persisted: resolve delivers the value, and the stack
        // exposes only the remaining element.
        assert_eq!(
            s.resolve(h1),
            StackResolved { op: Some(StackResolvedOp::Pop), resp: Some(StackResp::Value(2)) }
        );
        assert_eq!(s.snapshot_values(), vec![1]);
        assert_eq!(s.pop(h0), StackResp::Value(1));
    }

    #[test]
    #[should_panic(expected = "without a prepared push")]
    fn exec_push_without_prep_panics() {
        let s = DssStack::new(1, 4);
        let h0 = s.register_thread().unwrap();
        s.exec_push(h0);
    }

    #[test]
    fn many_ops_through_small_pool() {
        let s = DssStack::new(1, 4);
        let h0 = s.register_thread().unwrap();
        for i in 0..500 {
            s.push(h0, i).unwrap();
            assert_eq!(s.pop(h0), StackResp::Value(i));
        }
    }
}
