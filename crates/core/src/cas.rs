//! A bespoke implementation of `D⟨CAS⟩`.
//!
//! The second base-object type of the §2.2 nesting discussion. Like the
//! [`DetectableRegister`](crate::DetectableRegister) it uses value-node
//! indirection with persisted `superseded` flags, so a thread can prove —
//! across crashes and later overwrites — whether its compare-and-swap ever
//! installed. Note the contrast the paper draws with NRL-like objects:
//! Ben-Baruch et al. prove NRL-like detectable CAS *requires* auxiliary
//! external state, while this DSS-based object needs none — the `prep`
//! announcement carries everything.

use std::fmt;
use std::sync::Arc;

use dss_pmem::{
    tag, AppKind, AttachError, Backoff, FlushGranularity, Memory, NodePool, PAddr, PmemPool,
    Registry, SlotError, ThreadHandle, WORDS_PER_LINE,
};

use crate::detect::DetectableCore;

// Node layout (4 words, line-aligned).
const F_NEW: u64 = 0;
const F_EXPECTED: u64 = 1;
const F_WRITER_SEQ: u64 = 2;
const F_SUPERSEDED: u64 = 3;
const NODE_WORDS: u64 = 4;

// X-word tags (above the 48 address bits; this object never shares an X
// word with another type, so bit positions may be reused).
const C_PREP: u64 = tag::ENQ_PREP;
const C_COMPL: u64 = tag::ENQ_COMPL;
const C_FAILED: u64 = tag::DEQ_PREP;

// Fixed layout: [0:NULL][cur line][n X lines][initial node][region] — cur
// and each X entry on their own cache line (no false sharing).
const A_CUR: u64 = WORDS_PER_LINE;
const A_X_BASE: u64 = 2 * WORDS_PER_LINE;

/// Structure-kind word a file-backed CAS object records in its pool
/// superblock.
pub const KIND_DETECTABLE_CAS: u64 = AppKind::DetectableCas.word();

/// The CAS object's pool layout, derived from `(nthreads,
/// nodes_per_thread)` alone (cf. the queue's `QueueLayout`).
struct CasLayout {
    init_node: u64,
    region: u64,
    reg_base: u64,
    words: u64,
}

impl CasLayout {
    fn new(nthreads: usize, nodes_per_thread: u64) -> Self {
        assert!(nthreads > 0 && nodes_per_thread > 0);
        let x_end = A_X_BASE + nthreads as u64 * WORDS_PER_LINE;
        let init_node = x_end.next_multiple_of(NODE_WORDS);
        let region = init_node + NODE_WORDS;
        let node_end = region + nodes_per_thread * nthreads as u64 * NODE_WORDS;
        let reg_base = node_end.next_multiple_of(WORDS_PER_LINE);
        let words = reg_base + Registry::<PmemPool>::region_words(nthreads);
        CasLayout { init_node, region, reg_base, words }
    }
}

/// The outcome reported by [`DetectableCas::resolve`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ResolvedCas {
    /// The prepared operation `(expected, new, seq)`, if any.
    pub op: Option<(u64, u64, u64)>,
    /// `Some(true)` — the CAS took effect and succeeded; `Some(false)` —
    /// it took effect and failed (value mismatch); `None` — it did not
    /// take effect.
    pub resp: Option<bool>,
}

/// A detectable recoverable compare-and-swap object (`D⟨CAS⟩`).
///
/// # Examples
///
/// ```
/// use dss_core::DetectableCas;
///
/// let c = DetectableCas::new(2, 16);
/// let h0 = c.register_thread().unwrap();
/// let h1 = c.register_thread().unwrap();
/// c.prep_cas(h0, 0, 5, 1);
/// assert!(c.exec_cas(h0));
/// assert_eq!(c.read(h1), 5);
/// let r = c.resolve(h0);
/// assert_eq!(r.op, Some((0, 5, 1)));
/// assert_eq!(r.resp, Some(true));
/// ```
pub struct DetectableCas<M: Memory = PmemPool> {
    /// The shared detectability skeleton: pool, registry, EBR, backoff,
    /// and the per-thread `X` words (see [`DetectableCore`]).
    core: DetectableCore<M>,
    nodes: NodePool,
    pending: Box<[std::sync::Mutex<Vec<PAddr>>]>,
}

impl DetectableCas {
    /// Creates a CAS object (initial value 0) for `nthreads` threads with
    /// `nodes_per_thread` pre-allocated value nodes each, on a fresh
    /// line-granular [`PmemPool`].
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero.
    pub fn new(nthreads: usize, nodes_per_thread: u64) -> Self {
        Self::new_in(nthreads, nodes_per_thread, FlushGranularity::Line)
    }

    /// Creates a CAS object on a **file-backed** pool at `path`
    /// (line-granular), recording [`KIND_DETECTABLE_CAS`] and the
    /// construction parameters in the superblock so
    /// [`attach`](Self::attach) needs only the path.
    ///
    /// # Errors
    ///
    /// [`AttachError::Io`] if the pool file cannot be created.
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero.
    pub fn create<P: AsRef<std::path::Path>>(
        path: P,
        nthreads: usize,
        nodes_per_thread: u64,
    ) -> Result<Self, AttachError> {
        let layout = CasLayout::new(nthreads, nodes_per_thread);
        let pool = Arc::new(PmemPool::create(path, layout.words as usize, FlushGranularity::Line)?);
        pool.set_app_config(KIND_DETECTABLE_CAS, &[nthreads as u64, nodes_per_thread]);
        let registry = Registry::create(Arc::clone(&pool), layout.reg_base, nthreads);
        let c = Self::assemble(pool, registry, &layout, nthreads, nodes_per_thread);
        c.format(layout.init_node);
        Ok(c)
    }

    /// Rebuilds a CAS object from a pool file with no in-process state.
    /// Like the register, no recovery phase is needed: after
    /// [`begin_recovery`](Self::begin_recovery) +
    /// [`adopt_orphans`](Self::adopt_orphans), [`resolve`](Self::resolve)
    /// answers from persisted state alone.
    ///
    /// # Errors
    ///
    /// Any [`AttachError`], including [`AttachError::AppMismatch`] if the
    /// file holds a different structure.
    pub fn attach<P: AsRef<std::path::Path>>(path: P) -> Result<Self, AttachError> {
        let pool = Arc::new(PmemPool::attach(path)?);
        let found = pool.app_kind();
        if found != KIND_DETECTABLE_CAS {
            return Err(AttachError::AppMismatch { expected: KIND_DETECTABLE_CAS, found });
        }
        let [nthreads, nodes_per_thread, ..] = pool.app_config();
        if nthreads == 0 || nodes_per_thread == 0 {
            return Err(AttachError::Corrupt("CAS parameter words are zero"));
        }
        let nthreads = nthreads as usize;
        let layout = CasLayout::new(nthreads, nodes_per_thread);
        if (pool.capacity() as u64) < layout.words {
            return Err(AttachError::Corrupt("pool smaller than the CAS layout requires"));
        }
        let registry = Registry::attach(Arc::clone(&pool), layout.reg_base)?;
        let c = Self::assemble(pool, registry, &layout, nthreads, nodes_per_thread);
        c.rebuild_allocator();
        Ok(c)
    }
}

impl<M: Memory> DetectableCas<M> {
    /// Creates a CAS object on a freshly created backend of type `M`
    /// ([`Memory::create`]) — the backend-generic constructor behind
    /// [`new`](DetectableCas::new).
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `nodes_per_thread` is zero.
    pub fn new_in(nthreads: usize, nodes_per_thread: u64, granularity: FlushGranularity) -> Self {
        let layout = CasLayout::new(nthreads, nodes_per_thread);
        let pool = Arc::new(M::create(layout.words as usize, granularity));
        let registry = Registry::create(Arc::clone(&pool), layout.reg_base, nthreads);
        let c = Self::assemble(pool, registry, &layout, nthreads, nodes_per_thread);
        c.format(layout.init_node);
        c
    }

    /// The shared constructor tail: in-DRAM side tables over an existing
    /// pool + registry — everything `attach` must rebuild rather than map.
    fn assemble(
        pool: Arc<M>,
        registry: Registry<M>,
        layout: &CasLayout,
        nthreads: usize,
        nodes_per_thread: u64,
    ) -> Self {
        let nodes =
            NodePool::new(PAddr::from_index(layout.region), NODE_WORDS, nodes_per_thread, nthreads);
        DetectableCas {
            core: DetectableCore::new(pool, registry, nthreads, A_X_BASE, WORDS_PER_LINE),
            nodes,
            pending: (0..nthreads).map(|_| std::sync::Mutex::new(Vec::new())).collect(),
        }
    }

    /// Writes and persists the initial object state (fresh pools only —
    /// never run on attach).
    fn format(&self, init_node: u64) {
        let init = PAddr::from_index(init_node);
        self.core.pool.store(init.offset(F_NEW), 0);
        self.core.pool.store(init.offset(F_EXPECTED), 0);
        self.core.pool.store(init.offset(F_WRITER_SEQ), u64::MAX);
        self.core.pool.store(init.offset(F_SUPERSEDED), 0);
        self.core.pool.flush(init);
        self.core.pool.store(self.cur_addr(), init.to_word());
        self.core.pool.flush(self.cur_addr());
        self.core.format_x();
        self.core.pool.drain();
    }

    /// Enables or disables bounded exponential backoff after failed
    /// install CAS. Default off.
    pub fn set_backoff(&self, on: bool) {
        self.core.set_backoff(on);
    }

    /// Whether contention management is enabled.
    pub fn backoff_enabled(&self) -> bool {
        self.core.backoff_enabled()
    }

    fn new_backoff(&self) -> Backoff<'_> {
        self.core.new_backoff()
    }

    fn cur_addr(&self) -> PAddr {
        PAddr::from_index(A_CUR)
    }

    // Handle validity is the core's concern; see DetectableCore::x_addr.
    fn x_addr(&self, slot: usize) -> PAddr {
        self.core.x_addr(slot)
    }

    /// The object's persistent-memory pool.
    pub fn pool(&self) -> &Arc<M> {
        self.core.pool()
    }

    /// The object's persistent thread-slot registry.
    pub fn registry(&self) -> &Registry<M> {
        self.core.registry()
    }

    /// Claims a free registry slot; see
    /// [`DssQueue::register_thread`](crate::DssQueue::register_thread).
    ///
    /// # Errors
    ///
    /// [`SlotError::Exhausted`] when all slots are taken.
    pub fn register_thread(&self) -> Result<ThreadHandle, SlotError> {
        self.core.register_thread()
    }

    /// Returns a handle's slot to the registry.
    ///
    /// # Errors
    ///
    /// [`SlotError::StaleHandle`] / [`SlotError::ForeignHandle`] per
    /// [`Registry::release`].
    pub fn release_thread(&self, h: ThreadHandle) -> Result<(), SlotError> {
        self.core.release_thread(h)
    }

    /// Marks the crash boundary in the registry (idempotent per crash).
    /// The CAS object needs no recovery phase; this only makes dead
    /// threads' slots adoptable.
    pub fn begin_recovery(&self) {
        self.core.begin_recovery();
    }

    /// Adopts one orphaned slot (fresh lease, EBR state inherited).
    ///
    /// # Errors
    ///
    /// [`SlotError::OutOfRange`] / [`SlotError::NotOrphaned`] per
    /// [`Registry::adopt`].
    pub fn adopt(&self, slot: usize) -> Result<ThreadHandle, SlotError> {
        self.core.adopt(slot)
    }

    /// [`adopt`](Self::adopt) over every orphaned slot, ascending.
    pub fn adopt_orphans(&self) -> Vec<ThreadHandle> {
        self.core.adopt_orphans()
    }

    fn alloc(&self, tid: usize) -> PAddr {
        self.nodes
            .alloc_with_reclaim(tid, &self.core.ebr)
            .unwrap_or_else(|| panic!("CAS node pool exhausted (size it for the workload)"))
    }

    fn sweep_pending(&self, tid: usize) {
        let mut pending = self.pending[tid].lock().unwrap_or_else(|e| e.into_inner());
        let cur = self.core.pool.peek(self.cur_addr());
        let x = tag::addr_of(self.core.pool.peek(self.x_addr(tid)));
        pending.retain(|&p| {
            if p.to_word() != cur && p != x {
                self.core.ebr.retire(tid, p);
                false
            } else {
                true
            }
        });
    }

    fn push_pending(&self, tid: usize, node: PAddr) {
        self.pending[tid].lock().unwrap_or_else(|e| e.into_inner()).push(node);
    }

    /// **prep-cas(expected, new, seq)**: allocates and persists a value
    /// node, then announces it in `X[tid]`. `seq` is the §2.1
    /// disambiguation tag.
    ///
    /// # Panics
    ///
    /// Panics if the node pool is exhausted.
    pub fn prep_cas(&self, h: ThreadHandle, expected: u64, new: u64, seq: u64) {
        let tid = h.slot();
        self.sweep_pending(tid);
        let old = tag::addr_of(self.core.pool.load(self.x_addr(tid)));
        let node = self.alloc(tid);
        self.core.pool.store(node.offset(F_NEW), new);
        self.core.pool.store(node.offset(F_EXPECTED), expected);
        self.core
            .pool
            .store(node.offset(F_WRITER_SEQ), ((tid as u64) << 48) | (seq & tag::ADDR_MASK));
        self.core.pool.store(node.offset(F_SUPERSEDED), 0);
        self.core.pool.flush(node);
        // Ordering point: the announce must not persist ahead of the node
        // it names.
        self.core.pool.drain_lines(&[
            node.offset(F_NEW),
            node.offset(F_EXPECTED),
            node.offset(F_WRITER_SEQ),
            node.offset(F_SUPERSEDED),
        ]);
        // Announce + the durable-before-return drain (DetectableCore).
        self.core.announce(tid, tag::set(node.to_word(), C_PREP));
        if !old.is_null() {
            self.push_pending(tid, old);
        }
    }

    /// **exec-cas()**: attempts the prepared compare-and-swap, returning
    /// whether it succeeded. Success installs the prepared node (marking
    /// the incumbent superseded first); failure is recorded in `X[tid]`
    /// with the `FAILED` tag.
    ///
    /// # Panics
    ///
    /// Panics if no CAS is prepared for `tid` (or it already executed —
    /// Axiom 2's precondition `R[pᵢ] = ⊥`).
    pub fn exec_cas(&self, h: ThreadHandle) -> bool {
        let tid = h.slot();
        let _g = self.core.pin(tid);
        let xa = self.x_addr(tid);
        let x = self.core.pool.load(xa);
        assert!(
            tag::has(x, C_PREP) && !tag::has(x, C_COMPL),
            "exec-cas without a pending prepared CAS (X[{tid}] = {x:#x})"
        );
        let node = tag::addr_of(x);
        let expected = self.core.pool.load(node.offset(F_EXPECTED));
        let mut bo = self.new_backoff();
        loop {
            let cur_w = self.core.pool.load(self.cur_addr());
            let cur = tag::addr_of(cur_w);
            let cur_val = self.core.pool.load(cur.offset(F_NEW));
            if cur_val != expected {
                // The CAS takes effect (fails) at this read.
                self.core.complete(tid, tag::set(x, C_COMPL | C_FAILED));
                self.core.pool.drain();
                return false;
            }
            self.core.pool.store(cur.offset(F_SUPERSEDED), 1);
            self.core.pool.flush(cur.offset(F_SUPERSEDED));
            // The announce and the incumbent's superseded mark must be
            // persistent before the install can take effect — resolve
            // proves installation through either of them.
            self.core.pool.drain_lines(&[cur.offset(F_SUPERSEDED), xa]);
            if self.core.pool.cas(self.cur_addr(), cur_w, node.to_word()).is_ok() {
                self.core.pool.flush(self.cur_addr());
                // Ordering point: the completion mark must not persist
                // ahead of the installed pointer it certifies.
                self.core.pool.drain_line(self.cur_addr());
                self.core.complete(tid, tag::set(x, C_COMPL));
                self.core.pool.drain();
                return true;
            }
            bo.spin();
        }
    }

    /// Non-detectable **cas(expected, new)** (Axiom 4).
    ///
    /// # Panics
    ///
    /// Panics if the node pool is exhausted.
    pub fn cas(&self, h: ThreadHandle, expected: u64, new: u64) -> bool {
        let tid = h.slot();
        let _g = self.core.pin(tid);
        self.sweep_pending(tid);
        let node = self.alloc(tid);
        self.core.pool.store(node.offset(F_NEW), new);
        self.core.pool.store(node.offset(F_EXPECTED), expected);
        self.core.pool.store(node.offset(F_WRITER_SEQ), u64::MAX);
        self.core.pool.store(node.offset(F_SUPERSEDED), 0);
        self.core.pool.flush(node);
        let mut bo = self.new_backoff();
        loop {
            let cur_w = self.core.pool.load(self.cur_addr());
            let cur = tag::addr_of(cur_w);
            let cur_val = self.core.pool.load(cur.offset(F_NEW));
            if cur_val != expected {
                // The node was never exposed; free it directly.
                self.nodes.free(tid, node);
                self.core.pool.drain();
                return false;
            }
            self.core.pool.store(cur.offset(F_SUPERSEDED), 1);
            self.core.pool.flush(cur.offset(F_SUPERSEDED));
            // The new node and the incumbent's superseded mark must be
            // persistent before the install can take effect.
            self.core.pool.drain_lines(&[
                cur.offset(F_SUPERSEDED),
                node.offset(F_NEW),
                node.offset(F_EXPECTED),
                node.offset(F_WRITER_SEQ),
                node.offset(F_SUPERSEDED),
            ]);
            if self.core.pool.cas(self.cur_addr(), cur_w, node.to_word()).is_ok() {
                self.core.pool.flush(self.cur_addr());
                self.core.pool.drain();
                self.push_pending(tid, node);
                return true;
            }
            bo.spin();
        }
    }

    /// **read()** (plain): the current value.
    pub fn read(&self, h: ThreadHandle) -> u64 {
        let _g = self.core.pin(h.slot());
        let cur = tag::addr_of(self.core.pool.load(self.cur_addr()));
        self.core.pool.load(cur.offset(F_NEW))
    }

    /// **resolve()**: reports the most recently prepared CAS and whether
    /// it took effect, and with which outcome. Needs no recovery phase;
    /// idempotent.
    pub fn resolve(&self, h: ThreadHandle) -> ResolvedCas {
        let x = self.core.pool.load(self.x_addr(h.slot()));
        if !tag::has(x, C_PREP) {
            return ResolvedCas { op: None, resp: None };
        }
        let node = tag::addr_of(x);
        let op = Some((
            self.core.pool.load(node.offset(F_EXPECTED)),
            self.core.pool.load(node.offset(F_NEW)),
            self.core.pool.load(node.offset(F_WRITER_SEQ)) & tag::ADDR_MASK,
        ));
        if tag::has(x, C_COMPL) {
            return ResolvedCas { op, resp: Some(!tag::has(x, C_FAILED)) };
        }
        let installed = self.core.pool.load(self.cur_addr()) == node.to_word()
            || self.core.pool.load(node.offset(F_SUPERSEDED)) == 1;
        ResolvedCas { op, resp: if installed { Some(true) } else { None } }
    }

    /// Rebuilds the volatile allocator after a crash.
    pub fn rebuild_allocator(&self) {
        let mut live = vec![tag::addr_of(self.core.pool.load(self.cur_addr()))];
        for i in 0..self.core.nthreads {
            let d = tag::addr_of(self.core.pool.load(self.x_addr(i)));
            if !d.is_null() {
                live.push(d);
            }
        }
        self.nodes.rebuild(live);
        self.core.ebr.reset();
        for p in self.pending.iter() {
            p.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }
}

impl<M: Memory> fmt::Debug for DetectableCas<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DetectableCas")
            .field("nthreads", &self.core.nthreads)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_pmem::WritebackAdversary;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    fn run_crash_at<F: FnOnce()>(c: &DetectableCas, k: u64, f: F) -> bool {
        c.pool().arm_crash_after(k);
        let res = catch_unwind(AssertUnwindSafe(f));
        c.pool().disarm_crash();
        match res {
            Ok(()) => false,
            Err(p) if p.downcast_ref::<dss_pmem::CrashSignal>().is_some() => true,
            Err(p) => std::panic::resume_unwind(p),
        }
    }

    #[test]
    fn cas_success_and_failure() {
        let c = DetectableCas::new(2, 8);
        let h0 = c.register_thread().unwrap();
        let h1 = c.register_thread().unwrap();
        assert!(c.cas(h0, 0, 5));
        assert!(!c.cas(h1, 0, 9), "expected value is stale");
        assert_eq!(c.read(h0), 5);
        assert!(c.cas(h1, 5, 9));
        assert_eq!(c.read(h0), 9);
    }

    #[test]
    fn detectable_cas_resolves_success() {
        let c = DetectableCas::new(1, 8);
        let h0 = c.register_thread().unwrap();
        c.prep_cas(h0, 0, 7, 3);
        assert_eq!(c.resolve(h0), ResolvedCas { op: Some((0, 7, 3)), resp: None });
        assert!(c.exec_cas(h0));
        assert_eq!(c.resolve(h0), ResolvedCas { op: Some((0, 7, 3)), resp: Some(true) });
    }

    #[test]
    fn detectable_cas_resolves_failure() {
        let c = DetectableCas::new(1, 8);
        let h0 = c.register_thread().unwrap();
        c.cas(h0, 0, 1);
        c.prep_cas(h0, 0, 7, 0); // expected 0, but value is 1
        assert!(!c.exec_cas(h0));
        assert_eq!(c.resolve(h0), ResolvedCas { op: Some((0, 7, 0)), resp: Some(false) });
        assert_eq!(c.read(h0), 1, "failed CAS has no effect");
    }

    #[test]
    fn overwritten_success_still_resolves_true() {
        let c = DetectableCas::new(2, 8);
        let h0 = c.register_thread().unwrap();
        let h1 = c.register_thread().unwrap();
        c.prep_cas(h0, 0, 5, 0);
        assert!(c.exec_cas(h0));
        assert!(c.cas(h1, 5, 6)); // supersedes thread 0's node
        assert_eq!(c.resolve(h0), ResolvedCas { op: Some((0, 5, 0)), resp: Some(true) });
    }

    #[test]
    #[should_panic(expected = "without a pending prepared")]
    fn double_exec_panics() {
        let c = DetectableCas::new(1, 8);
        let h0 = c.register_thread().unwrap();
        c.prep_cas(h0, 0, 1, 0);
        assert!(c.exec_cas(h0));
        let _ = c.exec_cas(h0); // Axiom 2: R[pᵢ] ≠ ⊥
    }

    #[test]
    fn crash_sweep_successful_cas() {
        for adv in [
            WritebackAdversary::None,
            WritebackAdversary::All,
            WritebackAdversary::Random { seed: 11, prob: 0.5 },
        ] {
            for k in 1..40 {
                let c = DetectableCas::new(1, 8);
                let h0 = c.register_thread().unwrap();
                let crashed = run_crash_at(&c, k, || {
                    c.prep_cas(h0, 0, 5, 2);
                    c.exec_cas(h0);
                });
                if !crashed {
                    break;
                }
                c.pool().crash(&adv);
                c.rebuild_allocator();
                let now = c.read(h0);
                match c.resolve(h0) {
                    ResolvedCas { op: None, resp: None } => assert_eq!(now, 0, "k={k} {adv:?}"),
                    ResolvedCas { op: Some((0, 5, 2)), resp: Some(true) } => {
                        assert_eq!(now, 5, "k={k} {adv:?}")
                    }
                    ResolvedCas { op: Some((0, 5, 2)), resp: None } => {
                        assert_eq!(now, 0, "k={k} {adv:?}")
                    }
                    other => panic!("k={k} {adv:?}: impossible resolution {other:?}"),
                }
            }
        }
    }

    #[test]
    fn crash_sweep_failing_cas_never_reports_success() {
        for k in 1..40 {
            let c = DetectableCas::new(1, 8);
            let h0 = c.register_thread().unwrap();
            let crashed = run_crash_at(&c, k, || {
                c.prep_cas(h0, 3, 5, 0); // object holds 0: must fail
                c.exec_cas(h0);
            });
            if !crashed {
                break;
            }
            c.pool().crash(&WritebackAdversary::All);
            c.rebuild_allocator();
            assert_eq!(c.read(h0), 0, "k={k}: failing CAS must never change the value");
            if let ResolvedCas { resp: Some(true), .. } = c.resolve(h0) {
                panic!("k={k}: failing CAS resolved as success");
            }
        }
    }

    #[test]
    fn concurrent_counter_via_cas() {
        // Increment a counter with detectable CAS retry loops: total must
        // equal the number of successful increments.
        let c = Arc::new(DetectableCas::new(4, 128));
        let hs: Vec<_> = (0..4).map(|_| c.register_thread().unwrap()).collect();
        let handles: Vec<_> = (0..4)
            .map(|tid| {
                let c = Arc::clone(&c);
                let h = hs[tid];
                std::thread::spawn(move || {
                    let mut seq = 0;
                    for _ in 0..100 {
                        loop {
                            let v = c.read(h);
                            c.prep_cas(h, v, v + 1, seq);
                            seq += 1;
                            if c.exec_cas(h) {
                                break;
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.read(hs[0]), 400);
    }
}
